#!/usr/bin/env bash
# Offline-safe CI gate for the h3cdn workspace.
#
# The workspace is hermetic (all external dependencies are vendored
# under vendor/), so every step runs with the network disabled. Usage:
#
#   scripts/ci.sh
#
# Steps: release build, full test suite, the fault-matrix smoke gate
# (graceful-degradation invariants), the path-dynamics smoke gate
# (continuous-dynamics resilience invariants), the edge-overload smoke
# gate (admission-control / fallback-storm invariants, worker-count
# invariance of the table), the SIGKILL-and-resume smoke
# (crash-safe checkpointing must reproduce a clean run byte-for-byte),
# the population smoke gate (distribution-shape invariants at 10k
# pages, worker-count invariance, shard-journal kill/resume), the
# simulator throughput ratchets (BENCH_sim.json, one row per workload;
# re-record with
# `sim_throughput [--population] --smoke --update-baseline BENCH_sim.json --label L`
# after an intentional perf change), clippy with warnings denied, the
# h3cdn-lint workspace analyzer (determinism / sans-IO / panic ratchet
# / layering / hot-path reachability / seed plumbing / dead API), and
# a formatting check.
#
# Every stage is wall-clock timed and a per-stage summary prints at
# the end. The lint stage writes its machine-readable report to
# target/ci/lint-report.json (the CI artifact) and is held to a
# LINT_BUDGET_MS wall-time budget so the analyzer stays cheap enough
# to run on every push.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

# Wall-time budget for the h3cdn-lint stage (analyzer only, prebuilt
# binary — cargo compile time is charged to the build stage).
LINT_BUDGET_MS="${LINT_BUDGET_MS:-5000}"

STAGE_NAMES=()
STAGE_MS=()
_stage_t0=0
now_ms() { date +%s%3N; }
begin() {
    echo "==> $1"
    STAGE_NAMES+=("$1")
    _stage_t0=$(now_ms)
}
finish() {
    STAGE_MS+=($(($(now_ms) - _stage_t0)))
}

begin "cargo build --release"
cargo build --release --workspace
finish

begin "cargo test"
cargo test -q --workspace
finish

begin "fault_matrix --smoke (graceful-degradation gate)"
cargo run -q --release -p h3cdn-experiments --bin fault_matrix -- --smoke --jobs 4 > /dev/null
finish

begin "path_dynamics --smoke (continuous-dynamics resilience gate)"
# The smoke seed's 4-page corpus is heavy enough that slow-start
# overshoot builds a real standing queue in the oscillating
# bottleneck, so the BBR-vs-Cubic bufferbloat invariant compares
# unequal medians rather than pages that finished before any queue
# formed. The bin asserts the resilience invariants itself; the cmp
# asserts worker-count invariance of the full table, bit for bit.
PD_DIR="$(mktemp -d)"
PD_ARGS=(--smoke --seed 23)
cargo run -q --release -p h3cdn-experiments --bin path_dynamics -- \
    "${PD_ARGS[@]}" --jobs 1 > "$PD_DIR/jobs1.txt"
cargo run -q --release -p h3cdn-experiments --bin path_dynamics -- \
    "${PD_ARGS[@]}" --jobs 4 > "$PD_DIR/jobs4.txt"
cmp "$PD_DIR/jobs1.txt" "$PD_DIR/jobs4.txt"
echo "    sweep output identical at --jobs 1 and --jobs 4"
rm -rf "$PD_DIR"
finish

begin "edge_overload --smoke (overload / fallback-storm gate)"
# The bin asserts the overload invariants itself: the starved herd
# must refuse QUIC and strand the fallback-less h3 arm, the fallback
# arm must complete every client with a visible H3→H2 storm, the
# ample edge must refuse nobody, and the control row must reproduce
# the plain campaign visit paths bit for bit. The cmp asserts
# worker-count invariance of the full table.
EO_DIR="$(mktemp -d)"
cargo run -q --release -p h3cdn-experiments --bin edge_overload -- \
    --smoke --jobs 1 > "$EO_DIR/jobs1.txt"
cargo run -q --release -p h3cdn-experiments --bin edge_overload -- \
    --smoke --jobs 4 > "$EO_DIR/jobs4.txt"
cmp "$EO_DIR/jobs1.txt" "$EO_DIR/jobs4.txt"
echo "    sweep output identical at --jobs 1 and --jobs 4"
rm -rf "$EO_DIR"
finish

begin "SIGKILL-and-resume smoke (crash-safe checkpointing)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
FIG6="target/release/fig6"
SMOKE_ARGS=(--pages 4 --seed 7)
# Ground truth: one clean, uncheckpointed run.
"$FIG6" "${SMOKE_ARGS[@]}" > "$SMOKE_DIR/clean.txt"
# Start a checkpointed run, SIGKILL it mid-flight, then resume. If the
# kill landed after completion the journal is simply full — the resume
# path is exercised either way.
"$FIG6" "${SMOKE_ARGS[@]}" --results-dir "$SMOKE_DIR/results" --run-id ci-smoke \
    --jobs 1 > /dev/null 2>&1 &
SMOKE_PID=$!
sleep 0.05
kill -9 "$SMOKE_PID" 2> /dev/null || true
wait "$SMOKE_PID" 2> /dev/null || true
"$FIG6" "${SMOKE_ARGS[@]}" --results-dir "$SMOKE_DIR/results" --run-id ci-smoke \
    --resume --jobs 4 > "$SMOKE_DIR/resumed.txt" 2> /dev/null
cmp "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/resumed.txt"
echo "    resumed output byte-identical to the clean run"
finish

begin "population --smoke (distribution-shape + streaming gate)"
# The bin asserts the Fig. 2-4 shape invariants itself (CCDF
# monotonicity, provider dominance, tail exponents) over 10k generated
# pages. The cmp asserts worker-count invariance; the kill/resume leg
# asserts the sharded journal's merge-join reproduces a clean run byte
# for byte.
POP_DIR="$(mktemp -d)"
POP="target/release/population"
"$POP" --smoke --json --jobs 1 > "$POP_DIR/jobs1.json" 2> /dev/null
"$POP" --smoke --json --jobs 4 > "$POP_DIR/jobs4.json" 2> /dev/null
cmp "$POP_DIR/jobs1.json" "$POP_DIR/jobs4.json"
echo "    summary identical at --jobs 1 and --jobs 4"
"$POP" --smoke --json --jobs 1 --results-dir "$POP_DIR/results" \
    --run-id ci-pop > /dev/null 2>&1 &
POP_PID=$!
sleep 0.05
kill -9 "$POP_PID" 2> /dev/null || true
wait "$POP_PID" 2> /dev/null || true
"$POP" --smoke --json --jobs 4 --results-dir "$POP_DIR/results" \
    --run-id ci-pop --resume > "$POP_DIR/resumed.json" 2> /dev/null
cmp "$POP_DIR/jobs1.json" "$POP_DIR/resumed.json"
echo "    resumed summary byte-identical to the clean run"
rm -rf "$POP_DIR"
finish

begin "sim_throughput --smoke --check (perf ratchet)"
# The timing tolerance absorbs shared-runner noise; the event count is
# deterministic and gated tightly, so a semantic change cannot hide
# behind a fast machine.
target/release/sim_throughput --smoke --check BENCH_sim.json
finish

begin "sim_throughput --population --smoke --check (generator ratchet)"
# The population generator has its own trajectory row (matched on
# pages/seed/reps); events = generated requests, so structural drift
# in the synthetic-web distributions trips the deterministic gate.
target/release/sim_throughput --population --smoke --check BENCH_sim.json
finish

begin "cargo clippy -D warnings"
cargo clippy --all-targets --workspace -- -D warnings
finish

begin "h3cdn-lint (workspace analyzer + JSON artifact)"
mkdir -p target/ci
lint_t0=$(now_ms)
target/release/h3cdn-lint --workspace-root . --json-out target/ci/lint-report.json
lint_ms=$(($(now_ms) - lint_t0))
echo "    lint report: target/ci/lint-report.json (${lint_ms} ms, budget ${LINT_BUDGET_MS} ms)"
if [ "$lint_ms" -gt "$LINT_BUDGET_MS" ]; then
    echo "FAIL: h3cdn-lint took ${lint_ms} ms, over the ${LINT_BUDGET_MS} ms budget" >&2
    exit 1
fi
finish

begin "cargo fmt --check"
cargo fmt --all --check
finish

echo
echo "stage timing:"
for i in "${!STAGE_NAMES[@]}"; do
    printf '    %6d ms  %s\n' "${STAGE_MS[$i]}" "${STAGE_NAMES[$i]}"
done
echo "CI OK"
