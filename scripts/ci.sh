#!/usr/bin/env bash
# Offline-safe CI gate for the h3cdn workspace.
#
# The workspace is hermetic (all external dependencies are vendored
# under vendor/), so every step runs with the network disabled. Usage:
#
#   scripts/ci.sh
#
# Steps: release build, full test suite, the fault-matrix smoke gate
# (graceful-degradation invariants), the SIGKILL-and-resume smoke
# (crash-safe checkpointing must reproduce a clean run byte-for-byte),
# the simulator throughput ratchet (BENCH_sim.json; re-record with
# `sim_throughput --smoke --update-baseline BENCH_sim.json --label L`
# after an intentional perf change), clippy with warnings denied, the
# h3cdn-lint determinism/sans-IO/panic-ratchet pass, and a formatting
# check.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> fault_matrix --smoke (graceful-degradation gate)"
cargo run -q --release -p h3cdn-experiments --bin fault_matrix -- --smoke --jobs 4 > /dev/null

echo "==> SIGKILL-and-resume smoke (crash-safe checkpointing)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
FIG6="target/release/fig6"
SMOKE_ARGS=(--pages 4 --seed 7)
# Ground truth: one clean, uncheckpointed run.
"$FIG6" "${SMOKE_ARGS[@]}" > "$SMOKE_DIR/clean.txt"
# Start a checkpointed run, SIGKILL it mid-flight, then resume. If the
# kill landed after completion the journal is simply full — the resume
# path is exercised either way.
"$FIG6" "${SMOKE_ARGS[@]}" --results-dir "$SMOKE_DIR/results" --run-id ci-smoke \
    --jobs 1 > /dev/null 2>&1 &
SMOKE_PID=$!
sleep 0.05
kill -9 "$SMOKE_PID" 2> /dev/null || true
wait "$SMOKE_PID" 2> /dev/null || true
"$FIG6" "${SMOKE_ARGS[@]}" --results-dir "$SMOKE_DIR/results" --run-id ci-smoke \
    --resume --jobs 4 > "$SMOKE_DIR/resumed.txt" 2> /dev/null
cmp "$SMOKE_DIR/clean.txt" "$SMOKE_DIR/resumed.txt"
echo "    resumed output byte-identical to the clean run"

echo "==> sim_throughput --smoke --check (perf ratchet)"
# The timing tolerance absorbs shared-runner noise; the event count is
# deterministic and gated tightly, so a semantic change cannot hide
# behind a fast machine.
target/release/sim_throughput --smoke --check BENCH_sim.json

echo "==> cargo clippy -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "==> h3cdn-lint (determinism / sans-IO / panic ratchet)"
cargo run -q -p h3cdn-lint -- --workspace-root .

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
