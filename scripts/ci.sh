#!/usr/bin/env bash
# Offline-safe CI gate for the h3cdn workspace.
#
# The workspace is hermetic (all external dependencies are vendored
# under vendor/), so every step runs with the network disabled. Usage:
#
#   scripts/ci.sh
#
# Steps: release build, full test suite, the fault-matrix smoke gate
# (graceful-degradation invariants), clippy with warnings denied, the
# h3cdn-lint determinism/sans-IO/panic-ratchet pass, and a formatting
# check.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> fault_matrix --smoke (graceful-degradation gate)"
cargo run -q --release -p h3cdn-experiments --bin fault_matrix -- --smoke --jobs 4 > /dev/null

echo "==> cargo clippy -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "==> h3cdn-lint (determinism / sans-IO / panic ratchet)"
cargo run -q -p h3cdn-lint -- --workspace-root .

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
