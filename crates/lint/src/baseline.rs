//! Panic-surface counting and the ratchet baseline.
//!
//! For every library crate we count, in non-test library code
//! (`crates/<c>/src/**` minus `#[cfg(test)]` items):
//!
//! * `unwrap` — `.unwrap()` calls,
//! * `expect` — `.expect(` calls,
//! * `panic` — `panic!` / `unreachable!` / `todo!` / `unimplemented!`,
//! * `index` — `expr[...]`-style indexing (which can panic on
//!   out-of-bounds / missing keys).
//!
//! The checked-in `crates/lint/baseline.json` records the allowed
//! counts. The ratchet direction is one-way: a fresh count above the
//! baseline fails the lint ([`crate::RULE_PANIC_RATCHET`]); a fresh
//! count *below* it also fails, with a hint to regenerate
//! (`h3cdn-lint --update-baseline`), so the recorded floor keeps
//! ratcheting down as code is cleaned up.

use std::collections::BTreeMap;
use std::path::Path;

use crate::scan::FileContext;
use crate::{Finding, RULE_BASELINE_STALE, RULE_PANIC_RATCHET};

/// Panic-surface counts for one crate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// `.unwrap()` calls.
    pub unwrap: usize,
    /// `.expect(` calls.
    pub expect: usize,
    /// `panic!`-family macro invocations.
    pub panic: usize,
    /// `expr[...]` indexing expressions.
    pub index: usize,
}

impl Counts {
    /// Sum over all categories.
    pub fn total(&self) -> usize {
        self.unwrap + self.expect + self.panic + self.index
    }
}

/// Per-crate panic-surface counts, keyed by `crates/<dir>` name.
pub type Baseline = BTreeMap<String, Counts>;

/// Accessor returning one category's count.
type CountGetter = fn(&Counts) -> usize;

/// Per-category sorted `(path, line)` sites.
type CategorySites = BTreeMap<&'static str, Vec<(String, usize)>>;

/// The categories, in stable order, with accessors.
const CATEGORIES: &[(&str, CountGetter)] = &[
    ("unwrap", |c| c.unwrap),
    ("expect", |c| c.expect),
    ("panic", |c| c.panic),
    ("index", |c| c.index),
];

/// All counted sites, so over-baseline findings can name a real
/// `file:line`.
#[derive(Debug, Default)]
pub(crate) struct SiteMap {
    /// `crate -> category -> sorted (path, line) sites`.
    sites: BTreeMap<String, CategorySites>,
}

impl SiteMap {
    /// Collapses the site lists into per-crate counts.
    pub fn to_counts(&self) -> Baseline {
        let mut out = Baseline::new();
        for (krate, by_cat) in &self.sites {
            let get = |cat: &str| by_cat.get(cat).map_or(0, Vec::len);
            out.insert(
                krate.clone(),
                Counts {
                    unwrap: get("unwrap"),
                    expect: get("expect"),
                    panic: get("panic"),
                    index: get("index"),
                },
            );
        }
        out
    }

    fn push(&mut self, krate: &str, cat: &'static str, path: &str, line: usize) {
        self.sites
            .entry(krate.to_owned())
            .or_default()
            .entry(cat)
            .or_default()
            .push((path.to_owned(), line));
    }
}

/// Counts the panic surface of one library-source file into `sites`.
pub(crate) fn count_file(ctx: &FileContext, sites: &mut SiteMap) {
    for (idx, line) in ctx.lines().iter().enumerate() {
        if ctx.is_test_line(idx) {
            continue;
        }
        let push = |sites: &mut SiteMap, cat, n: usize| {
            for _ in 0..n {
                sites.push(ctx.krate(), cat, ctx.rel(), idx + 1);
            }
        };
        push(sites, "unwrap", line.matches(".unwrap()").count());
        push(sites, "expect", line.matches(".expect(").count());
        let panics = line.matches("panic!").count()
            + line.matches("unreachable!").count()
            + line.matches("todo!").count()
            + line.matches("unimplemented!").count();
        push(sites, "panic", panics);
        push(sites, "index", count_indexing(line));
    }
}

/// Counts `expr[...]`-style indexing: a `[` directly preceded by an
/// identifier character, `)` or `]`. Attribute `#[...]`, macro
/// `vec![...]`, slice types `[u8; 4]` and slice patterns are not
/// preceded by such a character and are excluded.
fn count_indexing(line: &str) -> usize {
    let bytes = line.as_bytes();
    let mut n = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'[' && i > 0 {
            let p = bytes[i - 1];
            if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
                n += 1;
            }
        }
    }
    n
}

/// Compares a fresh count against the baseline, appending findings.
pub(crate) fn check(base: &Baseline, fresh: &Baseline, sites: &SiteMap, out: &mut Vec<Finding>) {
    let empty = Counts::default();
    let mut crates: Vec<&String> = base.keys().chain(fresh.keys()).collect();
    crates.sort();
    crates.dedup();
    for krate in crates {
        let b = base.get(krate.as_str()).unwrap_or(&empty);
        let f = fresh.get(krate.as_str()).unwrap_or(&empty);
        for (cat, get) in CATEGORIES {
            let (allowed, counted) = (get(b), get(f));
            if counted > allowed {
                // Name the sites beyond the allowance so the diagnostic
                // points at real code.
                let list = sites
                    .sites
                    .get(krate.as_str())
                    .and_then(|m| m.get(cat))
                    .map_or(&[][..], Vec::as_slice);
                for (path, line) in list.iter().skip(allowed) {
                    out.push(Finding {
                        path: path.clone(),
                        line: *line,
                        rule: RULE_PANIC_RATCHET,
                        message: format!(
                            "crate `{krate}`: {counted} `{cat}` sites in library code, \
                             baseline allows {allowed}"
                        ),
                        hint: "remove the new panic site (return a Result or use an \
                               invariant-documenting expect); the baseline only ratchets down"
                            .to_owned(),
                        trace: None,
                    });
                }
            } else if counted < allowed {
                out.push(Finding {
                    path: "crates/lint/baseline.json".to_owned(),
                    line: 1,
                    rule: RULE_BASELINE_STALE,
                    message: format!(
                        "crate `{krate}`: baseline allows {allowed} `{cat}` sites but only \
                         {counted} remain"
                    ),
                    hint: "lock in the improvement: run `h3cdn-lint --update-baseline` and \
                           commit the regenerated baseline"
                        .to_owned(),
                    trace: None,
                });
            }
        }
    }
}

/// Why a baseline could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file does not exist.
    Missing,
    /// The file exists but could not be parsed.
    Malformed(String),
}

/// Loads a baseline file.
///
/// # Errors
/// [`LoadError::Missing`] when the file does not exist,
/// [`LoadError::Malformed`] on parse failure.
pub fn load(path: &Path) -> Result<Baseline, LoadError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LoadError::Missing),
        Err(e) => return Err(LoadError::Malformed(e.to_string())),
    };
    parse(&text).map_err(LoadError::Malformed)
}

/// Serializes `base` deterministically (sorted keys, 2-space indent).
pub fn render(base: &Baseline) -> String {
    let mut out = String::from("{\n");
    for (i, (krate, c)) in base.iter().enumerate() {
        out.push_str(&format!(
            "  \"{krate}\": {{ \"unwrap\": {}, \"expect\": {}, \"panic\": {}, \"index\": {} }}",
            c.unwrap, c.expect, c.panic, c.index
        ));
        out.push_str(if i + 1 < base.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Writes `base` to `path`.
///
/// # Errors
/// Propagates filesystem errors as strings.
pub fn store(path: &Path, base: &Baseline) -> Result<(), String> {
    std::fs::write(path, render(base)).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Minimal JSON-subset parser (objects of objects of integers)
// ---------------------------------------------------------------------------

/// Parses the restricted baseline shape:
/// `{ "crate": { "unwrap": 1, ... }, ... }`.
fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    let mut out = Baseline::new();
    p.expect_char('{')?;
    if p.peek_skip_ws() == Some('}') {
        p.expect_char('}')?;
        return Ok(out);
    }
    loop {
        let krate = p.string()?;
        p.expect_char(':')?;
        let mut counts = Counts::default();
        p.expect_char('{')?;
        loop {
            let key = p.string()?;
            p.expect_char(':')?;
            let value = p.number()?;
            match key.as_str() {
                "unwrap" => counts.unwrap = value,
                "expect" => counts.expect = value,
                "panic" => counts.panic = value,
                "index" => counts.index = value,
                other => return Err(format!("unknown category {other:?}")),
            }
            if !p.comma_or_close('}')? {
                break;
            }
        }
        out.insert(krate, counts);
        if !p.comma_or_close('}')? {
            break;
        }
    }
    Ok(out)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek_skip_ws(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn expect_char(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(&c) if c == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!("expected {want:?}, found {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        while let Some(&c) = self.chars.get(self.pos) {
            self.pos += 1;
            if c == '"' {
                return Ok(out);
            }
            out.push(c);
        }
        Err("unterminated string".to_owned())
    }

    fn number(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(char::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected a number".to_owned());
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    /// Consumes `,` (returning `true`) or `close` (returning `false`).
    fn comma_or_close(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&c) if c == close => {
                self.pos += 1;
                Ok(false)
            }
            other => Err(format!("expected ',' or {close:?}, found {other:?}")),
        }
    }
}
