//! Phase 1 of the workspace analyzer: symbol extraction.
//!
//! Walks every crate's stripped source (same comment/string-blanked
//! lexing as [`crate::scan`], pure std, no `syn`) and extracts the
//! facts the cross-crate rules in [`crate::graph`] need:
//!
//! * function items with their enclosing `impl` type, parameter
//!   names, visibility and body line range,
//! * per-function call sites (bare calls, `Type::assoc(...)` paths,
//!   `.method(...)` receivers),
//! * per-function panic sites (`unwrap` / `expect` / `panic!`-family
//!   / `[idx]` indexing), the same four categories as the ratchet,
//! * `pub` item declarations (the API surface),
//! * cross-crate `use`/path edges (`h3cdn_netsim::...` in a `browser`
//!   file is an edge `browser -> netsim`),
//! * RNG construction sites (`SimRng::seed_from(...)`) with the raw
//!   seed-argument text for the dataflow check,
//! * a raw-text identifier occurrence index (`name -> regions`), the
//!   evidence base for the dead-`pub` rule.
//!
//! Extraction is lexical and line-oriented: brace depths are tracked
//! across the stripped text, so `fn` bodies and `impl` blocks become
//! line ranges. That is deliberately cruder than a real parser — the
//! graph rules are written to tolerate over-approximation (an extra
//! call edge can only widen reachability, never hide a panic site).

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::FileContext;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CalleeRef {
    /// `free_fn(...)` — a bare path-less call.
    Bare(String),
    /// `Type::assoc(...)` — the last two path segments.
    Qualified(String, String),
    /// `.method(...)` — a receiver call; the receiver type is unknown.
    Method(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// 1-based line of the call.
    pub line: usize,
    /// The callee reference as written.
    pub callee: CalleeRef,
}

/// One panic-capable site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// Ratchet category: `"unwrap"`, `"expect"`, `"panic"` or `"index"`.
    pub category: &'static str,
    /// The needle that matched, for diagnostics (`".unwrap()"`, ...).
    pub what: &'static str,
}

/// One extracted function item.
#[derive(Debug, Clone)]
pub(crate) struct FnSym {
    /// `crates/<dir>` name.
    pub krate: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type (`Engine`, `EventQueue`, ...), if any.
    pub impl_type: Option<String>,
    /// Parameter identifiers (pattern idents, `self` excluded).
    pub params: Vec<String>,
    /// Whether the item carries plain `pub` visibility.
    pub is_pub: bool,
    /// Identifiers appearing in the signature (param types and return
    /// type). A pub fn's callers consume these types structurally —
    /// `let x = visit_page(..)` never names `VisitOutcome` — so the
    /// dead-`pub` rule propagates liveness through them.
    pub sig_idents: Vec<String>,
    /// 0-based body line range (inclusive); `None` for bodyless decls.
    pub body: Option<(usize, usize)>,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// Panic sites inside the body (non-test lines only).
    pub panics: Vec<PanicSite>,
}

impl FnSym {
    /// `Type::name` or bare `name`, for diagnostics and root matching.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A non-`fn` `pub` item declaration (`struct`/`enum`/`trait`/...).
#[derive(Debug, Clone)]
pub(crate) struct PubItem {
    /// `crates/<dir>` name.
    pub krate: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Item keyword (`"struct"`, `"fn"`, ...).
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// Identifiers appearing in the item's declaration body (struct
    /// fields, enum variants, alias target). Consumers reach embedded
    /// types field-wise (`fig.rows[0]`) without naming them, so the
    /// dead-`pub` rule propagates liveness through them.
    pub embedded: Vec<String>,
}

/// A cross-crate reference edge discovered in library source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct UseEdge {
    /// Referencing `crates/<dir>` name.
    pub from: String,
    /// Referenced `crates/<dir>` name.
    pub to: String,
    /// Workspace-relative path of the referencing file.
    pub path: String,
    /// 1-based line of the reference.
    pub line: usize,
}

/// An RNG construction site.
#[derive(Debug, Clone)]
pub(crate) struct RngSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The seed-argument text (stripped source, parens balanced).
    pub arg: String,
    /// Index into [`SymbolTable::fns`] of the enclosing function.
    pub enclosing_fn: Option<usize>,
}

/// Everything phase 1 extracts from the workspace.
#[derive(Debug, Default)]
pub(crate) struct SymbolTable {
    /// All function items in library source, in file order.
    pub fns: Vec<FnSym>,
    /// All `pub` item declarations in library source.
    pub pub_items: Vec<PubItem>,
    /// All cross-crate reference edges in library source.
    pub use_edges: Vec<UseEdge>,
    /// All RNG construction sites in library source.
    pub rng_sites: Vec<RngSite>,
    /// Raw-text identifier occurrences: `name -> set of regions`.
    /// Regions are `<crate>` (library src), `<crate>:ext` (the crate's
    /// own tests/benches/examples) and `"root"` (workspace-root src,
    /// tests and examples). Raw text (not stripped) is indexed, so a
    /// doctest or doc mention counts as a reference — the dead-`pub`
    /// rule errs toward keeping documented API.
    pub refs: BTreeMap<String, BTreeSet<String>>,
}

/// Map from `use`-path lib names to `crates/<dir>` names.
pub(crate) const LIB_TO_DIR: &[(&str, &str)] = &[
    ("h3cdn", "core"),
    ("h3cdn_sim_core", "sim-core"),
    ("h3cdn_netsim", "netsim"),
    ("h3cdn_transport", "transport"),
    ("h3cdn_http", "http"),
    ("h3cdn_browser", "browser"),
    ("h3cdn_cdn", "cdn"),
    ("h3cdn_web", "web"),
    ("h3cdn_har", "har"),
    ("h3cdn_analysis", "analysis"),
    ("h3cdn_experiments", "experiments"),
    ("h3cdn_bench", "bench"),
    ("h3cdn_lint", "lint"),
];

impl SymbolTable {
    /// Indexes raw identifier occurrences of one file under `region`.
    pub fn index_refs(&mut self, region: &str, raw_source: &str) {
        for ident in identifiers(raw_source) {
            self.refs
                .entry(ident)
                .or_default()
                .insert(region.to_owned());
        }
    }

    /// Extracts symbols, edges and sites from one library-source file.
    pub fn extract_file(&mut self, ctx: &FileContext) {
        let items = parse_items(ctx);
        let first_new_fn = self.fns.len();
        for item in items {
            self.fns.push(item);
        }
        self.extract_calls_and_panics(ctx, first_new_fn);
        self.extract_pub_items(ctx);
        self.extract_use_edges(ctx);
        self.extract_rng_sites(ctx, first_new_fn);
    }

    /// Scans each new function's body for call and panic sites.
    fn extract_calls_and_panics(&mut self, ctx: &FileContext, first: usize) {
        for f in &mut self.fns[first..] {
            let Some((start, end)) = f.body else { continue };
            for idx in start..=end.min(ctx.lines().len().saturating_sub(1)) {
                let line = &ctx.lines()[idx];
                collect_calls(line, idx + 1, &f.impl_type, &mut f.calls);
                if !ctx.is_test_line(idx) {
                    collect_panics(line, idx + 1, &mut f.panics);
                }
            }
        }
    }

    /// Records non-`fn` `pub` item declarations (structs, enums,
    /// traits, consts, statics, type aliases) outside test modules.
    fn extract_pub_items(&mut self, ctx: &FileContext) {
        const KINDS: &[&str] = &["struct", "enum", "trait", "const", "static", "type"];
        for (idx, line) in ctx.lines().iter().enumerate() {
            if ctx.is_test_line(idx) {
                continue;
            }
            let trimmed = line.trim_start();
            let Some(rest) = trimmed.strip_prefix("pub ") else {
                continue;
            };
            for kind in KINDS {
                let Some(tail) = rest.trim_start().strip_prefix(kind) else {
                    continue;
                };
                let Some(name) = leading_ident_of(tail) else {
                    continue;
                };
                let embedded = embedded_idents(ctx.lines(), idx);
                self.pub_items.push(PubItem {
                    krate: ctx.krate().to_owned(),
                    path: ctx.rel().to_owned(),
                    line: idx + 1,
                    kind,
                    name,
                    embedded,
                });
                break;
            }
        }
    }

    /// Records `h3cdn_*::` path references as cross-crate edges.
    fn extract_use_edges(&mut self, ctx: &FileContext) {
        for (idx, line) in ctx.lines().iter().enumerate() {
            let mut start = 0;
            while let Some(rel) = line[start..].find("h3cdn") {
                let pos = start + rel;
                // Word boundary on the left.
                let bounded = pos == 0
                    || !line[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                // Take the full identifier (`h3cdn`, `h3cdn_netsim`, ...).
                let end = line[pos..]
                    .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .map_or(line.len(), |e| pos + e);
                start = end.max(pos + 1);
                if !bounded || !line[end..].starts_with("::") {
                    continue;
                }
                let lib = &line[pos..end];
                let Some((_, dir)) = LIB_TO_DIR.iter().find(|(l, _)| *l == lib) else {
                    continue;
                };
                if *dir == ctx.krate() {
                    continue;
                }
                let edge = UseEdge {
                    from: ctx.krate().to_owned(),
                    to: (*dir).to_owned(),
                    path: ctx.rel().to_owned(),
                    line: idx + 1,
                };
                if !self.use_edges.contains(&edge) {
                    self.use_edges.push(edge);
                }
            }
        }
    }

    /// Records `SimRng::seed_from(...)` construction sites with their
    /// argument text (joined across up to 3 lines) for the seed-flow
    /// check. Test lines are skipped — literal seeds in tests are the
    /// point of tests.
    fn extract_rng_sites(&mut self, ctx: &FileContext, first: usize) {
        const NEEDLE: &str = "SimRng::seed_from(";
        for (idx, line) in ctx.lines().iter().enumerate() {
            if ctx.is_test_line(idx) {
                continue;
            }
            let Some(pos) = line.find(NEEDLE) else {
                continue;
            };
            let arg = balanced_arg(ctx.lines(), idx, pos + NEEDLE.len() - 1, 3);
            let enclosing_fn = self.fns[first..]
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.body
                        .is_some_and(|(s, e)| s <= idx && idx <= e && f.path == ctx.rel())
                })
                // Innermost = latest-starting body that covers the line.
                .max_by_key(|(_, f)| f.body.map_or(0, |(s, _)| s))
                .map(|(k, _)| first + k);
            self.rng_sites.push(RngSite {
                path: ctx.rel().to_owned(),
                line: idx + 1,
                arg,
                enclosing_fn,
            });
        }
    }
}

/// The text between a `(` at (`line0`, `open`) and its matching `)`,
/// joined across at most `max_lines` lines.
fn balanced_arg(lines: &[String], line0: usize, open: usize, max_lines: usize) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    for (k, line) in lines.iter().enumerate().skip(line0).take(max_lines) {
        let text: &str = if k == line0 { &line[open..] } else { line };
        for c in text.chars() {
            match c {
                '(' => {
                    depth += 1;
                    if depth > 1 {
                        out.push(c);
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                    out.push(c);
                }
                _ => {
                    if depth >= 1 {
                        out.push(c);
                    }
                }
            }
        }
        out.push(' ');
    }
    out
}

/// All identifiers in `text` (raw, including comments/strings).
fn identifiers(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            if !cur.chars().next().is_some_and(char::is_numeric) {
                out.insert(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && !cur.chars().next().is_some_and(char::is_numeric) {
        out.insert(cur);
    }
    out
}

/// Identifiers embedded in an item declaration starting at `start`:
/// everything from the declaration line to the end of its brace block,
/// or to the terminating `;` when no block opens first. Used to
/// propagate liveness through struct fields, enum variants and type
/// alias targets. The scan is capped so a pathological unterminated
/// item cannot swallow the rest of the file.
fn embedded_idents(lines: &[String], start: usize) -> Vec<String> {
    const MAX_ITEM_LINES: usize = 400;
    let mut out = BTreeSet::new();
    let mut depth = 0i32;
    let mut seen_brace = false;
    for line in lines.iter().skip(start).take(MAX_ITEM_LINES) {
        out.extend(identifiers(line));
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if seen_brace && depth == 0 {
                        return out.into_iter().collect();
                    }
                }
                ';' if !seen_brace => return out.into_iter().collect(),
                _ => {}
            }
        }
    }
    out.into_iter().collect()
}

/// The leading identifier of `s` after trimming.
fn leading_ident_of(s: &str) -> Option<String> {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(s.len());
    if end == 0 || s.chars().next().is_some_and(char::is_numeric) {
        None
    } else {
        Some(s[..end].to_owned())
    }
}

// ---------------------------------------------------------------------------
// Item parsing: fn / impl headers and body ranges
// ---------------------------------------------------------------------------

/// Rust keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "move", "in", "as", "fn",
    "pub", "use", "mod", "where", "unsafe", "const", "static", "struct", "enum", "trait", "type",
    "ref", "mut", "break", "continue", "crate", "super", "dyn", "box", "async", "await", "yield",
    "impl", "Some", "Ok", "Err", "None",
];

/// Parses `fn` items (with impl context, params, body ranges) out of a
/// stripped file.
fn parse_items(ctx: &FileContext) -> Vec<FnSym> {
    let lines = ctx.lines();
    let mut fns: Vec<FnSym> = Vec::new();
    // Stacks of (depth before the opening `{`, payload).
    let mut open_impls: Vec<(i32, String)> = Vec::new();
    let mut open_fns: Vec<(i32, usize)> = Vec::new(); // (entry depth, fns index)
    let mut depth = 0i32;
    let mut pending_impl: Option<String> = None;
    // A pending fn whose signature is still being accumulated.
    struct PendingFn {
        line: usize, // 0-based
        name: String,
        is_pub: bool,
        sig: String,
        ret: String,
        paren_depth: i32,
        seen_params: bool,
    }
    let mut pending_fn: Option<PendingFn> = None;

    for (idx, line) in lines.iter().enumerate() {
        // Header detection first (a header never shares its line with a
        // *previous* item's tokens that matter here).
        if pending_fn.is_none() {
            if let Some((name, is_pub)) = fn_header(line) {
                pending_fn = Some(PendingFn {
                    line: idx,
                    name,
                    is_pub,
                    sig: String::new(),
                    ret: String::new(),
                    paren_depth: 0,
                    seen_params: false,
                });
            } else if pending_impl.is_none() {
                if let Some(ty) = impl_header(line) {
                    pending_impl = Some(ty);
                }
            }
        }

        // Accumulate the pending fn's signature (params only).
        // `closed_col` is the column just after the params' closing `)`
        // when that close happens on *this* line; `Some(0)` when the
        // params already closed on an earlier line.
        let mut closed_col: Option<usize> = None;
        if let Some(p) = &mut pending_fn {
            if p.seen_params && p.paren_depth == 0 {
                closed_col = Some(0);
            } else {
                let from = if p.line == idx {
                    line.find('(').unwrap_or(line.len())
                } else {
                    0
                };
                for (i, c) in line[from..].char_indices() {
                    match c {
                        '(' => {
                            p.paren_depth += 1;
                            p.seen_params = true;
                            if p.paren_depth > 1 {
                                p.sig.push(c);
                            }
                        }
                        ')' => {
                            p.paren_depth -= 1;
                            if p.paren_depth >= 1 {
                                p.sig.push(c);
                            } else {
                                // Params complete; the rest of the line
                                // is return type / terminator, not sig.
                                closed_col = Some(from + i + 1);
                                break;
                            }
                        }
                        _ if p.paren_depth >= 1 => p.sig.push(c),
                        _ => {}
                    }
                }
                p.sig.push(' ');
            }
        }

        // Resolve a complete signature into an open fn or a bodyless
        // declaration. The `{` or `;` that terminates the signature is
        // found on this line (after the params) or a later one.
        let mut opened_fn_on_this_line = false;
        if let Some(p) = &mut pending_fn {
            if p.seen_params && p.paren_depth == 0 && closed_col.is_some() {
                // Look for the terminator in the text after the params.
                let tail_start = closed_col.unwrap_or(0);
                let tail = &line[tail_start.min(line.len())..];
                let brace = tail.find('{');
                let semi = tail.find(';');
                let terminated = match (brace, semi) {
                    (Some(b), Some(s)) => Some(b < s),
                    (Some(_), None) => Some(true),
                    (None, Some(_)) => Some(false),
                    (None, None) => None,
                };
                // Accumulate the return-type text (the tail up to the
                // terminator, possibly spanning lines).
                let ret_end = [brace, semi].into_iter().flatten().min();
                p.ret.push_str(&tail[..ret_end.unwrap_or(tail.len())]);
                p.ret.push(' ');
                if let Some(has_body) = terminated {
                    let p = pending_fn.take().expect("pending fn present");
                    let impl_type = open_impls.last().map(|(_, t)| t.clone());
                    let mut sig_idents: Vec<String> = identifiers(&p.sig).into_iter().collect();
                    for id in identifiers(&p.ret) {
                        if !sig_idents.contains(&id) {
                            sig_idents.push(id);
                        }
                    }
                    let sym = FnSym {
                        krate: ctx.krate().to_owned(),
                        path: ctx.rel().to_owned(),
                        line: p.line + 1,
                        name: p.name,
                        impl_type,
                        params: param_idents(&p.sig),
                        is_pub: p.is_pub,
                        sig_idents,
                        body: None,
                        calls: Vec::new(),
                        panics: Vec::new(),
                    };
                    if has_body {
                        // Entry depth = depth before this line's braces are
                        // folded in, adjusted below by the brace walk.
                        open_fns.push((depth, fns.len()));
                        opened_fn_on_this_line = true;
                        let mut sym = sym;
                        sym.body = Some((idx, idx)); // end fixed at close
                        fns.push(sym);
                    } else {
                        fns.push(sym);
                    }
                }
            }
        }

        // Brace walk: update depth, close impls/fns whose entry depth is
        // reached again.
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(ty) = pending_impl.take() {
                        open_impls.push((depth - 1, ty));
                    }
                }
                '}' => {
                    depth -= 1;
                    while open_fns.last().is_some_and(|&(d, _)| depth <= d) {
                        let (_, fi) = open_fns.pop().expect("open fn present");
                        if let Some((s, _)) = fns[fi].body {
                            fns[fi].body = Some((s, idx));
                        }
                    }
                    while open_impls.last().is_some_and(|&(d, _)| depth <= d) {
                        open_impls.pop();
                    }
                }
                _ => {}
            }
        }
        let _ = opened_fn_on_this_line;
    }
    // Close any fn left open by unbalanced input.
    for (_, fi) in open_fns {
        if let Some((s, _)) = fns[fi].body {
            fns[fi].body = Some((s, lines.len().saturating_sub(1)));
        }
    }
    fns
}

/// `Some((name, is_pub))` when `line` opens a `fn` item.
fn fn_header(line: &str) -> Option<(String, bool)> {
    let mut search = 0;
    loop {
        let rel = line[search..].find("fn ")?;
        let pos = search + rel;
        search = pos + 3;
        // Word boundary on the left.
        if pos > 0
            && line[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        let name = leading_ident_of(&line[pos + 3..])?;
        let head = line[..pos].trim_start();
        // Plain `pub` only; `pub(crate)` / `pub(super)` is not API surface.
        let is_pub = head.starts_with("pub ") || head == "pub";
        return Some((name, is_pub));
    }
}

/// `Some(type name)` when `line` opens an `impl` block
/// (`impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`).
fn impl_header(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("impl")?;
    let rest = if rest.starts_with('<') {
        // Skip the generic parameter list.
        let mut depth = 0i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &rest[cut..]
    } else if rest.starts_with(' ') || rest.starts_with('\t') {
        rest
    } else {
        return None; // `implements`, ...
    };
    // `impl Trait for Type` — the implementing type follows `for`.
    let target = match rest.find(" for ") {
        Some(pos) => &rest[pos + 5..],
        None => rest,
    };
    // Last path segment of the type, generics stripped.
    let target = target.trim_start().trim_start_matches('&');
    let head = target
        .find(['<', ' ', '{'])
        .map_or(target, |p| &target[..p]);
    let seg = head.rsplit("::").next().unwrap_or(head);
    let seg: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if seg.is_empty() {
        None
    } else {
        Some(seg)
    }
}

/// Parameter identifiers from a signature's param text (between the
/// outer parens). Pattern params (`(a, b): (u32, u32)`) contribute all
/// their idents; `self` forms are skipped.
fn param_idents(sig: &str) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in split_top_level(sig) {
        let before_colon = chunk.split(':').next().unwrap_or("");
        for ident in identifiers(before_colon) {
            if matches!(ident.as_str(), "self" | "mut" | "ref") {
                continue;
            }
            if !out.contains(&ident) {
                out.push(ident);
            }
        }
    }
    out
}

/// Splits on commas at zero `()`/`[]`/`<>` nesting.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut prev = ' ';
    for c in s.chars() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '<' => depth += 1,
            '>' if prev != '-' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                prev = c;
                continue;
            }
            _ => {}
        }
        cur.push(c);
        prev = c;
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------------
// Call and panic site collection
// ---------------------------------------------------------------------------

/// Collects call sites on one stripped line.
fn collect_calls(line: &str, lineno: usize, impl_type: &Option<String>, out: &mut Vec<CallSite>) {
    for (i, c) in line.char_indices() {
        if c != '(' || i == 0 {
            continue;
        }
        // Strip a turbofish segment so `name::<T>(...)` still yields
        // `name` — the engine's monomorphized dispatch helpers are
        // called exactly this way.
        let before = strip_turbofish(&line[..i]);
        let last = before.chars().next_back().unwrap_or(' ');
        if last == '!' {
            continue; // macro invocation; panics are counted separately
        }
        if !(last.is_alphanumeric() || last == '_') {
            continue;
        }
        let Some(name) = ident_before(before, before.len()) else {
            continue;
        };
        if CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        let prefix_end = before.len() - name.len();
        let prefix = &before[..prefix_end];
        // `fn name(` is the definition, not a call.
        if prefix.trim_end().ends_with("fn") {
            continue;
        }
        let callee = if prefix.ends_with('.') {
            CalleeRef::Method(name)
        } else if prefix.ends_with("::") {
            let Some(seg) = ident_before(prefix, prefix.len() - 2) else {
                continue;
            };
            let seg = if seg == "Self" {
                match impl_type {
                    Some(t) => t.clone(),
                    None => seg,
                }
            } else {
                seg
            };
            CalleeRef::Qualified(seg, name)
        } else {
            CalleeRef::Bare(name)
        };
        out.push(CallSite {
            line: lineno,
            callee,
        });
    }
}

/// Drops a trailing `::<...>` turbofish from a call prefix, so the
/// identifier before it is seen as the callee name.
fn strip_turbofish(before: &str) -> &str {
    if !before.ends_with('>') {
        return before;
    }
    let mut depth = 0i32;
    for (i, c) in before.char_indices().rev() {
        match c {
            '>' => depth += 1,
            '<' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(head) = before[..i].strip_suffix("::") {
                        return head;
                    }
                    return before;
                }
            }
            _ => {}
        }
    }
    before
}

/// The identifier ending at byte offset `end` in `s`, if any.
fn ident_before(s: &str, end: usize) -> Option<String> {
    let head = &s[..end];
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| {
            p + head[p..].chars().next().map_or(1, char::len_utf8)
        });
    let ident = &head[start..];
    if ident.is_empty() || ident.chars().next().is_some_and(char::is_numeric) {
        None
    } else {
        Some(ident.to_owned())
    }
}

/// Collects panic-capable sites on one stripped line, mirroring the
/// ratchet's four categories.
fn collect_panics(line: &str, lineno: usize, out: &mut Vec<PanicSite>) {
    let mut push = |category, what: &'static str, n: usize| {
        for _ in 0..n {
            out.push(PanicSite {
                line: lineno,
                category,
                what,
            });
        }
    };
    push("unwrap", ".unwrap()", line.matches(".unwrap()").count());
    push("expect", ".expect(", line.matches(".expect(").count());
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        let n = line.matches(mac).count();
        if n > 0 {
            let what: &'static str = match mac {
                "panic!" => "panic!",
                "unreachable!" => "unreachable!",
                "todo!" => "todo!",
                _ => "unimplemented!",
            };
            push("panic", what, n);
        }
    }
    push("index", "[..] indexing", count_indexing(line));
}

/// Counts `expr[...]`-style indexing (same heuristic as the ratchet).
fn count_indexing(line: &str) -> usize {
    let bytes = line.as_bytes();
    let mut n = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'[' && i > 0 {
            let p = bytes[i - 1];
            if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileContext;

    fn table_for(src: &str) -> SymbolTable {
        let ctx = FileContext::new("crates/netsim/src/lib.rs", "netsim", src);
        let mut t = SymbolTable::default();
        t.extract_file(&ctx);
        t
    }

    #[test]
    fn extracts_fns_with_impl_context_and_params() {
        let t = table_for(
            "pub struct Engine;\n\
             impl Engine {\n\
                 pub fn run(&mut self, deadline: u64) -> u64 {\n\
                     self.step(deadline);\n\
                     helper(deadline)\n\
                 }\n\
                 fn step(&mut self, d: u64) {}\n\
             }\n\
             fn helper(x: u64) -> u64 { x }\n",
        );
        let quals: Vec<String> = t.fns.iter().map(FnSym::qual).collect();
        assert_eq!(quals, vec!["Engine::run", "Engine::step", "helper"]);
        assert_eq!(t.fns[0].params, vec!["deadline"]);
        assert!(t.fns[0].is_pub);
        assert!(!t.fns[1].is_pub);
        let callees: Vec<&CalleeRef> = t.fns[0].calls.iter().map(|c| &c.callee).collect();
        assert!(callees.contains(&&CalleeRef::Method("step".to_owned())));
        assert!(callees.contains(&&CalleeRef::Bare("helper".to_owned())));
    }

    #[test]
    fn multi_line_signatures_and_self_qualification() {
        let t = table_for(
            "impl Wheel {\n\
                 pub fn schedule(\n\
                     &mut self,\n\
                     at: u64,\n\
                     ev: u32,\n\
                 ) {\n\
                     Self::push_slot(at, ev);\n\
                 }\n\
                 fn push_slot(at: u64, ev: u32) {}\n\
             }\n",
        );
        assert_eq!(t.fns[0].params, vec!["at", "ev"]);
        assert_eq!(
            t.fns[0].calls[0].callee,
            CalleeRef::Qualified("Wheel".to_owned(), "push_slot".to_owned())
        );
    }

    #[test]
    fn turbofish_calls_are_collected() {
        let t = table_for(
            "impl Engine {\n\
                 fn run_inner(&mut self) {\n\
                     self.run_inner_impl::<true>(7);\n\
                     dispatch::<Vec<u8>, false>(1);\n\
                     Wheel::rotate::<4>(2);\n\
                 }\n\
             }\n",
        );
        let callees: Vec<&CalleeRef> = t.fns[0].calls.iter().map(|c| &c.callee).collect();
        assert!(callees.contains(&&CalleeRef::Method("run_inner_impl".to_owned())));
        assert!(callees.contains(&&CalleeRef::Bare("dispatch".to_owned())));
        assert!(callees.contains(&&CalleeRef::Qualified(
            "Wheel".to_owned(),
            "rotate".to_owned()
        )));
    }

    #[test]
    fn panic_sites_attributed_to_enclosing_fn() {
        let t = table_for(
            "fn risky(v: &[u8]) -> u8 {\n\
                 let x = v.first().unwrap();\n\
                 if *x > 3 { panic!(\"boom\") }\n\
                 v[0]\n\
             }\n\
             fn clean() {}\n",
        );
        let cats: Vec<&str> = t.fns[0].panics.iter().map(|p| p.category).collect();
        assert_eq!(cats, vec!["unwrap", "panic", "index"]);
        assert!(t.fns[1].panics.is_empty());
    }

    #[test]
    fn use_edges_and_rng_sites() {
        let t = table_for(
            "use h3cdn_sim_core::SimRng;\n\
             fn build(seed: u64) -> SimRng {\n\
                 SimRng::seed_from(seed ^ 0xABCD)\n\
             }\n\
             fn fixed() -> SimRng {\n\
                 SimRng::seed_from(42)\n\
             }\n",
        );
        assert_eq!(t.use_edges.len(), 1);
        assert_eq!(t.use_edges[0].to, "sim-core");
        assert_eq!(t.rng_sites.len(), 2);
        assert!(t.rng_sites[0].arg.contains("seed"));
        assert_eq!(t.rng_sites[0].enclosing_fn, Some(0));
        assert_eq!(t.rng_sites[1].arg.trim(), "42");
        assert_eq!(t.rng_sites[1].enclosing_fn, Some(1));
    }

    #[test]
    fn pub_items_and_bodyless_decls() {
        let t = table_for(
            "pub struct Packet;\n\
             pub(crate) struct Hidden;\n\
             pub trait Node {\n\
                 fn handle(&mut self);\n\
             }\n\
             pub const LIMIT: u32 = 4;\n",
        );
        let names: Vec<&str> = t.pub_items.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["Packet", "Node", "LIMIT"]);
        // The bodyless trait method was recorded without a body.
        let handle = t.fns.iter().find(|f| f.name == "handle").expect("decl");
        assert!(handle.body.is_none());
    }

    #[test]
    fn trait_impl_type_comes_after_for() {
        let t = table_for(
            "impl Node for Switch {\n\
                 fn handle(&mut self) { self.relay(); }\n\
                 fn relay(&mut self) {}\n\
             }\n",
        );
        assert_eq!(t.fns[0].qual(), "Switch::handle");
    }
}
