//! Phase 2 of the workspace analyzer: the cross-crate symbol graph
//! and the rules that run over it.
//!
//! Built from the [`crate::symbols::SymbolTable`] that phase 1
//! extracts, this module answers questions no per-file scanner can:
//!
//! * **`layer-violation`** — the workspace has an explicit layer map
//!   ([`LAYERS`]): simulation substrate (sim-core / netsim / transport
//!   / http / web / cdn / har) below the orchestration band (browser /
//!   core) below the consumer band (experiments / analysis / bench).
//!   Any `use`/path edge pointing *upward* is a finding: a netsim
//!   module that quietly imports from the runner would entangle the
//!   pure simulation with scheduling policy.
//! * **`hot-path-panic`** — transitive reachability from the
//!   simulator's dispatch roots ([`HOT_PATH_ROOTS`]: `Engine::run*`,
//!   `EventQueue::pop*`, the QUIC datapath) to any panic-capable site
//!   (`unwrap` / `expect` / `panic!`-family / `[idx]` indexing) inside
//!   the hot-path crates ([`HOT_PATH_CRATES`]). The reachable surface
//!   is held to a per-category budget recorded under the `"hot-path"`
//!   key of `crates/lint/baseline.json` (ratchet-down only, like the
//!   per-crate counts); every over-budget finding carries the full
//!   call chain from a root to the site.
//! * **`unseeded-rng`** — `SimRng::seed_from(...)` constructions whose
//!   seed argument does not flow from a function parameter or a
//!   scenario-struct field. A hard-coded seed deep in library code
//!   silently decouples a subsystem from the campaign seed.
//! * **`dead-pub`** — `pub` items with zero inbound references from
//!   outside their defining crate's `src/` tree. As crates multiply,
//!   yesterday's API becomes today's unreviewed attack surface;
//!   demote to `pub(crate)` or delete.
//!
//! The call graph is lexical (name-resolved, not type-resolved), so it
//! over-approximates: a `.method(...)` call resolves to every hot-path
//! method of that name. Over-approximation can only widen the
//! reachable set — it can inflate the budget, never hide a site.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::symbols::{CalleeRef, FnSym, SymbolTable};
use crate::{
    Counts, Finding, RULE_BASELINE_STALE, RULE_DEAD_PUB, RULE_HOT_PATH_PANIC, RULE_LAYER_VIOLATION,
    RULE_UNSEEDED_RNG,
};

/// The workspace layer map: `(crate dir, layer)`. Edges must point at
/// the same or a *lower* layer.
pub(crate) const LAYERS: &[(&str, u8)] = &[
    ("sim-core", 0),
    ("netsim", 0),
    ("transport", 0),
    ("http", 0),
    ("web", 0),
    ("cdn", 0),
    ("har", 0),
    ("browser", 1),
    ("core", 1),
    ("analysis", 2),
    ("experiments", 2),
    ("bench", 2),
    ("lint", 2),
];

/// Crates whose code runs on the simulator's per-event dispatch path.
/// `hot-path-panic` reachability is computed within this set.
pub(crate) const HOT_PATH_CRATES: &[&str] = &["sim-core", "netsim", "transport"];

/// Dispatch roots for the reachability analysis: `(impl type, fn)`.
/// Everything the event loop executes is reachable from these.
pub(crate) const HOT_PATH_ROOTS: &[(&str, &str)] = &[
    ("Engine", "run"),
    ("Engine", "run_until"),
    ("Engine", "run_checked"),
    ("Engine", "run_until_checked"),
    ("EventQueue", "pop"),
    ("EventQueue", "pop_at_or_before"),
    ("QuicConnection", "on_packet"),
    ("QuicConnection", "on_timeout"),
    ("QuicConnection", "poll_transmit"),
];

/// The layer of `krate`, if mapped.
fn layer_of(krate: &str) -> Option<u8> {
    LAYERS.iter().find(|(k, _)| *k == krate).map(|&(_, l)| l)
}

// ---------------------------------------------------------------------------
// Rule: layer-violation
// ---------------------------------------------------------------------------

/// Flags `use`/path edges that point from a lower layer to a higher
/// one.
pub(crate) fn check_layering(table: &SymbolTable, out: &mut Vec<Finding>) {
    for edge in &table.use_edges {
        let (Some(from), Some(to)) = (layer_of(&edge.from), layer_of(&edge.to)) else {
            continue;
        };
        if from < to {
            out.push(Finding {
                path: edge.path.clone(),
                line: edge.line,
                rule: RULE_LAYER_VIOLATION,
                message: format!(
                    "layer violation: crate `{}` (layer {from}) references crate `{}` \
                     (layer {to})",
                    edge.from, edge.to
                ),
                hint: "dependencies must point downward in the layer map (simulation \
                       substrate < browser/core < experiments/analysis); move the shared \
                       code down a layer or invert the dependency"
                    .to_owned(),
                trace: None,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-panic
// ---------------------------------------------------------------------------

/// One reachable panic-capable site, with the call chain that reaches
/// its enclosing function.
#[derive(Debug, Clone)]
pub(crate) struct ReachableSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Ratchet category (`"unwrap"` / `"expect"` / `"panic"` / `"index"`).
    pub category: &'static str,
    /// The matched needle (`".unwrap()"`, `"panic!"`, ...).
    pub what: &'static str,
    /// `root -> ... -> enclosing fn` call chain, rendered.
    pub trace: String,
}

/// The hot-path reachability result: the call graph summary plus every
/// reachable panic site.
#[derive(Debug, Default)]
pub(crate) struct HotPathReachability {
    /// Reachable panic sites, sorted by `(path, line)`.
    pub sites: Vec<ReachableSite>,
    /// Number of root functions found in the table.
    pub roots: usize,
    /// Number of functions reachable from the roots.
    pub reachable_fns: usize,
}

impl HotPathReachability {
    /// Per-category counts of the reachable panic surface.
    pub fn counts(&self) -> Counts {
        let mut c = Counts::default();
        for s in &self.sites {
            match s.category {
                "unwrap" => c.unwrap += 1,
                "expect" => c.expect += 1,
                "panic" => c.panic += 1,
                _ => c.index += 1,
            }
        }
        c
    }
}

/// Name-resolution index over the hot-path crates.
struct CallIndex {
    by_qual: BTreeMap<(String, String), Vec<usize>>,
    methods: BTreeMap<String, Vec<usize>>,
    free: BTreeMap<String, Vec<usize>>,
}

impl CallIndex {
    fn build(table: &SymbolTable, in_scope: &dyn Fn(&FnSym) -> bool) -> Self {
        let mut by_qual: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in table.fns.iter().enumerate() {
            if !in_scope(f) {
                continue;
            }
            match &f.impl_type {
                Some(t) => {
                    by_qual
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    methods.entry(f.name.clone()).or_default().push(i);
                }
                None => free.entry(f.name.clone()).or_default().push(i),
            }
        }
        CallIndex {
            by_qual,
            methods,
            free,
        }
    }

    /// Resolves a callee reference to candidate function indices.
    fn resolve(&self, callee: &CalleeRef) -> Vec<usize> {
        match callee {
            CalleeRef::Bare(n) => self.free.get(n).cloned().unwrap_or_default(),
            CalleeRef::Method(n) => self.methods.get(n).cloned().unwrap_or_default(),
            CalleeRef::Qualified(t, n) => {
                if let Some(v) = self.by_qual.get(&(t.clone(), n.clone())) {
                    return v.clone();
                }
                // `module::free_fn(...)` — lowercase first segment is a
                // module path, not a type.
                if t.chars().next().is_some_and(char::is_lowercase) {
                    return self.free.get(n).cloned().unwrap_or_default();
                }
                Vec::new()
            }
        }
    }
}

/// Computes the panic surface transitively reachable from
/// [`HOT_PATH_ROOTS`] within [`HOT_PATH_CRATES`]. `site_suppressed`
/// filters individual panic sites (pragma suppression).
pub(crate) fn hot_path_reachability(
    table: &SymbolTable,
    site_suppressed: &dyn Fn(&str, usize) -> bool,
) -> HotPathReachability {
    let in_scope = |f: &FnSym| HOT_PATH_CRATES.contains(&f.krate.as_str()) && f.body.is_some();
    let index = CallIndex::build(table, &in_scope);

    // BFS from the roots, recording the discovering edge for traces.
    let mut parent: BTreeMap<usize, (usize, usize)> = BTreeMap::new(); // fn -> (caller, call line)
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut roots = 0usize;
    for (i, f) in table.fns.iter().enumerate() {
        if !in_scope(f) {
            continue;
        }
        let qual_matches = HOT_PATH_ROOTS
            .iter()
            .any(|(t, n)| f.name == *n && f.impl_type.as_deref() == Some(*t));
        if qual_matches {
            roots += 1;
            seen.insert(i);
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for call in &table.fns[i].calls {
            for j in index.resolve(&call.callee) {
                if seen.insert(j) {
                    parent.insert(j, (i, call.line));
                    queue.push_back(j);
                }
            }
        }
    }

    // Collect reachable panic sites. A line can be covered by nested
    // function bodies; keep it once, attributed to the innermost
    // reachable function (max over covering fns, not sum).
    let mut per_site: BTreeMap<(String, usize, &'static str), (usize, usize, &'static str)> =
        BTreeMap::new();
    for &i in &seen {
        let f = &table.fns[i];
        let mut line_counts: BTreeMap<(usize, &'static str, &'static str), usize> = BTreeMap::new();
        for p in &f.panics {
            *line_counts.entry((p.line, p.what, p.category)).or_default() += 1;
        }
        for ((line, what, category), n) in line_counts {
            if site_suppressed(&f.path, line) {
                continue;
            }
            let entry = per_site
                .entry((f.path.clone(), line, what))
                .or_insert((0, i, category));
            if n > entry.0 {
                entry.0 = n;
            }
            // Prefer the innermost (latest-starting) covering fn for the trace.
            let cur_start = table.fns[entry.1].body.map_or(0, |(s, _)| s);
            let new_start = f.body.map_or(0, |(s, _)| s);
            if new_start > cur_start {
                entry.1 = i;
            }
        }
    }

    let mut sites = Vec::new();
    for ((path, line, what), (n, fi, category)) in &per_site {
        let category = *category;
        let trace = render_trace(table, &parent, *fi, what, path, *line);
        for _ in 0..*n {
            sites.push(ReachableSite {
                path: path.clone(),
                line: *line,
                category,
                what,
                trace: trace.clone(),
            });
        }
    }
    sites.sort_by(|a, b| (&a.path, a.line, a.what).cmp(&(&b.path, b.line, b.what)));
    HotPathReachability {
        sites,
        roots,
        reachable_fns: seen.len(),
    }
}

/// Renders `root -> ... -> fn -> site` as a one-line call chain.
fn render_trace(
    table: &SymbolTable,
    parent: &BTreeMap<usize, (usize, usize)>,
    fi: usize,
    what: &str,
    path: &str,
    line: usize,
) -> String {
    let mut chain = vec![fi];
    let mut cur = fi;
    while let Some(&(p, _)) = parent.get(&cur) {
        chain.push(p);
        cur = p;
        if chain.len() > 64 {
            break; // cycle guard; BFS parents are acyclic but stay safe
        }
    }
    chain.reverse();
    let mut out = String::new();
    for (k, &i) in chain.iter().enumerate() {
        if k > 0 {
            out.push_str(" -> ");
        }
        let f = &table.fns[i];
        out.push_str(&format!("{} ({}:{})", f.qual(), f.path, f.line));
    }
    out.push_str(&format!(" -> `{what}` at {path}:{line}"));
    out
}

/// Compares the reachable panic surface against the `"hot-path"`
/// budget from the baseline file, appending findings: one traced
/// finding per over-budget site, or a stale-baseline finding when the
/// surface shrank below the recorded budget.
/// Accessor for one ratchet category's count.
type CountGetter = fn(&Counts) -> usize;

pub(crate) fn check_hot_path(budget: &Counts, reach: &HotPathReachability, out: &mut Vec<Finding>) {
    let fresh = reach.counts();
    let categories: &[(&str, CountGetter)] = &[
        ("unwrap", |c| c.unwrap),
        ("expect", |c| c.expect),
        ("panic", |c| c.panic),
        ("index", |c| c.index),
    ];
    for (cat, get) in categories {
        let (allowed, counted) = (get(budget), get(&fresh));
        if counted > allowed {
            for site in reach
                .sites
                .iter()
                .filter(|s| s.category == *cat)
                .skip(allowed)
            {
                out.push(Finding {
                    path: site.path.clone(),
                    line: site.line,
                    rule: RULE_HOT_PATH_PANIC,
                    message: format!(
                        "{counted} `{cat}` sites reachable from the {} simulator dispatch \
                         roots, hot-path budget allows {allowed}",
                        reach.roots
                    ),
                    hint: "convert the site to a typed error or let-else (the hot-path \
                           budget only ratchets down); the trace shows how the dispatch \
                           loop reaches it"
                        .to_owned(),
                    trace: Some(site.trace.clone()),
                });
            }
        } else if counted < allowed {
            out.push(Finding {
                path: "crates/lint/baseline.json".to_owned(),
                line: 1,
                rule: RULE_BASELINE_STALE,
                message: format!(
                    "hot-path budget allows {allowed} reachable `{cat}` sites but only \
                     {counted} remain"
                ),
                hint: "lock in the improvement: run `h3cdn-lint --update-baseline` and \
                       commit the regenerated baseline"
                    .to_owned(),
                trace: None,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unseeded-rng
// ---------------------------------------------------------------------------

/// Flags RNG constructions whose seed does not flow from a function
/// parameter or a struct field (scenario config / `self`).
pub(crate) fn check_rng_seeding(table: &SymbolTable, out: &mut Vec<Finding>) {
    for site in &table.rng_sites {
        let flow = seed_flow(table, site);
        if let Some(_evidence) = flow {
            continue;
        }
        out.push(Finding {
            path: site.path.clone(),
            line: site.line,
            rule: RULE_UNSEEDED_RNG,
            message: format!(
                "RNG seed `{}` does not flow from a function parameter or scenario field",
                site.arg.trim()
            ),
            hint: "thread the campaign seed explicitly (parameter or scenario struct) so \
                   every stream derives from the run's seed; for deliberate constants add \
                   `// h3cdn-lint: allow(unseeded-rng)` with a justification"
                .to_owned(),
            trace: None,
        });
    }
}

/// Evidence that the seed argument flows from a parameter or field,
/// or `None` when it is a free-standing constant.
fn seed_flow(table: &SymbolTable, site: &crate::symbols::RngSite) -> Option<String> {
    // Field access (`self.seed`, `spec.seed`) is scenario plumbing.
    if arg_has_field_access(&site.arg) {
        return Some("field access".to_owned());
    }
    let f = site.enclosing_fn.map(|i| &table.fns[i])?;
    let idents = arg_idents(&site.arg);
    if idents.is_empty() {
        return None; // pure literal
    }
    for id in &idents {
        if f.params.contains(id) {
            return Some(format!("parameter `{id}`"));
        }
    }
    // One level of let-chasing is done at extraction time by keeping the
    // raw argument text; here we accept any identifier that is not a
    // SCREAMING_CASE constant — locals in seeded code are derived from
    // parameters, and the per-file rules already ban ambient entropy
    // sources, so a non-constant identifier cannot introduce one.
    idents
        .iter()
        .find(|id| id.chars().any(char::is_lowercase))
        .map(|id| format!("local `{id}`"))
}

/// Identifiers in a seed-argument string.
fn arg_idents(arg: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in arg.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            flush_ident(&mut cur, &mut out);
        }
    }
    flush_ident(&mut cur, &mut out);
    out
}

fn flush_ident(cur: &mut String, out: &mut Vec<String>) {
    if !cur.is_empty() {
        if !cur.chars().next().is_some_and(char::is_numeric) && cur != "u64" && cur != "u32" {
            out.push(std::mem::take(cur));
        } else {
            cur.clear();
        }
    }
}

/// Whether the argument contains an `ident.ident` field access.
fn arg_has_field_access(arg: &str) -> bool {
    let chars: Vec<char> = arg.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '.' {
            continue;
        }
        let before = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        let after = chars
            .get(i + 1)
            .is_some_and(|&c| c.is_alphabetic() || c == '_');
        // Exclude float literals (`0.5`) and method calls are fine too —
        // `.fork(...)` on a seeded parent still flows from the parent.
        if before && after && !chars[i - 1].is_ascii_digit() {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: dead-pub
// ---------------------------------------------------------------------------

/// Flags `pub` items with zero inbound references from outside the
/// defining crate's `src/` tree (other crates, the defining crate's
/// own tests/benches/examples, or workspace-root code).
pub(crate) fn check_dead_pub(table: &SymbolTable, out: &mut Vec<Finding>) {
    let mut push = |krate: &str, path: &str, line: usize, kind: &str, name: &str| {
        out.push(Finding {
            path: path.to_owned(),
            line,
            rule: RULE_DEAD_PUB,
            message: format!("pub {kind} `{name}` has no references outside crate `{krate}`"),
            hint: "demote to pub(crate) (or delete) to keep the API surface honest; for \
                   deliberately exported API add `// h3cdn-lint: allow(dead-pub)`"
                .to_owned(),
            trace: None,
        });
    };
    let alive = structurally_alive(table);
    for f in &table.fns {
        // Methods are skipped: a method's real exposure is governed by
        // its type's visibility, and flagging every internally-used
        // `pub fn` on an exported type would drown the signal. The rule
        // polices top-level items — the names a reader finds in docs.
        if !f.is_pub || f.impl_type.is_some() || f.name == "main" || is_bin_path(&f.path) {
            continue;
        }
        if !alive.contains(f.name.as_str()) {
            push(&f.krate, &f.path, f.line, "fn", &f.name);
        }
    }
    for item in &table.pub_items {
        if is_bin_path(&item.path) {
            continue;
        }
        if !alive.contains(item.name.as_str()) {
            push(&item.krate, &item.path, item.line, item.kind, &item.name);
        }
    }
}

/// The set of pub symbol names considered alive for dead-`pub`.
///
/// Name-counting alone is not enough: a consumer can hold an API value
/// without ever spelling its type's name (`let out = visit_page(..)`,
/// `report.rows[0]`, `Box<dyn CongestionController>` behind a factory),
/// and binary targets are separate crates that only see `pub` items.
/// So liveness is seeded from externally-referenced pub symbols (any
/// raw-text reference region outside the defining crate's `src/` tree)
/// and propagated structurally to a fixpoint: an alive `fn` keeps the
/// types in its signature (params + return) alive; an alive item keeps
/// the names embedded in its declaration body (fields, variants, alias
/// target) alive; an alive type keeps its pub methods' signatures
/// alive. Matching is by bare name workspace-wide — a deliberate
/// over-approximation that errs toward keeping API.
fn structurally_alive(table: &SymbolTable) -> BTreeSet<&str> {
    let declared: BTreeSet<&str> = table
        .fns
        .iter()
        .filter(|f| f.is_pub)
        .map(|f| f.name.as_str())
        .chain(table.pub_items.iter().map(|i| i.name.as_str()))
        .collect();
    let externally_alive = |krate: &str, name: &str| {
        table
            .refs
            .get(name)
            .is_some_and(|regions| regions.iter().any(|r| r != krate))
    };
    let mut alive: BTreeSet<&str> = BTreeSet::new();
    for f in table.fns.iter().filter(|f| f.is_pub) {
        if externally_alive(&f.krate, &f.name) {
            alive.insert(f.name.as_str());
        }
    }
    for item in &table.pub_items {
        if externally_alive(&item.krate, &item.name) {
            alive.insert(item.name.as_str());
        }
    }
    loop {
        let mut grew = false;
        for f in table.fns.iter().filter(|f| f.is_pub) {
            let carried = alive.contains(f.name.as_str())
                || f.impl_type.as_deref().is_some_and(|t| alive.contains(t));
            if !carried {
                continue;
            }
            for id in &f.sig_idents {
                if declared.contains(id.as_str()) && alive.insert(id.as_str()) {
                    grew = true;
                }
            }
        }
        for item in &table.pub_items {
            if !alive.contains(item.name.as_str()) {
                continue;
            }
            for id in &item.embedded {
                if declared.contains(id.as_str()) && alive.insert(id.as_str()) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    alive
}

/// Whether a path is binary-target source (its `pub` is never API).
fn is_bin_path(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("/src/main.rs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileContext;

    fn table(files: &[(&str, &str, &str)]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (rel, krate, src) in files {
            let ctx = FileContext::new(rel, krate, src);
            t.extract_file(&ctx);
            t.index_refs(krate, src);
        }
        t
    }

    #[test]
    fn upward_edge_is_flagged_downward_is_not() {
        let t = table(&[
            (
                "crates/netsim/src/lib.rs",
                "netsim",
                "use h3cdn::runner::Pool;\nfn f() {}\n",
            ),
            (
                "crates/core/src/lib.rs",
                "core",
                "use h3cdn_netsim::Network;\nfn g() {}\n",
            ),
        ]);
        let mut out = Vec::new();
        check_layering(&t, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RULE_LAYER_VIOLATION);
        assert_eq!(out[0].path, "crates/netsim/src/lib.rs");
    }

    #[test]
    fn reachability_finds_transitive_panic_with_trace() {
        let t = table(&[(
            "crates/netsim/src/engine.rs",
            "netsim",
            "impl Engine {\n\
                 pub fn run(&mut self) {\n\
                     self.dispatch();\n\
                 }\n\
                 fn dispatch(&mut self) {\n\
                     deep_helper(3);\n\
                 }\n\
             }\n\
             fn deep_helper(x: u32) -> u32 {\n\
                 let v = vec![1, 2, 3];\n\
                 v[x as usize]\n\
             }\n\
             fn unreached() { panic!(\"never\") }\n",
        )]);
        let reach = hot_path_reachability(&t, &|_, _| false);
        assert_eq!(reach.roots, 1);
        assert_eq!(reach.sites.len(), 1, "{:#?}", reach.sites);
        let site = &reach.sites[0];
        assert_eq!(site.category, "index");
        assert!(site.trace.contains("Engine::run"), "{}", site.trace);
        assert!(site.trace.contains("deep_helper"), "{}", site.trace);

        let mut out = Vec::new();
        check_hot_path(&Counts::default(), &reach, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RULE_HOT_PATH_PANIC);
        assert!(out[0].trace.as_deref().is_some_and(|t| t.contains("->")));

        // A budget covering the site is clean.
        let mut out = Vec::new();
        let budget = Counts {
            index: 1,
            ..Counts::default()
        };
        check_hot_path(&budget, &reach, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn seeded_rng_ok_literal_flagged() {
        let t = table(&[(
            "crates/netsim/src/lib.rs",
            "netsim",
            "use h3cdn_sim_core::SimRng;\n\
             pub fn seeded(seed: u64) -> SimRng {\n\
                 SimRng::seed_from(seed ^ 0x1234)\n\
             }\n\
             pub fn from_spec(spec: &Spec) -> SimRng {\n\
                 SimRng::seed_from(spec.seed)\n\
             }\n\
             pub fn fixed() -> SimRng {\n\
                 SimRng::seed_from(0xDEAD_BEEF)\n\
             }\n",
        )]);
        let mut out = Vec::new();
        check_rng_seeding(&t, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RULE_UNSEEDED_RNG);
        assert!(out[0].message.contains("0xDEAD_BEEF"), "{}", out[0].message);
    }

    #[test]
    fn dead_pub_flags_unreferenced_only() {
        let t = {
            let mut t = SymbolTable::default();
            let netsim = "pub struct Network;\npub struct Orphan;\npub fn used_fn() {}\n\
                          pub fn orphan_fn() {}\n";
            let ctx = FileContext::new("crates/netsim/src/lib.rs", "netsim", netsim);
            t.extract_file(&ctx);
            t.index_refs("netsim", netsim);
            let core = "use h3cdn_netsim::Network;\nfn f() { h3cdn_netsim::used_fn(); }\n";
            let ctx = FileContext::new("crates/core/src/lib.rs", "core", core);
            t.extract_file(&ctx);
            t.index_refs("core", core);
            t
        };
        let mut out = Vec::new();
        check_dead_pub(&t, &mut out);
        let names: Vec<&str> = out
            .iter()
            .map(|f| f.message.split('`').nth(1).expect("name in message"))
            .collect();
        assert_eq!(names, vec!["orphan_fn", "Orphan"], "{out:#?}");
    }

    #[test]
    fn dead_pub_propagates_structural_liveness() {
        // A consumer crate calls `visit()` without ever naming the
        // types it exposes: `Outcome` (return type), `Stats` (embedded
        // field) and `Collector` (behind `Registry::build`'s boxed
        // return). All must stay alive; `Orphan` must not.
        let t = {
            let mut t = SymbolTable::default();
            let browser = "pub struct Outcome { pub stats: Stats }\n\
                           pub struct Stats { pub n: u64 }\n\
                           pub struct Orphan;\n\
                           pub trait Collector {}\n\
                           pub struct Registry;\n\
                           impl Registry {\n\
                               pub fn build(&self) -> Box<dyn Collector> { todo!() }\n\
                           }\n\
                           pub fn visit() -> Outcome { todo!() }\n";
            let ctx = FileContext::new("crates/browser/src/lib.rs", "browser", browser);
            t.extract_file(&ctx);
            t.index_refs("browser", browser);
            let core = "fn f() {\n\
                            let out = h3cdn_browser::visit();\n\
                            let _ = out.stats.n;\n\
                            let _r = h3cdn_browser::Registry;\n\
                        }\n";
            let ctx = FileContext::new("crates/core/src/lib.rs", "core", core);
            t.extract_file(&ctx);
            t.index_refs("core", core);
            t
        };
        let mut out = Vec::new();
        check_dead_pub(&t, &mut out);
        let names: Vec<&str> = out
            .iter()
            .map(|f| f.message.split('`').nth(1).expect("name in message"))
            .collect();
        assert_eq!(names, vec!["Orphan"], "{out:#?}");
    }
}
