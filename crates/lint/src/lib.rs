//! `h3cdn-lint` — a dependency-free, pure-`std` source-level analyzer
//! that enforces the workspace's simulation-correctness policy.
//!
//! The paper reproduction is only trustworthy because every layer is
//! bit-deterministic. This crate turns that discipline into
//! machine-checked rules over the source tree (a line/token scanner —
//! deliberately *not* `syn`, so the workspace stays hermetic):
//!
//! * **determinism** — [`RULE_UNORDERED_ITER`], [`RULE_WALL_CLOCK`],
//!   [`RULE_AMBIENT_RNG`], [`RULE_ENV_READ`]: no unordered
//!   `HashMap`/`HashSet` iteration, no wall-clock reads, no ambient
//!   RNG, no environment reads in sim-affecting crates.
//! * **sans-IO purity** — [`RULE_SANS_IO`]: the transport / netsim /
//!   http / sim-core state machines must not touch `std::net`,
//!   `std::fs`, `std::io` (except `std::io::Error*`) or `std::thread`.
//! * **panic-surface ratchet** — [`RULE_PANIC_RATCHET`]: per-crate
//!   counts of `.unwrap()`, `.expect(`, `panic!`-family macros and
//!   `[idx]`-style indexing in library code are checked against
//!   `crates/lint/baseline.json`, which may only decrease.
//! * **float hazards** — [`RULE_FLOAT_CMP`], [`RULE_NAN_SORT`]:
//!   `==`/`!=` against float literals and NaN-unaware
//!   `partial_cmp`-based sorts in `crates/analysis`.
//! * **crash-safe artifacts** — [`RULE_RAW_RESULT_WRITE`]: result
//!   artifacts in the campaign/experiment crates must go through
//!   `h3cdn::persist::atomic_write` (write-temp-fsync-rename), never
//!   raw `std::fs::write` / `File::create` — a killed process must not
//!   leave torn results or journals behind.
//! * **hot-path allocation** — [`RULE_HOT_PATH_ALLOC`]: the files on
//!   the per-event dispatch path ([`HOT_PATH_FILES`]) must not
//!   allocate in steady state (`Vec::new`, `vec![]`, `.clone()`,
//!   `format!`, ...); buffers are pooled or swapped through scratch
//!   space instead. Cold construction paths opt out with a pragma.
//!
//! Individual lines can opt out with a pragma comment, either on the
//! offending line or on the line directly above it:
//!
//! ```text
//! // h3cdn-lint: allow(unordered-iter)
//! ```
//!
//! The scanner first blanks comments, string literals and char
//! literals (preserving line structure), so pattern words inside
//! strings or docs never trigger findings; pragmas are read from the
//! *raw* line because they live in comments.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod graph;
pub mod scan;
pub mod symbols;

pub use baseline::{Baseline, Counts};

/// Rule id: unordered `HashMap`/`HashSet` iteration in a sim crate.
pub(crate) const RULE_UNORDERED_ITER: &str = "unordered-iter";
/// Rule id: wall-clock read (`Instant::now` / `SystemTime`).
pub(crate) const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule id: ambient randomness (`thread_rng`, `rand::random`, ...).
pub(crate) const RULE_AMBIENT_RNG: &str = "ambient-rng";
/// Rule id: environment read (`std::env::var` / `env::args`).
pub(crate) const RULE_ENV_READ: &str = "env-read";
/// Rule id: real I/O or threading in a sans-IO crate.
pub(crate) const RULE_SANS_IO: &str = "sans-io";
/// Rule id: panic-surface count exceeds the checked-in baseline.
pub(crate) const RULE_PANIC_RATCHET: &str = "panic-ratchet";
/// Rule id: checked-in baseline is higher than the fresh count.
pub(crate) const RULE_BASELINE_STALE: &str = "baseline-stale";
/// Rule id: `==`/`!=` against a float literal.
pub(crate) const RULE_FLOAT_CMP: &str = "float-cmp";
/// Rule id: NaN-unaware sort (`sort_by` + `partial_cmp`).
pub(crate) const RULE_NAN_SORT: &str = "nan-sort";
/// Rule id: raw (non-atomic) write of a result artifact.
pub(crate) const RULE_RAW_RESULT_WRITE: &str = "raw-result-write";
/// Rule id: heap allocation on the simulator per-event hot path.
pub(crate) const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule id: a `use`/path edge pointing upward in the layer map.
pub(crate) const RULE_LAYER_VIOLATION: &str = "layer-violation";
/// Rule id: panic site reachable from the simulator dispatch roots
/// beyond the recorded hot-path budget.
pub(crate) const RULE_HOT_PATH_PANIC: &str = "hot-path-panic";
/// Rule id: RNG construction whose seed is not threaded explicitly.
pub(crate) const RULE_UNSEEDED_RNG: &str = "unseeded-rng";
/// Rule id: `pub` item with zero inbound cross-crate references.
pub(crate) const RULE_DEAD_PUB: &str = "dead-pub";

/// The baseline key under which the hot-path reachability budget is
/// recorded (alongside the per-crate ratchet entries; no crate
/// directory can collide with it).
pub(crate) const HOT_PATH_BUDGET_KEY: &str = "hot-path";

/// Crates (by `crates/<dir>` name) whose code affects simulation
/// results and therefore must be free of nondeterminism sources.
pub(crate) const DETERMINISM_CRATES: &[&str] = &[
    "sim-core",
    "netsim",
    "transport",
    "http",
    "browser",
    "cdn",
    "web",
    "har",
    "core",
];

/// Crates that must stay sans-IO: pure state machines with no real
/// sockets, files, threads or blocking I/O.
pub(crate) const SANS_IO_CRATES: &[&str] = &["sim-core", "netsim", "transport", "http", "core"];

/// Library crates whose panic surface is ratcheted against
/// `crates/lint/baseline.json`.
pub(crate) const RATCHET_CRATES: &[&str] = &[
    "sim-core",
    "netsim",
    "transport",
    "http",
    "browser",
    "cdn",
    "web",
    "har",
    "analysis",
    "core",
];

/// Crates subject to the float-hazard rules.
pub(crate) const FLOAT_CRATES: &[&str] = &["analysis"];

/// Crates that produce result artifacts and therefore must write them
/// through `h3cdn::persist::atomic_write` (the crash-safe path) rather
/// than raw `std::fs::write` / `File::create`.
pub(crate) const RESULT_WRITE_CRATES: &[&str] = &["core", "experiments"];

/// Files on the simulator's per-event hot path: every dispatched event
/// runs through these, so one stray allocation multiplies into
/// millions of allocator calls per campaign. Steady-state code here
/// must reuse pooled/scratch buffers; only cold construction paths may
/// allocate (with a pragma).
pub(crate) const HOT_PATH_FILES: &[&str] = &[
    "crates/netsim/src/engine.rs",
    "crates/sim-core/src/event.rs",
];

/// Explicit allowlist: `(path suffix, rule id, reason)`. Findings of
/// `rule` in files whose workspace-relative path ends with the suffix
/// are suppressed. Keep this list short and justified — prefer a
/// line-level pragma when only one site is affected.
pub(crate) const ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "crates/core/src/runner.rs",
        RULE_SANS_IO,
        "the deterministic campaign runner owns the std::thread::scope worker pool",
    ),
    (
        "crates/core/src/runner/durable.rs",
        RULE_SANS_IO,
        "the crash-safe runner owns catch_unwind, retry sleeps and journal I/O plumbing",
    ),
    (
        "crates/core/src/runner/streaming.rs",
        RULE_SANS_IO,
        "the constant-memory streaming runner owns its std::thread::scope pool and condvars",
    ),
    (
        "crates/core/src/persist.rs",
        RULE_SANS_IO,
        "persist IS the sanctioned I/O module: write-temp-fsync-rename lives here",
    ),
    (
        "crates/core/src/persist/shard.rs",
        RULE_SANS_IO,
        "the sharded journal is persist-layer I/O: append-only shards with fsync rotation",
    ),
    (
        "crates/core/src/persist/shard.rs",
        RULE_RAW_RESULT_WRITE,
        "shards are append-only journals recovered by prefix scan; atomic_write's \
         write-temp-rename would defeat incremental appends",
    ),
    (
        "crates/core/src/persist.rs",
        RULE_RAW_RESULT_WRITE,
        "the atomic_write implementation necessarily performs the raw write itself",
    ),
    (
        "crates/browser/src/resilience.rs",
        RULE_DEAD_PUB,
        "BROKEN_QUIC_TTL mirrors Chrome's documented 5-minute broken-QUIC marking TTL \
         and stays exported as model surface even between consumers",
    ),
];

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Suggested fix.
    pub hint: String,
    /// For graph rules: the call chain or edge path that produced the
    /// finding (e.g. `Engine::run -> ... -> site`).
    pub trace: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    help: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )?;
        if let Some(trace) = &self.trace {
            write!(f, "\n    trace: {trace}")?;
        }
        Ok(())
    }
}

/// Which rule families to run (fixture tests toggle these).
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    /// Run the determinism + sans-IO + float rules.
    pub check_rules: bool,
    /// Check panic-surface counts against the baseline file.
    pub check_ratchet: bool,
    /// Build the workspace symbol graph and run the cross-crate rules
    /// (layer-violation, hot-path-panic, unseeded-rng, dead-pub).
    pub check_graph: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            check_rules: true,
            check_ratchet: true,
            check_graph: true,
        }
    }
}

/// Result of linting a workspace tree.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by `(path, line, rule, message)`.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by pragmas or the allowlist.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Fresh panic-surface counts per ratchet crate, plus the
    /// hot-path reachability budget under [`HOT_PATH_BUDGET_KEY`]
    /// when the graph rules ran.
    pub counts: Baseline,
    /// Symbol-graph summary (zeros when the graph rules were off).
    pub graph_stats: GraphStats,
}

/// Size summary of the extracted symbol graph.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    /// Function items extracted from library source.
    pub fns: usize,
    /// Cross-crate `use`/path edges.
    pub use_edges: usize,
    /// `pub` items (fns + type-level items) on the API surface.
    pub pub_items: usize,
    /// Functions reachable from the hot-path dispatch roots.
    pub hot_path_reachable_fns: usize,
    /// Panic sites reachable from the hot-path dispatch roots.
    pub hot_path_reachable_sites: usize,
}

/// Pragma lines per file, for suppressing graph-rule findings whose
/// checks run after the per-file pass (path -> 1-based line -> the
/// comma-separated rule list inside `allow(...)`).
#[derive(Debug, Default)]
struct PragmaIndex {
    by_file: BTreeMap<String, BTreeMap<usize, String>>,
}

impl PragmaIndex {
    fn record(&mut self, ctx: &scan::FileContext) {
        let lines = ctx.pragma_rule_lines();
        if !lines.is_empty() {
            self.by_file
                .insert(ctx.rel().to_owned(), lines.into_iter().collect());
        }
    }

    /// Same semantics as [`scan::FileContext::is_suppressed`]: a pragma
    /// on the finding's line or the line directly above.
    fn allows(&self, path: &str, line: usize, rule: &str) -> bool {
        let Some(file) = self.by_file.get(path) else {
            return false;
        };
        [line, line.saturating_sub(1)]
            .iter()
            .filter(|&&l| l > 0)
            .any(|l| {
                file.get(l)
                    .is_some_and(|rules| rules.split(',').any(|r| r.trim() == rule))
            })
    }
}

/// Lints the workspace rooted at `root` with default options.
///
/// # Errors
/// Returns an error string when the tree cannot be read or the
/// baseline file is malformed.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_with(root, LintOptions::default())
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
/// Returns an error string when the tree cannot be read or the
/// baseline file is malformed.
pub fn lint_workspace_with(root: &Path, opts: LintOptions) -> Result<Report, String> {
    let files = walk_rs_files(root)?;
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut sites = baseline::SiteMap::default();
    let mut table = symbols::SymbolTable::default();
    let mut pragmas = PragmaIndex::default();

    for file in &files {
        let rel = rel_path(root, file);
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("{}: cannot read: {e}", file.display()))?;
        if opts.check_graph {
            // Raw-text references from *every* file (root tests,
            // examples, crate tests) feed the dead-pub evidence base.
            table.index_refs(&region_of(&rel), &source);
        }
        let Some(krate) = crate_of(&rel) else {
            continue;
        };
        let ctx = scan::FileContext::new(&rel, &krate, &source);

        if opts.check_graph && ctx.in_library_src() {
            table.extract_file(&ctx);
            pragmas.record(&ctx);
        }

        if opts.check_rules {
            let mut raw = Vec::new();
            rules_for_file(&ctx, &mut raw);
            for f in raw {
                if ctx.is_suppressed(f.line, f.rule) || allowlisted(&rel, f.rule) {
                    suppressed += 1;
                } else {
                    findings.push(f);
                }
            }
        }

        if RATCHET_CRATES.contains(&krate.as_str()) && ctx.in_library_src() {
            baseline::count_file(&ctx, &mut sites);
        }
    }

    let mut counts = sites.to_counts();
    let baseline_path = root.join("crates/lint/baseline.json");
    if opts.check_ratchet {
        match baseline::load(&baseline_path) {
            Ok(mut base) => {
                // The hot-path budget shares the baseline file but is
                // checked by the graph pass (with traces), not here.
                base.remove(HOT_PATH_BUDGET_KEY);
                baseline::check(&base, &counts, &sites, &mut findings);
            }
            Err(baseline::LoadError::Missing) => findings.push(Finding {
                path: "crates/lint/baseline.json".to_owned(),
                line: 1,
                rule: RULE_PANIC_RATCHET,
                message: "panic-surface baseline file is missing".to_owned(),
                hint: "run `h3cdn-lint --update-baseline` and commit the result".to_owned(),
                trace: None,
            }),
            Err(baseline::LoadError::Malformed(e)) => {
                return Err(format!("crates/lint/baseline.json: {e}"));
            }
        }
    }

    let mut graph_stats = GraphStats::default();
    if opts.check_graph {
        let mut raw = Vec::new();
        graph::check_layering(&table, &mut raw);
        graph::check_rng_seeding(&table, &mut raw);
        graph::check_dead_pub(&table, &mut raw);

        // Hot-path reachability: pragma-suppressed sites leave the
        // budget entirely (the recorded budget covers live sites only).
        let site_suppressed = |path: &str, line: usize| {
            pragmas.allows(path, line, RULE_HOT_PATH_PANIC)
                || allowlisted(path, RULE_HOT_PATH_PANIC)
        };
        let reach = graph::hot_path_reachability(&table, &site_suppressed);
        let budget = match baseline::load(&baseline_path) {
            Ok(base) => base.get(HOT_PATH_BUDGET_KEY).copied().unwrap_or_default(),
            Err(_) => Counts::default(),
        };
        graph::check_hot_path(&budget, &reach, &mut raw);

        graph_stats = GraphStats {
            fns: table.fns.len(),
            use_edges: table.use_edges.len(),
            pub_items: table.pub_items.len() + table.fns.iter().filter(|f| f.is_pub).count(),
            hot_path_reachable_fns: reach.reachable_fns,
            hot_path_reachable_sites: reach.sites.len(),
        };
        counts.insert(HOT_PATH_BUDGET_KEY.to_owned(), reach.counts());

        for f in raw {
            if pragmas.allows(&f.path, f.line, f.rule) || allowlisted(&f.path, f.rule) {
                suppressed += 1;
            } else {
                findings.push(f);
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    // Overlapping needles (e.g. `std::env::` and `env::var(`) may
    // produce duplicate diagnostics for one site — keep one. The
    // message is part of the key: two *distinct* findings of one rule
    // on one line (two calls in one expression) must both survive.
    findings.dedup_by(|a, b| {
        a.path == b.path && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    Ok(Report {
        findings,
        suppressed,
        files_scanned: files.len(),
        counts,
        graph_stats,
    })
}

/// The reference region a workspace-relative path belongs to:
/// `<crate>` for library src, `<crate>:ext` for the crate's own
/// tests/benches/examples, `"root"` for workspace-root code.
fn region_of(rel: &str) -> String {
    match crate_of(rel) {
        Some(krate) => {
            // Bin-target sources consume the crate's library API the
            // same way an external crate would, so they land in the
            // `:ext` region rather than the library region — a `pub`
            // item used only by the crate's own binary is not dead.
            let src = format!("crates/{krate}/src/");
            let is_bin = rel == format!("{src}main.rs") || rel.starts_with(&format!("{src}bin/"));
            if rel.starts_with(&src) && !is_bin {
                krate
            } else {
                format!("{krate}:ext")
            }
        }
        None => "root".to_owned(),
    }
}

/// Renders a report's findings as a JSON array (machine-readable CI
/// artifact; pure std, no serde).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"hint\": \"{}\", \"trace\": {}}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.hint),
            match &f.trace {
                Some(t) => format!("\"{}\"", json_escape(t)),
                None => "null".to_owned(),
            }
        ));
        out.push_str(if i + 1 < report.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str(&format!(
        "  ],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"graph\": \
         {{\"fns\": {}, \"use_edges\": {}, \"pub_items\": {}, \
         \"hot_path_reachable_fns\": {}, \"hot_path_reachable_sites\": {}}}\n}}\n",
        report.files_scanned,
        report.suppressed,
        report.graph_stats.fns,
        report.graph_stats.use_edges,
        report.graph_stats.pub_items,
        report.graph_stats.hot_path_reachable_fns,
        report.graph_stats.hot_path_reachable_sites,
    ));
    out
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Applies every per-file rule to `ctx`, appending raw (not yet
/// pragma-filtered) findings to `out`.
fn rules_for_file(ctx: &scan::FileContext, out: &mut Vec<Finding>) {
    let krate = ctx.krate();
    if DETERMINISM_CRATES.contains(&krate) {
        scan::rule_unordered_iter(ctx, out);
        scan::rule_wall_clock(ctx, out);
        scan::rule_ambient_rng(ctx, out);
        scan::rule_env_read(ctx, out);
    }
    if SANS_IO_CRATES.contains(&krate) {
        scan::rule_sans_io(ctx, out);
    }
    if FLOAT_CRATES.contains(&krate) {
        scan::rule_float_cmp(ctx, out);
        scan::rule_nan_sort(ctx, out);
    }
    if RESULT_WRITE_CRATES.contains(&krate) {
        scan::rule_raw_result_write(ctx, out);
    }
    if HOT_PATH_FILES.contains(&ctx.rel()) {
        scan::rule_hot_path_alloc(ctx, out);
    }
}

/// Whether `(rel, rule)` matches an [`ALLOWLIST`] entry.
fn allowlisted(rel: &str, rule: &str) -> bool {
    ALLOWLIST
        .iter()
        .any(|(suffix, r, _)| *r == rule && rel.ends_with(suffix))
}

/// Recursively collects `.rs` files under `root` in sorted order,
/// skipping build output, vendored shims, VCS metadata and the lint
/// crate's own fixture tree (which intentionally contains violations).
fn walk_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("{}: cannot read: {e}", dir.display()))?;
        let mut children: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: cannot read: {e}", dir.display()))?;
            children.push(entry.path());
        }
        children.sort();
        for child in children {
            let name = child.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if child.is_dir() {
                if matches!(name, "target" | "vendor" | ".git" | "fixtures") {
                    continue;
                }
                stack.push(child);
            } else if name.ends_with(".rs") {
                out.push(child);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The `crates/<dir>` name a workspace-relative path belongs to, or
/// `None` for files outside `crates/` (root tests, examples, ...).
fn crate_of(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name.to_owned())
}
