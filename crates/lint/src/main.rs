//! CLI for `h3cdn-lint`.
//!
//! ```text
//! h3cdn-lint [--workspace-root PATH] [--update-baseline] [--quiet]
//!            [--json] [--json-out PATH]
//! ```
//!
//! `--json` prints the machine-readable report to stdout instead of
//! the human-readable findings; `--json-out PATH` writes the same
//! report to a file *in addition to* the human output (the CI
//! artifact mode). Exit codes: `0` clean, `1` findings, `2` usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update_baseline = false;
    let mut quiet = false;
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace-root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--workspace-root needs a path"),
            },
            "--update-baseline" => update_baseline = true,
            "--quiet" | "-q" => quiet = true,
            "--json" => json = true,
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json-out needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "h3cdn-lint: workspace determinism, sans-IO & symbol-graph static \
                     analysis\n\n\
                     usage: h3cdn-lint [--workspace-root PATH] [--update-baseline] \
                     [--quiet] [--json] [--json-out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if update_baseline {
        return run_update_baseline(&root, quiet);
    }

    let report = match h3cdn_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("h3cdn-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, h3cdn_lint::render_json(&report)) {
            eprintln!("h3cdn-lint: error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", h3cdn_lint::render_json(&report));
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
    }
    if report.findings.is_empty() {
        if !quiet && !json {
            let g = report.graph_stats;
            println!(
                "h3cdn-lint: OK ({} files scanned, {} finding(s) suppressed by \
                 pragma/allowlist; graph: {} fns, {} cross-crate edges, {} pub items, \
                 {} fns / {} panic sites reachable from hot-path roots)",
                report.files_scanned,
                report.suppressed,
                g.fns,
                g.use_edges,
                g.pub_items,
                g.hot_path_reachable_fns,
                g.hot_path_reachable_sites,
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "h3cdn-lint: {} unsuppressed finding(s)",
            report.findings.len()
        );
        ExitCode::FAILURE
    }
}

/// Recounts the panic surface (including the hot-path reachability
/// budget) and rewrites `crates/lint/baseline.json`.
fn run_update_baseline(root: &std::path::Path, quiet: bool) -> ExitCode {
    let opts = h3cdn_lint::LintOptions {
        check_rules: false,
        check_ratchet: false,
        check_graph: true,
    };
    let report = match h3cdn_lint::lint_workspace_with(root, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("h3cdn-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    let path = root.join("crates/lint/baseline.json");
    let old_total: usize = match h3cdn_lint::baseline::load(&path) {
        Ok(old) => old.values().map(h3cdn_lint::Counts::total).sum(),
        Err(_) => 0,
    };
    let new_total: usize = report.counts.values().map(h3cdn_lint::Counts::total).sum();
    if let Err(e) = h3cdn_lint::baseline::store(&path, &report.counts) {
        eprintln!("h3cdn-lint: error: {e}");
        return ExitCode::from(2);
    }
    if !quiet {
        println!("h3cdn-lint: baseline updated ({old_total} -> {new_total} total panic sites)");
        if new_total > old_total && old_total > 0 {
            println!(
                "h3cdn-lint: warning: the panic surface GREW by {} — the ratchet is meant \
                 to go down; justify this in review",
                new_total - old_total
            );
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "h3cdn-lint: {msg}\nusage: h3cdn-lint [--workspace-root PATH] [--update-baseline] \
         [--quiet] [--json] [--json-out PATH]"
    );
    ExitCode::from(2)
}
