//! Line/token scanning: comment & string stripping, pragma parsing,
//! and the individual rule implementations.

use crate::{
    Finding, RULE_AMBIENT_RNG, RULE_ENV_READ, RULE_FLOAT_CMP, RULE_HOT_PATH_ALLOC, RULE_NAN_SORT,
    RULE_RAW_RESULT_WRITE, RULE_SANS_IO, RULE_UNORDERED_ITER, RULE_WALL_CLOCK,
};

/// Marker introducing a suppression pragma inside a comment.
pub(crate) const PRAGMA: &str = "h3cdn-lint: allow(";

/// Per-file scanning context shared by all rules.
#[derive(Debug)]
pub(crate) struct FileContext {
    rel: String,
    krate: String,
    /// Raw source lines (pragmas live in comments, so they are parsed
    /// from these).
    raw: Vec<String>,
    /// Source lines with comments, string literals and char literals
    /// blanked out; same line structure as `raw`.
    stripped: Vec<String>,
    /// Per-line `true` when the line is inside a `#[cfg(test)]` item.
    in_test_mod: Vec<bool>,
}

impl FileContext {
    /// Builds the context for one file.
    pub fn new(rel: &str, krate: &str, source: &str) -> Self {
        let raw: Vec<String> = source.lines().map(str::to_owned).collect();
        let stripped = strip_source(source);
        debug_assert_eq!(raw.len(), stripped.len());
        let in_test_mod = mark_test_items(&stripped);
        FileContext {
            rel: rel.to_owned(),
            krate: krate.to_owned(),
            raw,
            stripped,
            in_test_mod,
        }
    }

    /// The `crates/<dir>` name this file belongs to.
    pub fn krate(&self) -> &str {
        &self.krate
    }

    /// Workspace-relative path.
    pub fn rel(&self) -> &str {
        &self.rel
    }

    /// Stripped lines (comments/strings blanked).
    pub fn lines(&self) -> &[String] {
        &self.stripped
    }

    /// Whether 0-based `idx` is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, idx: usize) -> bool {
        self.in_test_mod.get(idx).copied().unwrap_or(false)
    }

    /// Whether this file is library source (`crates/<c>/src/...`), as
    /// opposed to integration tests or benches.
    pub fn in_library_src(&self) -> bool {
        let Some(rest) = self.rel.strip_prefix("crates/") else {
            return false;
        };
        rest.split_once('/')
            .is_some_and(|(_, tail)| tail.starts_with("src/"))
    }

    /// Whether a finding of `rule` on 1-based `line` is suppressed by
    /// a pragma on that line or on the line directly above.
    pub fn is_suppressed(&self, line: usize, rule: &str) -> bool {
        let idx = line.saturating_sub(1);
        pragma_allows(self.raw.get(idx), rule)
            || (idx > 0 && pragma_allows(self.raw.get(idx - 1), rule))
    }

    /// The `(1-based line, comma-separated rule list)` of every pragma
    /// comment in the file, for suppression checks that outlive this
    /// context (the post-pass graph rules).
    pub fn pragma_rule_lines(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (idx, line) in self.raw.iter().enumerate() {
            let Some(pos) = line.find(PRAGMA) else {
                continue;
            };
            let rest = &line[pos + PRAGMA.len()..];
            if let Some(end) = rest.find(')') {
                out.push((idx + 1, rest[..end].to_owned()));
            }
        }
        out
    }

    /// The text starting at 0-based `idx` spanning `stmts` statements
    /// (lines up to and including the `stmts`-th one containing a
    /// `;`), capped at `max` lines. Used for "immediately
    /// sorted"-style lookahead: `stmts = 2` covers the common
    /// `let v: Vec<_> = map.values().collect();\n v.sort();` idiom.
    fn statement_from(&self, idx: usize, stmts: usize, max: usize) -> String {
        let mut joined = String::new();
        let mut seen = 0usize;
        for (k, line) in self.stripped.iter().enumerate().skip(idx).take(max) {
            // Never look past the end of the enclosing block or into the
            // next item (tail expressions have no terminating `;`).
            let trimmed = line.trim_start();
            if k > idx && (trimmed.starts_with('}') || trimmed.starts_with("fn ")) {
                break;
            }
            joined.push_str(line);
            joined.push(' ');
            if line.contains(';') {
                seen += 1;
                if seen >= stmts {
                    break;
                }
            }
        }
        joined
    }
}

/// Whether `raw_line` carries a pragma allowing `rule`.
fn pragma_allows(raw_line: Option<&String>, rule: &str) -> bool {
    let Some(line) = raw_line else { return false };
    let Some(pos) = line.find(PRAGMA) else {
        return false;
    };
    let rest = &line[pos + PRAGMA.len()..];
    let Some(end) = rest.find(')') else {
        return false;
    };
    rest[..end].split(',').any(|r| r.trim() == rule)
}

// ---------------------------------------------------------------------------
// Source stripping
// ---------------------------------------------------------------------------

/// Blanks comments, string literals (incl. raw strings) and char
/// literals, preserving the line structure so `file:line` diagnostics
/// stay accurate.
#[allow(clippy::too_many_lines)]
pub(crate) fn strip_source(source: &str) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }

    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        out.push(' ');
                    }
                    i += consumed;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) character.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        out.push_str("   ");
                        i += 3;
                    } else {
                        // Lifetime: keep the tick, it cannot hide code.
                        out.push('\'');
                        i += 1;
                    }
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Preserve line structure across `\`-continuations.
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    state = State::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out.lines().map(str::to_owned).collect()
}

/// Whether `r"`, `r#"`, `br"`, ... starts at `i` (and `i` is not part
/// of an identifier such as `for` or `var`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// `(hash count, consumed chars)` for a raw-string opener at `i`.
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // '"'
    (hashes, j - i)
}

/// Whether the `"` at `i` is followed by `hashes` `#` characters.
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks lines inside `#[cfg(test)]` items (test modules or test-only
/// functions) by brace matching from the item's first `{`.
fn mark_test_items(stripped: &[String]) -> Vec<bool> {
    let mut marked = vec![false; stripped.len()];
    let mut i = 0;
    while i < stripped.len() {
        if !stripped[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Skip to the first line with a `{` and brace-match from there.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        while j < stripped.len() {
            marked[j] = true;
            for c in stripped[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    marked
}

// ---------------------------------------------------------------------------
// Small token helpers
// ---------------------------------------------------------------------------

/// Whether `c` can be part of an identifier.
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of whole-word occurrences of `word` in `line`.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(rel) = line[start..].find(word) {
        let pos = start + rel;
        let before_ok = pos == 0 || !is_ident_char(line[..pos].chars().next_back().unwrap_or(' '));
        let after = line[pos + word.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            out.push(pos);
        }
        start = pos + word.len();
    }
    out
}

/// Whether `line` contains `word` as a whole word.
fn has_word(line: &str, word: &str) -> bool {
    !word_positions(line, word).is_empty()
}

/// The identifier ending at byte offset `end` (exclusive) in `line`.
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let head = &line[..end];
    let start = head
        .rfind(|c: char| !is_ident_char(c))
        .map_or(0, |p| p + c_len(head, p));
    let ident = &head[start..];
    if ident.is_empty() || ident.chars().next().is_some_and(char::is_numeric) {
        None
    } else {
        Some(ident)
    }
}

/// Byte length of the char starting at `p`.
fn c_len(s: &str, p: usize) -> usize {
    s[p..].chars().next().map_or(1, char::len_utf8)
}

/// The identifier starting at the beginning of `s` (after trimming).
fn leading_ident(s: &str) -> Option<&str> {
    let s = s.trim_start();
    let end = s.find(|c: char| !is_ident_char(c)).unwrap_or(s.len());
    if end == 0 {
        None
    } else {
        Some(&s[..end])
    }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

/// Iterator-producing methods whose order on hash containers is
/// nondeterministic.
const HASH_ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "drain(",
];

/// Markers that make an iteration order-safe when they appear in the
/// same statement: an explicit sort, a collect into an ordered
/// container, or an order-insensitive reduction.
const ORDER_SAFE_MARKERS: &[&str] = &[
    ".sort",
    "BTreeMap",
    "BTreeSet",
    ".count()",
    ".len()",
    ".is_empty(",
];

/// Flags iteration over identifiers declared as `HashMap`/`HashSet`
/// unless the statement immediately restores a deterministic order.
pub(crate) fn rule_unordered_iter(ctx: &FileContext, out: &mut Vec<Finding>) {
    let idents = collect_hash_idents(ctx.lines());
    if idents.is_empty() {
        return;
    }
    for (idx, line) in ctx.lines().iter().enumerate() {
        for ident in &idents {
            let hit = method_iteration(line, ident) || for_loop_iteration(line, ident);
            if !hit {
                continue;
            }
            // A `for`-loop body can only be made safe with a pragma;
            // method chains may sort/reduce within the statement.
            let safe = method_iteration(line, ident) && {
                let stmt = ctx.statement_from(idx, 2, 8);
                ORDER_SAFE_MARKERS.iter().any(|m| stmt.contains(m))
            };
            if !safe {
                out.push(Finding {
                    path: ctx.rel().to_owned(),
                    line: idx + 1,
                    rule: RULE_UNORDERED_ITER,
                    message: format!(
                        "iteration over hash container `{ident}` has nondeterministic order"
                    ),
                    hint: "sort the collected items, switch to BTreeMap/BTreeSet, or add \
                           `// h3cdn-lint: allow(unordered-iter)` with a justification"
                        .to_owned(),
                    trace: None,
                });
            }
        }
    }
}

/// Identifiers declared as `HashMap`/`HashSet` anywhere in the file
/// (fields, locals, parameters).
fn collect_hash_idents(lines: &[String]) -> Vec<String> {
    let mut idents = Vec::new();
    for line in lines {
        for ty in ["HashMap", "HashSet"] {
            for pos in word_positions(line, ty) {
                if let Some(ident) = hash_decl_ident(line, pos) {
                    if !idents.contains(&ident) {
                        idents.push(ident);
                    }
                }
            }
        }
    }
    idents
}

/// The declared identifier for a `HashMap`/`HashSet` occurrence at
/// `pos`, handling `ident: [&][std::collections::]HashMap<...>` and
/// `let [mut] ident = HashMap::new()` forms.
fn hash_decl_ident(line: &str, pos: usize) -> Option<String> {
    let before = line[..pos]
        .trim_end_matches("std::collections::")
        .trim_end();
    // `ident: HashMap<...>` (field, local with annotation, parameter).
    let before = before
        .trim_end_matches('&')
        .trim_end()
        .trim_end_matches("mut")
        .trim_end()
        .trim_end_matches('&')
        .trim_end();
    if let Some(head) = before.strip_suffix(':') {
        return ident_ending_at(line, head.len()).map(str::to_owned);
    }
    // `let [mut] ident = HashMap::new()` / `with_capacity` / `from`.
    let after_ty = line[pos..].trim_start_matches(is_ident_char);
    let constructed = ["::new(", "::with_capacity(", "::from(", "::default("]
        .iter()
        .any(|c| after_ty.starts_with(c));
    if constructed {
        if let Some(eq) = line[..pos].rfind('=') {
            let lhs = line[..eq].trim_end();
            if let Some(let_pos) = lhs.find("let ") {
                let name = lhs[let_pos + 4..]
                    .trim_start()
                    .trim_start_matches("mut ")
                    .trim();
                if !name.is_empty() && name.chars().all(is_ident_char) {
                    return Some(name.to_owned());
                }
            }
        }
    }
    None
}

/// Whether `line` calls a nondeterministic iteration method on `ident`
/// (possibly behind `self.` / a path).
fn method_iteration(line: &str, ident: &str) -> bool {
    word_positions(line, ident).iter().any(|&pos| {
        let after = &line[pos + ident.len()..];
        after
            .strip_prefix('.')
            .is_some_and(|rest| HASH_ITER_METHODS.iter().any(|m| rest.starts_with(m)))
    })
}

/// Whether `line` is a `for ... in [&[mut]] [self.]ident [{]` loop
/// header over the bare container.
fn for_loop_iteration(line: &str, ident: &str) -> bool {
    if !has_word(line, "for") {
        return false;
    }
    let Some(in_pos) = line.find(" in ") else {
        return false;
    };
    let expr = line[in_pos + 4..]
        .trim_start()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start();
    let expr = expr.strip_prefix("self.").unwrap_or(expr);
    let Some(root) = leading_ident(expr) else {
        return false;
    };
    if root != ident {
        return false;
    }
    // `for x in map` / `for x in &map {` — but not `map.get(...)`.
    let tail = expr[root.len()..].trim_start();
    tail.is_empty() || tail.starts_with('{')
}

// ---------------------------------------------------------------------------
// Simple needle rules
// ---------------------------------------------------------------------------

/// Pushes a finding for every whole-word occurrence of `needle`.
fn needle_rule(
    ctx: &FileContext,
    out: &mut Vec<Finding>,
    rule: &'static str,
    needle: &str,
    message: &str,
    hint: &str,
) {
    for (idx, line) in ctx.lines().iter().enumerate() {
        if line.contains(needle) {
            out.push(Finding {
                path: ctx.rel().to_owned(),
                line: idx + 1,
                rule,
                message: message.to_owned(),
                hint: hint.to_owned(),
                trace: None,
            });
        }
    }
}

/// Flags wall-clock reads: simulation time must come from `SimTime`.
pub(crate) fn rule_wall_clock(ctx: &FileContext, out: &mut Vec<Finding>) {
    const HINT: &str = "use the simulated clock (SimTime); wall-clock reads make runs \
                        irreproducible. For log-only timing add \
                        `// h3cdn-lint: allow(wall-clock)`";
    needle_rule(
        ctx,
        out,
        RULE_WALL_CLOCK,
        "Instant::now",
        "wall-clock read via `Instant::now`",
        HINT,
    );
    for (idx, line) in ctx.lines().iter().enumerate() {
        if has_word(line, "SystemTime") {
            out.push(Finding {
                path: ctx.rel().to_owned(),
                line: idx + 1,
                rule: RULE_WALL_CLOCK,
                message: "wall-clock dependency via `SystemTime`".to_owned(),
                hint: HINT.to_owned(),
                trace: None,
            });
        }
    }
}

/// Flags ambient (non-seeded) randomness sources.
pub(crate) fn rule_ambient_rng(ctx: &FileContext, out: &mut Vec<Finding>) {
    const HINT: &str = "derive randomness from the seeded sim-core RNG so runs replay \
                        bit-identically";
    for needle in [
        "thread_rng",
        "rand::random",
        "OsRng",
        "getrandom",
        "from_entropy",
    ] {
        needle_rule(
            ctx,
            out,
            RULE_AMBIENT_RNG,
            needle,
            &format!("ambient randomness via `{needle}`"),
            HINT,
        );
    }
}

/// Flags environment reads in sim-affecting crates.
pub(crate) fn rule_env_read(ctx: &FileContext, out: &mut Vec<Finding>) {
    const HINT: &str = "thread configuration through explicit config structs; for \
                        runner-level knobs add `// h3cdn-lint: allow(env-read)`";
    for needle in ["std::env::", "env::var(", "env::args("] {
        needle_rule(
            ctx,
            out,
            RULE_ENV_READ,
            needle,
            &format!("environment read via `{needle}`"),
            HINT,
        );
    }
}

/// Flags real I/O and threading in sans-IO crates. `std::io::Error` /
/// `std::io::ErrorKind` are tolerated (error plumbing, not I/O).
pub(crate) fn rule_sans_io(ctx: &FileContext, out: &mut Vec<Finding>) {
    const HINT: &str = "sans-IO crates are pure state machines: move I/O to the \
                        experiments/driver layer";
    for (idx, line) in ctx.lines().iter().enumerate() {
        for needle in ["std::net", "std::fs", "std::thread", "std::io"] {
            let mut start = 0;
            while let Some(rel) = line[start..].find(needle) {
                let pos = start + rel;
                start = pos + needle.len();
                let after = &line[pos + needle.len()..];
                if needle == "std::io"
                    && (after.starts_with("::Error") || after.starts_with("::ErrorKind"))
                {
                    continue;
                }
                // Avoid double-matching `std::io` inside `std::iovec`-style
                // idents (none in std, but be safe).
                if after.chars().next().is_some_and(is_ident_char) {
                    continue;
                }
                out.push(Finding {
                    path: ctx.rel().to_owned(),
                    line: idx + 1,
                    rule: RULE_SANS_IO,
                    message: format!("`{needle}` used in sans-IO crate `{}`", ctx.krate()),
                    hint: HINT.to_owned(),
                    trace: None,
                });
            }
        }
    }
}

/// Flags raw (non-atomic) result-artifact writes in the campaign and
/// experiment crates: `fs::write` / `File::create` can leave a torn
/// file behind when the process dies mid-write, which breaks the
/// crash-safe resume contract. Library source only (integration tests
/// legitimately build scratch trees), test modules excluded.
pub(crate) fn rule_raw_result_write(ctx: &FileContext, out: &mut Vec<Finding>) {
    const HINT: &str = "route the write through h3cdn::persist::atomic_write \
                        (write-temp-fsync-rename); for non-artifact scratch files add \
                        `// h3cdn-lint: allow(raw-result-write)` with a justification";
    if !ctx.in_library_src() {
        return;
    }
    for (idx, line) in ctx.lines().iter().enumerate() {
        if ctx.is_test_line(idx) {
            continue;
        }
        for needle in ["fs::write(", "File::create("] {
            if line.contains(needle) {
                out.push(Finding {
                    path: ctx.rel().to_owned(),
                    line: idx + 1,
                    rule: RULE_RAW_RESULT_WRITE,
                    message: format!(
                        "raw result write via `{}` in crate `{}`",
                        needle.trim_end_matches('('),
                        ctx.krate()
                    ),
                    hint: HINT.to_owned(),
                    trace: None,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-alloc
// ---------------------------------------------------------------------------

/// Allocation constructs banned on the per-event hot path. Needles are
/// matched against stripped source, so occurrences in comments or
/// string literals never fire.
const ALLOC_NEEDLES: &[&str] = &[
    "Vec::new(",
    "vec![",
    "Box::new(",
    ".to_vec(",
    ".clone()",
    "String::new(",
    ".to_owned(",
    ".to_string(",
    "format!(",
];

/// Flags heap allocation in the files on the simulator's per-event hot
/// path (see [`crate::HOT_PATH_FILES`]). Steady-state dispatch code
/// must recycle buffers through scratch space or pools; construction
/// paths, which legitimately allocate once, opt out with a pragma.
pub(crate) fn rule_hot_path_alloc(ctx: &FileContext, out: &mut Vec<Finding>) {
    for (idx, line) in ctx.lines().iter().enumerate() {
        if ctx.is_test_line(idx) {
            continue;
        }
        for needle in ALLOC_NEEDLES {
            if line.contains(needle) {
                out.push(Finding {
                    path: ctx.rel().to_owned(),
                    line: idx + 1,
                    rule: RULE_HOT_PATH_ALLOC,
                    message: format!(
                        "allocation via `{}` on the simulator hot path",
                        needle.trim_end_matches('(')
                    ),
                    hint: "reuse a pooled/scratch buffer (swap-and-drain) instead of \
                           allocating per event; for one-time construction paths add \
                           `// h3cdn-lint: allow(hot-path-alloc)`"
                        .to_owned(),
                    trace: None,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Float rules
// ---------------------------------------------------------------------------

/// Flags `==` / `!=` where either operand is a float literal.
pub(crate) fn rule_float_cmp(ctx: &FileContext, out: &mut Vec<Finding>) {
    for (idx, line) in ctx.lines().iter().enumerate() {
        for op in ["==", "!="] {
            let mut start = 0;
            while let Some(rel) = line[start..].find(op) {
                let pos = start + rel;
                start = pos + op.len();
                // Skip `<=`, `>=`, `!=` handled, and pattern `=>`.
                if op == "==" && pos > 0 && matches!(&line[pos - 1..pos], "<" | ">" | "!" | "=") {
                    continue;
                }
                let lhs = last_token(&line[..pos]);
                let rhs = first_token(&line[pos + op.len()..]);
                if is_float_literal(lhs) || is_float_literal(rhs) {
                    out.push(Finding {
                        path: ctx.rel().to_owned(),
                        line: idx + 1,
                        rule: RULE_FLOAT_CMP,
                        message: format!("exact float comparison `{lhs} {op} {rhs}`"),
                        hint: "compare with an epsilon (abs diff) or justify with \
                               `// h3cdn-lint: allow(float-cmp)`"
                            .to_owned(),
                        trace: None,
                    });
                }
            }
        }
    }
}

/// Flags NaN-unaware comparator sorts (`sort_by` family combined with
/// `partial_cmp` in the same statement).
pub(crate) fn rule_nan_sort(ctx: &FileContext, out: &mut Vec<Finding>) {
    const SORTS: &[&str] = &[
        "sort_by(",
        "sort_unstable_by(",
        "sort_by_key(",
        "max_by(",
        "min_by(",
        "binary_search_by(",
    ];
    for (idx, line) in ctx.lines().iter().enumerate() {
        if !SORTS.iter().any(|s| line.contains(s)) {
            continue;
        }
        let stmt = ctx.statement_from(idx, 1, 4);
        if stmt.contains("partial_cmp") {
            out.push(Finding {
                path: ctx.rel().to_owned(),
                line: idx + 1,
                rule: RULE_NAN_SORT,
                message: "NaN-unaware comparator: `partial_cmp` inside a sort".to_owned(),
                hint: "use `f64::total_cmp` (total order, NaN-safe) instead of \
                       `partial_cmp(..).unwrap()/expect(..)`"
                    .to_owned(),
                trace: None,
            });
        }
    }
}

/// Last operand-ish token before a comparison operator.
fn last_token(head: &str) -> &str {
    let trimmed = head.trim_end();
    let start = trimmed
        .rfind(|c: char| !(is_ident_char(c) || c == '.'))
        .map_or(0, |p| p + c_len(trimmed, p));
    &trimmed[start..]
}

/// First operand-ish token after a comparison operator.
fn first_token(tail: &str) -> &str {
    let trimmed = tail.trim_start();
    let end = trimmed
        .find(|c: char| !(is_ident_char(c) || c == '.'))
        .unwrap_or(trimmed.len());
    &trimmed[..end]
}

/// Whether `tok` looks like a float literal (`1.0`, `0.`, `2.5f64`)
/// or a float-typed constant path.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.trim_end_matches("f64").trim_end_matches("f32");
    let mut digits = false;
    let mut dot = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | '_' => digits = true,
            '.' => dot = true,
            _ => return false,
        }
    }
    digits && dot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip1(src: &str) -> String {
        strip_source(src).join("\n")
    }

    #[test]
    fn strips_comments_and_strings_preserving_lines() {
        let src =
            "let a = 1; // HashMap\nlet b = \"Instant::now\";\n/* std::fs\nstd::net */ let c = 2;";
        let out = strip_source(src);
        assert_eq!(out.len(), 4);
        assert!(!out.join("\n").contains("HashMap"));
        assert!(!out.join("\n").contains("Instant"));
        assert!(!out.join("\n").contains("std::fs"));
        assert!(out[3].contains("let c = 2;"));
    }

    #[test]
    fn strips_raw_strings_and_char_literals() {
        assert!(!strip1("let s = r#\"thread_rng\"#;").contains("thread_rng"));
        assert!(!strip1("let c = '\\n'; let d = 'x';").contains('x'));
        // Lifetimes survive (they cannot hide code).
        assert!(strip1("fn f<'a>(x: &'a str) {}").contains("'a"));
    }

    #[test]
    fn nested_block_comments() {
        let out = strip1("/* a /* b */ std::fs */ keep");
        assert!(!out.contains("std::fs"));
        assert!(out.contains("keep"));
    }

    #[test]
    fn backslash_continuation_keeps_line_count() {
        let src = "let s = \"a\\\nb\";\nlet t = 1;";
        assert_eq!(strip_source(src).len(), 3);
    }

    #[test]
    fn pragma_parsing_handles_lists() {
        let line = "// h3cdn-lint: allow(unordered-iter, wall-clock)".to_owned();
        assert!(pragma_allows(Some(&line), "wall-clock"));
        assert!(pragma_allows(Some(&line), "unordered-iter"));
        assert!(!pragma_allows(Some(&line), "env-read"));
    }

    #[test]
    fn hash_decl_forms_are_recognised() {
        let cases = [
            ("    paths: HashMap<(u64, u64), Path>,", "paths"),
            ("    let mut h = std::collections::HashMap::new();", "h"),
            ("fn f(m: &HashMap<u32, u32>) {", "m"),
            ("    set: &mut HashSet<u64>,", "set"),
        ];
        for (line, want) in cases {
            let idents = collect_hash_idents(&[line.to_owned()]);
            assert_eq!(idents, vec![want.to_owned()], "line: {line}");
        }
    }

    #[test]
    fn float_literal_detection() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("2.5f64"));
        assert!(is_float_literal("1_000.25"));
        assert!(!is_float_literal("10"));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal(""));
    }
}
