//! Fixture: workspace-root test code. References recorded here land in
//! the `root` region, keeping the mentioned items off the dead-pub list.

fn smoke() {
    let engine: Engine = todo!();
    let scenario: Scenario = todo!();
    streams(&scenario, 7);
    let _ = engine;
}
