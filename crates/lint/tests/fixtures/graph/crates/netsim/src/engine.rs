//! Fixture: hot-path reachability and layering.
//! This file is never compiled; it only feeds the scanner.

// HIT layer-violation: netsim (layer 0) must not look up at core.
use h3cdn::campaign::Campaign;
// h3cdn-lint: allow(layer-violation)
use h3cdn::scenario::ScenarioSpec;
// CLEAN: sim-core is the same layer.
use h3cdn_sim_core::SimTime;

pub struct Engine {
    slots: Vec<u64>,
}

impl Engine {
    pub fn run(&mut self, deadline: u64) -> u64 {
        self.dispatch_one(deadline)
    }

    fn dispatch_one(&mut self, at: u64) -> u64 {
        // HIT hot-path-panic: reachable via Engine::run -> dispatch_one.
        let v = self.slots.first().unwrap();
        // h3cdn-lint: allow(hot-path-panic)
        let w = self.slots.last().unwrap();
        v + w + at
    }

    fn cold_probe(&self) -> u64 {
        // CLEAN: not reachable from any dispatch root.
        self.slots.iter().copied().next_back().unwrap()
    }
}
