//! Fixture: the live ALLOWLIST suppresses dead-pub findings in this
//! file (the path suffix matches the real resilience module).
//! This file is never compiled; it only feeds the scanner.

// ALLOWLISTED dead-pub: suppressed by the workspace allowlist entry.
pub const BROKEN_QUIC_TTL: u64 = 300;
