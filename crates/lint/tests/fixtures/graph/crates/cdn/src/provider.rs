//! Fixture: dead public API surface.
//! This file is never compiled; it only feeds the scanner.

// CLEAN dead-pub: referenced from crates/core/src/scenario.rs.
pub fn fetch_origin(a: u64, b: u64, c: u64, d: u64) -> u64 {
    a + b + c + d
}

// HIT dead-pub: nothing outside cdn mentions this name.
pub fn orphan_probe() {}

// h3cdn-lint: allow(dead-pub)
pub fn deliberate_api() {}
