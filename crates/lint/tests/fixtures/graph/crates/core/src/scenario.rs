//! Fixture: RNG seed plumbing.
//! This file is never compiled; it only feeds the scanner.

// CLEAN: core (layer 1) may depend on netsim (layer 0).
use h3cdn_netsim::Engine;

pub struct Scenario {
    pub seed: u64,
}

pub fn streams(scenario: &Scenario, run_seed: u64) {
    // CLEAN: flows from a parameter.
    let a = SimRng::seed_from(run_seed);
    // CLEAN: flows from a scenario field.
    let b = SimRng::seed_from(scenario.seed ^ 0x9E37_79B9);
    // HIT unseeded-rng: free-standing literal.
    let c = SimRng::seed_from(0xDEAD_BEEF);
    // h3cdn-lint: allow(unseeded-rng)
    let d = SimRng::seed_from(0x5EED);
    fetch_origin(a, b, c, d);
}
