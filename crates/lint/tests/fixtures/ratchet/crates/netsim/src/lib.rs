//! Fixture: panic-surface counting for the ratchet.
//! This file is never compiled; it only feeds the scanner.

fn two_unwraps(a: Option<u32>, b: Option<u32>) -> u32 {
    a.unwrap() + b.unwrap()
}

fn one_expect(a: Option<u32>) -> u32 {
    a.expect("present")
}

fn one_panic(x: u32) -> u32 {
    if x > 10 {
        panic!("too big");
    }
    x
}

fn three_indexings(v: &[u32], i: usize) -> u32 {
    v[i] + v[0] + v[i + 1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_not_counted() {
        let v = vec![1u32];
        assert_eq!(v[0], Some(1).unwrap());
        Some(2).expect("fine");
    }
}
