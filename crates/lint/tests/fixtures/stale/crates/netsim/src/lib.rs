//! Fixture: a clean crate whose baseline is stale (too generous).
//! This file is never compiled; it only feeds the scanner.

fn no_panics(a: Option<u32>) -> u32 {
    a.unwrap_or(0)
}
