//! Fixture: float-hazard rules in the analysis crate.
//! This file is never compiled; it only feeds the scanner.

fn bad_float_eq(x: f64) -> bool {
    // HIT float-cmp: exact comparison against a float literal.
    x == 0.3
}

fn bad_float_ne(x: f64) -> bool {
    // HIT float-cmp.
    x != 1.0
}

fn suppressed_float_eq(x: f64) -> bool {
    // Sentinel check. h3cdn-lint: allow(float-cmp)
    x == 0.0
}

fn good_int_eq(n: usize) -> bool {
    // CLEAN: integers compare exactly.
    n == 10
}

fn good_epsilon(x: f64) -> bool {
    // CLEAN: epsilon comparison.
    (x - 0.3).abs() < 1e-9
}

fn bad_nan_sort(v: &mut [f64]) {
    // HIT nan-sort.
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn good_total_cmp_sort(v: &mut [f64]) {
    // CLEAN: total order.
    v.sort_by(f64::total_cmp);
}
