//! hot-path-alloc fixture: this path is on the `HOT_PATH_FILES`
//! allowlist, so per-event allocations are flagged.

pub fn per_event_allocations(frames: &[u8]) -> usize {
    let buf: Vec<u8> = Vec::new();
    let tmp = vec![0u8; 16];
    let copied = frames.to_vec();
    let boxed = Box::new(copied.len());
    let dup = tmp.clone();
    buf.len() + dup.len() + *boxed
}

pub struct Engine {
    scratch: Vec<u8>,
    pool: Vec<Vec<u8>>,
}

impl Engine {
    pub fn new() -> Engine {
        Engine {
            // One-time construction is exempt via pragma.
            // h3cdn-lint: allow(hot-path-alloc)
            scratch: Vec::new(),
            // h3cdn-lint: allow(hot-path-alloc)
            pool: vec![Vec::with_capacity(64)],
        }
    }

    pub fn step(&mut self, payload: &[u8]) -> usize {
        // Clean: swap-and-drain reuses the scratch buffer's capacity.
        let mut work = std::mem::take(&mut self.scratch);
        work.extend_from_slice(payload);
        let n = work.len();
        work.drain(..);
        self.scratch = work;
        n + self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let freely = vec![1, 2, 3];
        assert_eq!(freely.clone().len(), 3);
    }
}
