//! Fixture: determinism rules in a sim-affecting crate.
//! This file is never compiled; it only feeds the scanner.
use std::collections::{BTreeMap, HashMap, HashSet};

struct Net {
    paths: HashMap<(u64, u64), u32>,
}

impl Net {
    fn bad_iteration(&self) -> Vec<u32> {
        // HIT unordered-iter: order leaks into the result.
        self.paths.values().copied().collect()
    }

    fn good_sorted(&self) -> Vec<u32> {
        // CLEAN: sorted in the same statement.
        let mut v: Vec<u32> = self.paths.values().copied().collect();
        v.sort_unstable();
        v
    }

    fn good_count(&self) -> usize {
        // CLEAN: order-insensitive reduction.
        self.paths.values().count()
    }

    fn good_btree(&self) -> BTreeMap<(u64, u64), u32> {
        // CLEAN: collected into an ordered container.
        self.paths.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()
    }

    fn suppressed_iteration(&self) -> f64 {
        // Order-insensitive float-free sum. h3cdn-lint: allow(unordered-iter)
        self.paths.values().map(|&v| f64::from(v)).sum()
    }
}

fn bad_for_loop(seen: &HashSet<u64>) {
    // HIT unordered-iter: bare for-loop over a hash set.
    for id in seen {
        drop(id);
    }
}

fn bad_wall_clock() -> std::time::Instant {
    // HIT wall-clock.
    std::time::Instant::now()
}

fn suppressed_wall_clock() -> std::time::Instant {
    // Log-only timing. h3cdn-lint: allow(wall-clock)
    std::time::Instant::now()
}

fn bad_system_time() {
    // HIT wall-clock (SystemTime).
    let _ = std::time::SystemTime::UNIX_EPOCH;
}

fn bad_rng() {
    // HIT ambient-rng.
    let _ = rand::thread_rng();
}

fn bad_env() -> Option<String> {
    // HIT env-read.
    std::env::var("NETSIM_KNOB").ok()
}

fn alloc_off_hot_path() -> Vec<u8> {
    // CLEAN hot-path-alloc: this file is not on the hot-path allowlist.
    Vec::new()
}

fn strings_do_not_trigger() -> &'static str {
    // CLEAN: pattern words inside strings are stripped.
    "HashMap Instant::now thread_rng std::env::var std::fs"
}
