//! Fixture: sans-IO purity rules in a transport-layer crate.
//! This file is never compiled; it only feeds the scanner.

fn bad_net() {
    // HIT sans-io: real sockets.
    let _ = std::net::TcpStream::connect("127.0.0.1:80");
}

fn bad_fs() {
    // HIT sans-io: filesystem access.
    let _ = std::fs::read("config.toml");
}

fn bad_thread() {
    // HIT sans-io: threading.
    std::thread::yield_now();
}

fn bad_io() {
    // HIT sans-io: blocking I/O.
    let _ = std::io::stdin();
}

fn bad_pair() {
    // HIT sans-io twice on one line: both findings must survive dedup.
    let _ = std::thread::spawn(|| std::net::TcpStream::connect("h"));
}

fn good_error_plumbing(e: std::io::Error) -> std::io::ErrorKind {
    // CLEAN: std::io::Error / ErrorKind are tolerated.
    e.kind()
}
