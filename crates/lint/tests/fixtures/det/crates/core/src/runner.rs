//! Fixture: the built-in allowlist tolerates the runner thread pool.
//! This file is never compiled; it only feeds the scanner.

fn allowlisted_thread_pool() {
    // CLEAN via ALLOWLIST: crates/core/src/runner.rs + sans-io.
    std::thread::scope(|_| {});
}
