//! Fixture: raw result writes in an artifact-producing crate.
//! This file is never compiled; it only feeds the scanner.

fn raw_write_hit(path: &std::path::Path, body: &str) {
    // HIT raw-result-write: torn on SIGKILL mid-write.
    std::fs::write(path, body).unwrap();
}

fn file_create_hit(path: &std::path::Path) {
    // HIT raw-result-write: File::create truncates before writing.
    let _f = std::fs::File::create(path).unwrap();
}

fn atomic_is_clean(path: &std::path::Path, body: &[u8]) {
    // CLEAN: the sanctioned crash-safe path.
    h3cdn::persist::atomic_write(path, body).unwrap();
}

fn pragma_escape(path: &std::path::Path) {
    // CLEAN via pragma: scratch file, not a result artifact.
    // h3cdn-lint: allow(raw-result-write)
    std::fs::write(path, "scratch").unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_excluded() {
        // CLEAN: test modules may write scratch trees freely.
        std::fs::write("/tmp/scratch", "x").unwrap();
    }
}
