//! Fixture tests: every rule is exercised with a positive hit, a
//! clean negative, and (where applicable) a pragma-suppressed variant.
//!
//! The fixture trees under `tests/fixtures/` are miniature workspaces
//! (`<root>/crates/<name>/src/...`). They are scanned, never compiled.

use std::path::PathBuf;

use h3cdn_lint::{lint_workspace_with, Finding, LintOptions};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints a fixture tree with only the syntactic rules enabled.
fn rule_findings(fixture: &str) -> Vec<Finding> {
    let opts = LintOptions {
        check_rules: true,
        check_ratchet: false,
        check_graph: false,
    };
    lint_workspace_with(&fixture_root(fixture), opts)
        .expect("fixture lints")
        .findings
}

/// `(rule, path, line)` triples for easy assertions.
fn keys(findings: &[Finding]) -> Vec<(String, String, usize)> {
    findings
        .iter()
        .map(|f| (f.rule.to_owned(), f.path.clone(), f.line))
        .collect()
}

/// The 1-based line of `marker` in a fixture file.
fn line_of(fixture: &str, rel: &str, marker: &str) -> usize {
    let text = std::fs::read_to_string(fixture_root(fixture).join(rel)).expect("fixture file");
    text.lines()
        .position(|l| l.contains(marker))
        .unwrap_or_else(|| panic!("marker {marker:?} not found in {rel}"))
        + 1
}

fn assert_hit(findings: &[Finding], rule: &str, rel: &str, marker: &str) {
    let line = line_of("det", rel, marker);
    assert!(
        keys(findings).contains(&(rule.to_owned(), rel.to_owned(), line)),
        "expected {rule} at {rel}:{line} ({marker:?}); got {findings:#?}"
    );
}

fn assert_clean(findings: &[Finding], rel: &str, marker: &str) {
    let line = line_of("det", rel, marker);
    assert!(
        !keys(findings)
            .iter()
            .any(|(_, p, l)| p == rel && *l == line),
        "expected no finding at {rel}:{line} ({marker:?}); got {findings:#?}"
    );
}

const NETSIM: &str = "crates/netsim/src/lib.rs";
const TRANSPORT: &str = "crates/transport/src/lib.rs";
const ANALYSIS: &str = "crates/analysis/src/lib.rs";
const RUNNER: &str = "crates/core/src/runner.rs";
const EXPERIMENTS: &str = "crates/experiments/src/lib.rs";
const ENGINE: &str = "crates/netsim/src/engine.rs";

#[test]
fn unordered_iter_hit_clean_and_pragma() {
    let f = rule_findings("det");
    assert_hit(
        &f,
        "unordered-iter",
        NETSIM,
        "self.paths.values().copied().collect()",
    );
    assert_hit(&f, "unordered-iter", NETSIM, "for id in seen {");
    // Sorted in the following statement, order-insensitive reductions,
    // and BTree collection are all clean.
    assert_clean(&f, NETSIM, "let mut v: Vec<u32> = self.paths.values()");
    assert_clean(&f, NETSIM, "self.paths.values().count()");
    assert_clean(&f, NETSIM, "collect::<BTreeMap<_, _>>()");
    // Pragma-suppressed variant.
    assert_clean(
        &f,
        NETSIM,
        "self.paths.values().map(|&v| f64::from(v)).sum()",
    );
}

#[test]
fn deleting_the_sort_reintroduces_the_finding() {
    // The acceptance-criterion scenario: take the clean
    // collect-then-sort site and delete the sort — the finding must
    // come back with a file:line + rule-id diagnostic.
    let source = std::fs::read_to_string(fixture_root("det").join(NETSIM)).expect("fixture");
    let without_sort = source.replace("v.sort_unstable();", "");
    assert_ne!(source, without_sort, "fixture contains the sort line");

    let dir = std::env::temp_dir().join(format!("h3cdn-lint-sortdel-{}", std::process::id()));
    let src_dir = dir.join("crates/netsim/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(src_dir.join("lib.rs"), without_sort).expect("write");

    let opts = LintOptions {
        check_rules: true,
        check_ratchet: false,
        check_graph: false,
    };
    let report = lint_workspace_with(&dir, opts).expect("lints");
    std::fs::remove_dir_all(&dir).ok();

    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "unordered-iter" && f.path == NETSIM && f.message.contains("`paths`"));
    let hit = hit.expect("deleting the sort must produce an unordered-iter finding");
    assert!(hit.line > 0, "diagnostic carries a line number");
}

#[test]
fn wall_clock_hit_and_pragma() {
    let f = rule_findings("det");
    let hits: Vec<_> = keys(&f)
        .into_iter()
        .filter(|(r, p, _)| r == "wall-clock" && p == NETSIM)
        .collect();
    // Two hits (Instant::now + SystemTime); the pragma'd Instant::now
    // is suppressed.
    assert_eq!(hits.len(), 2, "got {f:#?}");
    assert_hit(
        &f,
        "wall-clock",
        NETSIM,
        "std::time::SystemTime::UNIX_EPOCH",
    );
}

#[test]
fn ambient_rng_and_env_read_hits() {
    let f = rule_findings("det");
    assert_hit(&f, "ambient-rng", NETSIM, "rand::thread_rng()");
    assert_hit(&f, "env-read", NETSIM, "std::env::var(\"NETSIM_KNOB\")");
}

#[test]
fn strings_never_trigger_rules() {
    let f = rule_findings("det");
    assert_clean(&f, NETSIM, "\"HashMap Instant::now thread_rng");
}

#[test]
fn sans_io_hits_and_error_exception() {
    let f = rule_findings("det");
    assert_hit(&f, "sans-io", TRANSPORT, "std::net::TcpStream");
    assert_hit(&f, "sans-io", TRANSPORT, "std::fs::read");
    assert_hit(&f, "sans-io", TRANSPORT, "std::thread::yield_now");
    assert_hit(&f, "sans-io", TRANSPORT, "std::io::stdin");
    assert_clean(&f, TRANSPORT, "fn good_error_plumbing");
}

#[test]
fn allowlist_suppresses_runner_thread_pool() {
    let f = rule_findings("det");
    assert_clean(&f, RUNNER, "std::thread::scope");
}

#[test]
fn raw_result_write_hit_clean_pragma_and_tests() {
    let f = rule_findings("det");
    assert_hit(
        &f,
        "raw-result-write",
        EXPERIMENTS,
        "std::fs::write(path, body)",
    );
    assert_hit(
        &f,
        "raw-result-write",
        EXPERIMENTS,
        "std::fs::File::create(path)",
    );
    // The sanctioned atomic path is clean.
    assert_clean(&f, EXPERIMENTS, "h3cdn::persist::atomic_write");
    // Pragma escape hatch for scratch files.
    assert_clean(&f, EXPERIMENTS, "std::fs::write(path, \"scratch\")");
    // Test modules may write scratch trees freely.
    assert_clean(&f, EXPERIMENTS, "std::fs::write(\"/tmp/scratch\"");
}

#[test]
fn float_rules_hit_clean_and_pragma() {
    let f = rule_findings("det");
    assert_hit(&f, "float-cmp", ANALYSIS, "x == 0.3");
    assert_hit(&f, "float-cmp", ANALYSIS, "x != 1.0");
    assert_clean(&f, ANALYSIS, "x == 0.0"); // pragma
    assert_clean(&f, ANALYSIS, "n == 10"); // integers are fine
    assert_clean(&f, ANALYSIS, "(x - 0.3).abs()"); // epsilon compare
    assert_hit(&f, "nan-sort", ANALYSIS, "a.partial_cmp(b).unwrap()");
    assert_clean(&f, ANALYSIS, "v.sort_by(f64::total_cmp)");
}

#[test]
fn ratchet_flags_only_the_count_beyond_baseline() {
    let opts = LintOptions {
        check_rules: false,
        check_ratchet: true,
        check_graph: false,
    };
    let report = lint_workspace_with(&fixture_root("ratchet"), opts).expect("fixture lints");
    // Baseline allows 1 unwrap; the fixture has 2 (and matches the
    // baseline exactly in every other category, with test code
    // excluded from the counts).
    assert_eq!(report.findings.len(), 1, "got {:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "panic-ratchet");
    assert_eq!(f.path, "crates/netsim/src/lib.rs");
    assert!(f.message.contains("2 `unwrap` sites"), "{}", f.message);
    assert!(f.message.contains("baseline allows 1"), "{}", f.message);
}

#[test]
fn ratchet_counts_exclude_test_modules() {
    let opts = LintOptions {
        check_rules: false,
        check_ratchet: false,
        check_graph: false,
    };
    let report = lint_workspace_with(&fixture_root("ratchet"), opts).expect("fixture lints");
    let counts = report.counts.get("netsim").expect("netsim counted");
    assert_eq!(
        (counts.unwrap, counts.expect, counts.panic, counts.index),
        (2, 1, 1, 3),
        "library code only: the #[cfg(test)] module adds nothing"
    );
}

#[test]
fn stale_baseline_demands_regeneration() {
    let opts = LintOptions {
        check_rules: false,
        check_ratchet: true,
        check_graph: false,
    };
    let report = lint_workspace_with(&fixture_root("stale"), opts).expect("fixture lints");
    assert_eq!(report.findings.len(), 1, "got {:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "baseline-stale");
    assert!(f.hint.contains("--update-baseline"), "{}", f.hint);
}

#[test]
fn hot_path_alloc_hit_clean_and_pragma() {
    let f = rule_findings("det");
    // Every allocation idiom on the hot path is flagged.
    assert_hit(
        &f,
        "hot-path-alloc",
        ENGINE,
        "let buf: Vec<u8> = Vec::new();",
    );
    assert_hit(&f, "hot-path-alloc", ENGINE, "let tmp = vec![0u8; 16];");
    assert_hit(&f, "hot-path-alloc", ENGINE, "frames.to_vec()");
    assert_hit(&f, "hot-path-alloc", ENGINE, "Box::new(copied.len())");
    assert_hit(&f, "hot-path-alloc", ENGINE, "tmp.clone()");
    // Pragma exempts one-time construction.
    assert_clean(&f, ENGINE, "scratch: Vec::new(),");
    assert_clean(&f, ENGINE, "pool: vec![Vec::with_capacity(64)],");
    // Swap-and-drain reuse is clean.
    assert_clean(&f, ENGINE, "std::mem::take(&mut self.scratch)");
    // Test modules may allocate freely.
    assert_clean(&f, ENGINE, "let freely = vec![1, 2, 3];");
    // Files off the hot-path allowlist are never flagged.
    assert_clean(&f, NETSIM, "Vec::new()");
}

// ---------------------------------------------------------------------------
// Graph rules (the `graph` fixture): layering, hot-path reachability,
// seed plumbing, dead API surface.
// ---------------------------------------------------------------------------

/// Lints the `graph` fixture with only the symbol-graph rules enabled.
fn graph_report() -> h3cdn_lint::Report {
    let opts = LintOptions {
        check_rules: false,
        check_ratchet: false,
        check_graph: true,
    };
    lint_workspace_with(&fixture_root("graph"), opts).expect("graph fixture lints")
}

fn graph_line(rel: &str, marker: &str) -> usize {
    line_of("graph", rel, marker)
}

const G_ENGINE: &str = "crates/netsim/src/engine.rs";
const G_SCENARIO: &str = "crates/core/src/scenario.rs";
const G_PROVIDER: &str = "crates/cdn/src/provider.rs";

#[test]
fn layer_violation_hit_pragma_and_downward_edge() {
    let report = graph_report();
    let k = keys(&report.findings);
    let hit = graph_line(G_ENGINE, "use h3cdn::campaign::Campaign;");
    assert!(
        k.contains(&("layer-violation".to_owned(), G_ENGINE.to_owned(), hit)),
        "upward netsim -> core edge must be flagged; got {:#?}",
        report.findings
    );
    // The pragma-covered upward edge and the same-layer edge are clean.
    let pragma = graph_line(G_ENGINE, "use h3cdn::scenario::ScenarioSpec;");
    let lateral = graph_line(G_ENGINE, "use h3cdn_sim_core::SimTime;");
    assert!(!k.iter().any(|(r, p, l)| r == "layer-violation"
        && p == G_ENGINE
        && (*l == pragma || *l == lateral)));
    // The downward core -> netsim edge is clean.
    assert!(!k
        .iter()
        .any(|(r, p, _)| r == "layer-violation" && p == G_SCENARIO));
}

#[test]
fn hot_path_panic_reports_trace_and_respects_pragma() {
    let report = graph_report();
    let hit = graph_line(G_ENGINE, "self.slots.first().unwrap()");
    let finding = report
        .findings
        .iter()
        .find(|f| f.rule == "hot-path-panic" && f.path == G_ENGINE && f.line == hit)
        .unwrap_or_else(|| {
            panic!(
                "expected reachable unwrap at {G_ENGINE}:{hit}: {:#?}",
                report.findings
            )
        });
    let trace = finding
        .trace
        .as_deref()
        .expect("every hot-path finding carries a trace");
    assert!(
        trace.contains("Engine::run") && trace.contains("dispatch_one"),
        "trace must show the dispatch chain; got {trace:?}"
    );
    // The pragma-covered site is out of both the findings and the budget.
    let exempt = graph_line(G_ENGINE, "self.slots.last().unwrap()");
    assert!(!report
        .findings
        .iter()
        .any(|f| f.rule == "hot-path-panic" && f.line == exempt));
    // The cold helper's unwrap is unreachable from the dispatch roots.
    let cold = graph_line(G_ENGINE, "next_back().unwrap()");
    assert!(!report
        .findings
        .iter()
        .any(|f| f.rule == "hot-path-panic" && f.line == cold));
    // Exactly the one live reachable site is counted.
    assert_eq!(report.graph_stats.hot_path_reachable_sites, 1);
    assert!(report.graph_stats.hot_path_reachable_fns >= 2);
}

#[test]
fn unseeded_rng_hit_pragma_and_seed_flow() {
    let report = graph_report();
    let k = keys(&report.findings);
    let hit = graph_line(G_SCENARIO, "SimRng::seed_from(0xDEAD_BEEF)");
    assert!(
        k.contains(&("unseeded-rng".to_owned(), G_SCENARIO.to_owned(), hit)),
        "literal seed must be flagged; got {:#?}",
        report.findings
    );
    for marker in [
        "SimRng::seed_from(run_seed)",
        "SimRng::seed_from(scenario.seed ^ 0x9E37_79B9)",
        "SimRng::seed_from(0x5EED)",
    ] {
        let line = graph_line(G_SCENARIO, marker);
        assert!(
            !k.iter()
                .any(|(r, p, l)| r == "unseeded-rng" && p == G_SCENARIO && *l == line),
            "{marker} must not be flagged"
        );
    }
}

#[test]
fn dead_pub_hit_pragma_allowlist_and_cross_crate_reference() {
    let report = graph_report();
    let k = keys(&report.findings);
    let hit = graph_line(G_PROVIDER, "pub fn orphan_probe()");
    assert!(
        k.contains(&("dead-pub".to_owned(), G_PROVIDER.to_owned(), hit)),
        "unreferenced pub fn must be flagged; got {:#?}",
        report.findings
    );
    // Cross-crate reference (core calls fetch_origin) keeps an item alive.
    let alive = graph_line(G_PROVIDER, "pub fn fetch_origin");
    assert!(!k.iter().any(|(r, _, l)| r == "dead-pub" && *l == alive));
    // Pragma-covered export is suppressed.
    let pragma = graph_line(G_PROVIDER, "pub fn deliberate_api()");
    assert!(!k.iter().any(|(r, _, l)| r == "dead-pub" && *l == pragma));
    // The workspace allowlist suppresses the resilience constant.
    assert!(!k
        .iter()
        .any(|(r, p, _)| r == "dead-pub" && p == "crates/browser/src/resilience.rs"));
    // Suppressions were counted, not dropped on the floor.
    assert!(report.suppressed >= 4, "suppressed = {}", report.suppressed);
}

#[test]
fn two_findings_of_one_rule_on_one_line_both_survive_dedup() {
    // Regression: the dedup key once excluded the message, so two
    // distinct findings of one rule on one line collapsed into one.
    let f = rule_findings("det");
    let line = line_of(
        "det",
        TRANSPORT,
        "std::thread::spawn(|| std::net::TcpStream",
    );
    let on_line: Vec<_> = f
        .iter()
        .filter(|x| x.path == TRANSPORT && x.line == line && x.rule == "sans-io")
        .collect();
    assert_eq!(
        on_line.len(),
        2,
        "both the std::thread and std::net findings must survive: {on_line:#?}"
    );
    assert_ne!(on_line[0].message, on_line[1].message);
}
