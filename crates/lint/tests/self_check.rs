//! Self-check: the live workspace passes its own correctness policy,
//! and the checked-in panic-surface baseline matches a fresh count.

use std::path::PathBuf;

use h3cdn_lint::{baseline, lint_workspace};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn live_workspace_has_zero_unsuppressed_findings() {
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "the live workspace must pass h3cdn-lint cleanly; findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "sanity: the scanner saw the real tree"
    );
}

#[test]
fn checked_in_baseline_matches_fresh_count() {
    let root = workspace_root();
    let fresh = lint_workspace(&root).expect("workspace lints").counts;
    let stored =
        baseline::load(&root.join("crates/lint/baseline.json")).expect("baseline.json present");
    assert_eq!(
        stored, fresh,
        "crates/lint/baseline.json is out of date; run `cargo run -q -p h3cdn-lint -- \
         --workspace-root . --update-baseline` and commit the result"
    );
}

#[test]
fn baseline_round_trips_through_render_and_parse() {
    let root = workspace_root();
    let fresh = lint_workspace(&root).expect("workspace lints").counts;
    let rendered = baseline::render(&fresh);
    let tmp = std::env::temp_dir().join(format!("h3cdn-lint-rt-{}.json", std::process::id()));
    std::fs::write(&tmp, &rendered).expect("write temp baseline");
    let reparsed = baseline::load(&tmp).expect("reparse");
    std::fs::remove_file(&tmp).ok();
    assert_eq!(reparsed, fresh);
}
