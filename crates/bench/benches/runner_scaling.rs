//! Scaling of the deterministic parallel campaign runner.
//!
//! Benchmarks `compare_all` — the full paired H2/H3 dataset — on the
//! same fixed corpus at 1, 2, 4 and 8 workers. Because the runner
//! guarantees bit-identical output for every worker count, the *only*
//! thing that may change across these benchmarks is wall-clock time;
//! on a multi-core host the 4-worker run should come in well under the
//! serial one (the acceptance bar is >1.5× at 4 workers). On a
//! single-core host all worker counts collapse to roughly the serial
//! time — the pool then measures only its own (small) overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use h3cdn::{CampaignConfig, MeasurementCampaign, RunnerConfig};

/// Larger than the per-figure benches so the pool has enough jobs
/// (pages × variants) to balance across 8 workers.
const PAGES: usize = 12;

fn campaign(jobs: usize) -> MeasurementCampaign {
    let cfg =
        CampaignConfig::small(PAGES, 0xBE_AC4).with_runner(RunnerConfig::default().with_jobs(jobs));
    MeasurementCampaign::new(cfg)
}

fn bench_runner_scaling(c: &mut Criterion) {
    for jobs in [1usize, 2, 4, 8] {
        let campaign = campaign(jobs);
        c.bench_function(&format!("runner_scaling/compare_all/workers={jobs}"), |b| {
            b.iter(|| black_box(campaign.compare_all()));
        });
    }
}

criterion_group! {
    name = runner_scaling;
    config = Criterion::default().sample_size(10);
    targets = bench_runner_scaling
}
criterion_main!(runner_scaling);
