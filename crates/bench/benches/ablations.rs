//! Design-choice ablations (DESIGN.md):
//!
//! * `cc_ablation_*` — Cubic vs NewReno under loss: how much of the
//!   H3-vs-H2 gap could CC tuning explain (Yu & Benson's caveat)?
//! * `loss_model_*` — IID vs bursty Gilbert–Elliott loss at equal mean:
//!   burstiness is what makes HoL blocking expensive.
//!
//! The measured quantity is wall-clock of the simulation; the printed
//! page-load outcomes (asserted relationships) are the scientific
//! payload.

use criterion::{criterion_group, criterion_main, Criterion};
use h3cdn::browser::{visit_page, ProtocolMode, VisitConfig};
use h3cdn::transport::tls::TicketStore;
use h3cdn::transport::CcAlgorithm;
use h3cdn::web::{generate, WorkloadSpec};
use std::hint::black_box;

fn bench_cc_ablation(c: &mut Criterion) {
    let corpus = generate(&WorkloadSpec::default().with_pages(2).with_seed(5));
    for (name, cc) in [
        ("cc_ablation_cubic", CcAlgorithm::Cubic),
        ("cc_ablation_newreno", CcAlgorithm::NewReno),
    ] {
        let mut cfg = VisitConfig::default()
            .with_mode(ProtocolMode::H2Only)
            .with_loss_percent(1.0);
        cfg.cc = cc;
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    visit_page(&corpus.pages[0], &corpus.domains, &cfg, TicketStore::new())
                        .har
                        .plt_ms,
                )
            });
        });
    }
}

fn bench_loss_model_ablation(c: &mut Criterion) {
    let corpus = generate(&WorkloadSpec::default().with_pages(2).with_seed(6));
    for (name, bursty) in [
        ("loss_model_iid_1pct", false),
        ("loss_model_bursty_1pct", true),
    ] {
        let mut cfg = VisitConfig::default()
            .with_mode(ProtocolMode::H2Only)
            .with_loss_percent(1.0);
        cfg.bursty_loss = bursty;
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    visit_page(&corpus.pages[0], &corpus.domains, &cfg, TicketStore::new())
                        .har
                        .plt_ms,
                )
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cc_ablation, bench_loss_model_ablation
}
criterion_main!(benches);
