//! Micro-benchmarks of the substrates: corpus generation, full page
//! visits per protocol, raw transport transfers, and the analysis
//! kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use h3cdn::browser::{visit_page, ProtocolMode, VisitConfig};
use h3cdn::http::h2::{H2Client, TcpServer};
use h3cdn::http::h3::{H3Client, QuicServer};
use h3cdn::http::{Catalog, RequestMeta, ResponseSpec};
use h3cdn::netsim::NodeId;
use h3cdn::sim_core::{SimDuration, SimTime};
use h3cdn::transport::duplex::Duplex;
use h3cdn::transport::quic::QuicConfig;
use h3cdn::transport::tcp::TcpConfig;
use h3cdn::transport::tls::{TicketStore, TlsConfig};
use h3cdn::transport::ConnId;
use h3cdn::web::{generate, WorkloadSpec};
use h3cdn_analysis::{ccdf_points, kmeans};
use std::hint::black_box;

fn transfer_catalog(n: u64, body: u64) -> std::sync::Arc<Catalog> {
    let mut cat = Catalog::new();
    for id in 1..=n {
        cat.register(
            id,
            ResponseSpec {
                header_bytes: 250,
                body_bytes: body,
                processing: SimDuration::ZERO,
                priority: h3cdn::http::types::priority::NORMAL,
            },
        );
    }
    cat.into_shared()
}

fn bench_corpus(c: &mut Criterion) {
    c.bench_function("corpus_generate_50_pages", |b| {
        b.iter(|| {
            black_box(generate(
                &WorkloadSpec::default().with_pages(50).with_seed(1),
            ))
        });
    });
}

fn bench_visits(c: &mut Criterion) {
    let corpus = generate(&WorkloadSpec::default().with_pages(3).with_seed(2));
    for (name, mode) in [
        ("visit_page_h2", ProtocolMode::H2Only),
        ("visit_page_h3", ProtocolMode::H3Enabled),
    ] {
        let cfg = VisitConfig::default().with_mode(mode);
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(visit_page(
                    &corpus.pages[0],
                    &corpus.domains,
                    &cfg,
                    TicketStore::new(),
                ))
            });
        });
    }
}

fn bench_transports(c: &mut Criterion) {
    let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
    let tcp = TcpConfig {
        initial_rtt: SimDuration::from_millis(40),
        ..TcpConfig::default()
    };
    let quic = QuicConfig {
        initial_rtt: SimDuration::from_millis(40),
        ..QuicConfig::default()
    };

    c.bench_function("h2_transfer_1mb", |b| {
        b.iter(|| {
            let client = H2Client::new(id, tcp.clone(), TlsConfig::default());
            let server = TcpServer::new(
                id,
                tcp.clone(),
                transfer_catalog(8, 128 * 1024),
                SimDuration::ZERO,
            );
            let mut pipe = Duplex::new(client, server, SimDuration::from_millis(20));
            pipe.a.connect(SimTime::ZERO);
            for i in 1..=8 {
                pipe.a.send_request(RequestMeta {
                    id: i,
                    header_bytes: 300,
                });
            }
            pipe.run(10_000_000);
            black_box(pipe.b.requests_served())
        });
    });

    c.bench_function("h3_transfer_1mb", |b| {
        b.iter(|| {
            let client = H3Client::new(id, quic.clone(), None, false);
            let server = QuicServer::new(
                id,
                quic.clone(),
                transfer_catalog(8, 128 * 1024),
                SimDuration::ZERO,
            );
            let mut pipe = Duplex::new(client, server, SimDuration::from_millis(20));
            pipe.a.connect(SimTime::ZERO);
            for i in 1..=8 {
                pipe.a.send_request(RequestMeta {
                    id: i,
                    header_bytes: 300,
                });
            }
            pipe.run(10_000_000);
            black_box(pipe.b.requests_served())
        });
    });
}

fn bench_analysis(c: &mut Criterion) {
    let values: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 1000) as f64).collect();
    c.bench_function("ccdf_10k_points", |b| {
        b.iter(|| black_box(ccdf_points(&values)));
    });
    let points: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            (0..58)
                .map(|d| f64::from(u8::from((i + d) % 7 == 0)))
                .collect()
        })
        .collect();
    c.bench_function("kmeans_300x58", |b| {
        b.iter(|| black_box(kmeans(&points, 2, 100, 1)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corpus, bench_visits, bench_transports, bench_analysis
}
criterion_main!(benches);
