//! One benchmark per paper table/figure: regenerates each artifact on a
//! small fixed corpus. Besides timing the pipeline, every benchmark is a
//! smoke test that the regenerator still runs end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use h3cdn::Vantage;
use h3cdn_bench::{bench_campaign, BENCH_PAGES};
use h3cdn_experiments as ex;
use std::hint::black_box;

fn bench_tables_and_figures(c: &mut Criterion) {
    let campaign = bench_campaign();
    let v = Vantage::Utah;

    c.bench_function("table1_registry", |b| {
        b.iter(|| black_box(ex::table1::run()));
    });
    c.bench_function("table2_adoption", |b| {
        b.iter(|| black_box(ex::table2::run(&campaign, v)));
    });
    c.bench_function("fig2_provider_share", |b| {
        b.iter(|| black_box(ex::fig2::run(&campaign, v)));
    });
    c.bench_function("fig3_ccdf", |b| {
        b.iter(|| black_box(ex::fig3::run(&campaign)));
    });
    c.bench_function("fig4_sharing", |b| {
        b.iter(|| black_box(ex::fig4::run(&campaign)));
    });
    c.bench_function("fig5_centralisation", |b| {
        b.iter(|| black_box(ex::fig5::run(&campaign)));
    });

    // The paired dataset feeding Figs. 6 and 7.
    let comparisons: Vec<_> = (0..BENCH_PAGES)
        .map(|s| campaign.compare_page(s, v))
        .collect();
    c.bench_function("fig6_plt_reduction", |b| {
        b.iter(|| black_box(ex::fig6::run(&comparisons)));
    });
    c.bench_function("fig7_reuse", |b| {
        b.iter(|| black_box(ex::fig7::run(&comparisons)));
    });

    c.bench_function("fig8_resumption", |b| {
        b.iter(|| black_box(ex::fig8::run(&campaign, v, 1)));
    });
    c.bench_function("table3_kmeans", |b| {
        b.iter(|| black_box(ex::table3::run(&campaign, v, 1)));
    });
    c.bench_function("fig9_loss_sweep", |b| {
        b.iter(|| black_box(ex::fig9::run(&campaign, v, &[0.0, 1.0])));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables_and_figures
}
criterion_main!(benches);
