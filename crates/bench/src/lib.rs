//! Shared helpers for the benchmark targets.
//!
//! Three suites live under `benches/`:
//!
//! * `paper_experiments` — one benchmark per paper table/figure, each
//!   regenerating the artifact on a small fixed corpus so regressions in
//!   any layer show up as timing changes;
//! * `components` — micro-benchmarks of the substrates (corpus
//!   generation, TCP/QUIC transfers, page visits, k-means);
//! * `ablations` — the design-choice ablations DESIGN.md calls out
//!   (Cubic vs NewReno, IID vs bursty loss).

use h3cdn::{CampaignConfig, MeasurementCampaign};

/// The corpus size used by the per-figure benchmarks.
pub const BENCH_PAGES: usize = 6;

/// A small, fixed campaign shared across benchmark iterations.
pub fn bench_campaign() -> MeasurementCampaign {
    MeasurementCampaign::new(CampaignConfig::small(BENCH_PAGES, 0xBE_AC4))
}
