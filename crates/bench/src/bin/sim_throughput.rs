//! `sim_throughput` — the simulator hot-path benchmark and perf ratchet.
//!
//! Measures raw event-loop throughput (events/sec) and end-to-end visit
//! throughput (visits/sec) on a fixed campaign workload: every page of a
//! seeded corpus is visited in H2-only and H3-enabled mode, then once
//! more in a consecutive H3 pass that carries the ticket store forward
//! (session resumption exercises the 0-RTT paths). The event *count* of
//! the workload is deterministic; only the elapsed wall time varies.
//!
//! ```text
//! sim_throughput [--pages N] [--seed S] [--reps R] [--smoke]
//!                [--json PATH]              write the measurement (machine-readable)
//!                [--check PATH]             gate against the last committed entry
//!                [--tolerance F]            allowed events/sec regression (default 0.35,
//!                                           i.e. fail below 65% of baseline; the
//!                                           H3CDN_BENCH_TOLERANCE env var overrides)
//!                [--update-baseline PATH]   append this measurement to the trajectory
//!                [--label L]                trajectory label (default: git hash)
//! ```
//!
//! The committed trajectory lives in `BENCH_sim.json` at the repo root;
//! `scripts/ci.sh` runs `--smoke --check BENCH_sim.json` so an
//! events/sec regression beyond the tolerance fails CI, exactly like the
//! panic ratchet. Structural changes that legitimately alter the event
//! count or the achievable rate are recorded with
//! `--update-baseline BENCH_sim.json` and justified in review.
//!
//! `--population` swaps the workload for the population-scale
//! page-record generator (`h3cdn_web::population`): visits count
//! generated pages, events count generated requests. Its rows ratchet
//! independently — `--check` matches baseline entries on
//! `(pages, seed, reps)`, so the visit sweep and the population sweep
//! coexist in one trajectory file.

use std::process::ExitCode;
use std::time::Instant;

use h3cdn::cdn::EdgeConfig;
use h3cdn::netsim::DynamicsProfile;
use h3cdn_browser::{run_swarm, visit_page, ProtocolMode, SwarmConfig, VisitConfig};
use h3cdn_transport::tls::TicketStore;
use h3cdn_web::{generate, page_record, Corpus, PopulationSpec, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Default corpus size for a full run.
const DEFAULT_PAGES: usize = 12;
/// Corpus size in `--smoke` mode (the CI gate).
const SMOKE_PAGES: usize = 5;
/// Population size for a full `--population` run.
const POPULATION_PAGES: usize = 100_000;
/// Population size in `--population --smoke` mode (the CI gate).
const POPULATION_SMOKE_PAGES: usize = 20_000;
/// Fixed corpus seed: the workload must be identical across runs and
/// machines for the events count to be comparable.
const DEFAULT_SEED: u64 = 0xBE_AC4;
/// Default allowed fractional events/sec regression before the gate
/// fails (generous, because CI wall-clock is noisy; the deterministic
/// events-count drift gate below is tight).
const DEFAULT_TOLERANCE: f64 = 0.35;
/// Allowed fractional drift in the *deterministic* event count before
/// the gate demands an explicit `--update-baseline`.
const EVENTS_DRIFT_TOLERANCE: f64 = 0.10;

/// One measurement in the committed trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    /// Provenance label (git hash or a human-chosen tag).
    label: String,
    /// Corpus size of the workload.
    pages: usize,
    /// Corpus seed of the workload.
    seed: u64,
    /// Timed repetitions of the sweep.
    reps: usize,
    /// Page visits performed (all reps).
    visits: u64,
    /// Simulator events dispatched (all reps; deterministic).
    events: u64,
    /// Wall-clock time for all reps, milliseconds.
    elapsed_ms: f64,
    /// Events dispatched per wall-clock second.
    events_per_sec: f64,
    /// Visits completed per wall-clock second.
    visits_per_sec: f64,
}

/// The committed `BENCH_sim.json` trajectory: one entry per recorded
/// measurement, oldest first. The ratchet gate compares against the
/// last entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trajectory {
    /// File format version.
    schema: u32,
    /// Human description of the fixed workload.
    workload: String,
    /// Recorded measurements, oldest first.
    entries: Vec<BenchEntry>,
}

#[derive(Debug)]
struct Args {
    pages: usize,
    seed: u64,
    reps: usize,
    json: Option<String>,
    check: Option<String>,
    update_baseline: Option<String>,
    tolerance: f64,
    label: Option<String>,
    dynamics: bool,
    edge: bool,
    population: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        pages: DEFAULT_PAGES,
        seed: DEFAULT_SEED,
        reps: 3,
        json: None,
        check: None,
        update_baseline: None,
        tolerance: std::env::var("H3CDN_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_TOLERANCE),
        label: None,
        dynamics: false,
        edge: false,
        population: false,
    };
    let mut smoke = false;
    let mut pages_explicit = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pages" => {
                a.pages = expect_parse(args.next(), "--pages");
                pages_explicit = true;
            }
            "--seed" => a.seed = expect_parse(args.next(), "--seed"),
            "--reps" => a.reps = expect_parse(args.next(), "--reps"),
            "--smoke" => {
                smoke = true;
                a.reps = 2;
            }
            "--json" => a.json = Some(expect_value(args.next(), "--json")),
            "--check" => a.check = Some(expect_value(args.next(), "--check")),
            "--tolerance" => a.tolerance = expect_parse(args.next(), "--tolerance"),
            "--update-baseline" => {
                a.update_baseline = Some(expect_value(args.next(), "--update-baseline"));
            }
            "--label" => a.label = Some(expect_value(args.next(), "--label")),
            "--dynamics" => a.dynamics = true,
            "--edge" => a.edge = true,
            "--population" => a.population = true,
            "--help" | "-h" => {
                println!(
                    "sim_throughput: simulator hot-path benchmark + perf ratchet\n\
                     flags: --pages N  --seed S  --reps R  --smoke  --json PATH\n\
                     \x20      --check PATH  --tolerance F  --update-baseline PATH  --label L\n\
                     \x20      --dynamics    (add a continuous-path-dynamics pass to the sweep)\n\
                     \x20      --edge        (add an overloaded-edge swarm pass to the sweep)\n\
                     \x20      --population  (benchmark the population page-record generator\n\
                     \x20                     instead of the visit sweep; its own baseline row)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("sim_throughput: unknown flag {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    if !pages_explicit {
        a.pages = match (a.population, smoke) {
            (true, true) => POPULATION_SMOKE_PAGES,
            (true, false) => POPULATION_PAGES,
            (false, true) => SMOKE_PAGES,
            (false, false) => DEFAULT_PAGES,
        };
    }
    assert!(a.reps > 0, "--reps must be positive");
    a
}

fn expect_value(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("sim_throughput: {flag} expects a value");
        std::process::exit(2);
    })
}

fn expect_parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    expect_value(v, flag).parse().unwrap_or_else(|_| {
        eprintln!("sim_throughput: {flag} expects a number");
        std::process::exit(2);
    })
}

/// One sweep over the fixed workload; returns `(visits, events)`.
fn sweep(corpus: &Corpus, dynamics: bool, edge: bool) -> (u64, u64) {
    let mut visits = 0u64;
    let mut events = 0u64;
    // Isolated visits, both protocol modes.
    for mode in [ProtocolMode::H2Only, ProtocolMode::H3Enabled] {
        let cfg = VisitConfig::default().with_mode(mode);
        for page in &corpus.pages {
            let outcome = visit_page(page, &corpus.domains, &cfg, TicketStore::new());
            visits += 1;
            events += outcome.stats.sim_events;
        }
    }
    // Consecutive H3 pass carrying the ticket store (0-RTT resumption).
    let cfg = VisitConfig::default();
    let mut tickets = TicketStore::new();
    for page in &corpus.pages {
        let outcome = visit_page(page, &corpus.domains, &cfg, tickets);
        tickets = outcome.tickets;
        visits += 1;
        events += outcome.stats.sim_events;
    }
    // Optional continuous-dynamics pass: the oscillating bottleneck
    // exercises the per-packet trace sampling, set_rate drains and
    // queue-stat accounting. Off by default so the committed
    // trajectory's event counts stay comparable.
    if dynamics {
        let cfg =
            VisitConfig::default().with_path_dynamics(Some(DynamicsProfile::OscillatingBottleneck));
        for page in &corpus.pages {
            let outcome = visit_page(page, &corpus.domains, &cfg, TicketStore::new());
            visits += 1;
            events += outcome.stats.sim_events;
        }
    }
    // Optional overloaded-edge swarm pass: a thundering herd against a
    // handshake-CPU-starved admission controller exercises refusal
    // wiring, fallback storms and the re-dial backoff. Off by default
    // for the same reason as the dynamics pass.
    if edge {
        let cfg = VisitConfig::default().with_h3_fallback(true);
        let shape = SwarmConfig {
            clients: 6,
            arrival_spacing: h3cdn::sim_core::SimDuration::ZERO,
            edge: Some(EdgeConfig {
                cpu_tokens_per_sec: 40,
                cpu_token_burst: 80,
                tcp_handshake_tokens: 1,
                quic_handshake_tokens: 40,
                ..EdgeConfig::default()
            }),
        };
        for page in &corpus.pages {
            let out = run_swarm(page, &corpus.domains, &cfg, &shape)
                .expect("the starved-edge profiling budget validates");
            visits += out.clients.len() as u64;
            events += out.stats.sim_events;
        }
    }
    (visits, events)
}

/// One sweep over the population workload: generates every page record
/// of a fixed synthetic Internet. `visits` counts pages, `events`
/// counts generated requests (both deterministic).
fn population_sweep(spec: &PopulationSpec) -> (u64, u64) {
    let mut visits = 0u64;
    let mut events = 0u64;
    for site in 0..spec.num_pages {
        let r = page_record(spec, site);
        visits += 1;
        events += u64::from(r.requests);
    }
    (visits, events)
}

fn measure(args: &Args) -> BenchEntry {
    let sweep_once: Box<dyn Fn() -> (u64, u64)> = if args.population {
        let spec = PopulationSpec::default()
            .with_pages(args.pages as u64)
            .with_seed(args.seed);
        Box::new(move || population_sweep(&spec))
    } else {
        let corpus = generate(
            &WorkloadSpec::default()
                .with_pages(args.pages)
                .with_seed(args.seed),
        );
        let (dynamics, edge) = (args.dynamics, args.edge);
        Box::new(move || sweep(&corpus, dynamics, edge))
    };
    // Warmup: one untimed sweep (page/cache/branch-predictor warm state).
    let (warm_visits, warm_events) = sweep_once();
    let start = Instant::now();
    let mut visits = 0u64;
    let mut events = 0u64;
    for _ in 0..args.reps {
        let (v, e) = sweep_once();
        visits += v;
        events += e;
    }
    let elapsed = start.elapsed();
    assert_eq!(
        (
            warm_visits * args.reps as u64,
            warm_events * args.reps as u64
        ),
        (visits, events),
        "the workload must be deterministic across sweeps"
    );
    let secs = elapsed.as_secs_f64().max(1e-9);
    BenchEntry {
        label: args
            .label
            .clone()
            .unwrap_or_else(h3cdn::persist::workspace_git_hash),
        pages: args.pages,
        seed: args.seed,
        reps: args.reps,
        visits,
        events,
        elapsed_ms: secs * 1e3,
        events_per_sec: events as f64 / secs,
        visits_per_sec: visits as f64 / secs,
    }
}

fn load_trajectory(path: &str) -> Result<Trajectory, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: malformed trajectory: {e}"))
}

fn store_trajectory(path: &str, t: &Trajectory) -> Result<(), String> {
    let json = serde_json::to_string_pretty(t).map_err(|e| format!("serialise: {e}"))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("{path}: cannot write: {e}"))
}

fn workload_name(args: &Args) -> String {
    if args.population {
        format!(
            "population sweep: {} page records (seed {:#x}), events = generated requests",
            args.pages, args.seed
        )
    } else {
        format!(
            "campaign sweep: {} pages (seed {:#x}), h2 + h3 isolated visits + consecutive h3 pass",
            args.pages, args.seed
        )
    }
}

/// Gates `fresh` against the last committed entry *for the same
/// workload* — entries are matched on `(pages, seed, reps)`, so the
/// static visit sweep and the population sweep ratchet independently
/// inside one trajectory file. Returns an error message when the
/// ratchet trips.
fn check(fresh: &BenchEntry, baseline_path: &str, tolerance: f64) -> Result<String, String> {
    let traj = load_trajectory(baseline_path)?;
    let Some(base) = traj
        .entries
        .iter()
        .rev()
        .find(|e| (e.pages, e.seed, e.reps) == (fresh.pages, fresh.seed, fresh.reps))
    else {
        return Err(format!(
            "{baseline_path}: no trajectory entry matches this workload \
             ({} pages / seed {:#x} / {} reps) — record one with \
             `--update-baseline {baseline_path}`, passing the same flags",
            fresh.pages, fresh.seed, fresh.reps
        ));
    };
    // Deterministic structural gate: the event count of the fixed
    // workload only moves when the stack itself changes behaviour.
    let drift = (fresh.events as f64 - base.events as f64).abs() / base.events.max(1) as f64;
    if drift > EVENTS_DRIFT_TOLERANCE {
        return Err(format!(
            "event count drifted {:.1}% ({} -> {}): the workload's dispatch sequence \
             changed structurally; if intended, record it with \
             `sim_throughput --smoke --update-baseline {baseline_path}`",
            drift * 100.0,
            base.events,
            fresh.events
        ));
    }
    // Wall-clock gate: events/sec must not regress beyond the tolerance.
    let floor = base.events_per_sec * (1.0 - tolerance);
    if fresh.events_per_sec < floor {
        return Err(format!(
            "events/sec regressed: {:.0} vs baseline {:.0} (floor {:.0} at {:.0}% tolerance); \
             if this machine is simply slower, raise H3CDN_BENCH_TOLERANCE; if the change \
             is a justified trade, record it with \
             `sim_throughput --smoke --update-baseline {baseline_path}`",
            fresh.events_per_sec,
            base.events_per_sec,
            floor,
            tolerance * 100.0
        ));
    }
    Ok(format!(
        "events/sec {:.0} vs baseline {:.0} ({:+.1}%), event count drift {:.2}%",
        fresh.events_per_sec,
        base.events_per_sec,
        (fresh.events_per_sec / base.events_per_sec - 1.0) * 100.0,
        drift * 100.0
    ))
}

fn main() -> ExitCode {
    let args = parse_args();
    // The population sweep is a different workload entirely; the visit
    // profiling passes cannot be mixed into it.
    if args.population && (args.dynamics || args.edge) {
        eprintln!(
            "sim_throughput: --population benchmarks the page-record generator; \
             it cannot be combined with --dynamics or --edge"
        );
        return ExitCode::from(2);
    }
    // The dynamics and edge passes change the workload's event counts,
    // so they can never be compared against (or recorded into) the
    // committed static-workload trajectory.
    if (args.dynamics || args.edge) && (args.check.is_some() || args.update_baseline.is_some()) {
        let flag = if args.dynamics {
            "--dynamics"
        } else {
            "--edge"
        };
        eprintln!(
            "sim_throughput: {flag} is a profiling mode; it cannot be \
             combined with --check or --update-baseline (the committed \
             trajectory measures the static workload)"
        );
        return ExitCode::from(2);
    }
    let entry = measure(&args);
    println!(
        "sim_throughput: {} pages x {} reps: {} visits, {} events in {:.0} ms",
        args.pages, args.reps, entry.visits, entry.events, entry.elapsed_ms
    );
    println!(
        "sim_throughput: {:.0} events/sec, {:.1} visits/sec",
        entry.events_per_sec, entry.visits_per_sec
    );

    if let Some(path) = &args.json {
        let traj = Trajectory {
            schema: 1,
            workload: workload_name(&args),
            entries: vec![entry.clone()],
        };
        if let Err(e) = store_trajectory(path, &traj) {
            eprintln!("sim_throughput: {e}");
            return ExitCode::from(2);
        }
        println!("sim_throughput: wrote {path}");
    }

    if let Some(path) = &args.update_baseline {
        let mut traj = load_trajectory(path).unwrap_or(Trajectory {
            schema: 1,
            workload: workload_name(&args),
            entries: Vec::new(),
        });
        traj.entries.push(entry.clone());
        if let Err(e) = store_trajectory(path, &traj) {
            eprintln!("sim_throughput: {e}");
            return ExitCode::from(2);
        }
        println!(
            "sim_throughput: appended trajectory entry #{} to {path}",
            traj.entries.len()
        );
    }

    if let Some(path) = &args.check {
        match check(&entry, path, args.tolerance) {
            Ok(msg) => println!("sim_throughput: ratchet OK — {msg}"),
            Err(msg) => {
                eprintln!("sim_throughput: RATCHET FAILED — {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
