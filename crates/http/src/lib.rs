//! HTTP/1.1, HTTP/2, and HTTP/3 clients and servers over the simulated
//! transports.
//!
//! The three protocol stacks the paper measures map onto the two
//! transports of `h3cdn-transport`:
//!
//! * [`h1::H1Client`] — one request at a time per TLS-over-TCP connection
//!   (browsers open up to six per host; the pool layer enforces that).
//! * [`h2::H2Client`] — all requests multiplexed onto one TLS-over-TCP
//!   connection. The server interleaves response DATA across streams
//!   (round-robin chunks), but everything rides one in-order byte stream,
//!   so a single lost segment stalls every response — H2's head-of-line
//!   blocking.
//! * [`h3::H3Client`] — one QUIC stream per request; streams deliver
//!   independently.
//!
//! Servers are protocol-thin: a [`h2::TcpServer`] answers both H1 and H2
//! clients (the difference is purely client-side scheduling), and a
//! [`h3::QuicServer`] answers H3. Both look responses up in a shared
//! [`Catalog`] and simulate per-request processing time — with a
//! configurable H3 compute surcharge, reproducing the paper's finding
//! that H3's *wait* median is slightly negative (§VI-B, citing the
//! paper's refs 37 and 38).

pub mod client;
pub mod h1;
pub mod h2;
pub mod h3;
pub mod server;
pub mod types;

pub use client::ClientConn;
pub use server::ServerConn;
pub use types::{Catalog, HttpEvent, HttpVersion, RequestMeta, ResponseSpec};
