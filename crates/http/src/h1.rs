//! HTTP/1.1 client: one outstanding request per connection.
//!
//! H1 has no multiplexing — requests on one connection are strictly
//! serial (we model keep-alive, no pipelining, matching modern browser
//! behaviour). Browsers compensate with up to six parallel connections
//! per host; that limit lives in the pool layer (`h3cdn-browser`).

use std::collections::VecDeque;

use h3cdn_sim_core::SimTime;
use h3cdn_transport::tcp::TcpConfig;
use h3cdn_transport::tls::{SecureTcp, TlsConfig, TlsEvent};
use h3cdn_transport::{ConnId, WirePacket};

use crate::types::{decode_tag, request_tag, HttpEvent, RequestMeta, TagKind};

/// HTTP/1.1 request-header overhead relative to the compressed H2/H3
/// form: H1 headers are uncompressed, roughly 3× larger.
const H1_HEADER_FACTOR: u64 = 3;

/// An HTTP/1.1 client connection (serial requests over TLS/TCP).
#[derive(Debug)]
pub struct H1Client {
    conn: SecureTcp,
    queue: VecDeque<RequestMeta>,
    in_flight: Option<u64>,
    connected: bool,
    events: VecDeque<HttpEvent>,
    requests_sent: u64,
}

impl H1Client {
    /// Creates a client connection (not yet connected).
    pub fn new(id: ConnId, tcp: TcpConfig, tls: TlsConfig) -> Self {
        H1Client {
            conn: SecureTcp::client(id, tcp, tls),
            queue: VecDeque::new(),
            in_flight: None,
            connected: false,
            events: VecDeque::new(),
            requests_sent: 0,
        }
    }

    /// Starts the TCP + TLS handshake.
    pub fn connect(&mut self, now: SimTime) {
        self.conn.connect(now);
    }

    /// Queues a request; it is sent when the connection is idle.
    pub fn send_request(&mut self, req: RequestMeta) {
        self.queue.push_back(req);
        self.maybe_dispatch();
    }

    /// Requests waiting for the connection to become idle.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a request is currently outstanding.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Total requests put on the wire so far.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// The underlying secure channel (diagnostics).
    pub fn secure(&self) -> &SecureTcp {
        &self.conn
    }

    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: WirePacket, now: SimTime) {
        match pkt {
            WirePacket::Tcp(seg) => self.conn.on_segment(seg, now),
            WirePacket::Quic(_) => debug_assert!(false, "QUIC packet on an H1 connection"),
        }
        self.translate();
    }

    /// Fires expired timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
        self.translate();
    }

    /// Next timer deadline.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }

    /// Produces the next packet to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<WirePacket> {
        self.translate();
        self.conn.poll_transmit(now).map(WirePacket::Tcp)
    }

    /// Pops the next HTTP event.
    pub fn poll_event(&mut self) -> Option<HttpEvent> {
        self.translate();
        self.events.pop_front()
    }

    fn translate(&mut self) {
        while let Some(ev) = self.conn.poll_event() {
            match ev {
                TlsEvent::HandshakeComplete { at } => {
                    self.connected = true;
                    self.events.push_back(HttpEvent::Connected { at });
                    self.maybe_dispatch();
                }
                TlsEvent::TcpEstablished { .. } => {}
                TlsEvent::TicketIssued { at } => {
                    self.events.push_back(HttpEvent::TicketIssued { at });
                }
                TlsEvent::Closed { at, reason } => {
                    self.events
                        .push_back(HttpEvent::ConnectionClosed { at, reason });
                }
                TlsEvent::Delivered { tag, at } => match decode_tag(tag) {
                    TagKind::ResponseHeaders(id) => {
                        self.events.push_back(HttpEvent::ResponseHeaders { id, at });
                    }
                    TagKind::ResponseDone(id) => {
                        debug_assert_eq!(self.in_flight, Some(id), "response for idle request");
                        self.in_flight = None;
                        self.events
                            .push_back(HttpEvent::ResponseComplete { id, at });
                        self.maybe_dispatch();
                    }
                    TagKind::ResponseChunk(_) => {}
                    TagKind::Request(id) => {
                        debug_assert!(false, "request {id} echoed to client");
                    }
                },
            }
        }
    }

    fn maybe_dispatch(&mut self) {
        if !self.connected || self.in_flight.is_some() {
            return;
        }
        if let Some(req) = self.queue.pop_front() {
            self.in_flight = Some(req.id);
            self.requests_sent += 1;
            self.conn
                .write_app(req.header_bytes * H1_HEADER_FACTOR, request_tag(req.id));
        }
    }
}

impl h3cdn_transport::duplex::Driveable for H1Client {
    type Wire = WirePacket;

    fn on_wire(&mut self, wire: WirePacket, now: SimTime) {
        self.on_packet(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<WirePacket> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.conn.close_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h2::TcpServer;
    use crate::types::{Catalog, ResponseSpec};
    use h3cdn_netsim::NodeId;
    use h3cdn_sim_core::SimDuration;
    use h3cdn_transport::duplex::Duplex;
    use std::sync::Arc;

    const RTT_MS: u64 = 40;

    fn catalog(n: u64, body: u64) -> Arc<Catalog> {
        let mut cat = Catalog::new();
        for id in 1..=n {
            cat.register(
                id,
                ResponseSpec {
                    header_bytes: 250,
                    body_bytes: body,
                    processing: SimDuration::ZERO,
                    priority: crate::types::priority::NORMAL,
                },
            );
        }
        cat.into_shared()
    }

    fn pair(cat: Arc<Catalog>) -> Duplex<H1Client, TcpServer> {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let tcp = TcpConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..TcpConfig::default()
        };
        let client = H1Client::new(id, tcp.clone(), TlsConfig::default());
        let server = TcpServer::new(id, tcp, cat, SimDuration::ZERO);
        Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2))
    }

    fn completions(c: &mut H1Client) -> Vec<(u64, SimTime)> {
        std::iter::from_fn(|| c.poll_event())
            .filter_map(|e| match e {
                HttpEvent::ResponseComplete { id, at } => Some((id, at)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn requests_are_strictly_serial() {
        let mut pipe = pair(catalog(3, 4_000));
        pipe.a.connect(SimTime::ZERO);
        for id in 1..=3 {
            pipe.a.send_request(RequestMeta {
                id,
                header_bytes: 300,
            });
        }
        assert_eq!(pipe.a.queued_len(), 3, "nothing dispatches before TLS");
        pipe.run(400_000);
        let done = completions(&mut pipe.a);
        assert_eq!(done.len(), 3);
        // Serial: each response completes at least ~1 RTT after the
        // previous (request + response round trip).
        assert!(done[1].1 - done[0].1 >= SimDuration::from_millis(RTT_MS));
        assert!(done[2].1 - done[1].1 >= SimDuration::from_millis(RTT_MS));
        // And in request order.
        assert_eq!(
            done.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn busy_flag_tracks_in_flight() {
        let mut pipe = pair(catalog(1, 1_000));
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.run(400_000);
        assert!(!pipe.a.is_busy(), "idle after the response completed");
        assert_eq!(pipe.a.requests_sent(), 1);
    }

    #[test]
    fn h1_headers_are_fatter_than_h2() {
        // Same logical request costs ~3× the header bytes on the wire;
        // verify via requests_sent accounting + server delivery.
        let mut pipe = pair(catalog(1, 1_000));
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.run(400_000);
        assert_eq!(pipe.b.requests_served(), 1);
    }
}
