//! HTTP/2 client and the TCP server that answers H1 and H2 clients.
//!
//! The client multiplexes every request onto one [`SecureTcp`] connection.
//! The server interleaves concurrent response bodies in 16 KiB round-robin
//! chunks — as real H2 servers interleave DATA frames — by keeping a pump
//! of queued bytes just ahead of the transport. Because everything shares
//! one in-order TCP stream, loss anywhere stalls all streams: the
//! head-of-line blocking the paper contrasts with H3.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::tcp::TcpConfig;
use h3cdn_transport::tls::{SecureTcp, TlsConfig, TlsEvent};
use h3cdn_transport::{ConnId, WirePacket};

use crate::types::{
    decode_tag, request_tag, response_chunk_tag, response_done_tag, response_headers_tag, Catalog,
    HttpEvent, RequestMeta, TagKind, FRAME_OVERHEAD,
};

/// Body bytes per interleaved DATA chunk.
const CHUNK_BYTES: u64 = 16 * 1024;
/// The pump keeps at most this many un-transmitted bytes queued in TCP.
/// Kept shallow (three chunks) so freshly cooked response HEADERS — which
/// enter the stream behind the queued chunks — wait as little as a
/// priority-aware H2 server would allow.
const PUMP_HIGH_WATER: u64 = 48 * 1024;

/// An HTTP/2 client connection: many concurrent requests, one TLS/TCP
/// connection.
#[derive(Debug)]
pub struct H2Client {
    conn: SecureTcp,
    events: VecDeque<HttpEvent>,
    requests_sent: u64,
}

impl H2Client {
    /// Creates a client connection (not yet connected).
    pub fn new(id: ConnId, tcp: TcpConfig, tls: TlsConfig) -> Self {
        H2Client {
            conn: SecureTcp::client(id, tcp, tls),
            events: VecDeque::new(),
            requests_sent: 0,
        }
    }

    /// Starts the TCP + TLS handshake.
    pub fn connect(&mut self, now: SimTime) {
        self.conn.connect(now);
    }

    /// Issues a request; it is transmitted as soon as TLS permits
    /// (immediately under 0-RTT early data).
    pub fn send_request(&mut self, req: RequestMeta) {
        self.requests_sent += 1;
        self.conn
            .write_app(req.header_bytes + FRAME_OVERHEAD, request_tag(req.id));
    }

    /// Total requests issued on this connection.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// The underlying secure channel (timing/resumption diagnostics).
    pub fn secure(&self) -> &SecureTcp {
        &self.conn
    }

    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: WirePacket, now: SimTime) {
        match pkt {
            WirePacket::Tcp(seg) => self.conn.on_segment(seg, now),
            WirePacket::Quic(_) => debug_assert!(false, "QUIC packet on an H2 connection"),
        }
        self.translate();
    }

    /// Fires expired timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
        self.translate();
    }

    /// Next timer deadline.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }

    /// Produces the next packet to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<WirePacket> {
        self.translate();
        self.conn.poll_transmit(now).map(WirePacket::Tcp)
    }

    /// Pops the next HTTP event.
    pub fn poll_event(&mut self) -> Option<HttpEvent> {
        self.translate();
        self.events.pop_front()
    }

    fn translate(&mut self) {
        while let Some(ev) = self.conn.poll_event() {
            match ev {
                TlsEvent::HandshakeComplete { at } => {
                    self.events.push_back(HttpEvent::Connected { at });
                }
                TlsEvent::TcpEstablished { .. } => {}
                TlsEvent::TicketIssued { at } => {
                    self.events.push_back(HttpEvent::TicketIssued { at });
                }
                TlsEvent::Closed { at, reason } => {
                    self.events
                        .push_back(HttpEvent::ConnectionClosed { at, reason });
                }
                TlsEvent::Delivered { tag, at } => match decode_tag(tag) {
                    TagKind::ResponseHeaders(id) => {
                        self.events.push_back(HttpEvent::ResponseHeaders { id, at });
                    }
                    TagKind::ResponseDone(id) => {
                        self.events
                            .push_back(HttpEvent::ResponseComplete { id, at });
                    }
                    TagKind::ResponseChunk(_) => {}
                    TagKind::Request(id) => {
                        debug_assert!(false, "request {id} echoed to client");
                    }
                },
            }
        }
    }
}

/// One pending response body in the server's interleaving pump.
#[derive(Debug)]
struct ActiveResponse {
    id: u64,
    remaining: u64,
    priority: u8,
}

/// The TCP-side server connection: answers one client's H1 or H2 requests
/// from a shared [`Catalog`], simulating per-request processing time.
#[derive(Debug)]
pub struct TcpServer {
    conn: SecureTcp,
    catalog: Arc<Catalog>,
    /// Extra processing added to every response (e.g. protocol surcharge).
    extra_processing: SimDuration,
    /// Requests whose processing completes at the keyed time.
    cooking: BTreeMap<SimTime, Vec<u64>>,
    /// Response bodies being interleaved.
    active: VecDeque<ActiveResponse>,
    requests_served: u64,
}

impl TcpServer {
    /// Creates the server side of one client connection.
    pub fn new(
        id: ConnId,
        tcp: TcpConfig,
        catalog: Arc<Catalog>,
        extra_processing: SimDuration,
    ) -> Self {
        TcpServer {
            conn: SecureTcp::server(id, tcp),
            catalog,
            extra_processing,
            cooking: BTreeMap::new(),
            active: VecDeque::new(),
            requests_served: 0,
        }
    }

    /// Requests fully answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Whether the underlying transport has closed (lets an edge return
    /// this connection's resources to its admission budgets).
    pub fn is_closed(&self) -> bool {
        self.conn.is_closed()
    }

    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: WirePacket, now: SimTime) {
        match pkt {
            WirePacket::Tcp(seg) => self.conn.on_segment(seg, now),
            WirePacket::Quic(_) => debug_assert!(false, "QUIC packet on a TCP server"),
        }
        self.process(now);
    }

    /// Fires expired timers (transport timers and finished processing).
    pub fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
        self.process(now);
    }

    /// Next timer deadline: transport or earliest response-ready time.
    pub fn next_timeout(&self) -> Option<SimTime> {
        let cooking = self.cooking.keys().next().copied();
        [self.conn.next_timeout(), cooking]
            .into_iter()
            .flatten()
            .min()
    }

    /// Produces the next packet to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<WirePacket> {
        self.process(now);
        self.conn.poll_transmit(now).map(WirePacket::Tcp)
    }

    fn process(&mut self, now: SimTime) {
        // 1. Ingest newly delivered requests.
        while let Some(ev) = self.conn.poll_event() {
            if let TlsEvent::Delivered { tag, at } = ev {
                if let TagKind::Request(id) = decode_tag(tag) {
                    let spec = self
                        .catalog
                        .get(id)
                        .unwrap_or_else(|| panic!("request {id} not in catalog"));
                    let ready = at + spec.processing + self.extra_processing;
                    self.cooking.entry(ready).or_default().push(id);
                }
            }
        }
        // 2. Move finished requests into the response pump.
        let ready: Vec<SimTime> = self.cooking.range(..=now).map(|(&t, _)| t).collect();
        for t in ready {
            for id in self.cooking.remove(&t).expect("cooked batch") {
                let spec = self.catalog.get(id).expect("catalog checked at ingest");
                self.conn
                    .write_app(spec.header_bytes + FRAME_OVERHEAD, response_headers_tag(id));
                if spec.body_bytes == 0 {
                    // Header-only response: completion rides on a 1-byte
                    // sentinel chunk so the done tag has a final byte.
                    self.conn.write_app(1, response_done_tag(id));
                    self.requests_served += 1;
                } else {
                    self.active.push_back(ActiveResponse {
                        id,
                        remaining: spec.body_bytes,
                        priority: spec.priority,
                    });
                }
            }
        }
        // 3. Pump interleaved body chunks, keeping the transport fed but
        //    not flooded (so streams actually interleave). Strict
        //    priority across classes (render-blocking content first),
        //    round-robin within a class — Chrome's H2 priority scheme at
        //    class granularity.
        while !self.active.is_empty() && self.conn.unsent_bytes() < PUMP_HIGH_WATER {
            let top = self
                .active
                .iter()
                .map(|r| r.priority)
                .min()
                .expect("non-empty");
            let pos = self
                .active
                .iter()
                .position(|r| r.priority == top)
                .expect("class member exists");
            let mut resp = self.active.remove(pos).expect("position valid");
            let take = resp.remaining.min(CHUNK_BYTES);
            resp.remaining -= take;
            if resp.remaining == 0 {
                self.conn.write_app(take, response_done_tag(resp.id));
                self.requests_served += 1;
            } else {
                self.conn.write_app(take, response_chunk_tag(resp.id));
                self.active.push_back(resp);
            }
        }
    }
}

impl h3cdn_transport::duplex::Driveable for H2Client {
    type Wire = WirePacket;

    fn on_wire(&mut self, wire: WirePacket, now: SimTime) {
        self.on_packet(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<WirePacket> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.conn.close_deadline()
    }
}

impl h3cdn_transport::duplex::Driveable for TcpServer {
    type Wire = WirePacket;

    fn on_wire(&mut self, wire: WirePacket, now: SimTime) {
        self.on_packet(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<WirePacket> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.conn.close_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ResponseSpec;
    use h3cdn_netsim::NodeId;
    use h3cdn_transport::duplex::Duplex;

    const RTT_MS: u64 = 40;

    fn catalog(entries: &[(u64, u64, u64)]) -> Arc<Catalog> {
        catalog_with_priority(
            &entries
                .iter()
                .map(|&(id, body, proc_ms)| (id, body, proc_ms, crate::types::priority::NORMAL))
                .collect::<Vec<_>>(),
        )
    }

    fn catalog_with_priority(entries: &[(u64, u64, u64, u8)]) -> Arc<Catalog> {
        let mut cat = Catalog::new();
        for &(id, body, proc_ms, priority) in entries {
            cat.register(
                id,
                ResponseSpec {
                    header_bytes: 250,
                    body_bytes: body,
                    processing: SimDuration::from_millis(proc_ms),
                    priority,
                },
            );
        }
        cat.into_shared()
    }

    fn pair(cat: Arc<Catalog>) -> Duplex<H2Client, TcpServer> {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let tcp = TcpConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..TcpConfig::default()
        };
        let client = H2Client::new(id, tcp.clone(), TlsConfig::default());
        let server = TcpServer::new(id, tcp, cat, SimDuration::ZERO);
        Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2))
    }

    fn events(c: &mut H2Client) -> Vec<HttpEvent> {
        std::iter::from_fn(|| c.poll_event()).collect()
    }

    fn complete_at(evs: &[HttpEvent], id: u64) -> Option<SimTime> {
        evs.iter().find_map(|e| match e {
            HttpEvent::ResponseComplete { id: i, at } if *i == id => Some(*at),
            _ => None,
        })
    }

    #[test]
    fn single_request_response_cycle() {
        let mut pipe = pair(catalog(&[(1, 10_000, 0)]));
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.run(200_000);
        let evs = events(&mut pipe.a);
        assert!(evs.iter().any(|e| matches!(e, HttpEvent::Connected { .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, HttpEvent::ResponseHeaders { id: 1, .. })));
        let done = complete_at(&evs, 1).expect("response complete");
        // 2 RTT handshake + 1 RTT request/response + transmission.
        assert!(done.as_millis_f64() >= 3.0 * RTT_MS as f64);
        assert!(done.as_millis_f64() < 5.0 * RTT_MS as f64);
        assert_eq!(pipe.b.requests_served(), 1);
    }

    #[test]
    fn processing_delay_shifts_first_byte() {
        let run = |proc_ms| {
            let mut pipe = pair(catalog(&[(1, 1_000, proc_ms)]));
            pipe.a.connect(SimTime::ZERO);
            pipe.a.send_request(RequestMeta {
                id: 1,
                header_bytes: 300,
            });
            pipe.run(200_000);
            let evs = events(&mut pipe.a);
            evs.iter()
                .find_map(|e| match e {
                    HttpEvent::ResponseHeaders { at, .. } => Some(*at),
                    _ => None,
                })
                .unwrap()
        };
        let fast = run(0);
        let slow = run(30);
        assert_eq!(slow - fast, SimDuration::from_millis(30));
    }

    #[test]
    fn concurrent_responses_interleave() {
        // Two equal 200 KB responses requested together must finish close
        // to each other (round-robin chunks), not strictly serially.
        let mut pipe = pair(catalog(&[(1, 200_000, 0), (2, 200_000, 0)]));
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.a.send_request(RequestMeta {
            id: 2,
            header_bytes: 300,
        });
        pipe.run(400_000);
        let evs = events(&mut pipe.a);
        let d1 = complete_at(&evs, 1).unwrap();
        let d2 = complete_at(&evs, 2).unwrap();
        let gap = d2.saturating_duration_since(d1).as_millis_f64().abs();
        // Serial delivery would separate completions by the full transfer
        // time of one body (many RTTs); interleaving keeps them within a
        // chunk's worth of each other.
        assert!(gap < 40.0, "responses not interleaved: gap {gap}ms");
        assert_eq!(pipe.b.requests_served(), 2);
    }

    #[test]
    fn high_priority_response_preempts_low() {
        use crate::types::priority;
        // Two equal large responses; the HIGH one is requested SECOND but
        // must complete well before the LOW one (strict priority).
        let mut pipe = pair(catalog_with_priority(&[
            (1, 300_000, 0, priority::LOW),
            (2, 300_000, 0, priority::HIGH),
        ]));
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.a.send_request(RequestMeta {
            id: 2,
            header_bytes: 300,
        });
        pipe.run(1_000_000);
        let evs = events(&mut pipe.a);
        let low = complete_at(&evs, 1).unwrap();
        let high = complete_at(&evs, 2).unwrap();
        assert!(
            high + SimDuration::from_millis(20) < low,
            "render-blocking content must finish first: high {high}, low {low}"
        );
    }

    #[test]
    fn header_only_response_completes() {
        let mut pipe = pair(catalog(&[(9, 0, 0)]));
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 9,
            header_bytes: 200,
        });
        pipe.run(200_000);
        let evs = events(&mut pipe.a);
        assert!(complete_at(&evs, 9).is_some());
    }

    #[test]
    fn many_small_responses_all_complete() {
        let specs: Vec<(u64, u64, u64)> = (1..=20).map(|i| (i, 8_000, 1)).collect();
        let mut pipe = pair(catalog(&specs));
        pipe.a.connect(SimTime::ZERO);
        for i in 1..=20 {
            pipe.a.send_request(RequestMeta {
                id: i,
                header_bytes: 300,
            });
        }
        pipe.run(1_000_000);
        let evs = events(&mut pipe.a);
        for i in 1..=20 {
            assert!(complete_at(&evs, i).is_some(), "response {i} missing");
        }
        assert_eq!(pipe.b.requests_served(), 20);
    }

    #[test]
    fn loss_stalls_both_streams_hol() {
        // H2's defining failure mode: drop one server data packet early in
        // the response burst — BOTH responses are delayed, because they
        // share one in-order byte stream. (Contrast with the QUIC test
        // `loss_on_one_stream_does_not_delay_the_other`.)
        let run = |drop: Vec<u64>| {
            let mut pipe = pair(catalog(&[(1, 6_000, 0), (2, 6_000, 0)])).drop_b_to_a(drop);
            pipe.a.connect(SimTime::ZERO);
            pipe.a.send_request(RequestMeta {
                id: 1,
                header_bytes: 300,
            });
            pipe.a.send_request(RequestMeta {
                id: 2,
                header_bytes: 300,
            });
            pipe.run(400_000);
            let evs = events(&mut pipe.a);
            (complete_at(&evs, 1).unwrap(), complete_at(&evs, 2).unwrap())
        };
        let clean = run(vec![]);
        // Index 8 lands inside the first response body (0 = SYN-ACK,
        // 1–3 = TLS flight, 4 = ticket, 5 = headers, 6+ = bodies).
        let lossy = run(vec![8]);
        assert!(
            lossy.0 > clean.0 && lossy.1 > clean.1,
            "one lost segment must delay BOTH H2 responses: clean {clean:?}, lossy {lossy:?}"
        );
    }

    #[test]
    #[should_panic(expected = "not in catalog")]
    fn unknown_request_panics() {
        let mut pipe = pair(catalog(&[]));
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 42,
            header_bytes: 100,
        });
        pipe.run(200_000);
    }
}
