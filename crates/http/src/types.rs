//! Shared HTTP-layer types: versions, requests, response catalog, events.

use std::collections::HashMap;
use std::sync::Arc;

use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::{CloseReason, MsgTag};

/// HTTP protocol versions distinguished by the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HttpVersion {
    /// HTTP/1.1 (the paper's "Others" row, together with 1.0/0.9).
    H1,
    /// HTTP/2 over TLS/TCP.
    H2,
    /// HTTP/3 over QUIC.
    H3,
}

impl std::fmt::Display for HttpVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpVersion::H1 => write!(f, "http/1.1"),
            HttpVersion::H2 => write!(f, "h2"),
            HttpVersion::H3 => write!(f, "h3"),
        }
    }
}

/// A request as the client sees it: a globally unique id plus the
/// compressed request-header size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMeta {
    /// Globally unique request id (also the HAR entry id).
    pub id: u64,
    /// Compressed request-header bytes (HPACK/QPACK output size).
    pub header_bytes: u64,
}

/// Scheduling priority of a response: lower values are served first
/// (Chrome's urgency scale collapsed to three classes).
pub mod priority {
    /// Render-blocking: documents, scripts, stylesheets, fonts.
    pub const HIGH: u8 = 0;
    /// Default: XHR/fetch and everything unclassified.
    pub const NORMAL: u8 = 1;
    /// Late visual content: images and media.
    pub const LOW: u8 = 2;
}

/// What the server returns for one request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseSpec {
    /// Compressed response-header bytes.
    pub header_bytes: u64,
    /// Response body bytes.
    pub body_bytes: u64,
    /// Server processing time before the first response byte (the "wait"
    /// component, excluding propagation).
    pub processing: SimDuration,
    /// Scheduling priority (see [`priority`]); concurrent responses of a
    /// lower class are served only when no higher class has data.
    pub priority: u8,
}

/// Immutable lookup table from request id to [`ResponseSpec`]; one per
/// server, shared by all of its connections.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: HashMap<u64, ResponseSpec>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers the response for a request id, replacing any previous
    /// registration.
    pub fn register(&mut self, id: u64, spec: ResponseSpec) {
        self.entries.insert(id, spec);
    }

    /// Looks up the response for a request id.
    pub fn get(&self, id: u64) -> Option<ResponseSpec> {
        self.entries.get(&id).copied()
    }

    /// Number of registered responses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wraps the catalog for sharing across a server's connections.
    pub fn into_shared(self) -> Arc<Catalog> {
        Arc::new(self)
    }
}

/// Events surfaced by HTTP client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpEvent {
    /// The connection is ready for requests (handshake complete).
    Connected {
        /// Completion time.
        at: SimTime,
    },
    /// Response headers for `id` arrived (first byte of the response).
    ResponseHeaders {
        /// Request id.
        id: u64,
        /// Arrival time.
        at: SimTime,
    },
    /// The full response body for `id` arrived.
    ResponseComplete {
        /// Request id.
        id: u64,
        /// Arrival time.
        at: SimTime,
    },
    /// The server issued a session ticket for this connection's domain.
    TicketIssued {
        /// Receipt time.
        at: SimTime,
    },
    /// The transport under this connection closed itself (handshake or
    /// idle timeout). Any response still outstanding on it is stranded
    /// and must be re-dispatched elsewhere by the browser.
    ConnectionClosed {
        /// Close time.
        at: SimTime,
        /// Why the transport gave up.
        reason: CloseReason,
    },
}

/// Per-message framing overhead added by HTTP/2 and HTTP/3 (frame header
/// plus field-section framing).
pub(crate) const FRAME_OVERHEAD: u64 = 9;

// Message-tag encoding: each request id owns four tags.
const KIND_REQUEST: u64 = 0;
const KIND_RESP_HEADERS: u64 = 1;
const KIND_RESP_DONE: u64 = 2;
const KIND_RESP_CHUNK: u64 = 3;

/// What a delivered message tag means at the HTTP layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TagKind {
    /// A request's header block.
    Request(u64),
    /// A response's header block.
    ResponseHeaders(u64),
    /// The final chunk of a response body.
    ResponseDone(u64),
    /// An intermediate body chunk (progress only).
    ResponseChunk(u64),
}

/// Encodes the request-headers tag for `id`.
pub(crate) fn request_tag(id: u64) -> MsgTag {
    MsgTag(id * 4 + KIND_REQUEST)
}

/// Encodes the response-headers tag for `id`.
pub(crate) fn response_headers_tag(id: u64) -> MsgTag {
    MsgTag(id * 4 + KIND_RESP_HEADERS)
}

/// Encodes the final-body-chunk tag for `id`.
pub(crate) fn response_done_tag(id: u64) -> MsgTag {
    MsgTag(id * 4 + KIND_RESP_DONE)
}

/// Encodes an intermediate-body-chunk tag for `id`.
pub(crate) fn response_chunk_tag(id: u64) -> MsgTag {
    MsgTag(id * 4 + KIND_RESP_CHUNK)
}

/// Decodes a message tag back to its HTTP meaning.
pub(crate) fn decode_tag(tag: MsgTag) -> TagKind {
    let id = tag.0 / 4;
    match tag.0 % 4 {
        KIND_REQUEST => TagKind::Request(id),
        KIND_RESP_HEADERS => TagKind::ResponseHeaders(id),
        KIND_RESP_DONE => TagKind::ResponseDone(id),
        _ => TagKind::ResponseChunk(id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        for id in [0u64, 1, 7, 123_456] {
            assert_eq!(decode_tag(request_tag(id)), TagKind::Request(id));
            assert_eq!(
                decode_tag(response_headers_tag(id)),
                TagKind::ResponseHeaders(id)
            );
            assert_eq!(decode_tag(response_done_tag(id)), TagKind::ResponseDone(id));
            assert_eq!(
                decode_tag(response_chunk_tag(id)),
                TagKind::ResponseChunk(id)
            );
        }
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.register(
            5,
            ResponseSpec {
                header_bytes: 200,
                body_bytes: 10_000,
                processing: SimDuration::from_millis(2),
                priority: crate::types::priority::NORMAL,
            },
        );
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get(5).unwrap().body_bytes, 10_000);
        assert!(cat.get(6).is_none());
    }

    #[test]
    fn version_display() {
        assert_eq!(HttpVersion::H1.to_string(), "http/1.1");
        assert_eq!(HttpVersion::H2.to_string(), "h2");
        assert_eq!(HttpVersion::H3.to_string(), "h3");
    }
}
