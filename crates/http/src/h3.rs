//! HTTP/3 client and QUIC server.
//!
//! Each request rides its own QUIC bidirectional stream, so responses
//! deliver independently — the transport-level head-of-line-blocking cure
//! the paper credits H3 with — and, with a session ticket, requests leave
//! at 0-RTT.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::quic::{QuicConfig, QuicConnection, QuicEvent};
use h3cdn_transport::tls::Ticket;
use h3cdn_transport::{ConnId, WirePacket};

use crate::types::{
    decode_tag, request_tag, response_done_tag, response_headers_tag, Catalog, HttpEvent,
    RequestMeta, TagKind, FRAME_OVERHEAD,
};

/// An HTTP/3 client connection: one QUIC stream per request.
#[derive(Debug)]
pub struct H3Client {
    conn: QuicConnection,
    events: VecDeque<HttpEvent>,
    requests_sent: u64,
}

impl H3Client {
    /// Creates a client connection. A `ticket` enables PSK resumption and,
    /// with `early_data`, 0-RTT requests.
    pub fn new(id: ConnId, quic: QuicConfig, ticket: Option<Ticket>, early_data: bool) -> Self {
        H3Client {
            conn: QuicConnection::client(id, quic, ticket, early_data),
            events: VecDeque::new(),
            requests_sent: 0,
        }
    }

    /// Starts the QUIC handshake.
    pub fn connect(&mut self, now: SimTime) {
        self.conn.connect(now);
    }

    /// Issues a request on a fresh stream.
    pub fn send_request(&mut self, req: RequestMeta) {
        self.requests_sent += 1;
        let stream = self.conn.open_stream();
        self.conn.write_stream(
            stream,
            req.header_bytes + FRAME_OVERHEAD,
            request_tag(req.id),
        );
    }

    /// Total requests issued on this connection.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// The underlying QUIC connection (timing/resumption diagnostics).
    pub fn quic(&self) -> &QuicConnection {
        &self.conn
    }

    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: WirePacket, now: SimTime) {
        match pkt {
            WirePacket::Quic(p) => self.conn.on_packet(p, now),
            WirePacket::Tcp(_) => debug_assert!(false, "TCP segment on an H3 connection"),
        }
        self.translate();
    }

    /// Fires expired timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
        self.translate();
    }

    /// Next timer deadline.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.conn.next_timeout()
    }

    /// Produces the next packet to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<WirePacket> {
        self.translate();
        self.conn.poll_transmit(now).map(WirePacket::Quic)
    }

    /// Pops the next HTTP event.
    pub fn poll_event(&mut self) -> Option<HttpEvent> {
        self.translate();
        self.events.pop_front()
    }

    fn translate(&mut self) {
        while let Some(ev) = self.conn.poll_event() {
            match ev {
                QuicEvent::HandshakeComplete { at } => {
                    self.events.push_back(HttpEvent::Connected { at });
                }
                QuicEvent::TicketIssued { at } => {
                    self.events.push_back(HttpEvent::TicketIssued { at });
                }
                QuicEvent::StreamOpened { .. } => {}
                QuicEvent::ZeroRttRejected { .. } => {
                    // Transparent downgrade: timings already reflect it
                    // via the re-stamped send-readiness.
                }
                QuicEvent::Closed { at, reason } => {
                    self.events
                        .push_back(HttpEvent::ConnectionClosed { at, reason });
                }
                QuicEvent::Delivered { tag, at, .. } => match decode_tag(tag) {
                    TagKind::ResponseHeaders(id) => {
                        self.events.push_back(HttpEvent::ResponseHeaders { id, at });
                    }
                    TagKind::ResponseDone(id) => {
                        self.events
                            .push_back(HttpEvent::ResponseComplete { id, at });
                    }
                    TagKind::ResponseChunk(_) => {}
                    TagKind::Request(id) => {
                        debug_assert!(false, "request {id} echoed to client");
                    }
                },
            }
        }
    }
}

/// The QUIC-side server connection: answers one client's H3 requests from
/// a shared [`Catalog`].
#[derive(Debug)]
pub struct QuicServer {
    conn: QuicConnection,
    catalog: Arc<Catalog>,
    /// Extra processing added to every response — the H3 compute
    /// surcharge behind the paper's negative wait-reduction median.
    extra_processing: SimDuration,
    /// Request id → stream the response must use.
    request_streams: HashMap<u64, u64>,
    /// Requests whose processing completes at the keyed time.
    cooking: BTreeMap<SimTime, Vec<u64>>,
    requests_served: u64,
}

impl QuicServer {
    /// Creates the server side of one client connection.
    pub fn new(
        id: ConnId,
        quic: QuicConfig,
        catalog: Arc<Catalog>,
        extra_processing: SimDuration,
    ) -> Self {
        QuicServer {
            conn: QuicConnection::server(id, quic),
            catalog,
            extra_processing,
            request_streams: HashMap::new(),
            cooking: BTreeMap::new(),
            requests_served: 0,
        }
    }

    /// Requests fully answered so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Whether the client resumed (0-RTT-capable) on this connection.
    pub fn was_resumed(&self) -> bool {
        self.conn.was_resumed()
    }

    /// Whether the underlying transport has closed (lets an edge return
    /// this connection's resources to its admission budgets).
    pub fn is_closed(&self) -> bool {
        self.conn.is_closed()
    }

    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: WirePacket, now: SimTime) {
        match pkt {
            WirePacket::Quic(p) => self.conn.on_packet(p, now),
            WirePacket::Tcp(_) => debug_assert!(false, "TCP segment on a QUIC server"),
        }
        self.process(now);
    }

    /// Fires expired timers (transport timers and finished processing).
    pub fn on_timeout(&mut self, now: SimTime) {
        self.conn.on_timeout(now);
        self.process(now);
    }

    /// Next timer deadline: transport or earliest response-ready time.
    pub fn next_timeout(&self) -> Option<SimTime> {
        let cooking = self.cooking.keys().next().copied();
        [self.conn.next_timeout(), cooking]
            .into_iter()
            .flatten()
            .min()
    }

    /// Produces the next packet to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<WirePacket> {
        self.process(now);
        self.conn.poll_transmit(now).map(WirePacket::Quic)
    }

    fn process(&mut self, now: SimTime) {
        while let Some(ev) = self.conn.poll_event() {
            if let QuicEvent::Delivered { stream, tag, at } = ev {
                if let TagKind::Request(id) = decode_tag(tag) {
                    let spec = self
                        .catalog
                        .get(id)
                        .unwrap_or_else(|| panic!("request {id} not in catalog"));
                    self.request_streams.insert(id, stream);
                    let ready = at + spec.processing + self.extra_processing;
                    self.cooking.entry(ready).or_default().push(id);
                }
            }
        }
        let ready: Vec<SimTime> = self.cooking.range(..=now).map(|(&t, _)| t).collect();
        for t in ready {
            for id in self.cooking.remove(&t).expect("cooked batch") {
                let spec = self.catalog.get(id).expect("catalog checked at ingest");
                let stream = self.request_streams[&id];
                self.conn.set_stream_priority(stream, spec.priority);
                self.conn.write_stream(
                    stream,
                    spec.header_bytes + FRAME_OVERHEAD,
                    response_headers_tag(id),
                );
                // QUIC round-robins frames across streams, so the whole
                // body can be queued at once; completion is the final byte.
                self.conn
                    .write_stream(stream, spec.body_bytes.max(1), response_done_tag(id));
                self.requests_served += 1;
            }
        }
    }
}

impl h3cdn_transport::duplex::Driveable for H3Client {
    type Wire = WirePacket;

    fn on_wire(&mut self, wire: WirePacket, now: SimTime) {
        self.on_packet(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<WirePacket> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.conn.close_deadline()
    }
}

impl h3cdn_transport::duplex::Driveable for QuicServer {
    type Wire = WirePacket;

    fn on_wire(&mut self, wire: WirePacket, now: SimTime) {
        self.on_packet(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<WirePacket> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.conn.close_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ResponseSpec;
    use h3cdn_netsim::NodeId;
    use h3cdn_transport::duplex::Duplex;

    const RTT_MS: u64 = 40;

    fn catalog(entries: &[(u64, u64, u64)]) -> Arc<Catalog> {
        let mut cat = Catalog::new();
        for &(id, body, proc_ms) in entries {
            cat.register(
                id,
                ResponseSpec {
                    header_bytes: 250,
                    body_bytes: body,
                    processing: SimDuration::from_millis(proc_ms),
                    priority: crate::types::priority::NORMAL,
                },
            );
        }
        cat.into_shared()
    }

    fn pair(
        cat: Arc<Catalog>,
        ticket: Option<Ticket>,
        early: bool,
    ) -> Duplex<H3Client, QuicServer> {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let quic = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..QuicConfig::default()
        };
        let client = H3Client::new(id, quic.clone(), ticket, early);
        let server = QuicServer::new(id, quic, cat, SimDuration::ZERO);
        Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2))
    }

    fn events(c: &mut H3Client) -> Vec<HttpEvent> {
        std::iter::from_fn(|| c.poll_event()).collect()
    }

    fn complete_at(evs: &[HttpEvent], id: u64) -> Option<SimTime> {
        evs.iter().find_map(|e| match e {
            HttpEvent::ResponseComplete { id: i, at } if *i == id => Some(*at),
            _ => None,
        })
    }

    fn ticket() -> Ticket {
        Ticket {
            domain: 1,
            issued_at: SimTime::ZERO,
            lifetime: SimDuration::from_secs(7200),
        }
    }

    #[test]
    fn request_response_over_h3_is_one_rtt_faster_than_h2() {
        // H3 fresh: 1 RTT handshake. First response byte needs
        // 1 (hs) + 1 (req/resp) = 2 RTT vs H2's 3 RTT.
        let mut pipe = pair(catalog(&[(1, 10_000, 0)]), None, false);
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.run(200_000);
        let evs = events(&mut pipe.a);
        let done = complete_at(&evs, 1).expect("complete");
        assert!(done.as_millis_f64() >= 2.0 * RTT_MS as f64);
        assert!(done.as_millis_f64() < 3.0 * RTT_MS as f64);
    }

    #[test]
    fn zero_rtt_request_completes_in_about_one_rtt() {
        let mut pipe = pair(catalog(&[(1, 5_000, 0)]), Some(ticket()), true);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.a.connect(SimTime::ZERO);
        pipe.run(200_000);
        assert!(pipe.a.quic().used_early_data());
        let evs = events(&mut pipe.a);
        let done = complete_at(&evs, 1).expect("complete");
        assert!(
            done.as_millis_f64() < 1.5 * RTT_MS as f64,
            "0-RTT response too slow: {done}"
        );
    }

    #[test]
    fn concurrent_responses_complete_near_each_other() {
        let mut pipe = pair(catalog(&[(1, 100_000, 0), (2, 100_000, 0)]), None, false);
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.a.send_request(RequestMeta {
            id: 2,
            header_bytes: 300,
        });
        pipe.run(1_000_000);
        let evs = events(&mut pipe.a);
        let d1 = complete_at(&evs, 1).unwrap();
        let d2 = complete_at(&evs, 2).unwrap();
        let gap = if d1 > d2 { d1 - d2 } else { d2 - d1 };
        assert!(
            gap < SimDuration::from_millis(40),
            "streams not interleaved: gap {gap}"
        );
    }

    #[test]
    fn high_priority_stream_preempts_low() {
        let mut cat = Catalog::new();
        cat.register(
            1,
            ResponseSpec {
                header_bytes: 250,
                body_bytes: 300_000,
                processing: SimDuration::ZERO,
                priority: crate::types::priority::LOW,
            },
        );
        cat.register(
            2,
            ResponseSpec {
                header_bytes: 250,
                body_bytes: 300_000,
                processing: SimDuration::ZERO,
                priority: crate::types::priority::HIGH,
            },
        );
        let mut pipe = pair(cat.into_shared(), None, false);
        pipe.a.connect(SimTime::ZERO);
        pipe.a.send_request(RequestMeta {
            id: 1,
            header_bytes: 300,
        });
        pipe.a.send_request(RequestMeta {
            id: 2,
            header_bytes: 300,
        });
        pipe.run(2_000_000);
        let evs = events(&mut pipe.a);
        let low = complete_at(&evs, 1).unwrap();
        let high = complete_at(&evs, 2).unwrap();
        assert!(
            high + SimDuration::from_millis(20) < low,
            "high-priority stream must finish first: high {high}, low {low}"
        );
    }

    #[test]
    fn many_requests_all_complete() {
        let specs: Vec<(u64, u64, u64)> = (1..=25).map(|i| (i, 6_000, 1)).collect();
        let mut pipe = pair(catalog(&specs), None, false);
        pipe.a.connect(SimTime::ZERO);
        for i in 1..=25 {
            pipe.a.send_request(RequestMeta {
                id: i,
                header_bytes: 300,
            });
        }
        pipe.run(2_000_000);
        let evs = events(&mut pipe.a);
        for i in 1..=25 {
            assert!(complete_at(&evs, i).is_some(), "response {i} missing");
        }
        assert_eq!(pipe.b.requests_served(), 25);
    }

    #[test]
    fn processing_surcharge_applies() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let quic = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..QuicConfig::default()
        };
        let run = |extra_ms: u64| {
            let client = H3Client::new(id, quic.clone(), None, false);
            let server = QuicServer::new(
                id,
                quic.clone(),
                catalog(&[(1, 1_000, 0)]),
                SimDuration::from_millis(extra_ms),
            );
            let mut pipe = Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2));
            pipe.a.connect(SimTime::ZERO);
            pipe.a.send_request(RequestMeta {
                id: 1,
                header_bytes: 300,
            });
            pipe.run(200_000);
            let evs = events(&mut pipe.a);
            evs.iter()
                .find_map(|e| match e {
                    HttpEvent::ResponseHeaders { at, .. } => Some(*at),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(run(5) - run(0), SimDuration::from_millis(5));
    }
}
