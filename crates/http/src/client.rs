//! Protocol-erased client connection.

use h3cdn_sim_core::SimTime;
use h3cdn_transport::{ConnId, WirePacket};

use crate::h1::H1Client;
use crate::h2::H2Client;
use crate::h3::H3Client;
use crate::types::{HttpEvent, HttpVersion, RequestMeta};

/// A client connection of any HTTP version, presenting one driving
/// surface to the pool and browser layers.
#[derive(Debug)]
pub enum ClientConn {
    /// HTTP/1.1 over TLS/TCP.
    H1(H1Client),
    /// HTTP/2 over TLS/TCP.
    H2(H2Client),
    /// HTTP/3 over QUIC.
    H3(H3Client),
}

impl ClientConn {
    /// The connection's HTTP version.
    pub fn version(&self) -> HttpVersion {
        match self {
            ClientConn::H1(_) => HttpVersion::H1,
            ClientConn::H2(_) => HttpVersion::H2,
            ClientConn::H3(_) => HttpVersion::H3,
        }
    }

    /// The connection id.
    pub fn conn_id(&self) -> ConnId {
        match self {
            ClientConn::H1(c) => c.secure().conn_id(),
            ClientConn::H2(c) => c.secure().conn_id(),
            ClientConn::H3(c) => c.quic().conn_id(),
        }
    }

    /// Starts the handshake.
    pub fn connect(&mut self, now: SimTime) {
        match self {
            ClientConn::H1(c) => c.connect(now),
            ClientConn::H2(c) => c.connect(now),
            ClientConn::H3(c) => c.connect(now),
        }
    }

    /// Issues (or queues) a request.
    pub fn send_request(&mut self, req: RequestMeta) {
        match self {
            ClientConn::H1(c) => c.send_request(req),
            ClientConn::H2(c) => c.send_request(req),
            ClientConn::H3(c) => c.send_request(req),
        }
    }

    /// Total requests accepted by this connection.
    pub fn requests_sent(&self) -> u64 {
        match self {
            ClientConn::H1(c) => c.requests_sent() + c.queued_len() as u64,
            ClientConn::H2(c) => c.requests_sent(),
            ClientConn::H3(c) => c.requests_sent(),
        }
    }

    /// Whether the handshake used session resumption.
    pub fn was_resumed(&self) -> bool {
        match self {
            ClientConn::H1(c) => c.secure().was_resumed(),
            ClientConn::H2(c) => c.secure().was_resumed(),
            ClientConn::H3(c) => c.quic().was_resumed(),
        }
    }

    /// Whether request data was sent at 0-RTT.
    pub fn used_early_data(&self) -> bool {
        match self {
            ClientConn::H1(c) => c.secure().used_early_data(),
            ClientConn::H2(c) => c.secure().used_early_data(),
            ClientConn::H3(c) => c.quic().used_early_data(),
        }
    }

    /// When `connect` was called.
    pub fn connect_started_at(&self) -> Option<SimTime> {
        match self {
            ClientConn::H1(c) => c.secure().connect_started_at(),
            ClientConn::H2(c) => c.secure().connect_started_at(),
            ClientConn::H3(c) => c.quic().connect_started_at(),
        }
    }

    /// When the handshake completed.
    pub fn handshake_complete_at(&self) -> Option<SimTime> {
        match self {
            ClientConn::H1(c) => c.secure().handshake_complete_at(),
            ClientConn::H2(c) => c.secure().handshake_complete_at(),
            ClientConn::H3(c) => c.quic().handshake_complete_at(),
        }
    }

    /// When application data could first leave (the HAR `connect`
    /// endpoint; equals the connect start under 0-RTT).
    pub fn send_ready_at(&self) -> Option<SimTime> {
        match self {
            ClientConn::H1(c) => c.secure().send_ready_at(),
            ClientConn::H2(c) => c.secure().send_ready_at(),
            ClientConn::H3(c) => c.quic().send_ready_at(),
        }
    }

    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: WirePacket, now: SimTime) {
        match self {
            ClientConn::H1(c) => c.on_packet(pkt, now),
            ClientConn::H2(c) => c.on_packet(pkt, now),
            ClientConn::H3(c) => c.on_packet(pkt, now),
        }
    }

    /// Fires expired timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        match self {
            ClientConn::H1(c) => c.on_timeout(now),
            ClientConn::H2(c) => c.on_timeout(now),
            ClientConn::H3(c) => c.on_timeout(now),
        }
    }

    /// Next timer deadline.
    pub fn next_timeout(&self) -> Option<SimTime> {
        match self {
            ClientConn::H1(c) => c.next_timeout(),
            ClientConn::H2(c) => c.next_timeout(),
            ClientConn::H3(c) => c.next_timeout(),
        }
    }

    /// Produces the next packet to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<WirePacket> {
        match self {
            ClientConn::H1(c) => c.poll_transmit(now),
            ClientConn::H2(c) => c.poll_transmit(now),
            ClientConn::H3(c) => c.poll_transmit(now),
        }
    }

    /// Pops the next HTTP event.
    pub fn poll_event(&mut self) -> Option<HttpEvent> {
        match self {
            ClientConn::H1(c) => c.poll_event(),
            ClientConn::H2(c) => c.poll_event(),
            ClientConn::H3(c) => c.poll_event(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_netsim::NodeId;
    use h3cdn_transport::quic::QuicConfig;
    use h3cdn_transport::tcp::TcpConfig;
    use h3cdn_transport::tls::TlsConfig;

    fn conn_id() -> ConnId {
        ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1)
    }

    #[test]
    fn version_dispatch() {
        let h1 = ClientConn::H1(H1Client::new(
            conn_id(),
            TcpConfig::default(),
            TlsConfig::default(),
        ));
        let h2 = ClientConn::H2(H2Client::new(
            conn_id(),
            TcpConfig::default(),
            TlsConfig::default(),
        ));
        let h3 = ClientConn::H3(H3Client::new(conn_id(), QuicConfig::default(), None, false));
        assert_eq!(h1.version(), HttpVersion::H1);
        assert_eq!(h2.version(), HttpVersion::H2);
        assert_eq!(h3.version(), HttpVersion::H3);
        assert_eq!(h1.conn_id(), conn_id());
        assert!(!h2.was_resumed());
        assert!(h3.connect_started_at().is_none());
    }

    #[test]
    fn queued_h1_requests_count_as_sent() {
        let mut h1 = ClientConn::H1(H1Client::new(
            conn_id(),
            TcpConfig::default(),
            TlsConfig::default(),
        ));
        h1.send_request(RequestMeta {
            id: 1,
            header_bytes: 100,
        });
        h1.send_request(RequestMeta {
            id: 2,
            header_bytes: 100,
        });
        assert_eq!(h1.requests_sent(), 2);
    }
}
