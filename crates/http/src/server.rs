//! Protocol-erased server connection.

use h3cdn_sim_core::SimTime;
use h3cdn_transport::{ConnId, WirePacket};

use crate::h2::TcpServer;
use crate::h3::QuicServer;

/// A server-side connection of either transport, presenting one driving
/// surface to the server node.
#[derive(Debug)]
pub enum ServerConn {
    /// TLS/TCP side (serves both H1 and H2 clients).
    Tcp(TcpServer),
    /// QUIC side (serves H3 clients).
    Quic(QuicServer),
}

impl ServerConn {
    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: WirePacket, now: SimTime) {
        match self {
            ServerConn::Tcp(s) => s.on_packet(pkt, now),
            ServerConn::Quic(s) => s.on_packet(pkt, now),
        }
    }

    /// Fires expired timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        match self {
            ServerConn::Tcp(s) => s.on_timeout(now),
            ServerConn::Quic(s) => s.on_timeout(now),
        }
    }

    /// Next timer deadline.
    pub fn next_timeout(&self) -> Option<SimTime> {
        match self {
            ServerConn::Tcp(s) => s.next_timeout(),
            ServerConn::Quic(s) => s.next_timeout(),
        }
    }

    /// Produces the next packet to send.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<WirePacket> {
        match self {
            ServerConn::Tcp(s) => s.poll_transmit(now),
            ServerConn::Quic(s) => s.poll_transmit(now),
        }
    }

    /// Requests fully answered on this connection.
    pub fn requests_served(&self) -> u64 {
        match self {
            ServerConn::Tcp(s) => s.requests_served(),
            ServerConn::Quic(s) => s.requests_served(),
        }
    }

    /// Whether the underlying transport has closed (lets an edge return
    /// this connection's resources to its admission budgets).
    pub fn is_closed(&self) -> bool {
        match self {
            ServerConn::Tcp(s) => s.is_closed(),
            ServerConn::Quic(s) => s.is_closed(),
        }
    }
}

/// Builds the right [`ServerConn`] for an incoming packet's transport.
pub fn accept(
    pkt: &WirePacket,
    conn_id: ConnId,
    tcp_config: &h3cdn_transport::tcp::TcpConfig,
    quic_config: &h3cdn_transport::quic::QuicConfig,
    catalog: std::sync::Arc<crate::types::Catalog>,
    extra_processing: h3cdn_sim_core::SimDuration,
) -> ServerConn {
    match pkt {
        WirePacket::Tcp(_) => ServerConn::Tcp(TcpServer::new(
            conn_id,
            tcp_config.clone(),
            catalog,
            extra_processing,
        )),
        WirePacket::Quic(_) => ServerConn::Quic(QuicServer::new(
            conn_id,
            quic_config.clone(),
            catalog,
            extra_processing,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Catalog;
    use h3cdn_netsim::NodeId;
    use h3cdn_sim_core::SimDuration;
    use h3cdn_transport::quic::{QuicConfig, QuicPacket};
    use h3cdn_transport::tcp::{TcpConfig, TcpSegment};

    fn conn_id() -> ConnId {
        ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1)
    }

    #[test]
    fn accept_matches_transport() {
        let cat = Catalog::new().into_shared();
        let tcp_pkt = WirePacket::Tcp(TcpSegment {
            conn: conn_id(),
            from_client: true,
            syn: true,
            rst: false,
            ack_flag: false,
            seq: 0,
            len: 0,
            ack: 0,
            rwnd: 1,
            markers: vec![],
            sack: vec![],
        });
        let quic_pkt = WirePacket::Quic(QuicPacket {
            conn: conn_id(),
            from_client: true,
            pn: 0,
            frames: vec![],
        });
        let tcp_conn = accept(
            &tcp_pkt,
            conn_id(),
            &TcpConfig::default(),
            &QuicConfig::default(),
            cat.clone(),
            SimDuration::ZERO,
        );
        let quic_conn = accept(
            &quic_pkt,
            conn_id(),
            &TcpConfig::default(),
            &QuicConfig::default(),
            cat,
            SimDuration::ZERO,
        );
        assert!(matches!(tcp_conn, ServerConn::Tcp(_)));
        assert!(matches!(quic_conn, ServerConn::Quic(_)));
    }
}
