//! The endpoint abstraction driven by the [`Engine`](crate::Engine).

use h3cdn_sim_core::units::ByteCount;
use h3cdn_sim_core::SimTime;

use crate::fault::TransportClass;

/// Identifies a node (protocol endpoint) inside one [`Network`](crate::Network).
///
/// Node ids are dense indices handed out by
/// [`Network::add_node`](crate::Network::add_node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Normally ids come from [`Network::add_node`](crate::Network::add_node);
    /// this constructor exists for tests and for re-hydrating recorded runs.
    pub fn from_raw(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A protocol endpoint attached to the simulated network.
///
/// Implementations are *sans-IO*: they never block and never read a clock.
/// The engine calls in with the current virtual time (via [`NodeCtx::now`])
/// and the node reacts by queueing sends on the context and by exposing its
/// next timer deadline through [`Node::next_wakeup`], which the engine
/// re-reads after every dispatch (the quinn "handshake the timer" pattern).
pub trait Node {
    /// The packet type this network carries.
    type Packet;

    /// Called when a packet addressed to this node survives the path loss
    /// process and finishes serialising through the ingress link.
    fn handle_packet(&mut self, packet: Self::Packet, ctx: &mut NodeCtx<'_, Self::Packet>);

    /// Called when the deadline previously returned by
    /// [`Node::next_wakeup`] is reached.
    fn handle_wakeup(&mut self, ctx: &mut NodeCtx<'_, Self::Packet>);

    /// The earliest instant at which this node needs
    /// [`Node::handle_wakeup`], or `None` when it is idle.
    fn next_wakeup(&self) -> Option<SimTime>;

    /// Classifies an outgoing packet for protocol-selective fault
    /// injection ([`crate::fault::FaultKind::UdpBlackhole`]). The default
    /// is [`TransportClass::Other`], which only protocol-blind faults
    /// affect; packet types that model real transports should override
    /// this (QUIC datagrams → `Udp`, TCP segments → `Tcp`).
    fn classify(packet: &Self::Packet) -> TransportClass {
        let _ = packet;
        TransportClass::Other
    }

    /// A human-readable description of why this node still has open work,
    /// or `None` when it is quiescent. The engine consults this when the
    /// event queue drains to distinguish a clean finish from an
    /// all-stalled deadlock (see
    /// [`Engine::run_checked`](crate::Engine::run_checked)); passive
    /// nodes (servers) should keep the default.
    fn stall_detail(&self) -> Option<String> {
        None
    }
}

/// Services available to a [`Node`] while it is being dispatched.
///
/// Sends are collected and routed by the engine after the handler returns,
/// which keeps dispatch free of re-entrancy.
#[derive(Debug)]
pub struct NodeCtx<'a, P> {
    now: SimTime,
    me: NodeId,
    sender: Option<NodeId>,
    outbox: &'a mut Vec<Outgoing<P>>,
}

#[derive(Debug)]
pub(crate) struct Outgoing<P> {
    pub dst: NodeId,
    pub packet: P,
    pub wire_size: ByteCount,
}

impl<'a, P> NodeCtx<'a, P> {
    pub(crate) fn new(
        now: SimTime,
        me: NodeId,
        sender: Option<NodeId>,
        outbox: &'a mut Vec<Outgoing<P>>,
    ) -> Self {
        NodeCtx {
            now,
            me,
            sender,
            outbox,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being dispatched.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// For packet dispatches, the node that sent the packet; `None` inside
    /// wakeups and injected sends.
    pub fn sender(&self) -> Option<NodeId> {
        self.sender
    }

    /// Queues `packet` for transmission to `dst`. `wire_size` is the
    /// serialised size used for transmission-delay and queue accounting.
    pub fn send(&mut self, dst: NodeId, packet: P, wire_size: ByteCount) {
        self.outbox.push(Outgoing {
            dst,
            packet,
            wire_size,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "node#5");
    }

    #[test]
    fn ctx_collects_sends() {
        let mut outbox = Vec::new();
        let mut ctx: NodeCtx<'_, u8> =
            NodeCtx::new(SimTime::ZERO, NodeId(0), Some(NodeId(1)), &mut outbox);
        assert_eq!(ctx.me(), NodeId(0));
        assert_eq!(ctx.sender(), Some(NodeId(1)));
        ctx.send(NodeId(1), 9, ByteCount::new(50));
        ctx.send(NodeId(1), 10, ByteCount::new(60));
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0].packet, 9);
        assert_eq!(outbox[1].wire_size, ByteCount::new(60));
    }
}
