//! Convenience topology builders.
//!
//! The browser layer wires client↔edge stars by hand; these helpers cover
//! the common shapes for tests, benches and downstream users.

use crate::link::PathSpec;
use crate::network::Network;
use crate::node::NodeId;

/// A star: one hub node connected to `leaves` leaf nodes, every spoke
/// using `spec` in both directions. Returns `(hub, leaf_ids)`.
#[cfg(test)]
pub(crate) fn star(net: &mut Network, leaves: usize, spec: PathSpec) -> (NodeId, Vec<NodeId>) {
    let hub = net.add_node();
    let leaf_ids: Vec<NodeId> = (0..leaves)
        .map(|_| {
            let leaf = net.add_node();
            net.set_path_symmetric(hub, leaf, spec);
            leaf
        })
        .collect();
    (hub, leaf_ids)
}

/// A full mesh over `n` nodes, every pair using `spec` in both
/// directions. Returns the node ids.
#[cfg(test)]
pub(crate) fn full_mesh(net: &mut Network, n: usize, spec: PathSpec) -> Vec<NodeId> {
    let ids: Vec<NodeId> = (0..n).map(|_| net.add_node()).collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in ids.iter().skip(i + 1) {
            net.set_path_symmetric(a, b, spec);
        }
    }
    ids
}

/// A chain `n0 — n1 — … — n(k-1)` with `spec` per hop. Note that the
/// [`Network`] routes single hops only: a chain is a set
/// of adjacent pairs, not a routed multi-hop path.
pub fn chain(net: &mut Network, k: usize, spec: PathSpec) -> Vec<NodeId> {
    let ids: Vec<NodeId> = (0..k).map(|_| net.add_node()).collect();
    for w in ids.windows(2) {
        net.set_path_symmetric(w[0], w[1], spec);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_sim_core::units::ByteCount;
    use h3cdn_sim_core::{SimDuration, SimTime};

    fn spec() -> PathSpec {
        PathSpec::with_delay(SimDuration::from_millis(3))
    }

    #[test]
    fn star_connects_hub_to_every_leaf() {
        let mut net = Network::new(1);
        let (hub, leaves) = star(&mut net, 5, spec());
        assert_eq!(leaves.len(), 5);
        assert_eq!(net.node_count(), 6);
        for &leaf in &leaves {
            assert!(net
                .route(hub, leaf, ByteCount::new(100), SimTime::ZERO)
                .is_some());
            assert!(net
                .route(leaf, hub, ByteCount::new(100), SimTime::ZERO)
                .is_some());
            assert_eq!(net.path_spec(hub, leaf).delay, SimDuration::from_millis(3));
        }
    }

    #[test]
    fn full_mesh_covers_all_pairs() {
        let mut net = Network::new(2);
        let ids = full_mesh(&mut net, 4, spec());
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    assert_eq!(net.path_spec(a, b).delay, SimDuration::from_millis(3));
                }
            }
        }
    }

    #[test]
    fn chain_links_adjacent_nodes_only() {
        let mut net = Network::new(3);
        net.set_default_path(PathSpec::with_delay(SimDuration::from_millis(99)));
        let ids = chain(&mut net, 4, spec());
        assert_eq!(
            net.path_spec(ids[0], ids[1]).delay,
            SimDuration::from_millis(3)
        );
        assert_eq!(
            net.path_spec(ids[1], ids[2]).delay,
            SimDuration::from_millis(3)
        );
        // Non-adjacent pairs fall back to the default path.
        assert_eq!(
            net.path_spec(ids[0], ids[3]).delay,
            SimDuration::from_millis(99)
        );
    }
}
