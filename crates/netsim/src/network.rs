//! The network fabric: nodes, access links, and directed paths.

use h3cdn_sim_core::units::{ByteCount, DataRate};
use h3cdn_sim_core::{SimRng, SimTime};

use crate::dynamics::{DynamicsOutcome, DynamicsState, PathTrace};
use crate::fault::{FaultOutcome, FaultPlan, FaultState, TransportClass};
use crate::link::{PathSpec, QueueDiscipline, QueueStats, Serializer};
use crate::loss::LossProcess;
use crate::node::NodeId;

/// Default queue depth for access links: several hundred full-size
/// packets, in the spirit of a (buffer-bloated) access-router queue. Deep
/// enough that parallel slow-starts from a page's CDN edges overflow it
/// only under genuine overload, not on every burst.
const DEFAULT_QUEUE_CAPACITY: ByteCount = ByteCount::new(768 * 1500);

/// Connectivity and path characteristics between [`NodeId`]s.
///
/// Owns no protocol state — only delays, rates, queues and loss processes.
/// The [`Engine`](crate::Engine) asks it where and when each packet lands.
///
/// Node ids are small sequential `u32`s, so the per-pair path and fault
/// state lives in dense `src * node_count + dst` tables rather than hash
/// maps — the per-packet route path does two array reads instead of two
/// `(NodeId, NodeId)` hashes.
#[derive(Debug)]
pub struct Network {
    rng: SimRng,
    nodes: Vec<AccessLinks>,
    /// Dense `src.index() * nodes.len() + dst.index()` table.
    paths: Vec<Option<Path>>,
    /// Dense table, same indexing as `paths`.
    faults: Vec<Option<FaultState>>,
    /// Dense table, same indexing as `paths`: continuous path dynamics.
    dynamics: Vec<Option<DynamicsState>>,
    default_spec: PathSpec,
    delivered: u64,
    lost: u64,
    fault_dropped: u64,
    dynamics_dropped: u64,
}

#[derive(Debug, Default)]
struct AccessLinks {
    egress: Option<Serializer>,
    ingress: Option<Serializer>,
}

/// Grows a dense `old × old` pair table to `(old + 1) × (old + 1)`,
/// keeping every existing `(src, dst)` entry at its new index.
fn restride<T>(table: &mut Vec<Option<T>>, old: usize) {
    let new = old + 1;
    let mut wider = Vec::with_capacity(new * new);
    if old > 0 {
        for row in table.chunks_mut(old) {
            wider.extend(row.iter_mut().map(Option::take));
            wider.push(None);
        }
    }
    wider.resize_with(new * new, || None);
    *table = wider;
}

#[derive(Debug)]
struct Path {
    spec: PathSpec,
    serializer: Option<Serializer>,
    loss: LossProcess,
    jitter_rng: SimRng,
}

impl Network {
    /// Creates an empty network whose loss processes derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Network {
            rng: SimRng::seed_from(seed).fork(0x6e65_7477), // "netw"
            nodes: Vec::new(),
            paths: Vec::new(),
            faults: Vec::new(),
            dynamics: Vec::new(),
            default_spec: PathSpec::default(),
            delivered: 0,
            lost: 0,
            fault_dropped: 0,
            dynamics_dropped: 0,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let old = self.nodes.len();
        self.nodes.push(AccessLinks::default());
        // Re-stride the dense pair tables from `old` to `old + 1` columns.
        // Nodes are added up front (before any path is set) in every
        // driver, so the moves below are almost always over empty tables.
        restride(&mut self.paths, old);
        restride(&mut self.faults, old);
        restride(&mut self.dynamics, old);
        id
    }

    /// Index into the dense pair tables.
    #[inline]
    fn pair(&self, src: NodeId, dst: NodeId) -> usize {
        src.index() * self.nodes.len() + dst.index()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rate-limits everything `node` sends (e.g. a client's uplink) with
    /// the default deep tail-drop queue.
    pub fn set_egress_rate(&mut self, node: NodeId, rate: DataRate) {
        self.set_egress_link(node, rate, QueueDiscipline::DropTailDeep);
    }

    /// Rate-limits everything `node` sends, with an explicit queue
    /// discipline on the egress serialiser.
    pub fn set_egress_link(&mut self, node: NodeId, rate: DataRate, queue: QueueDiscipline) {
        self.nodes[node.index()].egress = Some(Serializer::with_discipline(rate, queue));
    }

    /// Rate-limits everything `node` receives (e.g. a client's downlink —
    /// the shared bottleneck when one page loads from many CDN edges)
    /// with the default deep tail-drop queue.
    pub fn set_ingress_rate(&mut self, node: NodeId, rate: DataRate) {
        self.set_ingress_link(node, rate, QueueDiscipline::DropTailDeep);
    }

    /// Rate-limits everything `node` receives, with an explicit queue
    /// discipline on the ingress serialiser.
    pub fn set_ingress_link(&mut self, node: NodeId, rate: DataRate, queue: QueueDiscipline) {
        self.nodes[node.index()].ingress = Some(Serializer::with_discipline(rate, queue));
    }

    /// Sets the spec for the directed path `src → dst`.
    pub fn set_path(&mut self, src: NodeId, dst: NodeId, spec: PathSpec) {
        let loss = LossProcess::new(
            spec.loss,
            self.rng
                .fork(((src.index() as u64) << 32) | dst.index() as u64),
        );
        let serializer = spec
            .rate
            .map(|rate| Serializer::new(rate, DEFAULT_QUEUE_CAPACITY));
        let jitter_rng = self
            .rng
            .fork(0x4A17 ^ (((src.index() as u64) << 32) | dst.index() as u64));
        let idx = self.pair(src, dst);
        if let Some(slot) = self.paths.get_mut(idx) {
            *slot = Some(Path {
                spec,
                serializer,
                loss,
                jitter_rng,
            });
        }
    }

    /// Sets the same spec in both directions.
    pub fn set_path_symmetric(&mut self, a: NodeId, b: NodeId, spec: PathSpec) {
        self.set_path(a, b, spec);
        self.set_path(b, a, spec);
    }

    /// Attaches a [`FaultPlan`] to the directed path `src → dst` (an
    /// empty plan clears any existing one).
    ///
    /// Faults are evaluated when a packet leaves the sender's egress
    /// serialiser, before the path's own loss process — a blackholed
    /// packet never consumes a draw from the path loss stream, so
    /// enabling a fault cannot reshuffle the baseline loss pattern
    /// outside its windows. The plan's loss-burst streams fork off this
    /// network's seed keyed by `(src, dst)`, so equal seeds replay
    /// identically.
    pub fn set_fault_plan(&mut self, src: NodeId, dst: NodeId, plan: FaultPlan) {
        let idx = self.pair(src, dst);
        if plan.is_empty() {
            self.faults[idx] = None;
            return;
        }
        let rng = self
            .rng
            .fork(0xFA17 ^ (((src.index() as u64) << 32) | dst.index() as u64));
        self.faults[idx] = Some(FaultState::new(plan, &rng));
    }

    /// Attaches the same fault plan in both directions.
    pub fn set_fault_plan_symmetric(&mut self, a: NodeId, b: NodeId, plan: FaultPlan) {
        self.set_fault_plan(a, b, plan.clone());
        self.set_fault_plan(b, a, plan);
    }

    /// Attaches continuous [path dynamics](crate::dynamics) to the
    /// directed path `src → dst`: per-packet extra delay, extra IID
    /// loss, and a varying-rate bottleneck running `queue`, all driven
    /// by `trace`.
    ///
    /// Dynamics are evaluated after the path's fault plan and before
    /// its static loss process, and — like faults — consume no draws
    /// from the path loss stream, so installing a trace never reshuffles
    /// the baseline loss pattern. The extra-loss stream forks off this
    /// network's seed keyed by `(src, dst)`, so equal seeds replay
    /// identically.
    pub fn set_path_dynamics(
        &mut self,
        src: NodeId,
        dst: NodeId,
        trace: PathTrace,
        queue: QueueDiscipline,
    ) {
        let rng = self
            .rng
            .fork(0xD11A ^ (((src.index() as u64) << 32) | dst.index() as u64));
        let idx = self.pair(src, dst);
        if let Some(slot) = self.dynamics.get_mut(idx) {
            *slot = Some(DynamicsState::new(trace, queue, rng));
        }
    }

    /// Attaches the same dynamics trace in both directions (each
    /// direction gets its own queue and loss stream).
    pub fn set_path_dynamics_symmetric(
        &mut self,
        a: NodeId,
        b: NodeId,
        trace: PathTrace,
        queue: QueueDiscipline,
    ) {
        self.set_path_dynamics(a, b, trace.clone(), queue);
        self.set_path_dynamics(b, a, trace, queue);
    }

    /// Sets the spec used for node pairs without an explicit path.
    pub fn set_default_path(&mut self, spec: PathSpec) {
        self.default_spec = spec;
    }

    /// Returns the spec of the path `src → dst` (explicit or default).
    pub fn path_spec(&self, src: NodeId, dst: NodeId) -> PathSpec {
        self.paths[self.pair(src, dst)]
            .as_ref()
            .map_or(self.default_spec, |p| p.spec)
    }

    /// Total packets delivered since construction.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total packets lost (random loss, queue drop or injected fault)
    /// since construction.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Packets consumed by injected faults (a subset of [`Network::lost`]).
    pub fn fault_dropped(&self) -> u64 {
        self.fault_dropped
    }

    /// Packets consumed by continuous path dynamics — trace-driven extra
    /// loss or the dynamic bottleneck's queue (a subset of
    /// [`Network::lost`]).
    pub fn dynamics_dropped(&self) -> u64 {
        self.dynamics_dropped
    }

    /// Aggregated queue counters over every serialiser in the fabric:
    /// access links, static path bottlenecks, and dynamic bottlenecks.
    /// (Rate-collapse fault windows keep their own transient queues and
    /// are accounted via [`Network::fault_dropped`] instead.)
    pub fn queue_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for links in &self.nodes {
            if let Some(s) = &links.egress {
                total.merge(&s.stats());
            }
            if let Some(s) = &links.ingress {
                total.merge(&s.stats());
            }
        }
        for path in self.paths.iter().flatten() {
            if let Some(s) = &path.serializer {
                total.merge(&s.stats());
            }
        }
        for state in self.dynamics.iter().flatten() {
            total.merge(&state.queue_stats());
        }
        total
    }

    /// Routes one packet of `size` bytes from `src` to `dst` starting at
    /// `now`, returning its delivery time or `None` when it is lost.
    ///
    /// Equivalent to [`Network::route_classified`] with
    /// [`TransportClass::Other`] — protocol-selective faults (UDP
    /// blackholes) never drop packets routed this way.
    ///
    /// # Panics
    ///
    /// Panics if either node id was not created by this network.
    pub fn route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: ByteCount,
        now: SimTime,
    ) -> Option<SimTime> {
        self.route_classified(src, dst, size, TransportClass::Other, now)
    }

    /// Routes one packet of `size` bytes from `src` to `dst` starting at
    /// `now`, returning its delivery time or `None` when it is lost.
    ///
    /// The packet passes, in order: the sender's egress serialiser, the
    /// path's [fault plan](Network::set_fault_plan) (if any, using
    /// `class` for protocol-selective faults), the path's
    /// [continuous dynamics](Network::set_path_dynamics) (if any: extra
    /// loss, the varying bottleneck, extra delay), the path's
    /// random-loss process, the path's own bottleneck (if any),
    /// propagation delay, and the receiver's ingress serialiser.
    ///
    /// # Panics
    ///
    /// Panics if either node id was not created by this network.
    pub fn route_classified(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: ByteCount,
        class: TransportClass,
        now: SimTime,
    ) -> Option<SimTime> {
        assert!(src.index() < self.nodes.len(), "unknown src {src}");
        assert!(dst.index() < self.nodes.len(), "unknown dst {dst}");

        let depart = match self
            .nodes
            .get_mut(src.index())
            .and_then(|n| n.egress.as_mut())
        {
            Some(s) => match s.enqueue(now, size) {
                Some(t) => t,
                None => {
                    self.lost += 1;
                    return None;
                }
            },
            None => now,
        };

        let idx = self.pair(src, dst);
        let depart = match self.faults.get_mut(idx).and_then(|f| f.as_mut()) {
            Some(fault) => match fault.apply(class, depart, size) {
                FaultOutcome::Deliver(t) => t,
                FaultOutcome::Drop => {
                    self.lost += 1;
                    self.fault_dropped += 1;
                    return None;
                }
            },
            None => depart,
        };

        let depart = match self.dynamics.get_mut(idx).and_then(|d| d.as_mut()) {
            Some(state) => match state.apply(depart, size) {
                DynamicsOutcome::Deliver(t) => t,
                DynamicsOutcome::DropLoss | DynamicsOutcome::DropQueue => {
                    self.lost += 1;
                    self.dynamics_dropped += 1;
                    return None;
                }
            },
            None => depart,
        };

        // Lazily create the path so its loss process has a stable stream.
        if self.paths.get(idx).is_some_and(Option::is_none) {
            let spec = self.default_spec;
            self.set_path(src, dst, spec);
        }
        let Some(path) = self.paths.get_mut(idx).and_then(|p| p.as_mut()) else {
            // Out-of-grid pair: unroutable, count it as lost.
            self.lost += 1;
            return None;
        };

        if path.loss.should_drop() {
            self.lost += 1;
            return None;
        }

        let after_path_queue = match path.serializer.as_mut() {
            Some(s) => match s.enqueue(depart, size) {
                Some(t) => t,
                None => {
                    self.lost += 1;
                    return None;
                }
            },
            None => depart,
        };

        let mut propagated = after_path_queue + path.spec.delay;
        if !path.spec.jitter.is_zero() {
            let extra = path.spec.jitter.as_nanos();
            propagated +=
                h3cdn_sim_core::SimDuration::from_nanos(path.jitter_rng.next_below(extra + 1));
        }

        let delivered = match self
            .nodes
            .get_mut(dst.index())
            .and_then(|n| n.ingress.as_mut())
        {
            Some(s) => match s.enqueue(propagated, size) {
                Some(t) => t,
                None => {
                    self.lost += 1;
                    return None;
                }
            },
            None => propagated,
        };

        self.delivered += 1;
        Some(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_sim_core::SimDuration;

    fn two_node_net(spec: PathSpec) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_node();
        let b = net.add_node();
        net.set_path_symmetric(a, b, spec);
        (net, a, b)
    }

    #[test]
    fn delay_only_path() {
        let (mut net, a, b) = two_node_net(PathSpec::with_delay(SimDuration::from_millis(10)));
        let t = net
            .route(a, b, ByteCount::new(1200), SimTime::ZERO)
            .unwrap();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn default_path_used_when_unset() {
        let mut net = Network::new(2);
        let a = net.add_node();
        let b = net.add_node();
        net.set_default_path(PathSpec::with_delay(SimDuration::from_millis(7)));
        let t = net.route(a, b, ByteCount::new(100), SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(7));
    }

    #[test]
    fn ingress_rate_serialises_parallel_arrivals() {
        let mut net = Network::new(3);
        let server1 = net.add_node();
        let server2 = net.add_node();
        let client = net.add_node();
        // 8 Mbps downlink: 1 byte/µs.
        net.set_ingress_rate(client, DataRate::from_mbps(8));
        net.set_default_path(PathSpec::with_delay(SimDuration::from_millis(1)));
        let t1 = net
            .route(server1, client, ByteCount::new(1000), SimTime::ZERO)
            .unwrap();
        let t2 = net
            .route(server2, client, ByteCount::new(1000), SimTime::ZERO)
            .unwrap();
        // Both arrive at the ingress at 1 ms; the second serialises behind
        // the first.
        assert_eq!(t2 - t1, SimDuration::from_micros(1000));
    }

    #[test]
    fn certain_loss_drops_everything() {
        let (mut net, a, b) = two_node_net(
            PathSpec::with_delay(SimDuration::from_millis(1))
                .loss(crate::LossModel::Iid { p: 1.0 }),
        );
        for _ in 0..50 {
            assert!(net
                .route(a, b, ByteCount::new(100), SimTime::ZERO)
                .is_none());
        }
        assert_eq!(net.lost(), 50);
        assert_eq!(net.delivered(), 0);
    }

    #[test]
    fn loss_is_per_direction() {
        let mut net = Network::new(4);
        let a = net.add_node();
        let b = net.add_node();
        net.set_path(
            a,
            b,
            PathSpec::with_delay(SimDuration::from_millis(1))
                .loss(crate::LossModel::Iid { p: 1.0 }),
        );
        net.set_path(b, a, PathSpec::with_delay(SimDuration::from_millis(1)));
        assert!(net
            .route(a, b, ByteCount::new(100), SimTime::ZERO)
            .is_none());
        assert!(net
            .route(b, a, ByteCount::new(100), SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = |seed| {
            let (mut net, a, b) = {
                let mut net = Network::new(seed);
                let a = net.add_node();
                let b = net.add_node();
                net.set_path_symmetric(
                    a,
                    b,
                    PathSpec::with_delay(SimDuration::from_millis(1))
                        .loss(crate::LossModel::Iid { p: 0.3 }),
                );
                (net, a, b)
            };
            (0..100)
                .map(|i| {
                    net.route(
                        a,
                        b,
                        ByteCount::new(100),
                        SimTime::from_nanos(i * 1_000_000),
                    )
                    .is_some()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn jitter_spreads_and_reorders_deliveries() {
        let mut net = Network::new(8);
        let a = net.add_node();
        let b = net.add_node();
        net.set_path(
            a,
            b,
            PathSpec::with_delay(SimDuration::from_millis(10)).jitter(SimDuration::from_millis(5)),
        );
        let mut deliveries = Vec::new();
        for i in 0..200u64 {
            let sent = SimTime::from_nanos(i * 10_000); // 10 µs apart
            let t = net.route(a, b, ByteCount::new(100), sent).unwrap();
            let flight = t.saturating_duration_since(sent);
            assert!(flight >= SimDuration::from_millis(10));
            assert!(flight <= SimDuration::from_millis(15));
            deliveries.push(t);
        }
        // Closely spaced sends with ±5 ms jitter must reorder sometimes.
        let reordered = deliveries.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(reordered > 10, "jitter must reorder: {reordered}");
    }

    #[test]
    fn udp_blackhole_drops_udp_but_passes_tcp() {
        let (mut net, a, b) = two_node_net(PathSpec::with_delay(SimDuration::from_millis(1)));
        net.set_fault_plan(a, b, crate::fault::FaultPlan::udp_blackhole_always());
        assert!(net
            .route_classified(
                a,
                b,
                ByteCount::new(100),
                TransportClass::Udp,
                SimTime::ZERO
            )
            .is_none());
        assert!(net
            .route_classified(
                a,
                b,
                ByteCount::new(100),
                TransportClass::Tcp,
                SimTime::ZERO
            )
            .is_some());
        // The plain route path is Other-classified and passes.
        assert!(net
            .route(a, b, ByteCount::new(100), SimTime::ZERO)
            .is_some());
        // The reverse direction has no plan.
        assert!(net
            .route_classified(
                b,
                a,
                ByteCount::new(100),
                TransportClass::Udp,
                SimTime::ZERO
            )
            .is_some());
        assert_eq!(net.fault_dropped(), 1);
        assert_eq!(net.lost(), 1);
    }

    #[test]
    fn blackout_window_is_timed() {
        let (mut net, a, b) = two_node_net(PathSpec::with_delay(SimDuration::from_millis(1)));
        let from = SimTime::ZERO + SimDuration::from_millis(10);
        let until = SimTime::ZERO + SimDuration::from_millis(20);
        net.set_fault_plan(
            a,
            b,
            crate::fault::FaultPlan::new()
                .blackout(from, until)
                .unwrap(),
        );
        let route_at = |net: &mut Network, ms: u64| {
            net.route_classified(
                a,
                b,
                ByteCount::new(100),
                TransportClass::Tcp,
                SimTime::ZERO + SimDuration::from_millis(ms),
            )
        };
        assert!(route_at(&mut net, 5).is_some());
        assert!(route_at(&mut net, 15).is_none());
        assert!(route_at(&mut net, 25).is_some());
    }

    #[test]
    fn fault_drops_do_not_perturb_path_loss_stream() {
        // With a fault plan whose windows never fire, the delivery pattern
        // of a lossy path must be identical to the no-plan run: fault
        // evaluation consumes no draws from the path loss stream.
        let run = |with_plan: bool| {
            let mut net = Network::new(9);
            let a = net.add_node();
            let b = net.add_node();
            net.set_path_symmetric(
                a,
                b,
                PathSpec::with_delay(SimDuration::from_millis(1))
                    .loss(crate::LossModel::Iid { p: 0.3 }),
            );
            if with_plan {
                // Active UDP blackhole, but we only send TCP.
                net.set_fault_plan(a, b, crate::fault::FaultPlan::udp_blackhole_always());
            }
            (0..200)
                .map(|i| {
                    net.route_classified(
                        a,
                        b,
                        ByteCount::new(100),
                        TransportClass::Tcp,
                        SimTime::from_nanos(i * 1_000_000),
                    )
                    .is_some()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn empty_plan_clears_fault() {
        let (mut net, a, b) = two_node_net(PathSpec::with_delay(SimDuration::from_millis(1)));
        net.set_fault_plan_symmetric(a, b, crate::fault::FaultPlan::udp_blackhole_always());
        assert!(net
            .route_classified(
                a,
                b,
                ByteCount::new(100),
                TransportClass::Udp,
                SimTime::ZERO
            )
            .is_none());
        net.set_fault_plan_symmetric(a, b, crate::fault::FaultPlan::new());
        assert!(net
            .route_classified(
                a,
                b,
                ByteCount::new(100),
                TransportClass::Udp,
                SimTime::ZERO
            )
            .is_some());
        assert!(net
            .route_classified(
                b,
                a,
                ByteCount::new(100),
                TransportClass::Udp,
                SimTime::ZERO
            )
            .is_some());
    }

    #[test]
    #[should_panic(expected = "unknown dst")]
    fn route_rejects_unknown_node() {
        let mut net = Network::new(5);
        let a = net.add_node();
        let _ = net.route(a, NodeId(7), ByteCount::new(10), SimTime::ZERO);
    }

    #[test]
    fn path_spec_query() {
        let (net, a, b) = two_node_net(PathSpec::with_delay(SimDuration::from_millis(42)));
        assert_eq!(net.path_spec(a, b).delay, SimDuration::from_millis(42));
    }

    fn flat_trace(delay_ms: u64, rate: DataRate, loss: f64) -> crate::dynamics::PathTrace {
        crate::dynamics::PathTrace::new(
            vec![
                crate::dynamics::TraceKey {
                    at: SimDuration::ZERO,
                    extra_delay: SimDuration::from_millis(delay_ms),
                    rate,
                    extra_loss: loss,
                },
                crate::dynamics::TraceKey {
                    at: SimDuration::from_secs(1),
                    extra_delay: SimDuration::from_millis(delay_ms),
                    rate,
                    extra_loss: loss,
                },
            ],
            SimDuration::from_secs(2),
        )
        .unwrap()
    }

    #[test]
    fn path_dynamics_adds_delay_and_counts_drops() {
        let (mut net, a, b) = two_node_net(PathSpec::with_delay(SimDuration::from_millis(1)));
        // 8 Mbps + 10 ms extra delay, no extra loss: a 1000 B packet
        // takes 1 ms serialisation + 10 ms extra + 1 ms propagation.
        net.set_path_dynamics(
            a,
            b,
            flat_trace(10, DataRate::from_mbps(8), 0.0),
            QueueDiscipline::DropTailDeep,
        );
        let t = net
            .route(a, b, ByteCount::new(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(12));
        // The reverse direction is untouched.
        let back = net
            .route(b, a, ByteCount::new(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(back, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(net.dynamics_dropped(), 0);
        assert!(net.queue_stats().transmitted >= 1);

        // Certain extra loss: every packet dies and is accounted.
        net.set_path_dynamics(
            a,
            b,
            flat_trace(0, DataRate::from_mbps(8), 1.0),
            QueueDiscipline::DropTailDeep,
        );
        let lost_before = net.lost();
        for _ in 0..10 {
            assert!(net
                .route(a, b, ByteCount::new(100), SimTime::ZERO)
                .is_none());
        }
        assert_eq!(net.dynamics_dropped(), 10);
        assert_eq!(net.lost(), lost_before + 10);
    }

    #[test]
    fn dynamics_do_not_perturb_path_loss_stream() {
        // Same guarantee as faults: installing a zero-loss trace must
        // not change which packets the static loss process drops.
        let run = |with_dynamics: bool| {
            let mut net = Network::new(9);
            let a = net.add_node();
            let b = net.add_node();
            net.set_path_symmetric(
                a,
                b,
                PathSpec::with_delay(SimDuration::from_millis(1))
                    .loss(crate::LossModel::Iid { p: 0.3 }),
            );
            if with_dynamics {
                net.set_path_dynamics(
                    a,
                    b,
                    flat_trace(0, DataRate::from_gbps(10), 0.0),
                    QueueDiscipline::DropTailDeep,
                );
            }
            (0..200)
                .map(|i| {
                    net.route(
                        a,
                        b,
                        ByteCount::new(100),
                        SimTime::from_nanos(i * 1_000_000),
                    )
                    .is_some()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn dynamics_are_deterministic_per_seed() {
        let run = |seed| {
            let mut net = Network::new(seed);
            let a = net.add_node();
            let b = net.add_node();
            net.set_path_symmetric(a, b, PathSpec::with_delay(SimDuration::from_millis(1)));
            net.set_path_dynamics_symmetric(
                a,
                b,
                flat_trace(2, DataRate::from_mbps(8), 0.2),
                QueueDiscipline::CoDel,
            );
            (0..300)
                .map(|i| net.route(a, b, ByteCount::new(1200), SimTime::from_nanos(i * 300_000)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
