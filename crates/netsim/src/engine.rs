//! The deterministic event loop that drives [`Node`]s over a [`Network`].

use h3cdn_sim_core::units::ByteCount;
use h3cdn_sim_core::{EventQueue, SimTime};

use crate::network::Network;
use crate::node::{Node, NodeCtx, NodeId, Outgoing};

/// Hard ceiling on dispatched events; hitting it means a node is
/// rescheduling itself unproductively, which is a bug worth a loud panic
/// rather than a silent hang.
const DEFAULT_EVENT_BUDGET: u64 = 500_000_000;

/// A record handed to the engine's [tracer](Engine::set_tracer) for every
/// routed packet.
#[derive(Debug)]
pub struct TraceRecord<'a, P> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// When the packet was handed to the network.
    pub sent_at: SimTime,
    /// Delivery time, or `None` when the network dropped it.
    pub delivery: Option<SimTime>,
    /// The packet itself.
    pub packet: &'a P,
}

/// The boxed callback type accepted by [`Engine::set_tracer`].
pub type Tracer<P> = Box<dyn FnMut(TraceRecord<'_, P>)>;

/// A discrete-event engine over a fixed set of nodes.
///
/// The engine pops the chronologically next event, dispatches it to the
/// owning node, routes any packets the node queued, and then re-reads the
/// node's [`Node::next_wakeup`] deadline (stale wakeups are filtered with a
/// per-node generation counter). The loop ends when no events remain.
pub struct Engine<N: Node> {
    net: Network,
    nodes: Vec<N>,
    queue: EventQueue<Ev<N::Packet>>,
    now: SimTime,
    timer_gen: Vec<u64>,
    outbox: Vec<Outgoing<N::Packet>>,
    events_dispatched: u64,
    event_budget: u64,
    tracer: Option<Tracer<N::Packet>>,
}

impl<N: Node> std::fmt::Debug for Engine<N>
where
    N: std::fmt::Debug,
    N::Packet: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("events_dispatched", &self.events_dispatched)
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

#[derive(Debug)]
enum Ev<P> {
    Arrival { src: NodeId, dst: NodeId, packet: P },
    Wakeup { node: NodeId, gen: u64 },
}

impl<N: Node> Engine<N> {
    /// Creates an engine over `net` with one entry in `nodes` per network
    /// node (index-aligned with the [`NodeId`]s the network handed out).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from `net.node_count()`.
    pub fn new(net: Network, nodes: Vec<N>) -> Self {
        assert_eq!(
            nodes.len(),
            net.node_count(),
            "one Node implementation required per network node"
        );
        let n = nodes.len();
        Engine {
            net,
            nodes,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            timer_gen: vec![0; n],
            outbox: Vec::new(),
            events_dispatched: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
            tracer: None,
        }
    }

    /// Installs a packet tracer invoked for every routed packet (delivered
    /// or dropped). Useful for debugging protocol behaviour; costs one
    /// closure call per packet.
    pub fn set_tracer(&mut self, tracer: Tracer<N::Packet>) {
        self.tracer = Some(tracer);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the network fabric.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Exclusive access to a node, for inspection between runs. Prefer
    /// [`Engine::with_node`] when the mutation can send packets or arm
    /// timers.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Replaces the event budget (default 5·10⁸ dispatches).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Runs `f` against a node with a live [`NodeCtx`], then routes any
    /// packets it queued and re-arms its timer. This is how drivers start
    /// work (e.g. "begin fetching this page now").
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut NodeCtx<'_, N::Packet>) -> R,
    ) -> R {
        let mut ctx = NodeCtx::new(self.now, id, None, &mut self.outbox);
        let result = f(&mut self.nodes[id.index()], &mut ctx);
        self.flush_outbox(id);
        self.rearm(id);
        result
    }

    /// Injects a packet as if `src` had sent it to `dst` at the current
    /// time. Useful for tests; real traffic originates inside handlers.
    pub fn inject_packet(&mut self, src: NodeId, dst: NodeId, packet: N::Packet, size: ByteCount) {
        if let Some(at) = self.net.route(src, dst, size, self.now) {
            self.queue.schedule(at, Ev::Arrival { src, dst, packet });
        }
    }

    /// Runs until no events remain, returning the final virtual time.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (runaway timer loop).
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event is later than
    /// `deadline`; returns the virtual time reached.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (runaway timer loop).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.arm_all();
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                self.now = deadline;
                return self.now;
            }
            let (at, ev) = self.queue.pop().expect("peeked event present");
            self.now = at;
            self.events_dispatched += 1;
            assert!(
                self.events_dispatched <= self.event_budget,
                "event budget exhausted at {at}: a node is rescheduling itself unproductively"
            );
            match ev {
                Ev::Arrival { src, dst, packet } => {
                    let mut ctx = NodeCtx::new(self.now, dst, Some(src), &mut self.outbox);
                    self.nodes[dst.index()].handle_packet(packet, &mut ctx);
                    self.flush_outbox(dst);
                    self.rearm(dst);
                }
                Ev::Wakeup { node, gen } => {
                    if gen != self.timer_gen[node.index()] {
                        continue; // stale timer superseded by a re-arm
                    }
                    let mut ctx = NodeCtx::new(self.now, node, None, &mut self.outbox);
                    self.nodes[node.index()].handle_wakeup(&mut ctx);
                    self.flush_outbox(node);
                    self.rearm(node);
                }
            }
        }
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Consumes the engine, returning the network and nodes for
    /// post-run inspection.
    pub fn into_parts(self) -> (Network, Vec<N>) {
        (self.net, self.nodes)
    }

    fn arm_all(&mut self) {
        for i in 0..self.nodes.len() {
            self.rearm(NodeId(i as u32));
        }
    }

    fn flush_outbox(&mut self, src: NodeId) {
        // Take the buffer out first: routing borrows the network mutably
        // and scheduling borrows the queue. Order must be preserved —
        // delivering a burst in reverse would look like network
        // reordering and trigger spurious fast retransmits.
        let outgoing = std::mem::take(&mut self.outbox);
        for out in outgoing {
            let delivery = self.net.route(src, out.dst, out.wire_size, self.now);
            if let Some(tracer) = self.tracer.as_mut() {
                tracer(TraceRecord {
                    src,
                    dst: out.dst,
                    sent_at: self.now,
                    delivery,
                    packet: &out.packet,
                });
            }
            if let Some(at) = delivery {
                self.queue.schedule(
                    at,
                    Ev::Arrival {
                        src,
                        dst: out.dst,
                        packet: out.packet,
                    },
                );
            }
        }
    }

    fn rearm(&mut self, id: NodeId) {
        self.timer_gen[id.index()] += 1;
        if let Some(deadline) = self.nodes[id.index()].next_wakeup() {
            let gen = self.timer_gen[id.index()];
            self.queue
                .schedule(deadline.max(self.now), Ev::Wakeup { node: id, gen });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::PathSpec;
    use h3cdn_sim_core::SimDuration;

    /// A node that counts arrivals and can fire a one-shot timer.
    #[derive(Debug, Default)]
    struct Counter {
        received: Vec<(SimTime, u32)>,
        wakeup_at: Option<SimTime>,
        woke: Vec<SimTime>,
    }

    impl Node for Counter {
        type Packet = u32;

        fn handle_packet(&mut self, packet: u32, ctx: &mut NodeCtx<'_, u32>) {
            self.received.push((ctx.now(), packet));
        }

        fn handle_wakeup(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            self.woke.push(ctx.now());
            self.wakeup_at = None;
        }

        fn next_wakeup(&self) -> Option<SimTime> {
            self.wakeup_at
        }
    }

    fn engine_with(n: usize) -> Engine<Counter> {
        let mut net = Network::new(11);
        for _ in 0..n {
            net.add_node();
        }
        net.set_default_path(PathSpec::with_delay(SimDuration::from_millis(5)));
        Engine::new(net, (0..n).map(|_| Counter::default()).collect())
    }

    #[test]
    fn packet_arrives_after_path_delay() {
        let mut e = engine_with(2);
        e.inject_packet(NodeId(0), NodeId(1), 42, ByteCount::new(100));
        let end = e.run();
        assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(5));
        assert_eq!(e.node(NodeId(1)).received, vec![(end, 42)]);
    }

    #[test]
    fn wakeup_fires_at_deadline() {
        let mut e = engine_with(1);
        let t = SimTime::ZERO + SimDuration::from_millis(30);
        e.node_mut(NodeId(0)).wakeup_at = Some(t);
        e.run();
        assert_eq!(e.node(NodeId(0)).woke, vec![t]);
    }

    #[test]
    fn stale_wakeups_are_filtered() {
        let mut e = engine_with(2);
        let t = SimTime::ZERO + SimDuration::from_millis(100);
        e.node_mut(NodeId(1)).wakeup_at = Some(t);
        // A packet arrival at 5 ms causes a re-arm; the node cancels its
        // timer during handling (handle_packet leaves wakeup_at as-is here,
        // so instead we cancel through with_node).
        e.inject_packet(NodeId(0), NodeId(1), 1, ByteCount::new(100));
        e.run_until(SimTime::ZERO + SimDuration::from_millis(10));
        e.with_node(NodeId(1), |n, _| n.wakeup_at = None);
        e.run();
        assert!(e.node(NodeId(1)).woke.is_empty(), "cancelled timer fired");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = engine_with(1);
        e.node_mut(NodeId(0)).wakeup_at = Some(SimTime::ZERO + SimDuration::from_millis(50));
        let reached = e.run_until(SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(reached, SimTime::ZERO + SimDuration::from_millis(20));
        assert!(e.node(NodeId(0)).woke.is_empty());
        // Resuming finishes the pending work.
        e.run();
        assert_eq!(e.node(NodeId(0)).woke.len(), 1);
    }

    #[test]
    fn with_node_flushes_sends() {
        let mut e = engine_with(2);
        e.with_node(NodeId(0), |_n, ctx| {
            ctx.send(NodeId(1), 7, ByteCount::new(100));
        });
        e.run();
        assert_eq!(e.node(NodeId(1)).received.len(), 1);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn runaway_wakeup_loop_hits_budget() {
        /// Always asks to wake immediately — an intentional bug.
        #[derive(Debug)]
        struct Spinner;
        impl Node for Spinner {
            type Packet = ();
            fn handle_packet(&mut self, _p: (), _ctx: &mut NodeCtx<'_, ()>) {}
            fn handle_wakeup(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}
            fn next_wakeup(&self) -> Option<SimTime> {
                Some(SimTime::ZERO)
            }
        }
        let mut net = Network::new(1);
        net.add_node();
        let mut e = Engine::new(net, vec![Spinner]);
        e.set_event_budget(1_000);
        e.run();
    }

    #[test]
    #[should_panic(expected = "one Node implementation required")]
    fn node_count_mismatch_rejected() {
        let mut net = Network::new(1);
        net.add_node();
        let _ = Engine::<Counter>::new(net, vec![]);
    }

    #[test]
    fn tracer_sees_deliveries_and_drops() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut net = Network::new(4);
        let a = net.add_node();
        let b = net.add_node();
        net.set_path(
            a,
            b,
            PathSpec::with_delay(SimDuration::from_millis(1))
                .loss(crate::LossModel::Iid { p: 1.0 }),
        );
        net.set_path(b, a, PathSpec::with_delay(SimDuration::from_millis(1)));
        let mut e = Engine::new(net, vec![Counter::default(), Counter::default()]);
        let seen: Rc<RefCell<Vec<(u32, bool)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        e.set_tracer(Box::new(move |r| {
            sink.borrow_mut().push((*r.packet, r.delivery.is_some()));
        }));
        // a→b drops (certain loss); b→a delivers.
        e.with_node(NodeId(0), |_n, ctx| {
            ctx.send(NodeId(1), 7, ByteCount::new(100));
        });
        e.with_node(NodeId(1), |_n, ctx| {
            ctx.send(NodeId(0), 9, ByteCount::new(100));
        });
        e.run();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&(7, false)), "dropped packet traced");
        assert!(seen.contains(&(9, true)), "delivered packet traced");
    }

    #[test]
    fn into_parts_returns_state() {
        let mut e = engine_with(2);
        e.inject_packet(NodeId(0), NodeId(1), 3, ByteCount::new(100));
        e.run();
        let (net, nodes) = e.into_parts();
        assert_eq!(net.delivered(), 1);
        assert_eq!(nodes[1].received.len(), 1);
    }
}
