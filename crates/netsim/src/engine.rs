//! The deterministic event loop that drives [`Node`]s over a [`Network`].

use h3cdn_sim_core::units::ByteCount;
use h3cdn_sim_core::{EventQueue, QueueStats, SimTime};

use crate::network::Network;
use crate::node::{Node, NodeCtx, NodeId, Outgoing};

/// Hard ceiling on dispatched events; hitting it means a node is
/// rescheduling itself unproductively, which is a bug worth a loud panic
/// rather than a silent hang.
const DEFAULT_EVENT_BUDGET: u64 = 500_000_000;

/// A record handed to the engine's [tracer](Engine::set_tracer) for every
/// routed packet.
#[derive(Debug)]
pub struct TraceRecord<'a, P> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// When the packet was handed to the network.
    pub sent_at: SimTime,
    /// Delivery time, or `None` when the network dropped it.
    pub delivery: Option<SimTime>,
    /// The packet itself.
    pub packet: &'a P,
}

/// The boxed callback type accepted by [`Engine::set_tracer`].
pub type Tracer<P> = Box<dyn FnMut(TraceRecord<'_, P>)>;

/// Why an [`Engine::run_checked`] call could not finish cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallReason {
    /// The event budget was exhausted: some node is rescheduling itself
    /// unproductively (a runaway timer loop).
    BudgetExhausted {
        /// Events dispatched when the budget tripped.
        dispatched: u64,
    },
    /// The event queue drained while nodes still report open work: every
    /// remaining connection is stalled with no timer armed to rescue it
    /// (an all-stalled deadlock — e.g. an endpoint waiting forever on a
    /// peer that will never speak again).
    AllStalled,
}

/// One stalled node inside a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeStall {
    /// The stuck node.
    pub node: NodeId,
    /// The node's own description of its open work (stuck connection,
    /// pending request …), from [`Node::stall_detail`].
    pub detail: String,
    /// The last wakeup deadline this node armed, if it ever armed one —
    /// the timer that *should* have rescued it.
    pub last_armed: Option<SimTime>,
}

/// A structured diagnosis returned by [`Engine::run_checked`] instead of
/// a panic or a silent hang: which nodes are stuck, on what, and what
/// their last-armed timers were.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Virtual time at which the run gave up.
    pub at: SimTime,
    /// Why the run could not finish.
    pub(crate) reason: StallReason,
    /// Every node that still reports open work, in node-id order.
    pub(crate) stalls: Vec<NodeStall>,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            StallReason::BudgetExhausted { dispatched } => write!(
                f,
                "event budget exhausted at {} after {dispatched} dispatches: \
                 a node is rescheduling itself unproductively",
                self.at
            )?,
            StallReason::AllStalled => write!(
                f,
                "event queue drained at {} with open work on {} node(s)",
                self.at,
                self.stalls.len()
            )?,
        }
        for s in &self.stalls {
            write!(f, "\n  {}: {}", s.node, s.detail)?;
            match s.last_armed {
                Some(t) => write!(f, " (last-armed timer: {t})")?,
                None => write!(f, " (no timer ever armed)")?,
            }
        }
        Ok(())
    }
}

impl std::error::Error for StallReport {}

/// A discrete-event engine over a fixed set of nodes.
///
/// The engine pops the chronologically next event, dispatches it to the
/// owning node, routes any packets the node queued, and then re-reads the
/// node's [`Node::next_wakeup`] deadline (stale wakeups are filtered with a
/// per-node generation counter). The loop ends when no events remain.
pub struct Engine<N: Node> {
    net: Network,
    nodes: Vec<N>,
    queue: EventQueue<Ev<N::Packet>>,
    now: SimTime,
    timer_gen: Vec<u64>,
    last_armed: Vec<Option<SimTime>>,
    /// Deadline of the live (non-stale, not yet fired) wakeup per node,
    /// if one is in the queue. A re-arm that recomputes the same deadline
    /// is a no-op instead of a schedule + stale-entry churn.
    pending_wakeup: Vec<Option<SimTime>>,
    outbox: Vec<Outgoing<N::Packet>>,
    /// Spare buffer swapped with `outbox` while draining it, so the
    /// per-event flush allocates nothing in steady state.
    outbox_scratch: Vec<Outgoing<N::Packet>>,
    events_dispatched: u64,
    event_budget: u64,
    tracer: Option<Tracer<N::Packet>>,
}

impl<N: Node> std::fmt::Debug for Engine<N>
where
    N: std::fmt::Debug,
    N::Packet: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("events_dispatched", &self.events_dispatched)
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

#[derive(Debug)]
enum Ev<P> {
    Arrival { src: NodeId, dst: NodeId, packet: P },
    Wakeup { node: NodeId, gen: u64 },
}

impl<N: Node> Engine<N> {
    /// Creates an engine over `net` with one entry in `nodes` per network
    /// node (index-aligned with the [`NodeId`]s the network handed out).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from `net.node_count()`.
    pub fn new(net: Network, nodes: Vec<N>) -> Self {
        assert_eq!(
            nodes.len(),
            net.node_count(),
            "one Node implementation required per network node"
        );
        let n = nodes.len();
        Engine {
            net,
            nodes,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            // One-time construction; steady state never reallocates.
            // h3cdn-lint: allow(hot-path-alloc)
            timer_gen: vec![0; n],
            // h3cdn-lint: allow(hot-path-alloc)
            last_armed: vec![None; n],
            // h3cdn-lint: allow(hot-path-alloc)
            pending_wakeup: vec![None; n],
            // h3cdn-lint: allow(hot-path-alloc)
            outbox: Vec::new(),
            // h3cdn-lint: allow(hot-path-alloc)
            outbox_scratch: Vec::new(),
            events_dispatched: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
            tracer: None,
        }
    }

    /// Installs a packet tracer invoked for every routed packet (delivered
    /// or dropped). Useful for debugging protocol behaviour; costs one
    /// closure call per packet.
    pub fn set_tracer(&mut self, tracer: Tracer<N::Packet>) {
        self.tracer = Some(tracer);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the network fabric.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Exclusive access to a node, for inspection between runs. Prefer
    /// [`Engine::with_node`] when the mutation can send packets or arm
    /// timers.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Replaces the event budget (default 5·10⁸ dispatches).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Runs `f` against a node with a live [`NodeCtx`], then routes any
    /// packets it queued and re-arms its timer. This is how drivers start
    /// work (e.g. "begin fetching this page now").
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut NodeCtx<'_, N::Packet>) -> R,
    ) -> R {
        let mut ctx = NodeCtx::new(self.now, id, None, &mut self.outbox);
        let result = f(&mut self.nodes[id.index()], &mut ctx);
        self.flush_outbox(id);
        self.rearm(id);
        result
    }

    /// Injects a packet as if `src` had sent it to `dst` at the current
    /// time. Useful for tests; real traffic originates inside handlers.
    pub fn inject_packet(&mut self, src: NodeId, dst: NodeId, packet: N::Packet, size: ByteCount) {
        let class = N::classify(&packet);
        if let Some(at) = self.net.route_classified(src, dst, size, class, self.now) {
            self.queue.schedule(at, Ev::Arrival { src, dst, packet });
        }
    }

    /// Runs until no events remain, returning the final virtual time.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (runaway timer loop).
    /// Prefer [`Engine::run_checked`] for drivers that want a structured
    /// diagnosis instead.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event is later than
    /// `deadline`; returns the virtual time reached.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (runaway timer loop).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        let result = self.run_inner(deadline, false);
        assert!(
            result.is_ok(),
            "{}",
            result
                .as_ref()
                .err()
                .map_or_else(String::new, ToString::to_string)
        );
        result.unwrap_or(deadline)
    }

    /// Like [`Engine::run`], but returns a structured [`StallReport`]
    /// instead of panicking or hanging when the simulation cannot finish:
    /// either the event budget tripped (runaway timer loop), or the event
    /// queue drained while nodes still report open work through
    /// [`Node::stall_detail`] (an all-stalled deadlock). The report names
    /// each stuck node, its open work, and its last-armed timer.
    ///
    /// # Errors
    ///
    /// Returns the [`StallReport`] described above; the engine state
    /// remains inspectable afterwards.
    pub fn run_checked(&mut self) -> Result<SimTime, StallReport> {
        self.run_inner(SimTime::MAX, true)
    }

    /// Like [`Engine::run_until`], but with [`Engine::run_checked`]'s
    /// stall diagnosis. Reaching `deadline` with events still queued is a
    /// normal stop, not a stall.
    ///
    /// # Errors
    ///
    /// Returns a [`StallReport`] on budget exhaustion or an all-stalled
    /// queue drain.
    pub fn run_until_checked(&mut self, deadline: SimTime) -> Result<SimTime, StallReport> {
        self.run_inner(deadline, true)
    }

    fn run_inner(&mut self, deadline: SimTime, check_stalls: bool) -> Result<SimTime, StallReport> {
        // Monomorphize the dispatch loop over "is a tracer installed", so
        // the untraced hot path carries no per-packet branch or dynamic
        // call for the (almost always absent) tracer.
        if self.tracer.is_some() {
            self.run_inner_impl::<true>(deadline, check_stalls)
        } else {
            self.run_inner_impl::<false>(deadline, check_stalls)
        }
    }

    fn run_inner_impl<const TRACED: bool>(
        &mut self,
        deadline: SimTime,
        check_stalls: bool,
    ) -> Result<SimTime, StallReport> {
        self.arm_all();
        while let Some((at, ev)) = self.queue.pop_at_or_before(deadline) {
            self.now = at;
            self.events_dispatched += 1;
            if self.events_dispatched > self.event_budget {
                return Err(self.stall_report(StallReason::BudgetExhausted {
                    dispatched: self.events_dispatched,
                }));
            }
            match ev {
                Ev::Arrival { src, dst, packet } => {
                    let mut ctx = NodeCtx::new(self.now, dst, Some(src), &mut self.outbox);
                    // An unknown destination (only possible for events
                    // injected for a node that was never registered)
                    // silently drops the packet.
                    if let Some(target) = self.nodes.get_mut(dst.index()) {
                        target.handle_packet(packet, &mut ctx);
                    }
                    self.flush_outbox_impl::<TRACED>(dst);
                    self.rearm(dst);
                }
                Ev::Wakeup { node, gen } => {
                    if self.timer_gen.get(node.index()).is_none_or(|&g| g != gen) {
                        continue; // stale timer superseded by a re-arm
                    }
                    if let Some(pending) = self.pending_wakeup.get_mut(node.index()) {
                        *pending = None;
                    }
                    let mut ctx = NodeCtx::new(self.now, node, None, &mut self.outbox);
                    if let Some(target) = self.nodes.get_mut(node.index()) {
                        target.handle_wakeup(&mut ctx);
                    }
                    self.flush_outbox_impl::<TRACED>(node);
                    self.rearm(node);
                }
            }
        }
        if !self.queue.is_empty() {
            // The next event is beyond the deadline: a normal stop.
            self.now = deadline;
            return Ok(self.now);
        }
        if check_stalls {
            let report = self.stall_report(StallReason::AllStalled);
            if !report.stalls.is_empty() {
                return Err(report);
            }
        }
        Ok(self.now)
    }

    fn stall_report(&self, reason: StallReason) -> StallReport {
        let stalls = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, node)| {
                node.stall_detail().map(|detail| NodeStall {
                    node: NodeId(i as u32),
                    detail,
                    last_armed: self.last_armed.get(i).copied().flatten(),
                })
            })
            .collect();
        StallReport {
            at: self.now,
            reason,
            stalls,
        }
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Occupancy counters of the pending-event queue, for watchdog
    /// diagnostics (tracked by the queue, not recomputed here).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Consumes the engine, returning the network and nodes for
    /// post-run inspection.
    pub fn into_parts(self) -> (Network, Vec<N>) {
        (self.net, self.nodes)
    }

    fn arm_all(&mut self) {
        for i in 0..self.nodes.len() {
            self.rearm(NodeId(i as u32));
        }
    }

    fn flush_outbox(&mut self, src: NodeId) {
        if self.tracer.is_some() {
            self.flush_outbox_impl::<true>(src);
        } else {
            self.flush_outbox_impl::<false>(src);
        }
    }

    fn flush_outbox_impl<const TRACED: bool>(&mut self, src: NodeId) {
        // Swap the outbox with a spare buffer first: routing borrows the
        // network mutably and scheduling borrows the queue. The spare is
        // swapped back after the drain, so steady-state flushes allocate
        // nothing. Order must be preserved — delivering a burst in
        // reverse would look like network reordering and trigger spurious
        // fast retransmits.
        let mut outgoing = std::mem::take(&mut self.outbox_scratch);
        std::mem::swap(&mut self.outbox, &mut outgoing);
        for out in outgoing.drain(..) {
            let class = N::classify(&out.packet);
            let delivery = self
                .net
                .route_classified(src, out.dst, out.wire_size, class, self.now);
            if TRACED {
                if let Some(tracer) = self.tracer.as_mut() {
                    tracer(TraceRecord {
                        src,
                        dst: out.dst,
                        sent_at: self.now,
                        delivery,
                        packet: &out.packet,
                    });
                }
            }
            if let Some(at) = delivery {
                self.queue.schedule(
                    at,
                    Ev::Arrival {
                        src,
                        dst: out.dst,
                        packet: out.packet,
                    },
                );
            }
        }
        self.outbox_scratch = outgoing;
    }

    fn rearm(&mut self, id: NodeId) {
        let i = id.index();
        let Some(deadline) = self.nodes.get(i).and_then(super::node::Node::next_wakeup) else {
            // No deadline (or unknown node): invalidate whatever wakeup
            // may be pending.
            if let Some(g) = self.timer_gen.get_mut(i) {
                *g += 1;
            }
            if let Some(pending) = self.pending_wakeup.get_mut(i) {
                *pending = None;
            }
            return;
        };
        let at = deadline.max(self.now);
        if self.pending_wakeup.get(i).is_some_and(|&p| p == Some(at)) {
            // The live wakeup already fires at this deadline; scheduling
            // a fresh one would only add a stale entry to the queue.
            return;
        }
        let gen = match self.timer_gen.get_mut(i) {
            Some(g) => {
                *g += 1;
                *g
            }
            None => return,
        };
        if let Some(last) = self.last_armed.get_mut(i) {
            *last = Some(at);
        }
        if let Some(pending) = self.pending_wakeup.get_mut(i) {
            *pending = Some(at);
        }
        let ev = Ev::Wakeup { node: id, gen };
        if at == self.now {
            // Immediate re-arms are the common case (a node with work
            // pending right now); skip the wheel's level selection.
            self.queue.schedule_now(at, ev);
        } else {
            self.queue.schedule(at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::PathSpec;
    use h3cdn_sim_core::SimDuration;

    /// A node that counts arrivals and can fire a one-shot timer.
    #[derive(Debug, Default)]
    struct Counter {
        received: Vec<(SimTime, u32)>,
        wakeup_at: Option<SimTime>,
        woke: Vec<SimTime>,
    }

    impl Node for Counter {
        type Packet = u32;

        fn handle_packet(&mut self, packet: u32, ctx: &mut NodeCtx<'_, u32>) {
            self.received.push((ctx.now(), packet));
        }

        fn handle_wakeup(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            self.woke.push(ctx.now());
            self.wakeup_at = None;
        }

        fn next_wakeup(&self) -> Option<SimTime> {
            self.wakeup_at
        }
    }

    fn engine_with(n: usize) -> Engine<Counter> {
        let mut net = Network::new(11);
        for _ in 0..n {
            net.add_node();
        }
        net.set_default_path(PathSpec::with_delay(SimDuration::from_millis(5)));
        Engine::new(net, (0..n).map(|_| Counter::default()).collect())
    }

    #[test]
    fn packet_arrives_after_path_delay() {
        let mut e = engine_with(2);
        e.inject_packet(NodeId(0), NodeId(1), 42, ByteCount::new(100));
        let end = e.run();
        assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(5));
        assert_eq!(e.node(NodeId(1)).received, vec![(end, 42)]);
    }

    #[test]
    fn wakeup_fires_at_deadline() {
        let mut e = engine_with(1);
        let t = SimTime::ZERO + SimDuration::from_millis(30);
        e.node_mut(NodeId(0)).wakeup_at = Some(t);
        e.run();
        assert_eq!(e.node(NodeId(0)).woke, vec![t]);
    }

    #[test]
    fn stale_wakeups_are_filtered() {
        let mut e = engine_with(2);
        let t = SimTime::ZERO + SimDuration::from_millis(100);
        e.node_mut(NodeId(1)).wakeup_at = Some(t);
        // A packet arrival at 5 ms causes a re-arm; the node cancels its
        // timer during handling (handle_packet leaves wakeup_at as-is here,
        // so instead we cancel through with_node).
        e.inject_packet(NodeId(0), NodeId(1), 1, ByteCount::new(100));
        e.run_until(SimTime::ZERO + SimDuration::from_millis(10));
        e.with_node(NodeId(1), |n, _| n.wakeup_at = None);
        e.run();
        assert!(e.node(NodeId(1)).woke.is_empty(), "cancelled timer fired");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = engine_with(1);
        e.node_mut(NodeId(0)).wakeup_at = Some(SimTime::ZERO + SimDuration::from_millis(50));
        let reached = e.run_until(SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(reached, SimTime::ZERO + SimDuration::from_millis(20));
        assert!(e.node(NodeId(0)).woke.is_empty());
        // Resuming finishes the pending work.
        e.run();
        assert_eq!(e.node(NodeId(0)).woke.len(), 1);
    }

    #[test]
    fn with_node_flushes_sends() {
        let mut e = engine_with(2);
        e.with_node(NodeId(0), |_n, ctx| {
            ctx.send(NodeId(1), 7, ByteCount::new(100));
        });
        e.run();
        assert_eq!(e.node(NodeId(1)).received.len(), 1);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn runaway_wakeup_loop_hits_budget() {
        // The unchecked entry points still panic (with the report text)
        // so tests and scripts fail loudly.
        let mut e = spinner_engine();
        e.run();
    }

    /// Always asks to wake immediately — an intentional runaway bug.
    #[derive(Debug)]
    struct Spinner;
    impl Node for Spinner {
        type Packet = ();
        fn handle_packet(&mut self, _p: (), _ctx: &mut NodeCtx<'_, ()>) {}
        fn handle_wakeup(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}
        fn next_wakeup(&self) -> Option<SimTime> {
            Some(SimTime::ZERO)
        }
        fn stall_detail(&self) -> Option<String> {
            Some("spinning on a zero-delay timer".to_string())
        }
    }

    fn spinner_engine() -> Engine<Spinner> {
        let mut net = Network::new(1);
        net.add_node();
        let mut e = Engine::new(net, vec![Spinner]);
        e.set_event_budget(1_000);
        e
    }

    #[test]
    fn run_checked_reports_budget_exhaustion() {
        let mut e = spinner_engine();
        let report = e.run_checked().expect_err("runaway loop must be caught");
        assert_eq!(
            report.reason,
            StallReason::BudgetExhausted { dispatched: 1_001 }
        );
        assert_eq!(report.stalls.len(), 1);
        assert_eq!(report.stalls[0].node, NodeId(0));
        assert_eq!(report.stalls[0].last_armed, Some(SimTime::ZERO));
        let text = report.to_string();
        assert!(text.contains("event budget exhausted"), "{text}");
        assert!(text.contains("spinning"), "{text}");
    }

    #[test]
    fn run_checked_reports_all_stalled_deadlock() {
        /// Claims open work but never arms a timer — a deadlocked
        /// endpoint waiting on a peer that will never speak.
        #[derive(Debug)]
        struct Stuck;
        impl Node for Stuck {
            type Packet = ();
            fn handle_packet(&mut self, _p: (), _ctx: &mut NodeCtx<'_, ()>) {}
            fn handle_wakeup(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}
            fn next_wakeup(&self) -> Option<SimTime> {
                None
            }
            fn stall_detail(&self) -> Option<String> {
                Some("conn#1 handshake in flight, nothing armed".to_string())
            }
        }
        let mut net = Network::new(2);
        net.add_node();
        let mut e = Engine::new(net, vec![Stuck]);
        let report = e.run_checked().expect_err("deadlock must be diagnosed");
        assert_eq!(report.reason, StallReason::AllStalled);
        assert_eq!(report.stalls[0].last_armed, None);
        assert!(report.to_string().contains("conn#1 handshake in flight"));
    }

    #[test]
    fn run_checked_clean_finish_is_ok() {
        let mut e = engine_with(2);
        e.inject_packet(NodeId(0), NodeId(1), 42, ByteCount::new(100));
        let end = e.run_checked().expect("quiescent finish");
        assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn deadline_stop_is_not_a_stall() {
        // Reaching the deadline with events still queued is a normal
        // stop, not a drained-queue deadlock — even for a node that
        // reports open work.
        #[derive(Debug)]
        struct Busy;
        impl Node for Busy {
            type Packet = ();
            fn handle_packet(&mut self, _p: (), _ctx: &mut NodeCtx<'_, ()>) {}
            fn handle_wakeup(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}
            fn next_wakeup(&self) -> Option<SimTime> {
                Some(SimTime::ZERO + SimDuration::from_millis(50))
            }
            fn stall_detail(&self) -> Option<String> {
                Some("request outstanding".to_string())
            }
        }
        let mut net = Network::new(3);
        net.add_node();
        let mut e = Engine::new(net, vec![Busy]);
        let reached = e
            .run_until_checked(SimTime::ZERO + SimDuration::from_millis(20))
            .expect("deadline stop is normal");
        assert_eq!(reached, SimTime::ZERO + SimDuration::from_millis(20));
    }

    #[test]
    fn engine_routes_through_protocol_selective_faults() {
        /// Packets carry their own transport class: 0 = UDP, 1 = TCP.
        #[derive(Debug, Default)]
        struct Classified {
            received: Vec<u8>,
        }
        impl Node for Classified {
            type Packet = u8;
            fn handle_packet(&mut self, p: u8, _ctx: &mut NodeCtx<'_, u8>) {
                self.received.push(p);
            }
            fn handle_wakeup(&mut self, _ctx: &mut NodeCtx<'_, u8>) {}
            fn next_wakeup(&self) -> Option<SimTime> {
                None
            }
            fn classify(packet: &u8) -> crate::fault::TransportClass {
                match packet {
                    0 => crate::fault::TransportClass::Udp,
                    _ => crate::fault::TransportClass::Tcp,
                }
            }
        }
        let mut net = Network::new(6);
        let a = net.add_node();
        let b = net.add_node();
        net.set_default_path(PathSpec::with_delay(SimDuration::from_millis(1)));
        net.set_fault_plan(a, b, crate::fault::FaultPlan::udp_blackhole_always());
        let mut e = Engine::new(net, vec![Classified::default(), Classified::default()]);
        e.with_node(a, |_n, ctx| {
            ctx.send(b, 0, ByteCount::new(100)); // UDP: blackholed
            ctx.send(b, 1, ByteCount::new(100)); // TCP: passes
        });
        e.run();
        assert_eq!(e.node(b).received, vec![1]);
        assert_eq!(e.network().fault_dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "one Node implementation required")]
    fn node_count_mismatch_rejected() {
        let mut net = Network::new(1);
        net.add_node();
        let _ = Engine::<Counter>::new(net, vec![]);
    }

    #[test]
    fn tracer_sees_deliveries_and_drops() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut net = Network::new(4);
        let a = net.add_node();
        let b = net.add_node();
        net.set_path(
            a,
            b,
            PathSpec::with_delay(SimDuration::from_millis(1))
                .loss(crate::LossModel::Iid { p: 1.0 }),
        );
        net.set_path(b, a, PathSpec::with_delay(SimDuration::from_millis(1)));
        let mut e = Engine::new(net, vec![Counter::default(), Counter::default()]);
        let seen: Rc<RefCell<Vec<(u32, bool)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        e.set_tracer(Box::new(move |r| {
            sink.borrow_mut().push((*r.packet, r.delivery.is_some()));
        }));
        // a→b drops (certain loss); b→a delivers.
        e.with_node(NodeId(0), |_n, ctx| {
            ctx.send(NodeId(1), 7, ByteCount::new(100));
        });
        e.with_node(NodeId(1), |_n, ctx| {
            ctx.send(NodeId(0), 9, ByteCount::new(100));
        });
        e.run();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&(7, false)), "dropped packet traced");
        assert!(seen.contains(&(9, true)), "delivered packet traced");
    }

    #[test]
    fn into_parts_returns_state() {
        let mut e = engine_with(2);
        e.inject_packet(NodeId(0), NodeId(1), 3, ByteCount::new(100));
        e.run();
        let (net, nodes) = e.into_parts();
        assert_eq!(net.delivered(), 1);
        assert_eq!(nodes[1].received.len(), 1);
    }
}
