//! Continuous path dynamics: trace-driven link variation.
//!
//! [`FaultPlan`](crate::FaultPlan) models *discrete* events — a link is
//! either up or down, collapsed or not. Real access paths degrade
//! *continuously*: a cellular handover ramps delay up and rate down over
//! hundreds of milliseconds, a Wi-Fi roam is a brief lossy fade, and a
//! shared bottleneck oscillates. This module drives per-path parameters
//! (extra delay, bottleneck rate, extra loss) from a piecewise-linear
//! [`PathTrace`], sampled deterministically per packet — same seed, same
//! trace, same byte-identical run.
//!
//! Traces compose with the static [`PathSpec`](crate::PathSpec): the
//! trace's delay is *added* to the path's propagation delay, its loss is
//! an *extra* IID drop probability ahead of the path's own loss model,
//! and its rate feeds a dedicated [`Serializer`] running a configurable
//! [`QueueDiscipline`] — the varying bottleneck where bufferbloat lives.

use h3cdn_sim_core::units::{ByteCount, DataRate};
use h3cdn_sim_core::{SimDuration, SimRng, SimTime};

use crate::link::{QueueDiscipline, QueueStats, Serializer};

/// Traces never interpolate below this rate: `DataRate` cannot represent
/// zero (a zero-rate link is a blackout — model that with a `FaultPlan`).
const MIN_TRACE_RATE_BPS: u64 = 8_000;

/// One knot of a piecewise-linear path trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceKey {
    /// Offset from the start of the (looping) trace period.
    pub at: SimDuration,
    /// Extra one-way delay added to the path's propagation delay.
    pub extra_delay: SimDuration,
    /// Bottleneck rate of the dynamic link at this instant.
    pub rate: DataRate,
    /// Extra IID drop probability in `[0, 1]`, applied before the
    /// path's own loss model.
    pub extra_loss: f64,
}

impl TraceKey {
    /// A clean knot: no extra delay or loss, the given rate.
    pub fn clean(at: SimDuration, rate: DataRate) -> Self {
        TraceKey {
            at,
            extra_delay: SimDuration::ZERO,
            rate,
            extra_loss: 0.0,
        }
    }
}

/// Why a set of trace keys does not form a valid [`PathTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceError {
    /// A trace needs at least one key.
    Empty,
    /// The first key must sit at offset zero so the looping
    /// interpolation is total.
    FirstKeyNotZero,
    /// Keys must be strictly increasing in `at`; the key at this index
    /// is not after its predecessor.
    Unsorted { index: usize },
    /// A key's `extra_loss` is outside `[0, 1]` (or not finite).
    LossOutOfRange { index: usize, p: f64 },
    /// The looping period must be positive.
    ZeroPeriod,
    /// A key's offset reaches or exceeds the period, so it would never
    /// be sampled.
    KeyBeyondPeriod { index: usize },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "path trace has no keys"),
            TraceError::FirstKeyNotZero => {
                write!(f, "path trace must start with a key at offset zero")
            }
            TraceError::Unsorted { index } => {
                write!(f, "path trace key {index} is not after its predecessor")
            }
            TraceError::LossOutOfRange { index, p } => {
                write!(
                    f,
                    "path trace key {index} has extra_loss {p} outside [0, 1]"
                )
            }
            TraceError::ZeroPeriod => write!(f, "path trace period must be positive"),
            TraceError::KeyBeyondPeriod { index } => {
                write!(f, "path trace key {index} lies at or beyond the period")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The trace's value at one instant (see [`PathTrace::sample`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Extra one-way delay.
    pub extra_delay: SimDuration,
    /// Bottleneck rate.
    pub rate: DataRate,
    /// Extra IID drop probability.
    pub extra_loss: f64,
}

/// A looping piecewise-linear trace of path parameters.
///
/// Values between keys interpolate linearly; after the last key the
/// trace interpolates toward the first key shifted by one period, then
/// wraps. Sampling is a pure function of the timestamp — no state — so
/// replay determinism is free.
#[derive(Debug, Clone, PartialEq)]
pub struct PathTrace {
    keys: Vec<TraceKey>,
    period: SimDuration,
}

impl PathTrace {
    /// Validates and builds a trace from keys and a looping period.
    pub fn new(keys: Vec<TraceKey>, period: SimDuration) -> Result<Self, TraceError> {
        if keys.is_empty() {
            return Err(TraceError::Empty);
        }
        if period.is_zero() {
            return Err(TraceError::ZeroPeriod);
        }
        let mut prev: Option<SimDuration> = None;
        for (index, key) in keys.iter().enumerate() {
            if index == 0 && !key.at.is_zero() {
                return Err(TraceError::FirstKeyNotZero);
            }
            if let Some(p) = prev {
                if key.at <= p {
                    return Err(TraceError::Unsorted { index });
                }
            }
            if !key.extra_loss.is_finite() || !(0.0..=1.0).contains(&key.extra_loss) {
                return Err(TraceError::LossOutOfRange {
                    index,
                    p: key.extra_loss,
                });
            }
            if key.at >= period {
                return Err(TraceError::KeyBeyondPeriod { index });
            }
            prev = Some(key.at);
        }
        Ok(PathTrace { keys, period })
    }

    /// The looping period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Samples the trace at an absolute simulation time.
    pub fn sample(&self, at: SimTime) -> TraceSample {
        let t = at.as_nanos() % self.period.as_nanos().max(1);
        // Find the segment [prev, next) containing t. Keys are sorted
        // and the first sits at zero, so a predecessor always exists.
        let i = self.keys.partition_point(|k| k.at.as_nanos() <= t);
        let fallback = TraceKey::clean(SimDuration::ZERO, DataRate::from_bps(MIN_TRACE_RATE_BPS));
        let prev = self
            .keys
            .get(i.wrapping_sub(1))
            .copied()
            .unwrap_or(fallback);
        // The segment after the last key wraps to the first key at
        // `period`.
        let (next, next_at) = match self.keys.get(i) {
            Some(k) => (*k, k.at.as_nanos()),
            None => {
                let first = self.keys.first().copied().unwrap_or(fallback);
                (first, self.period.as_nanos())
            }
        };
        let span = next_at.saturating_sub(prev.at.as_nanos());
        let frac = if span == 0 {
            0.0
        } else {
            (t - prev.at.as_nanos()) as f64 / span as f64
        };
        let lerp = |a: f64, b: f64| a + (b - a) * frac;
        let delay_ns = lerp(
            prev.extra_delay.as_nanos() as f64,
            next.extra_delay.as_nanos() as f64,
        );
        let rate_bps = lerp(prev.rate.as_bps() as f64, next.rate.as_bps() as f64);
        let loss = lerp(prev.extra_loss, next.extra_loss).clamp(0.0, 1.0);
        TraceSample {
            extra_delay: SimDuration::from_nanos(delay_ns.max(0.0) as u64),
            rate: DataRate::from_bps((rate_bps as u64).max(MIN_TRACE_RATE_BPS)),
            extra_loss: loss,
        }
    }

    /// The analytic long-run mean of `extra_loss`: the time-weighted
    /// average over one period of the piecewise-linear loss curve
    /// (trapezoid rule per segment, exact for linear pieces).
    pub fn mean_extra_loss(&self) -> f64 {
        let period_ns = self.period.as_nanos().max(1) as f64;
        let mut area = 0.0;
        for pair in self.keys.windows(2) {
            if let [a, b] = pair {
                let span = b.at.as_nanos().saturating_sub(a.at.as_nanos()) as f64;
                area += (a.extra_loss + b.extra_loss) / 2.0 * span;
            }
        }
        // Wrap segment: last key back to the first key at `period`.
        if let (Some(last), Some(first)) = (self.keys.last(), self.keys.first()) {
            let span = self.period.as_nanos().saturating_sub(last.at.as_nanos()) as f64;
            area += (last.extra_loss + first.extra_loss) / 2.0 * span;
        }
        area / period_ns
    }
}

/// Named synthetic trace generators, seeded and deterministic.
///
/// Each profile captures one degradation regime from the measurement
/// literature: periodic cellular handovers (delay spike + rate dip +
/// loss burst), brief Wi-Fi roaming fades, and an oscillating shared
/// bottleneck (the bufferbloat stress case — rate swings while delay
/// and loss stay clean, so all queueing pain comes from the discipline
/// and the congestion controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DynamicsProfile {
    /// LTE-like link with a periodic handover event: delay ramps up
    /// ~80 ms, rate collapses to ~1.5 Mbps, ~3 % loss for ~400 ms.
    CellularHandover,
    /// Fast Wi-Fi with a short roaming fade: a ~250 ms near-outage
    /// (~0.5 Mbps, 15 % loss) with sharp edges.
    WifiRoaming,
    /// Triangle-wave bottleneck oscillating between ~40 and ~4 Mbps
    /// every few seconds; no extra delay or loss.
    OscillatingBottleneck,
}

impl DynamicsProfile {
    /// All profiles, in sweep order.
    pub const ALL: [DynamicsProfile; 3] = [
        DynamicsProfile::CellularHandover,
        DynamicsProfile::WifiRoaming,
        DynamicsProfile::OscillatingBottleneck,
    ];

    /// Stable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            DynamicsProfile::CellularHandover => "handover",
            DynamicsProfile::WifiRoaming => "wifi-roam",
            DynamicsProfile::OscillatingBottleneck => "oscillate",
        }
    }

    /// Generates this profile's trace. The seed jitters event timing
    /// and depth so different runs see different (but reproducible)
    /// trace phases.
    pub fn trace(self, seed: u64) -> PathTrace {
        let mut rng = SimRng::seed_from(seed ^ 0xD11A_7A0E);
        let keys;
        let period;
        match self {
            DynamicsProfile::CellularHandover => {
                // One handover per period: ramp into the degraded cell
                // edge over 300 ms, dwell, ramp back out.
                period = SimDuration::from_millis(rng.range_inclusive(9_000, 12_000));
                let event = SimDuration::from_millis(rng.range_inclusive(3_000, 6_000));
                let dwell = SimDuration::from_millis(rng.range_inclusive(300, 500));
                let ramp = SimDuration::from_millis(300);
                let good = TraceKey::clean(SimDuration::ZERO, DataRate::from_mbps(40));
                let degraded = |at| TraceKey {
                    at,
                    extra_delay: SimDuration::from_millis(80),
                    rate: DataRate::from_kbps(1_500),
                    extra_loss: 0.03,
                };
                keys = vec![
                    good,
                    TraceKey { at: event, ..good },
                    degraded(event + ramp),
                    degraded(event + ramp + dwell),
                    TraceKey {
                        at: event + ramp + dwell + ramp,
                        ..good
                    },
                ];
            }
            DynamicsProfile::WifiRoaming => {
                // A short, sharp roaming fade on an otherwise fast link.
                period = SimDuration::from_millis(rng.range_inclusive(15_000, 25_000));
                let event = SimDuration::from_millis(rng.range_inclusive(5_000, 10_000));
                let edge = SimDuration::from_millis(50);
                let fade_len = SimDuration::from_millis(rng.range_inclusive(200, 300));
                let good = TraceKey::clean(SimDuration::ZERO, DataRate::from_mbps(80));
                let faded = |at| TraceKey {
                    at,
                    extra_delay: SimDuration::from_millis(20),
                    rate: DataRate::from_kbps(500),
                    extra_loss: 0.15,
                };
                keys = vec![
                    good,
                    TraceKey { at: event, ..good },
                    faded(event + edge),
                    faded(event + edge + fade_len),
                    TraceKey {
                        at: event + edge + fade_len + edge,
                        ..good
                    },
                ];
            }
            DynamicsProfile::OscillatingBottleneck => {
                // Clean triangle wave: peak at the period boundaries,
                // trough mid-period. All degradation is queueing.
                period = SimDuration::from_millis(rng.range_inclusive(2_500, 4_000));
                let trough = period.mul_f64(0.5);
                keys = vec![
                    TraceKey::clean(SimDuration::ZERO, DataRate::from_mbps(40)),
                    TraceKey::clean(trough, DataRate::from_mbps(4)),
                ];
            }
        }
        // Generators construct sorted, in-range keys by design; fall
        // back to a flat trace if that invariant is ever violated
        // rather than panicking on the packet path.
        PathTrace::new(keys, period).unwrap_or_else(|_| PathTrace {
            keys: vec![TraceKey::clean(SimDuration::ZERO, DataRate::from_mbps(40))],
            period: SimDuration::from_secs(10),
        })
    }
}

impl std::fmt::Display for DynamicsProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What continuous dynamics did with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DynamicsOutcome {
    /// Delivered: serialisation through the dynamic bottleneck plus the
    /// trace's extra delay completes at this time.
    Deliver(SimTime),
    /// Dropped by the trace's extra loss process.
    DropLoss,
    /// Dropped at the dynamic bottleneck's queue (tail or AQM).
    DropQueue,
}

/// Per-path runtime state for an installed trace: the varying-rate
/// bottleneck serialiser plus a forked RNG for the extra loss draws.
#[derive(Debug, Clone)]
pub(crate) struct DynamicsState {
    trace: PathTrace,
    queue: Serializer,
    loss_rng: SimRng,
}

impl DynamicsState {
    pub(crate) fn new(trace: PathTrace, discipline: QueueDiscipline, loss_rng: SimRng) -> Self {
        let initial = trace.sample(SimTime::ZERO);
        DynamicsState {
            trace,
            queue: Serializer::with_discipline(initial.rate, discipline),
            loss_rng,
        }
    }

    /// Applies the trace to one packet offered at `at`.
    pub(crate) fn apply(&mut self, at: SimTime, size: ByteCount) -> DynamicsOutcome {
        let sample = self.trace.sample(at);
        // The loss draw happens unconditionally so the random stream
        // consumed per packet is independent of the trace phase.
        let lost = self.loss_rng.bernoulli(sample.extra_loss.clamp(0.0, 1.0));
        if lost {
            return DynamicsOutcome::DropLoss;
        }
        self.queue.set_rate(at, sample.rate);
        match self.queue.enqueue(at, size) {
            Some(done) => DynamicsOutcome::Deliver(done + sample.extra_delay),
            None => DynamicsOutcome::DropQueue,
        }
    }

    /// Counters of the dynamic bottleneck queue.
    pub(crate) fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at_ms: u64, delay_ms: u64, rate: DataRate, loss: f64) -> TraceKey {
        TraceKey {
            at: SimDuration::from_millis(at_ms),
            extra_delay: SimDuration::from_millis(delay_ms),
            rate,
            extra_loss: loss,
        }
    }

    fn two_key_trace() -> PathTrace {
        PathTrace::new(
            vec![
                key(0, 0, DataRate::from_mbps(10), 0.0),
                key(1000, 100, DataRate::from_mbps(2), 0.2),
            ],
            SimDuration::from_millis(2000),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        assert_eq!(
            PathTrace::new(vec![], SimDuration::from_secs(1)),
            Err(TraceError::Empty)
        );
        assert_eq!(
            PathTrace::new(
                vec![key(5, 0, DataRate::from_mbps(1), 0.0)],
                SimDuration::from_secs(1)
            ),
            Err(TraceError::FirstKeyNotZero)
        );
        assert_eq!(
            PathTrace::new(
                vec![
                    key(0, 0, DataRate::from_mbps(1), 0.0),
                    key(10, 0, DataRate::from_mbps(1), 0.0),
                    key(10, 0, DataRate::from_mbps(1), 0.0),
                ],
                SimDuration::from_secs(1)
            ),
            Err(TraceError::Unsorted { index: 2 })
        );
        assert_eq!(
            PathTrace::new(
                vec![key(0, 0, DataRate::from_mbps(1), 1.5)],
                SimDuration::from_secs(1)
            ),
            Err(TraceError::LossOutOfRange { index: 0, p: 1.5 })
        );
        assert_eq!(
            PathTrace::new(
                vec![key(0, 0, DataRate::from_mbps(1), 0.0)],
                SimDuration::ZERO
            ),
            Err(TraceError::ZeroPeriod)
        );
        assert_eq!(
            PathTrace::new(
                vec![
                    key(0, 0, DataRate::from_mbps(1), 0.0),
                    key(1000, 0, DataRate::from_mbps(1), 0.0),
                ],
                SimDuration::from_millis(1000)
            ),
            Err(TraceError::KeyBeyondPeriod { index: 1 })
        );
        assert!(TraceError::Empty.to_string().contains("no keys"));
    }

    #[test]
    fn sample_interpolates_exactly_at_keys_and_midpoints() {
        let trace = two_key_trace();
        let at = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        let s0 = trace.sample(at(0));
        assert_eq!(s0.extra_delay, SimDuration::ZERO);
        assert_eq!(s0.rate, DataRate::from_mbps(10));
        assert_eq!(s0.extra_loss, 0.0);

        let s1 = trace.sample(at(1000));
        assert_eq!(s1.extra_delay, SimDuration::from_millis(100));
        assert_eq!(s1.rate, DataRate::from_mbps(2));
        assert!((s1.extra_loss - 0.2).abs() < 1e-12);

        // Midpoint of the first segment: linear halfway values.
        let mid = trace.sample(at(500));
        assert_eq!(mid.extra_delay, SimDuration::from_millis(50));
        assert_eq!(mid.rate, DataRate::from_bps(6_000_000));
        assert!((mid.extra_loss - 0.1).abs() < 1e-12);

        // Midpoint of the wrap segment (1000 → 2000 ms interpolates
        // back toward the first key).
        let wrap = trace.sample(at(1500));
        assert_eq!(wrap.extra_delay, SimDuration::from_millis(50));
        assert_eq!(wrap.rate, DataRate::from_bps(6_000_000));
        assert!((wrap.extra_loss - 0.1).abs() < 1e-12);

        // Looping: one full period later, same values.
        assert_eq!(trace.sample(at(500)), trace.sample(at(2500)));
    }

    #[test]
    fn sample_floors_rate_at_the_minimum() {
        let trace = PathTrace::new(
            vec![
                key(0, 0, DataRate::from_bps(8_000), 0.0),
                key(1000, 0, DataRate::from_bps(8_000), 0.0),
            ],
            SimDuration::from_millis(2000),
        )
        .unwrap();
        let s = trace.sample(SimTime::ZERO + SimDuration::from_millis(300));
        assert!(s.rate.as_bps() >= 8_000);
    }

    #[test]
    fn long_run_mean_loss_matches_analytic_value() {
        // Mirror of the Gilbert–Elliott long-run test in loss.rs: the
        // time-averaged sampled loss over many periods must converge to
        // the analytic trapezoid mean of the piecewise-linear curve.
        let trace = two_key_trace();
        let analytic = trace.mean_extra_loss();
        // Segments: 0→1000 ms mean 0.1, 1000→2000 ms (wrap) mean 0.1.
        assert!((analytic - 0.1).abs() < 1e-12);

        let mut sum = 0.0;
        let mut n = 0u64;
        // Sample every 1 ms across 50 periods (an integer number of
        // periods keeps phase bias out of the estimate).
        for ms in 0..100_000u64 {
            sum += trace
                .sample(SimTime::ZERO + SimDuration::from_millis(ms))
                .extra_loss;
            n += 1;
        }
        let sampled = sum / n as f64;
        assert!(
            (sampled - analytic).abs() < 1e-3,
            "sampled {sampled} vs analytic {analytic}"
        );

        // And the realised bernoulli drop rate through DynamicsState
        // converges to the same mean.
        let mut state =
            DynamicsState::new(trace, QueueDiscipline::DropTailDeep, SimRng::seed_from(42));
        let mut drops = 0u64;
        let total = 100_000u64;
        for ms in 0..total {
            // Tiny packets so the queue never interferes.
            match state.apply(
                SimTime::ZERO + SimDuration::from_millis(ms),
                ByteCount::new(1),
            ) {
                DynamicsOutcome::DropLoss => drops += 1,
                DynamicsOutcome::DropQueue => {}
                DynamicsOutcome::Deliver(_) => {}
            }
        }
        let realised = drops as f64 / total as f64;
        assert!(
            (realised - analytic).abs() < 0.01,
            "realised {realised} vs analytic {analytic}"
        );
    }

    #[test]
    fn generators_are_seeded_and_deterministic() {
        for profile in DynamicsProfile::ALL {
            let a = profile.trace(7);
            let b = profile.trace(7);
            assert_eq!(a, b, "{profile} must be deterministic per seed");
            let c = profile.trace(8);
            assert_ne!(a, c, "{profile} must vary with the seed");
            assert!(!a.period().is_zero());
            // Every generated trace must sample cleanly across a period.
            for ms in 0..50 {
                let at = SimTime::ZERO + a.period().mul_f64(ms as f64 / 50.0);
                let s = a.sample(at);
                assert!(s.rate.as_bps() >= MIN_TRACE_RATE_BPS);
                assert!((0.0..=1.0).contains(&s.extra_loss));
            }
        }
        assert_eq!(DynamicsProfile::CellularHandover.label(), "handover");
        assert_eq!(DynamicsProfile::WifiRoaming.to_string(), "wifi-roam");
        assert_eq!(DynamicsProfile::OscillatingBottleneck.label(), "oscillate");
    }

    #[test]
    fn dynamics_state_delays_and_delivers() {
        // Flat 8 Mbps trace with 10 ms extra delay: a 1000 B packet
        // lands at serialisation (1 ms) + 10 ms.
        let trace = PathTrace::new(
            vec![
                key(0, 10, DataRate::from_mbps(8), 0.0),
                key(1000, 10, DataRate::from_mbps(8), 0.0),
            ],
            SimDuration::from_millis(2000),
        )
        .unwrap();
        let mut state =
            DynamicsState::new(trace, QueueDiscipline::DropTailDeep, SimRng::seed_from(1));
        let out = state.apply(SimTime::ZERO, ByteCount::new(1000));
        assert_eq!(
            out,
            DynamicsOutcome::Deliver(SimTime::ZERO + SimDuration::from_millis(11))
        );
        assert_eq!(state.queue_stats().transmitted, 1);
    }
}
