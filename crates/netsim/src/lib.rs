//! Packet-level network simulator for the `h3cdn` reproduction.
//!
//! The public Internet paths the ICDCS 2024 measurement study ran over are
//! modelled here as a mesh of *directed paths* between [`NodeId`]s. Each
//! path has propagation delay, a random-loss process, and optional rate
//! limits; each node additionally owns ingress/egress serialisers so that a
//! client's access link is the shared bottleneck when a page pulls
//! resources from many CDN edges in parallel — exactly the congestion
//! scenario the paper's Fig. 9 provokes with `tc`.
//!
//! The [`Engine`] drives user-defined [`Node`]s (protocol endpoints built
//! in `h3cdn-transport` / `h3cdn-http`) through a deterministic event loop:
//! packets are handed to [`Node::handle_packet`], timers fire through
//! [`Node::handle_wakeup`], and every run with equal seeds replays
//! identically.
//!
//! # Example
//!
//! ```
//! use h3cdn_netsim::{Engine, Network, Node, NodeCtx, PathSpec};
//! use h3cdn_sim_core::units::ByteCount;
//! use h3cdn_sim_core::{SimDuration, SimTime};
//!
//! struct Echo;
//! impl Node for Echo {
//!     type Packet = u32;
//!     fn handle_packet(&mut self, pkt: u32, ctx: &mut NodeCtx<'_, u32>) {
//!         if pkt < 3 {
//!             let from = ctx.sender().unwrap();
//!             ctx.send(from, pkt + 1, ByteCount::new(100));
//!         }
//!     }
//!     fn handle_wakeup(&mut self, _ctx: &mut NodeCtx<'_, u32>) {}
//!     fn next_wakeup(&self) -> Option<SimTime> { None }
//! }
//!
//! let mut net = Network::new(7);
//! let a = net.add_node();
//! let b = net.add_node();
//! net.set_path(a, b, PathSpec::with_delay(SimDuration::from_millis(10)));
//! net.set_path(b, a, PathSpec::with_delay(SimDuration::from_millis(10)));
//! let mut engine = Engine::new(net, vec![Echo, Echo]);
//! engine.inject_packet(a, b, 0, ByteCount::new(100));
//! let end = engine.run();
//! // 0→b, 1→a, 2→b, 3→a stops: four 10 ms hops.
//! assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(40));
//! ```

pub mod dynamics;
pub mod engine;
pub mod fault;
pub mod link;
pub mod loss;
pub mod network;
pub mod node;
pub mod topology;

pub use dynamics::{DynamicsProfile, PathTrace, TraceKey};
pub use engine::{Engine, StallReport};
pub use fault::{FaultPlan, FaultPlanError, TransportClass};
pub use link::{PathSpec, QueueDiscipline, QueueStats};
pub use loss::LossModel;
pub use network::Network;
pub use node::{Node, NodeCtx, NodeId};
