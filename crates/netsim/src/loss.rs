//! Random packet-loss processes.
//!
//! The paper sweeps IID loss rates of 0 %, 0.5 % and 1 % with `tc` (Fig. 9).
//! [`LossModel::Iid`] reproduces that; [`LossModel::GilbertElliott`] adds
//! the bursty-loss ablation listed in DESIGN.md, since real access links
//! lose packets in bursts and burstiness is precisely what makes
//! head-of-line blocking expensive.

use h3cdn_sim_core::SimRng;

/// Configuration of a loss process. Attach one per directed path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No random loss (queue overflow can still drop packets).
    #[default]
    None,
    /// Independent Bernoulli loss with probability `p` per packet.
    Iid {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott chain: a *good* and a *bad* state with
    /// separate loss probabilities and geometric sojourn times.
    GilbertElliott {
        /// Probability of moving good → bad at each packet.
        p_good_to_bad: f64,
        /// Probability of moving bad → good at each packet.
        p_bad_to_good: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// IID loss expressed as a percentage, matching the paper's axis
    /// labels (`LossModel::iid_percent(1.0)` is 1 % loss).
    ///
    /// # Panics
    ///
    /// Panics if `percent` is outside `[0, 100]`.
    pub fn iid_percent(percent: f64) -> LossModel {
        assert!(
            (0.0..=100.0).contains(&percent),
            "loss percent out of range: {percent}"
        );
        if percent == 0.0 {
            LossModel::None
        } else {
            LossModel::Iid { p: percent / 100.0 }
        }
    }

    /// A bursty Gilbert–Elliott model with the given long-run mean loss:
    /// lossless good state, 20 %-loss bad state with geometric mean
    /// sojourn of ~5 packets. Use for like-for-like comparisons against
    /// [`LossModel::iid_percent`] at equal mean (the burstiness
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if `percent` is outside `[0, 15]` (beyond that the bad
    /// state cannot be rare enough to keep the chain meaningful).
    pub fn bursty_percent(percent: f64) -> LossModel {
        assert!(
            (0.0..=15.0).contains(&percent),
            "bursty loss percent out of range: {percent}"
        );
        if percent == 0.0 {
            return LossModel::None;
        }
        const LOSS_BAD: f64 = 0.2;
        const P_BAD_TO_GOOD: f64 = 0.19;
        let mean = percent / 100.0;
        let pi_bad = mean / LOSS_BAD;
        let p_good_to_bad = P_BAD_TO_GOOD * pi_bad / (1.0 - pi_bad);
        LossModel::GilbertElliott {
            p_good_to_bad,
            p_bad_to_good: P_BAD_TO_GOOD,
            loss_good: 0.0,
            loss_bad: LOSS_BAD,
        }
    }

    /// The long-run average loss probability of this model.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the two-state chain.
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    loss_good
                } else {
                    let pi_bad = p_good_to_bad / denom;
                    loss_good * (1.0 - pi_bad) + loss_bad * pi_bad
                }
            }
        }
    }
}

/// Per-path loss state (the Markov-chain position for Gilbert–Elliott).
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    in_bad_state: bool,
    rng: SimRng,
}

impl LossProcess {
    /// Creates a loss process with its own random stream.
    pub fn new(model: LossModel, rng: SimRng) -> Self {
        LossProcess {
            model,
            in_bad_state: false,
            rng,
        }
    }

    /// Returns the configured model.
    pub fn model(&self) -> LossModel {
        self.model
    }

    /// Advances the process one packet and reports whether that packet is
    /// dropped.
    pub fn should_drop(&mut self) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Iid { p } => self.rng.bernoulli(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Transition first, then sample loss in the new state.
                if self.in_bad_state {
                    if self.rng.bernoulli(p_bad_to_good) {
                        self.in_bad_state = false;
                    }
                } else if self.rng.bernoulli(p_good_to_bad) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                };
                self.rng.bernoulli(p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut lp = LossProcess::new(LossModel::None, SimRng::seed_from(1));
        assert!((0..10_000).all(|_| !lp.should_drop()));
    }

    #[test]
    fn iid_rate_converges() {
        let mut lp = LossProcess::new(LossModel::iid_percent(1.0), SimRng::seed_from(2));
        let n = 200_000;
        let drops = (0..n).filter(|_| lp.should_drop()).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn iid_percent_zero_is_none() {
        assert_eq!(LossModel::iid_percent(0.0), LossModel::None);
        assert_eq!(LossModel::iid_percent(0.5), LossModel::Iid { p: 0.005 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn iid_percent_rejects_out_of_range() {
        let _ = LossModel::iid_percent(150.0);
    }

    #[test]
    fn gilbert_elliott_mean_matches_stationary() {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.19,
            loss_good: 0.0,
            loss_bad: 0.2,
        };
        // pi_bad = 0.01 / 0.20 = 0.05 → mean loss = 0.05 * 0.2 = 0.01
        assert!((model.mean_loss() - 0.01).abs() < 1e-12);
        let mut lp = LossProcess::new(model, SimRng::seed_from(3));
        let n = 400_000;
        let drops = (0..n).filter(|_| lp.should_drop()).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same mean loss as IID 1 %, but conditional loss probability after
        // a loss should be much higher than 1 % because of the bad state.
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.19,
            loss_good: 0.0,
            loss_bad: 0.2,
        };
        let mut lp = LossProcess::new(model, SimRng::seed_from(4));
        let n = 400_000;
        let outcomes: Vec<bool> = (0..n).map(|_| lp.should_drop()).collect();
        let mut after_loss = 0usize;
        let mut after_loss_lost = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    after_loss_lost += 1;
                }
            }
        }
        let conditional = after_loss_lost as f64 / after_loss as f64;
        assert!(
            conditional > 0.05,
            "burstiness missing: conditional loss {conditional}"
        );
    }

    #[test]
    fn mean_loss_for_simple_models() {
        assert_eq!(LossModel::None.mean_loss(), 0.0);
        assert_eq!(LossModel::Iid { p: 0.25 }.mean_loss(), 0.25);
    }

    #[test]
    fn bursty_percent_matches_requested_mean() {
        for pct in [0.5, 1.0, 2.0] {
            let m = LossModel::bursty_percent(pct);
            assert!(
                (m.mean_loss() - pct / 100.0).abs() < 1e-12,
                "{pct}%: mean {}",
                m.mean_loss()
            );
        }
        assert_eq!(LossModel::bursty_percent(0.0), LossModel::None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bursty_percent_rejects_extremes() {
        let _ = LossModel::bursty_percent(50.0);
    }
}
