//! Seeded, deterministic fault injection for directed paths.
//!
//! Real CDN measurement campaigns run over an Internet that misbehaves in
//! ways the steady-state loss models in [`crate::loss`] do not capture:
//! access links flap, edges die, and — crucially for an HTTP/3 study —
//! middleboxes silently blackhole UDP while letting TCP through, which is
//! exactly the failure mode behind browsers' H3→H2 fallback machinery
//! (the adoption-vs-usage gap in *Measuring HTTP/3*). A [`FaultPlan`]
//! attaches a schedule of such impairments to one directed path:
//!
//! * [`FaultKind::Blackout`] — the link is dead; every packet sent during
//!   the window is dropped regardless of protocol.
//! * [`FaultKind::UdpBlackhole`] — protocol-selective: packets classified
//!   [`TransportClass::Udp`] (QUIC) are dropped, TCP passes. Models a
//!   QUIC-hostile middlebox or an enterprise firewall's default-deny UDP.
//! * [`FaultKind::LossBurst`] — a transient loss storm: an extra
//!   independent Bernoulli drop with probability `p` on top of the path's
//!   configured [`LossModel`](crate::LossModel), only inside the window.
//! * [`FaultKind::RateCollapse`] — the path's capacity collapses to a
//!   trickle for the window (an overloaded edge or a rain-faded last
//!   mile), modelled as an extra shallow-buffered [`Serializer`].
//!
//! Every decision is deterministic: windows are fixed instants, and the
//! only randomness (the loss-burst coin) comes from a [`SimRng`] stream
//! forked per window off the owning [`Network`](crate::Network)'s seed, so
//! equal seeds replay drop-for-drop identically.

use h3cdn_sim_core::units::{ByteCount, DataRate};
use h3cdn_sim_core::{SimRng, SimTime};

use crate::link::Serializer;

/// Queue depth of the temporary bottleneck a [`FaultKind::RateCollapse`]
/// window imposes. Deliberately shallow (a few dozen full-size packets):
/// a collapsed link drops, it does not buffer-bloat.
const COLLAPSE_QUEUE_CAPACITY: ByteCount = ByteCount::new(64 * 1500);

/// Coarse transport classification of a packet, used by
/// protocol-selective faults ([`FaultKind::UdpBlackhole`]).
///
/// The engine obtains this from [`Node::classify`](crate::Node::classify);
/// packet types that do not override it are [`TransportClass::Other`],
/// which only protocol-blind faults (blackout, loss burst, rate collapse)
/// affect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportClass {
    /// A UDP datagram (QUIC).
    Udp,
    /// A TCP segment.
    Tcp,
    /// Anything else (test packets, abstract messages).
    Other,
}

/// One kind of scheduled impairment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FaultKind {
    /// Drop every packet: the link is down.
    Blackout,
    /// Drop every [`TransportClass::Udp`] packet; everything else passes.
    UdpBlackhole,
    /// Extra IID loss with probability `p` per packet inside the window.
    LossBurst {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// The path's usable rate collapses to `rate` inside the window.
    RateCollapse {
        /// The collapsed bottleneck rate.
        rate: DataRate,
    },
}

/// One scheduled impairment window: `kind` is active for packets offered
/// in `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FaultWindow {
    /// First instant (inclusive) the fault applies.
    pub from: SimTime,
    /// First instant (exclusive) the fault no longer applies.
    pub until: SimTime,
    /// What the fault does.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window covers packets offered at `at`.
    pub fn active_at(&self, at: SimTime) -> bool {
        self.from <= at && at < self.until
    }
}

/// Why a fault window is malformed.
///
/// Builder validation returns these instead of panicking so a malformed
/// scenario config surfaces as a quarantinable job error rather than
/// aborting a whole campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// The window's `until` precedes its `from`.
    InvertedWindow {
        /// Requested start of the window.
        from: SimTime,
        /// Requested end of the window.
        until: SimTime,
    },
    /// A loss-burst probability is outside `[0, 1]` (or not finite).
    LossProbabilityOutOfRange {
        /// The rejected probability.
        p: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::InvertedWindow { from, until } => write!(
                f,
                "fault window ends before it starts ({} ns > {} ns)",
                from.as_nanos(),
                until.as_nanos()
            ),
            FaultPlanError::LossProbabilityOutOfRange { p } => {
                write!(f, "loss-burst p out of range: {p}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A schedule of impairments for one directed path. Attach with
/// [`Network::set_fault_plan`](crate::Network::set_fault_plan).
///
/// Windows may overlap; each active window is applied in insertion order
/// (drops short-circuit, rate collapses compose by delaying the packet).
/// Builders validate their windows and return [`FaultPlanError`] on
/// malformed input instead of panicking.
///
/// # Example
///
/// ```
/// use h3cdn_netsim::fault::{FaultPlan, FaultPlanError};
/// use h3cdn_sim_core::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), FaultPlanError> {
/// let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
/// let plan = FaultPlan::new()
///     .udp_blackhole(SimTime::ZERO, SimTime::MAX)? // QUIC-hostile middlebox
///     .blackout(t(2), t(3))?; // plus a 1 s total outage
/// assert!(plan != FaultPlan::new());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Validates and adds an arbitrary window (builder style).
    pub(crate) fn window(
        self,
        from: SimTime,
        until: SimTime,
        kind: FaultKind,
    ) -> Result<Self, FaultPlanError> {
        if from > until {
            return Err(FaultPlanError::InvertedWindow { from, until });
        }
        if let FaultKind::LossBurst { p } = kind {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FaultPlanError::LossProbabilityOutOfRange { p });
            }
        }
        Ok(self.push_window(from, until, kind))
    }

    /// Appends a window known to be valid (internal use only).
    fn push_window(mut self, from: SimTime, until: SimTime, kind: FaultKind) -> Self {
        self.windows.push(FaultWindow { from, until, kind });
        self
    }

    /// Adds a full blackout window (builder style).
    pub fn blackout(self, from: SimTime, until: SimTime) -> Result<Self, FaultPlanError> {
        self.window(from, until, FaultKind::Blackout)
    }

    /// Adds a UDP-blackhole window (builder style).
    pub fn udp_blackhole(self, from: SimTime, until: SimTime) -> Result<Self, FaultPlanError> {
        self.window(from, until, FaultKind::UdpBlackhole)
    }

    /// A permanent UDP blackhole: the canonical QUIC-hostile middlebox.
    pub fn udp_blackhole_always() -> Self {
        FaultPlan::new().push_window(SimTime::ZERO, SimTime::MAX, FaultKind::UdpBlackhole)
    }

    /// Adds a loss-burst window (builder style); `p` must lie in
    /// `[0, 1]`.
    pub fn loss_burst(self, from: SimTime, until: SimTime, p: f64) -> Result<Self, FaultPlanError> {
        self.window(from, until, FaultKind::LossBurst { p })
    }

    /// Adds a rate-collapse window (builder style).
    pub fn rate_collapse(
        self,
        from: SimTime,
        until: SimTime,
        rate: DataRate,
    ) -> Result<Self, FaultPlanError> {
        self.window(from, until, FaultKind::RateCollapse { rate })
    }

    /// Whether the plan schedules no impairments at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// The verdict a fault plan renders on one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultOutcome {
    /// The packet survives; it proceeds at the (possibly delayed) time.
    Deliver(SimTime),
    /// The packet is consumed by a fault.
    Drop,
}

/// Runtime state of a [`FaultPlan`] on one directed path: the plan's
/// windows armed with their per-window random streams and collapse
/// queues.
#[derive(Debug)]
pub(crate) struct FaultState {
    windows: Vec<ArmedWindow>,
}

#[derive(Debug)]
struct ArmedWindow {
    window: FaultWindow,
    kind: ArmedKind,
}

#[derive(Debug)]
enum ArmedKind {
    Blackout,
    UdpBlackhole,
    LossBurst { p: f64, rng: SimRng },
    RateCollapse { queue: Serializer },
}

impl FaultState {
    /// Arms `plan` with deterministic per-window streams forked off
    /// `rng` (one fork per window index, so editing one window never
    /// reshuffles another's draws).
    pub(crate) fn new(plan: FaultPlan, rng: &SimRng) -> Self {
        let windows = plan
            .windows
            .into_iter()
            .enumerate()
            .map(|(i, window)| {
                let kind = match window.kind {
                    FaultKind::Blackout => ArmedKind::Blackout,
                    FaultKind::UdpBlackhole => ArmedKind::UdpBlackhole,
                    FaultKind::LossBurst { p } => ArmedKind::LossBurst {
                        p,
                        rng: rng.fork(i as u64),
                    },
                    FaultKind::RateCollapse { rate } => ArmedKind::RateCollapse {
                        queue: Serializer::new(rate, COLLAPSE_QUEUE_CAPACITY),
                    },
                };
                ArmedWindow { window, kind }
            })
            .collect();
        FaultState { windows }
    }

    /// Applies every window active at `at` to a packet of `size` bytes
    /// classified as `class`. Drops short-circuit; rate collapses move
    /// the packet later in time (and later windows see the delayed time).
    pub(crate) fn apply(
        &mut self,
        class: TransportClass,
        mut at: SimTime,
        size: ByteCount,
    ) -> FaultOutcome {
        for armed in &mut self.windows {
            if !armed.window.active_at(at) {
                continue;
            }
            match &mut armed.kind {
                ArmedKind::Blackout => return FaultOutcome::Drop,
                ArmedKind::UdpBlackhole => {
                    if class == TransportClass::Udp {
                        return FaultOutcome::Drop;
                    }
                }
                ArmedKind::LossBurst { p, rng } => {
                    if rng.bernoulli(*p) {
                        return FaultOutcome::Drop;
                    }
                }
                ArmedKind::RateCollapse { queue } => match queue.enqueue(at, size) {
                    Some(t) => at = t,
                    None => return FaultOutcome::Drop,
                },
            }
        }
        FaultOutcome::Deliver(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn state(plan: FaultPlan) -> FaultState {
        FaultState::new(plan, &SimRng::seed_from(7))
    }

    #[test]
    fn blackout_drops_everything_inside_window_only() {
        let mut s = state(FaultPlan::new().blackout(t(10), t(20)).unwrap());
        for class in [
            TransportClass::Udp,
            TransportClass::Tcp,
            TransportClass::Other,
        ] {
            assert_eq!(
                s.apply(class, t(15), ByteCount::new(100)),
                FaultOutcome::Drop
            );
            assert_eq!(
                s.apply(class, t(5), ByteCount::new(100)),
                FaultOutcome::Deliver(t(5))
            );
            // `until` is exclusive: the link is back at t(20).
            assert_eq!(
                s.apply(class, t(20), ByteCount::new(100)),
                FaultOutcome::Deliver(t(20))
            );
        }
    }

    #[test]
    fn udp_blackhole_is_protocol_selective() {
        let mut s = state(FaultPlan::udp_blackhole_always());
        assert_eq!(
            s.apply(TransportClass::Udp, t(1), ByteCount::new(100)),
            FaultOutcome::Drop
        );
        assert_eq!(
            s.apply(TransportClass::Tcp, t(1), ByteCount::new(100)),
            FaultOutcome::Deliver(t(1))
        );
        assert_eq!(
            s.apply(TransportClass::Other, t(1), ByteCount::new(100)),
            FaultOutcome::Deliver(t(1))
        );
    }

    #[test]
    fn loss_burst_drops_at_configured_rate_and_is_deterministic() {
        let run = || {
            let mut s = state(
                FaultPlan::new()
                    .loss_burst(t(0), SimTime::MAX, 0.3)
                    .unwrap(),
            );
            (0..10_000)
                .map(|i| s.apply(TransportClass::Tcp, t(i), ByteCount::new(100)))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "loss bursts must replay identically");
        let drops = a.iter().filter(|o| **o == FaultOutcome::Drop).count();
        let rate = drops as f64 / a.len() as f64;
        assert!((rate - 0.3).abs() < 0.02, "burst rate {rate}");
    }

    #[test]
    fn rate_collapse_delays_then_drops_on_overflow() {
        // 8 Mbps = 1 byte/µs.
        let mut s = state(
            FaultPlan::new()
                .rate_collapse(t(0), SimTime::MAX, DataRate::from_mbps(8))
                .unwrap(),
        );
        let d1 = s.apply(TransportClass::Udp, t(0), ByteCount::new(1000));
        assert_eq!(
            d1,
            FaultOutcome::Deliver(t(0) + SimDuration::from_micros(1000))
        );
        // Saturate the shallow queue; eventually packets drop.
        let mut dropped = false;
        for _ in 0..200 {
            if s.apply(TransportClass::Udp, t(0), ByteCount::new(1500)) == FaultOutcome::Drop {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "collapsed link must tail-drop under overload");
    }

    #[test]
    fn overlapping_windows_compose_in_order() {
        // A UDP blackhole over a rate collapse: TCP is delayed, UDP dies.
        let mut s = state(
            FaultPlan::new()
                .udp_blackhole(t(0), SimTime::MAX)
                .unwrap()
                .rate_collapse(t(0), SimTime::MAX, DataRate::from_mbps(8))
                .unwrap(),
        );
        assert_eq!(
            s.apply(TransportClass::Udp, t(0), ByteCount::new(1000)),
            FaultOutcome::Drop
        );
        assert_eq!(
            s.apply(TransportClass::Tcp, t(0), ByteCount::new(1000)),
            FaultOutcome::Deliver(t(0) + SimDuration::from_micros(1000))
        );
    }

    #[test]
    fn inverted_window_rejected() {
        assert_eq!(
            FaultPlan::new().blackout(t(10), t(5)),
            Err(FaultPlanError::InvertedWindow {
                from: t(10),
                until: t(5),
            })
        );
        let msg = FaultPlanError::InvertedWindow {
            from: t(10),
            until: t(5),
        }
        .to_string();
        assert!(msg.contains("ends before it starts"), "{msg}");
    }

    #[test]
    fn loss_burst_probability_validated() {
        assert_eq!(
            FaultPlan::new().loss_burst(t(0), t(1), 1.5),
            Err(FaultPlanError::LossProbabilityOutOfRange { p: 1.5 })
        );
        assert!(FaultPlan::new().loss_burst(t(0), t(1), f64::NAN).is_err());
        let msg = FaultPlanError::LossProbabilityOutOfRange { p: 1.5 }.to_string();
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn valid_windows_build_and_errors_do_not_mutate() {
        // A failed builder step returns Err and the original plan value
        // was consumed; chaining with `?` therefore cannot half-build.
        let plan = FaultPlan::new()
            .blackout(t(1), t(2))
            .and_then(|p| p.loss_burst(t(3), t(4), 0.5))
            .unwrap();
        assert!(!plan.is_empty());
    }
}
