//! Path specifications and FIFO serialisers.
//!
//! A [`PathSpec`] describes one direction of a network path: propagation
//! delay, an optional bottleneck rate, and a loss model. A [`Serializer`]
//! models transmission onto a rate-limited link with a bounded FIFO queue —
//! this is where queueing delay and tail-drop come from.

use h3cdn_sim_core::units::{ByteCount, DataRate};
use h3cdn_sim_core::{SimDuration, SimTime};

use crate::loss::LossModel;

/// One direction of a path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSpec {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Maximum extra per-packet delay, drawn uniformly from
    /// `[0, jitter]`. Non-zero jitter *reorders* packets — the stress
    /// case for transport reassembly and loss-detection thresholds.
    pub jitter: SimDuration,
    /// Bottleneck rate along the path itself, or `None` for "not the
    /// bottleneck" (node access links still apply).
    pub rate: Option<DataRate>,
    /// Random loss process applied per packet.
    pub loss: LossModel,
}

impl PathSpec {
    /// A loss-free, rate-unconstrained path with the given one-way delay.
    pub fn with_delay(delay: SimDuration) -> Self {
        PathSpec {
            delay,
            jitter: SimDuration::ZERO,
            rate: None,
            loss: LossModel::None,
        }
    }

    /// Sets the maximum per-packet jitter (builder style).
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the bottleneck rate (builder style).
    pub fn rate(mut self, rate: DataRate) -> Self {
        self.rate = Some(rate);
        self
    }

    /// Sets the loss model (builder style).
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// The round-trip propagation time of a symmetric path using this spec
    /// in both directions.
    pub fn rtt(&self) -> SimDuration {
        self.delay * 2
    }
}

impl Default for PathSpec {
    /// A 1 ms, loss-free, unconstrained path.
    fn default() -> Self {
        PathSpec::with_delay(SimDuration::from_millis(1))
    }
}

/// A FIFO link serialiser with a bounded queue.
///
/// Packets handed to [`Serializer::enqueue`] at time `t` finish
/// transmitting at `max(t, link-free-time) + size/rate` — at 8 Mbps a
/// 1000 B packet offered to an idle link at `t0` completes at
/// `t0 + 1000 µs`, and a second packet offered at the same instant
/// queues behind it and completes 1000 µs later. If accepting a packet
/// would hold more than `capacity` bytes of backlog, it is tail-dropped.
#[derive(Debug, Clone)]
pub(crate) struct Serializer {
    rate: DataRate,
    capacity: ByteCount,
    busy_until: SimTime,
    backlog: ByteCount,
    backlog_as_of: SimTime,
    dropped: u64,
    transmitted: u64,
}

impl Serializer {
    /// Creates a serialiser with the given rate and queue capacity.
    pub fn new(rate: DataRate, capacity: ByteCount) -> Self {
        Serializer {
            rate,
            capacity,
            busy_until: SimTime::ZERO,
            backlog: ByteCount::ZERO,
            backlog_as_of: SimTime::ZERO,
            dropped: 0,
            transmitted: 0,
        }
    }

    /// Number of packets tail-dropped so far.
    #[cfg(test)]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of packets accepted so far.
    #[cfg(test)]
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Offers a packet of `size` bytes at time `now`.
    ///
    /// Returns the time serialisation completes, or `None` when the queue
    /// is full and the packet is dropped.
    pub fn enqueue(&mut self, now: SimTime, size: ByteCount) -> Option<SimTime> {
        self.drain(now);
        if (self.backlog + size).as_u64() > self.capacity.as_u64() {
            self.dropped += 1;
            return None;
        }
        let start = self.busy_until.max(now);
        let done = start + self.rate.transmission_time(size);
        self.busy_until = done;
        self.backlog += size;
        self.transmitted += 1;
        Some(done)
    }

    /// Removes already-transmitted bytes from the backlog account.
    fn drain(&mut self, now: SimTime) {
        if now <= self.backlog_as_of {
            return;
        }
        let elapsed = now - self.backlog_as_of;
        let drained_bits = elapsed.as_secs_f64() * self.rate.as_bps() as f64;
        let drained = ByteCount::new((drained_bits / 8.0) as u64);
        self.backlog = self.backlog.saturating_sub(drained);
        self.backlog_as_of = now;
        if now >= self.busy_until {
            self.backlog = ByteCount::ZERO;
        }
    }

    /// Resets queue state between independent runs.
    #[cfg(test)]
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.backlog = ByteCount::ZERO;
        self.backlog_as_of = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps8() -> Serializer {
        // 8 Mbps = 1 byte per microsecond: easy arithmetic.
        Serializer::new(DataRate::from_mbps(8), ByteCount::new(5_000))
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut s = mbps8();
        let done = s.enqueue(SimTime::ZERO, ByteCount::new(500)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(500));
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut s = mbps8();
        let d1 = s.enqueue(SimTime::ZERO, ByteCount::new(1000)).unwrap();
        let d2 = s.enqueue(SimTime::ZERO, ByteCount::new(1000)).unwrap();
        assert_eq!(d2 - d1, SimDuration::from_micros(1000));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut s = mbps8();
        // Capacity 5000 B: five 1000 B packets fit, the sixth drops.
        for _ in 0..5 {
            assert!(s.enqueue(SimTime::ZERO, ByteCount::new(1000)).is_some());
        }
        assert!(s.enqueue(SimTime::ZERO, ByteCount::new(1000)).is_none());
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.transmitted(), 5);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut s = mbps8();
        for _ in 0..5 {
            s.enqueue(SimTime::ZERO, ByteCount::new(1000));
        }
        // After 2 ms, 2000 B have drained; a new packet fits again.
        let later = SimTime::ZERO + SimDuration::from_millis(2);
        assert!(s.enqueue(later, ByteCount::new(1000)).is_some());
    }

    #[test]
    fn idle_gap_resets_backlog() {
        let mut s = mbps8();
        s.enqueue(SimTime::ZERO, ByteCount::new(4000));
        let much_later = SimTime::ZERO + SimDuration::from_secs(1);
        let done = s.enqueue(much_later, ByteCount::new(1000)).unwrap();
        assert_eq!(done, much_later + SimDuration::from_micros(1000));
    }

    #[test]
    fn path_spec_builders() {
        let spec = PathSpec::with_delay(SimDuration::from_millis(25))
            .rate(DataRate::from_mbps(50))
            .loss(LossModel::iid_percent(1.0));
        assert_eq!(spec.delay, SimDuration::from_millis(25));
        assert_eq!(spec.rtt(), SimDuration::from_millis(50));
        assert_eq!(spec.rate, Some(DataRate::from_mbps(50)));
    }

    #[test]
    fn reset_clears_state() {
        let mut s = mbps8();
        for _ in 0..5 {
            s.enqueue(SimTime::ZERO, ByteCount::new(1000));
        }
        s.reset();
        let done = s.enqueue(SimTime::ZERO, ByteCount::new(1000)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(1000));
    }
}
