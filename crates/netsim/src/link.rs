//! Path specifications, queue disciplines, and FIFO serialisers.
//!
//! A [`PathSpec`] describes one direction of a network path: propagation
//! delay, an optional bottleneck rate, and a loss model. A [`Serializer`]
//! models transmission onto a rate-limited link with a bounded FIFO queue —
//! this is where queueing delay and tail-drop come from. Every serialiser
//! runs one of the [`QueueDiscipline`]s: a deep (buffer-bloated) or shallow
//! tail-drop FIFO, or CoDel, the sojourn-based AQM — and keeps
//! [`QueueStats`] counters (drops, peak depth, per-packet sojourn) so
//! experiments can explain *where* latency came from.

use h3cdn_sim_core::units::{ByteCount, DataRate};
use h3cdn_sim_core::{SimDuration, SimTime};

use crate::loss::LossModel;

/// One direction of a path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSpec {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Maximum extra per-packet delay, drawn uniformly from
    /// `[0, jitter]`. Non-zero jitter *reorders* packets — the stress
    /// case for transport reassembly and loss-detection thresholds.
    pub jitter: SimDuration,
    /// Bottleneck rate along the path itself, or `None` for "not the
    /// bottleneck" (node access links still apply).
    pub rate: Option<DataRate>,
    /// Random loss process applied per packet.
    pub loss: LossModel,
}

impl PathSpec {
    /// A loss-free, rate-unconstrained path with the given one-way delay.
    pub fn with_delay(delay: SimDuration) -> Self {
        PathSpec {
            delay,
            jitter: SimDuration::ZERO,
            rate: None,
            loss: LossModel::None,
        }
    }

    /// Sets the maximum per-packet jitter (builder style).
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the bottleneck rate (builder style).
    pub fn rate(mut self, rate: DataRate) -> Self {
        self.rate = Some(rate);
        self
    }

    /// Sets the loss model (builder style).
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// The round-trip propagation time of a symmetric path using this spec
    /// in both directions.
    pub fn rtt(&self) -> SimDuration {
        self.delay * 2
    }
}

impl Default for PathSpec {
    /// A 1 ms, loss-free, unconstrained path.
    fn default() -> Self {
        PathSpec::with_delay(SimDuration::from_millis(1))
    }
}

/// A full-size packet, the unit queue capacities are expressed in.
const MTU: u64 = 1500;

/// CoDel's target sojourn: queueing delay above this for a sustained
/// interval means the queue is standing, not absorbing a burst.
const CODEL_TARGET: SimDuration = SimDuration::from_millis(5);

/// CoDel's initial interval — one worst-case RTT of the paths we model.
const CODEL_INTERVAL: SimDuration = SimDuration::from_millis(100);

/// How a serialiser's queue admits, delays, and sheds packets.
///
/// `DropTailDeep` reproduces the pre-discipline behaviour exactly (the
/// buffer-bloated access-router default), so existing seeds replay
/// bit-identically. `DropTailShallow` bounds worst-case sojourn by
/// capacity instead; `CoDel` keeps the deep buffer for bursts but sheds
/// packets once sojourn stays above target for an interval — the AQM
/// regime where BBR and CUBIC behave most differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueDiscipline {
    /// Deep tail-drop FIFO: 768 full-size packets (the bufferbloat case).
    DropTailDeep,
    /// Shallow tail-drop FIFO: 64 full-size packets.
    DropTailShallow,
    /// CoDel (target 5 ms, interval 100 ms) over the deep buffer.
    CoDel,
}

impl QueueDiscipline {
    /// Stable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            QueueDiscipline::DropTailDeep => "droptail-deep",
            QueueDiscipline::DropTailShallow => "droptail-shallow",
            QueueDiscipline::CoDel => "codel",
        }
    }

    /// Queue capacity in bytes.
    pub(crate) fn capacity(self) -> ByteCount {
        match self {
            QueueDiscipline::DropTailDeep | QueueDiscipline::CoDel => ByteCount::new(768 * MTU),
            QueueDiscipline::DropTailShallow => ByteCount::new(64 * MTU),
        }
    }
}

impl std::fmt::Display for QueueDiscipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Aggregated queue counters for one (or a merged set of) serialisers.
///
/// Sojourn is measured per accepted packet as the span from the instant
/// it was offered to the instant its transmission completes — queueing
/// wait plus its own serialisation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Packets accepted (each contributes one sojourn sample).
    pub transmitted: u64,
    /// Packets dropped because the queue was full.
    pub tail_dropped: u64,
    /// Packets shed by the AQM (CoDel) while the queue had room.
    pub aqm_dropped: u64,
    /// Sum of per-packet sojourns, nanoseconds (mean = sum/transmitted).
    pub sum_sojourn_ns: u64,
    /// Largest single-packet sojourn observed, nanoseconds.
    pub max_sojourn_ns: u64,
    /// Peak queue depth observed, bytes.
    pub max_backlog_bytes: u64,
}

impl QueueStats {
    /// Folds another counter set into this one (sums and maxima).
    pub fn merge(&mut self, other: &QueueStats) {
        self.transmitted += other.transmitted;
        self.tail_dropped += other.tail_dropped;
        self.aqm_dropped += other.aqm_dropped;
        self.sum_sojourn_ns = self.sum_sojourn_ns.saturating_add(other.sum_sojourn_ns);
        self.max_sojourn_ns = self.max_sojourn_ns.max(other.max_sojourn_ns);
        self.max_backlog_bytes = self.max_backlog_bytes.max(other.max_backlog_bytes);
    }

    /// Total packets dropped at queues (tail + AQM).
    pub fn dropped(&self) -> u64 {
        self.tail_dropped + self.aqm_dropped
    }

    /// Mean per-packet sojourn in milliseconds (0 when nothing
    /// transmitted).
    pub fn mean_sojourn_ms(&self) -> f64 {
        if self.transmitted == 0 {
            return 0.0;
        }
        self.sum_sojourn_ns as f64 / self.transmitted as f64 / 1e6
    }
}

/// CoDel control-law state (enqueue-time adaptation).
///
/// The fluid serialiser knows a packet's full sojourn the moment it is
/// offered, so the classic dequeue-time sojourn test runs at enqueue
/// instead: once sojourn has stayed above `CODEL_TARGET` for a full
/// `CODEL_INTERVAL`, the discipline enters a dropping state and sheds
/// packets at `interval/√count` spacing until sojourn falls back under
/// target. Fully deterministic — no randomness involved.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CoDelState {
    /// When sojourn first stayed above target (plus one interval), if it
    /// currently is.
    first_above: Option<SimTime>,
    /// Whether the control law is actively shedding.
    dropping: bool,
    /// Next scheduled shed while dropping.
    drop_next: SimTime,
    /// Drops in the current dropping episode (drives the √ control law).
    count: u32,
}

impl CoDelState {
    fn new() -> Self {
        CoDelState {
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
        }
    }

    /// Interval scaled by the control law: `interval / sqrt(count)`.
    fn control_law(count: u32) -> SimDuration {
        CODEL_INTERVAL.mul_f64(1.0 / f64::from(count.max(1)).sqrt())
    }

    /// Decides whether the packet offered at `now` with the given sojourn
    /// should be shed. `backlog` is the queue depth *before* this packet.
    fn should_drop(&mut self, now: SimTime, sojourn: SimDuration, backlog: ByteCount) -> bool {
        if sojourn < CODEL_TARGET || backlog.as_u64() < MTU {
            // Below target (or the queue is nearly empty): leave any
            // dropping episode and re-arm the interval timer.
            self.first_above = None;
            self.dropping = false;
            return false;
        }
        let Some(first_above) = self.first_above else {
            self.first_above = Some(now + CODEL_INTERVAL);
            return false;
        };
        if self.dropping {
            if now >= self.drop_next {
                self.count = self.count.saturating_add(1);
                self.drop_next += Self::control_law(self.count);
                return true;
            }
            return false;
        }
        if now >= first_above {
            // Sojourn stayed above target for a whole interval: start
            // shedding.
            self.dropping = true;
            self.count = 1;
            self.drop_next = now + Self::control_law(self.count);
            return true;
        }
        false
    }
}

/// A FIFO link serialiser with a bounded queue.
///
/// Packets handed to [`Serializer::enqueue`] at time `t` finish
/// transmitting at `max(t, link-free-time) + size/rate` — at 8 Mbps a
/// 1000 B packet offered to an idle link at `t0` completes at
/// `t0 + 1000 µs`, and a second packet offered at the same instant
/// queues behind it and completes 1000 µs later. If accepting a packet
/// would hold more than `capacity` bytes of backlog, it is tail-dropped;
/// under [`QueueDiscipline::CoDel`] packets may additionally be shed by
/// the AQM while the queue still has room.
#[derive(Debug, Clone)]
pub(crate) struct Serializer {
    rate: DataRate,
    capacity: ByteCount,
    busy_until: SimTime,
    backlog: ByteCount,
    backlog_as_of: SimTime,
    /// AQM state; `None` for the tail-drop disciplines.
    codel: Option<CoDelState>,
    stats: QueueStats,
}

impl Serializer {
    /// Creates a tail-drop serialiser with the given rate and queue
    /// capacity (the pre-discipline constructor; behaviour unchanged).
    pub fn new(rate: DataRate, capacity: ByteCount) -> Self {
        Serializer {
            rate,
            capacity,
            busy_until: SimTime::ZERO,
            backlog: ByteCount::ZERO,
            backlog_as_of: SimTime::ZERO,
            codel: None,
            stats: QueueStats::default(),
        }
    }

    /// Creates a serialiser running the given queue discipline.
    pub fn with_discipline(rate: DataRate, discipline: QueueDiscipline) -> Self {
        let mut s = Serializer::new(rate, discipline.capacity());
        if discipline == QueueDiscipline::CoDel {
            s.codel = Some(CoDelState::new());
        }
        s
    }

    /// Number of packets tail-dropped so far.
    #[cfg(test)]
    pub fn dropped(&self) -> u64 {
        self.stats.tail_dropped
    }

    /// Number of packets accepted so far.
    #[cfg(test)]
    pub fn transmitted(&self) -> u64 {
        self.stats.transmitted
    }

    /// Snapshot of this queue's counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Changes the serialisation rate at `now` (continuous path
    /// dynamics). Bytes drained so far are accounted at the old rate;
    /// transmissions already committed keep their completion times (the
    /// fluid-model approximation), and new arrivals serialise at the new
    /// rate.
    pub fn set_rate(&mut self, now: SimTime, rate: DataRate) {
        if rate.as_bps() == self.rate.as_bps() {
            return;
        }
        self.drain(now);
        self.rate = rate;
    }

    /// Offers a packet of `size` bytes at time `now`.
    ///
    /// Returns the time serialisation completes, or `None` when the
    /// packet is dropped (queue full, or shed by the AQM).
    pub fn enqueue(&mut self, now: SimTime, size: ByteCount) -> Option<SimTime> {
        self.drain(now);
        if (self.backlog + size).as_u64() > self.capacity.as_u64() {
            self.stats.tail_dropped += 1;
            return None;
        }
        let start = self.busy_until.max(now);
        let done = start + self.rate.transmission_time(size);
        let sojourn = done.saturating_duration_since(now);
        if let Some(codel) = &mut self.codel {
            if codel.should_drop(now, sojourn, self.backlog) {
                self.stats.aqm_dropped += 1;
                return None;
            }
        }
        self.busy_until = done;
        self.backlog += size;
        self.stats.transmitted += 1;
        self.stats.sum_sojourn_ns = self.stats.sum_sojourn_ns.saturating_add(sojourn.as_nanos());
        self.stats.max_sojourn_ns = self.stats.max_sojourn_ns.max(sojourn.as_nanos());
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.backlog.as_u64());
        Some(done)
    }

    /// Removes already-transmitted bytes from the backlog account.
    fn drain(&mut self, now: SimTime) {
        if now <= self.backlog_as_of {
            return;
        }
        let elapsed = now - self.backlog_as_of;
        let drained_bits = elapsed.as_secs_f64() * self.rate.as_bps() as f64;
        let drained = ByteCount::new((drained_bits / 8.0) as u64);
        self.backlog = self.backlog.saturating_sub(drained);
        self.backlog_as_of = now;
        if now >= self.busy_until {
            self.backlog = ByteCount::ZERO;
        }
    }

    /// Resets queue state between independent runs.
    #[cfg(test)]
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.backlog = ByteCount::ZERO;
        self.backlog_as_of = SimTime::ZERO;
        if self.codel.is_some() {
            self.codel = Some(CoDelState::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps8() -> Serializer {
        // 8 Mbps = 1 byte per microsecond: easy arithmetic.
        Serializer::new(DataRate::from_mbps(8), ByteCount::new(5_000))
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut s = mbps8();
        let done = s.enqueue(SimTime::ZERO, ByteCount::new(500)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(500));
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut s = mbps8();
        let d1 = s.enqueue(SimTime::ZERO, ByteCount::new(1000)).unwrap();
        let d2 = s.enqueue(SimTime::ZERO, ByteCount::new(1000)).unwrap();
        assert_eq!(d2 - d1, SimDuration::from_micros(1000));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut s = mbps8();
        // Capacity 5000 B: five 1000 B packets fit, the sixth drops.
        for _ in 0..5 {
            assert!(s.enqueue(SimTime::ZERO, ByteCount::new(1000)).is_some());
        }
        assert!(s.enqueue(SimTime::ZERO, ByteCount::new(1000)).is_none());
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.transmitted(), 5);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut s = mbps8();
        for _ in 0..5 {
            s.enqueue(SimTime::ZERO, ByteCount::new(1000));
        }
        // After 2 ms, 2000 B have drained; a new packet fits again.
        let later = SimTime::ZERO + SimDuration::from_millis(2);
        assert!(s.enqueue(later, ByteCount::new(1000)).is_some());
    }

    #[test]
    fn idle_gap_resets_backlog() {
        let mut s = mbps8();
        s.enqueue(SimTime::ZERO, ByteCount::new(4000));
        let much_later = SimTime::ZERO + SimDuration::from_secs(1);
        let done = s.enqueue(much_later, ByteCount::new(1000)).unwrap();
        assert_eq!(done, much_later + SimDuration::from_micros(1000));
    }

    #[test]
    fn path_spec_builders() {
        let spec = PathSpec::with_delay(SimDuration::from_millis(25))
            .rate(DataRate::from_mbps(50))
            .loss(LossModel::iid_percent(1.0));
        assert_eq!(spec.delay, SimDuration::from_millis(25));
        assert_eq!(spec.rtt(), SimDuration::from_millis(50));
        assert_eq!(spec.rate, Some(DataRate::from_mbps(50)));
    }

    #[test]
    fn reset_clears_state() {
        let mut s = mbps8();
        for _ in 0..5 {
            s.enqueue(SimTime::ZERO, ByteCount::new(1000));
        }
        s.reset();
        let done = s.enqueue(SimTime::ZERO, ByteCount::new(1000)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(1000));
    }

    #[test]
    fn discipline_capacities_and_labels() {
        assert_eq!(
            QueueDiscipline::DropTailDeep.capacity(),
            ByteCount::new(768 * 1500)
        );
        assert_eq!(
            QueueDiscipline::DropTailShallow.capacity(),
            ByteCount::new(64 * 1500)
        );
        assert_eq!(
            QueueDiscipline::CoDel.capacity(),
            QueueDiscipline::DropTailDeep.capacity()
        );
        assert_eq!(QueueDiscipline::CoDel.to_string(), "codel");
        assert_eq!(QueueDiscipline::DropTailDeep.label(), "droptail-deep");
    }

    #[test]
    fn deep_droptail_matches_legacy_serializer() {
        // `with_discipline(DropTailDeep)` must behave exactly like the
        // pre-discipline constructor at the default capacity.
        let mut legacy = Serializer::new(DataRate::from_mbps(8), ByteCount::new(768 * 1500));
        let mut deep =
            Serializer::with_discipline(DataRate::from_mbps(8), QueueDiscipline::DropTailDeep);
        for i in 0..2000u64 {
            let now = SimTime::from_nanos(i * 50_000);
            assert_eq!(
                legacy.enqueue(now, ByteCount::new(1500)),
                deep.enqueue(now, ByteCount::new(1500))
            );
        }
        assert_eq!(legacy.stats(), deep.stats());
    }

    #[test]
    fn codel_sheds_standing_queue_but_passes_bursts() {
        let mut codel = Serializer::with_discipline(DataRate::from_mbps(8), QueueDiscipline::CoDel);
        // A short burst (sojourn below 5 ms): everything passes.
        for _ in 0..4 {
            assert!(codel.enqueue(SimTime::ZERO, ByteCount::new(1000)).is_some());
        }
        assert_eq!(codel.stats().aqm_dropped, 0);

        // Sustained overload: offer 1500 B every 1 ms against an 8 Mbps
        // (667 B/ms) link for two seconds. The standing queue's sojourn
        // blows through the target and CoDel starts shedding long before
        // the deep buffer tail-drops.
        let mut codel = Serializer::with_discipline(DataRate::from_mbps(8), QueueDiscipline::CoDel);
        let mut tail =
            Serializer::with_discipline(DataRate::from_mbps(8), QueueDiscipline::DropTailDeep);
        for i in 0..2000u64 {
            let now = SimTime::ZERO + SimDuration::from_millis(i);
            codel.enqueue(now, ByteCount::new(1500));
            tail.enqueue(now, ByteCount::new(1500));
        }
        let c = codel.stats();
        let t = tail.stats();
        assert!(c.aqm_dropped > 0, "CoDel must shed: {c:?}");
        // Against an *unresponsive* source the sqrt control law ramps
        // slowly, so only strict improvement is asserted here; the big
        // wins show up with responsive (congestion-controlled) flows.
        assert!(
            c.mean_sojourn_ms() < t.mean_sojourn_ms(),
            "CoDel must bound sojourn: codel {} ms vs droptail {} ms",
            c.mean_sojourn_ms(),
            t.mean_sojourn_ms()
        );
        assert!(t.max_backlog_bytes > c.max_backlog_bytes);
    }

    #[test]
    fn shallow_droptail_bounds_sojourn_by_capacity() {
        let mut s =
            Serializer::with_discipline(DataRate::from_mbps(8), QueueDiscipline::DropTailShallow);
        for i in 0..2000u64 {
            let now = SimTime::ZERO + SimDuration::from_millis(i);
            s.enqueue(now, ByteCount::new(1500));
        }
        let stats = s.stats();
        assert!(stats.tail_dropped > 0);
        // 64 * 1500 B at 8 Mbps = 96 ms worst-case sojourn.
        assert!(
            stats.max_sojourn_ns <= SimDuration::from_millis(97).as_nanos(),
            "sojourn {} ns exceeds the shallow bound",
            stats.max_sojourn_ns
        );
    }

    #[test]
    fn set_rate_drains_at_old_rate_first() {
        let mut s = mbps8();
        s.enqueue(SimTime::ZERO, ByteCount::new(4000));
        // After 1 ms at 8 Mbps, 1000 B drained; then the link slows 10x.
        s.set_rate(
            SimTime::ZERO + SimDuration::from_millis(1),
            DataRate::from_kbps(800),
        );
        // A 100 B packet at 800 kbps takes 1 ms to serialise.
        let done = s
            .enqueue(
                SimTime::ZERO + SimDuration::from_millis(1),
                ByteCount::new(100),
            )
            .unwrap();
        // Committed transmissions keep their schedule: busy_until is 4 ms
        // (4000 B at 8 Mbps), then 1 ms more for the new packet.
        assert_eq!(done, SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn queue_stats_merge_sums_and_maxes() {
        let mut a = QueueStats {
            transmitted: 2,
            tail_dropped: 1,
            aqm_dropped: 0,
            sum_sojourn_ns: 10,
            max_sojourn_ns: 8,
            max_backlog_bytes: 100,
        };
        let b = QueueStats {
            transmitted: 3,
            tail_dropped: 0,
            aqm_dropped: 2,
            sum_sojourn_ns: 5,
            max_sojourn_ns: 20,
            max_backlog_bytes: 50,
        };
        a.merge(&b);
        assert_eq!(a.transmitted, 5);
        assert_eq!(a.dropped(), 3);
        assert_eq!(a.sum_sojourn_ns, 15);
        assert_eq!(a.max_sojourn_ns, 20);
        assert_eq!(a.max_backlog_bytes, 100);
        assert!((a.mean_sojourn_ms() - 15.0 / 5.0 / 1e6).abs() < 1e-15);
    }
}
