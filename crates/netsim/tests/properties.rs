//! Property-based tests of the loss processes: the bursty
//! Gilbert–Elliott chain must agree with the IID model *in the mean* at
//! every configured loss rate — the whole point of
//! `LossModel::bursty_percent` is a like-for-like burstiness ablation at
//! equal long-run loss.

use h3cdn_netsim::loss::LossProcess;
use h3cdn_netsim::LossModel;
use h3cdn_sim_core::SimRng;
use proptest::prelude::*;

/// Empirical drop rate over `n` draws.
fn drop_rate(model: LossModel, seed: u64, n: usize) -> f64 {
    let mut lp = LossProcess::new(model, SimRng::seed_from(seed));
    let drops = (0..n).filter(|_| lp.should_drop()).count();
    drops as f64 / n as f64
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The Gilbert–Elliott chain's long-run drop rate converges to its
    /// configured stationary mean, and matches `iid_percent` at the same
    /// mean within sampling tolerance — for any loss percentage in the
    /// model's valid range and any seed.
    #[test]
    fn gilbert_elliott_long_run_rate_matches_iid_mean(
        percent in 0.2f64..8.0,
        seed in 1u64..10_000,
    ) {
        let ge = LossModel::bursty_percent(percent);
        let iid = LossModel::iid_percent(percent);
        let mean = percent / 100.0;

        // Both models must *declare* the same mean exactly.
        prop_assert!((ge.mean_loss() - mean).abs() < 1e-12,
            "GE declared mean {} != {}", ge.mean_loss(), mean);
        prop_assert!((iid.mean_loss() - mean).abs() < 1e-12);

        // And both must *realise* it over a long run. GE mixes more
        // slowly than IID (sojourns are geometric with mean ~5), so the
        // tolerance is scaled to the mean plus a floor for tiny rates.
        let n = 400_000;
        let ge_rate = drop_rate(ge, seed, n);
        let iid_rate = drop_rate(iid, seed.wrapping_add(0x9E37), n);
        let tol = (mean * 0.25).max(0.002);
        prop_assert!((ge_rate - mean).abs() < tol,
            "GE rate {ge_rate} vs mean {mean} (pct {percent}, seed {seed})");
        prop_assert!((iid_rate - mean).abs() < tol,
            "IID rate {iid_rate} vs mean {mean}");
        // The two empirical rates agree with each other.
        prop_assert!((ge_rate - iid_rate).abs() < 2.0 * tol,
            "GE {ge_rate} vs IID {iid_rate} diverge (pct {percent})");
    }
}
