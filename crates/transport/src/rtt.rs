//! Round-trip-time estimation (RFC 6298 / RFC 9002 §5).

use h3cdn_sim_core::SimDuration;

/// Smoothed RTT estimator shared by the TCP and QUIC stacks.
///
/// Maintains `smoothed_rtt`, `rttvar` and `min_rtt` with the standard
/// EWMA gains (1/8 and 1/4) and derives retransmission/probe timeouts.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::SimDuration;
/// use h3cdn_transport::RttEstimator;
///
/// let mut rtt = RttEstimator::new(SimDuration::from_millis(100));
/// rtt.on_sample(SimDuration::from_millis(40));
/// assert_eq!(rtt.smoothed(), SimDuration::from_millis(40));
/// ```
#[derive(Debug, Clone)]
pub struct RttEstimator {
    smoothed: SimDuration,
    rttvar: SimDuration,
    min: SimDuration,
    latest: SimDuration,
    has_sample: bool,
    initial: SimDuration,
}

/// Floor for the retransmission timeout, mirroring Linux's 200 ms minimum
/// RTO; prevents spurious retransmits on short simulated paths.
const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Granularity term added to the variance component (RFC 6298's `G`).
const GRANULARITY: SimDuration = SimDuration::from_millis(1);

impl RttEstimator {
    /// Creates an estimator that reports `initial_rtt` until the first
    /// sample arrives (RFC 9002 recommends 333 ms; we default per-path).
    pub fn new(initial_rtt: SimDuration) -> Self {
        RttEstimator {
            smoothed: initial_rtt,
            rttvar: initial_rtt / 2,
            min: initial_rtt,
            latest: initial_rtt,
            has_sample: false,
            initial: initial_rtt,
        }
    }

    /// Feeds one RTT sample (ack receipt time minus send time).
    pub fn on_sample(&mut self, sample: SimDuration) {
        self.latest = sample;
        if !self.has_sample {
            self.smoothed = sample;
            self.rttvar = sample / 2;
            self.min = sample;
            self.has_sample = true;
            return;
        }
        self.min = self.min.min(sample);
        let delta = if self.smoothed >= sample {
            self.smoothed - sample
        } else {
            sample - self.smoothed
        };
        // rttvar = 3/4 rttvar + 1/4 |srtt - sample|
        self.rttvar = (self.rttvar * 3 + delta) / 4;
        // srtt = 7/8 srtt + 1/8 sample
        self.smoothed = (self.smoothed * 7 + sample) / 8;
    }

    /// Whether any sample has been observed.
    pub fn has_sample(&self) -> bool {
        self.has_sample
    }

    /// The smoothed RTT.
    pub fn smoothed(&self) -> SimDuration {
        self.smoothed
    }

    /// The minimum RTT observed.
    pub fn min(&self) -> SimDuration {
        self.min
    }

    /// The most recent sample.
    pub fn latest(&self) -> SimDuration {
        self.latest
    }

    /// Retransmission timeout: `srtt + max(G, 4·rttvar)`, floored at
    /// 200 ms (Linux-style).
    pub fn rto(&self) -> SimDuration {
        (self.smoothed + (self.rttvar * 4).max(GRANULARITY)).max(MIN_RTO)
    }

    /// QUIC probe timeout: `srtt + max(G, 4·rttvar) + max_ack_delay`,
    /// floored at the granularity (RFC 9002 §6.2.1).
    pub fn pto(&self, max_ack_delay: SimDuration) -> SimDuration {
        self.smoothed + (self.rttvar * 4).max(GRANULARITY) + max_ack_delay
    }

    /// The loss-detection time threshold: 9/8 of `max(srtt, latest)`
    /// (RFC 9002 §6.1.2).
    pub fn loss_delay(&self) -> SimDuration {
        self.smoothed.max(self.latest).mul_f64(9.0 / 8.0)
    }

    /// Resets to the initial state (used when a connection migrates or a
    /// fresh connection reuses a cached estimator shell).
    pub fn reset(&mut self) {
        *self = RttEstimator::new(self.initial);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn first_sample_overwrites_initial() {
        let mut rtt = RttEstimator::new(ms(333));
        rtt.on_sample(ms(50));
        assert_eq!(rtt.smoothed(), ms(50));
        assert_eq!(rtt.rttvar_for_test(), ms(25));
        assert_eq!(rtt.min(), ms(50));
        assert!(rtt.has_sample());
    }

    #[test]
    fn ewma_converges_towards_constant_samples() {
        let mut rtt = RttEstimator::new(ms(333));
        for _ in 0..100 {
            rtt.on_sample(ms(20));
        }
        assert_eq!(rtt.smoothed(), ms(20));
        assert_eq!(rtt.min(), ms(20));
    }

    #[test]
    fn variance_grows_with_jitter() {
        let mut stable = RttEstimator::new(ms(100));
        let mut jittery = RttEstimator::new(ms(100));
        for i in 0..50 {
            stable.on_sample(ms(50));
            jittery.on_sample(ms(if i % 2 == 0 { 20 } else { 80 }));
        }
        // Compare PTOs: unlike the RTO they are not floored at 200 ms, so
        // the variance term is visible.
        assert!(jittery.pto(ms(0)) > stable.pto(ms(0)));
    }

    #[test]
    fn rto_floored_at_200ms() {
        let mut rtt = RttEstimator::new(ms(10));
        for _ in 0..10 {
            rtt.on_sample(ms(10));
        }
        assert_eq!(rtt.rto(), ms(200));
    }

    #[test]
    fn pto_includes_ack_delay_without_floor() {
        let mut rtt = RttEstimator::new(ms(10));
        for _ in 0..50 {
            rtt.on_sample(ms(40));
        }
        let pto = rtt.pto(ms(25));
        // srtt 40 + max(1, 4·rttvar≈0..) + 25 — must sit well below the RTO
        // floor but above srtt + ack delay.
        assert!(pto >= ms(66), "pto {pto}");
        assert!(pto < ms(120), "pto {pto}");
    }

    #[test]
    fn loss_delay_is_nine_eighths() {
        let mut rtt = RttEstimator::new(ms(10));
        rtt.on_sample(ms(80));
        assert_eq!(rtt.loss_delay(), ms(90));
    }

    #[test]
    fn min_tracks_smallest() {
        let mut rtt = RttEstimator::new(ms(100));
        rtt.on_sample(ms(60));
        rtt.on_sample(ms(30));
        rtt.on_sample(ms(90));
        assert_eq!(rtt.min(), ms(30));
    }

    #[test]
    fn reset_restores_initial() {
        let mut rtt = RttEstimator::new(ms(77));
        rtt.on_sample(ms(10));
        rtt.reset();
        assert!(!rtt.has_sample());
        assert_eq!(rtt.smoothed(), ms(77));
    }

    impl RttEstimator {
        fn rttvar_for_test(&self) -> SimDuration {
            self.rttvar
        }
    }
}
