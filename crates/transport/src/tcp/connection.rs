//! The TCP connection state machine.

use std::collections::{BTreeMap, VecDeque};

use h3cdn_sim_core::{SimDuration, SimTime};

use crate::cc::{CcAlgorithm, CongestionController};
use crate::conn_id::{ConnId, MsgTag};
use crate::rtt::RttEstimator;
use crate::tcp::TcpSegment;
use crate::CloseReason;

/// Configuration for one TCP connection.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment payload size.
    pub mss: u64,
    /// RTT estimate used before the first sample.
    pub initial_rtt: SimDuration,
    /// Congestion-control algorithm.
    pub cc: CcAlgorithm,
    /// Receive window advertised to the peer.
    pub receive_window: u64,
    /// Give up on an incomplete handshake after this long (the kernel's
    /// SYN-retry budget collapsed into a deadline).
    pub handshake_timeout: SimDuration,
    /// Close after receiving nothing for this long; our own
    /// retransmissions do not extend the deadline.
    pub idle_timeout: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: crate::cc::MSS,
            initial_rtt: SimDuration::from_millis(100),
            cc: CcAlgorithm::default(),
            receive_window: 1 << 20, // 1 MiB
            handshake_timeout: SimDuration::from_secs(30),
            idle_timeout: SimDuration::from_secs(60),
        }
    }
}

/// Connection lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TcpState {
    /// No handshake activity yet (client before `connect`, server before
    /// the first SYN).
    Closed,
    /// Client: SYN sent, awaiting SYN-ACK.
    SynSent,
    /// Server: SYN received, SYN-ACK sent, awaiting the final ACK.
    SynReceived,
    /// Handshake complete; data flows.
    Established,
}

/// Events surfaced to the layer above (TLS or tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// The three-way handshake completed at `at`.
    Established {
        /// Completion time on this side.
        at: SimTime,
    },
    /// All bytes of the message tagged `tag` were delivered *in order*.
    Delivered {
        /// The application's tag for the message.
        tag: MsgTag,
        /// In-order delivery time.
        at: SimTime,
    },
    /// The connection closed itself and will emit nothing further.
    Closed {
        /// Close time.
        at: SimTime,
        /// Why it closed.
        reason: CloseReason,
    },
}

#[derive(Debug, Clone, Copy)]
struct SentSegment {
    len: u64,
    sent_at: SimTime,
    retransmitted: bool,
}

/// Delayed-ACK timer (RFC 5681 allows up to 500 ms; modern stacks use
/// tens of milliseconds — we match QUIC's 25 ms max ACK delay so the
/// comparison is apples-to-apples).
const DELAYED_ACK: SimDuration = SimDuration::from_millis(25);

/// A sans-IO TCP connection endpoint (one side).
///
/// Drive it with [`TcpConnection::on_segment`] and
/// [`TcpConnection::on_timeout`]; drain output with
/// [`TcpConnection::poll_transmit`] (until `None`) and
/// [`TcpConnection::poll_event`].
#[derive(Debug)]
pub struct TcpConnection {
    id: ConnId,
    is_client: bool,
    config: TcpConfig,
    state: TcpState,
    cc: Box<dyn CongestionController>,
    rtt: RttEstimator,

    // Send side.
    send_written: u64,
    next_to_send: u64,
    snd_una: u64,
    in_flight: BTreeMap<u64, SentSegment>,
    bytes_in_flight: u64,
    rtx_queue: BTreeMap<u64, u64>,
    force_rtx_credit: u32,
    send_markers: BTreeMap<u64, MsgTag>,
    dup_acks: u32,
    in_recovery: bool,
    recovery_end: u64,
    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    /// Tail-loss-probe deadline (RACK-TLP, RFC 8985 spirit): fires at
    /// ~2·SRTT after the last transmission and retransmits the newest
    /// unacked segment without collapsing the congestion window, so a
    /// lost flight tail costs two RTTs instead of the 200 ms RTO floor.
    tlp_deadline: Option<SimTime>,
    /// One probe per flight.
    tlp_used: bool,
    peer_rwnd: u64,

    // Handshake.
    need_syn: bool,
    need_syn_ack: bool,
    syn_sent_at: Option<SimTime>,
    syn_ack_sent_at: Option<SimTime>,

    // Lifecycle limits.
    /// Set once the connection closed itself; afterwards it is inert.
    closed: Option<(SimTime, CloseReason)>,
    /// Handshake-clock start: `connect` (client) or the first SYN
    /// (server).
    handshake_started_at: Option<SimTime>,
    /// Idle anchor: last receipt, or the first segment sent since the
    /// last receipt.
    idle_anchor: Option<SimTime>,
    /// Whether a segment left since the last receipt.
    sent_since_rx: bool,

    // Receive side.
    rcv_next: u64,
    out_of_order: BTreeMap<u64, u64>,
    recv_markers: BTreeMap<u64, MsgTag>,
    ack_pending: bool,
    /// In-order data segments received since the last ACK was sent
    /// (delayed-ACK accounting, RFC 5681 §4.2).
    segs_since_ack: u32,
    /// Delayed-ACK timer.
    delayed_ack_deadline: Option<SimTime>,

    events: VecDeque<TcpEvent>,
    retransmit_count: u64,
}

impl TcpConnection {
    /// Creates the client side of a connection. Call
    /// [`TcpConnection::connect`] to begin the handshake.
    pub fn client(id: ConnId, config: TcpConfig) -> Self {
        Self::new(id, true, config)
    }

    /// Creates the server side of a connection; it transitions out of
    /// `Closed` upon the first SYN.
    pub fn server(id: ConnId, config: TcpConfig) -> Self {
        Self::new(id, false, config)
    }

    fn new(id: ConnId, is_client: bool, config: TcpConfig) -> Self {
        let cc = config.cc.build();
        let rtt = RttEstimator::new(config.initial_rtt);
        TcpConnection {
            id,
            is_client,
            config,
            state: TcpState::Closed,
            cc,
            rtt,
            send_written: 0,
            next_to_send: 0,
            snd_una: 0,
            in_flight: BTreeMap::new(),
            bytes_in_flight: 0,
            rtx_queue: BTreeMap::new(),
            force_rtx_credit: 0,
            send_markers: BTreeMap::new(),
            dup_acks: 0,
            in_recovery: false,
            recovery_end: 0,
            rto_deadline: None,
            rto_backoff: 0,
            tlp_deadline: None,
            tlp_used: false,
            peer_rwnd: u64::MAX,
            need_syn: false,
            need_syn_ack: false,
            syn_sent_at: None,
            syn_ack_sent_at: None,
            closed: None,
            handshake_started_at: None,
            idle_anchor: None,
            sent_since_rx: false,
            rcv_next: 0,
            out_of_order: BTreeMap::new(),
            recv_markers: BTreeMap::new(),
            ack_pending: false,
            segs_since_ack: 0,
            delayed_ack_deadline: None,
            events: VecDeque::new(),
            retransmit_count: 0,
        }
    }

    /// The connection id.
    pub fn conn_id(&self) -> ConnId {
        self.id
    }

    /// Whether this endpoint is the client side.
    pub fn is_client(&self) -> bool {
        self.is_client
    }

    /// `true` once the handshake has completed on this side.
    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    /// Whether the connection closed itself (handshake or idle timeout).
    pub fn is_closed(&self) -> bool {
        self.closed.is_some()
    }

    /// Why the connection closed, if it did.
    pub fn close_reason(&self) -> Option<CloseReason> {
        self.closed.map(|(_, reason)| reason)
    }

    /// The RTT estimator (for diagnostics).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Total segments retransmitted by this side.
    pub fn retransmit_count(&self) -> u64 {
        self.retransmit_count
    }

    /// Starts the client handshake.
    ///
    /// # Panics
    ///
    /// Panics if called on a server endpoint or more than once.
    pub fn connect(&mut self, now: SimTime) {
        assert!(self.is_client, "connect() is client-side only");
        assert_eq!(self.state, TcpState::Closed, "connect() called twice");
        self.state = TcpState::SynSent;
        self.need_syn = true;
        self.handshake_started_at = Some(now);
        self.arm_rto(now);
    }

    /// Queues an application message of `len` bytes tagged `tag` onto the
    /// stream. Bytes flow once the connection is established.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero (an empty message has no final byte to
    /// deliver).
    pub fn write_message(&mut self, len: u64, tag: MsgTag) {
        assert!(len > 0, "messages must be non-empty");
        self.send_written += len;
        self.send_markers.insert(self.send_written, tag);
    }

    /// Bytes written but not yet acknowledged.
    pub fn outstanding_bytes(&self) -> u64 {
        self.send_written - self.snd_una
    }

    /// Bytes written but not yet put on the wire for the first time. The
    /// HTTP/2 server uses this to keep its interleaving pump just ahead of
    /// the transport instead of dumping whole responses into the stream.
    pub fn unsent_bytes(&self) -> u64 {
        self.send_written - self.next_to_send
    }

    /// Pops the next pending event.
    pub fn poll_event(&mut self) -> Option<TcpEvent> {
        self.events.pop_front()
    }

    /// The next timer deadline, if any.
    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.closed.is_some() {
            return None;
        }
        [
            self.rto_deadline,
            self.tlp_deadline,
            self.delayed_ack_deadline,
            self.handshake_deadline(),
            self.idle_deadline(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Earliest give-up deadline (handshake or idle timeout) — the timer
    /// that closes the connection rather than advancing a transfer. Test
    /// harnesses use this to quiesce without chasing the idle close.
    pub fn close_deadline(&self) -> Option<SimTime> {
        if self.closed.is_some() {
            return None;
        }
        [self.handshake_deadline(), self.idle_deadline()]
            .into_iter()
            .flatten()
            .min()
    }

    /// Deadline for an incomplete handshake: client-side from `connect`,
    /// server-side from the first received SYN.
    fn handshake_deadline(&self) -> Option<SimTime> {
        if self.state == TcpState::Established {
            return None;
        }
        Some(self.handshake_started_at? + self.config.handshake_timeout)
    }

    fn idle_deadline(&self) -> Option<SimTime> {
        Some(self.idle_anchor? + self.config.idle_timeout)
    }

    /// Closes the connection silently (no RST on the wire — the paths
    /// that trigger this are exactly the ones that eat packets) and
    /// disarms every timer.
    fn close(&mut self, now: SimTime, reason: CloseReason) {
        if self.closed.is_some() {
            return;
        }
        self.closed = Some((now, reason));
        self.rto_deadline = None;
        self.tlp_deadline = None;
        self.delayed_ack_deadline = None;
        self.ack_pending = false;
        self.need_syn = false;
        self.need_syn_ack = false;
        self.in_flight.clear();
        self.rtx_queue.clear();
        self.bytes_in_flight = 0;
        self.events.push_back(TcpEvent::Closed { at: now, reason });
    }

    /// Fires expired timers. Call when virtual time reaches
    /// [`TcpConnection::next_timeout`].
    pub fn on_timeout(&mut self, now: SimTime) {
        if self.closed.is_some() {
            return;
        }
        if self.handshake_deadline().is_some_and(|d| d <= now) {
            self.close(now, CloseReason::HandshakeTimeout);
            return;
        }
        if self.idle_deadline().is_some_and(|d| d <= now) {
            self.close(now, CloseReason::IdleTimeout);
            return;
        }
        // Delayed-ACK timer.
        if self.delayed_ack_deadline.is_some_and(|d| d <= now) {
            self.delayed_ack_deadline = None;
            self.ack_pending = true;
        }
        // Tail loss probe next: cheaper and non-destructive.
        if self.tlp_deadline.is_some_and(|d| d <= now) {
            self.tlp_deadline = None;
            if self.state == TcpState::Established && !self.tlp_used && self.rtx_queue.is_empty() {
                if let Some((seq, seg)) = self.in_flight.pop_last() {
                    self.tlp_used = true;
                    let len = seg.len;
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(len);
                    self.rtx_queue.insert(seq, len);
                    self.force_rtx_credit += 1;
                    self.retransmit_count += 1;
                }
            }
        }
        let deadline = match self.rto_deadline {
            Some(d) if d <= now => d,
            _ => return,
        };
        let _ = deadline;
        self.rto_backoff = (self.rto_backoff + 1).min(10);
        match self.state {
            TcpState::SynSent => {
                self.need_syn = true;
                self.retransmit_count += 1;
                self.arm_rto(now);
            }
            TcpState::SynReceived => {
                self.need_syn_ack = true;
                self.retransmit_count += 1;
                self.arm_rto(now);
            }
            TcpState::Established => {
                if self.in_flight.is_empty() && self.rtx_queue.is_empty() {
                    self.rto_deadline = None;
                    return;
                }
                // RFC 6298: retransmit the earliest unacked segment and
                // collapse the window; SACK repairs any further holes as
                // acknowledgements resume (no go-back-N redump).
                self.cc.on_timeout(now);
                if let Some((&seq, seg)) = self.in_flight.iter().next() {
                    let len = seg.len;
                    self.in_flight.remove(&seq);
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(len);
                    self.rtx_queue.insert(seq, len);
                    self.force_rtx_credit += 1;
                }
                self.dup_acks = 0;
                self.in_recovery = false;
                self.arm_rto(now);
            }
            TcpState::Closed => {
                self.rto_deadline = None;
            }
        }
    }

    /// Produces the next segment to put on the wire, or `None` when the
    /// connection has nothing (more) to send right now. Call repeatedly
    /// until `None` after any input.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<TcpSegment> {
        if self.closed.is_some() {
            return None;
        }
        if self.need_syn {
            self.need_syn = false;
            self.syn_sent_at = Some(now);
            self.mark_sent_activity(now);
            return Some(self.segment(true, false, 0, 0, vec![]));
        }
        if self.need_syn_ack {
            self.need_syn_ack = false;
            self.syn_ack_sent_at = Some(now);
            self.mark_sent_activity(now);
            return Some(self.segment(true, true, 0, 0, vec![]));
        }
        if self.state != TcpState::Established {
            return None;
        }

        // Retransmissions take priority over new data.
        if let Some((&seq, &len)) = self.rtx_queue.iter().next() {
            let allowed = self.force_rtx_credit > 0 || self.has_window_for(len);
            if allowed {
                self.force_rtx_credit = self.force_rtx_credit.saturating_sub(1);
                self.rtx_queue.remove(&seq);
                self.track_sent(seq, len, now, true);
                self.retransmit_count += 1;
                self.mark_sent_activity(now);
                let markers = self.markers_in_range(seq, len);
                return Some(self.data_segment(seq, len, markers));
            }
        } else if self.next_to_send < self.send_written {
            let remaining = self.send_written - self.next_to_send;
            let window = self.available_window();
            let len = remaining.min(self.config.mss);
            // Silly-window-syndrome avoidance (RFC 9293 §3.8.6.2): never
            // chop a full-sized segment down to fit a sliver of window —
            // wait for an acknowledgement to open it instead.
            if window >= len {
                let seq = self.next_to_send;
                self.next_to_send += len;
                self.track_sent(seq, len, now, false);
                self.mark_sent_activity(now);
                let markers = self.markers_in_range(seq, len);
                return Some(self.data_segment(seq, len, markers));
            }
        }

        if self.ack_pending {
            self.ack_pending = false;
            return Some(self.segment(false, true, self.snd_una, 0, vec![]));
        }
        None
    }

    /// Feeds one received segment into the state machine.
    pub fn on_segment(&mut self, seg: TcpSegment, now: SimTime) {
        debug_assert_eq!(seg.conn, self.id, "segment routed to wrong connection");
        debug_assert_ne!(
            seg.from_client, self.is_client,
            "segment reflected to its sender"
        );
        if self.closed.is_some() {
            return; // stray late segment on a dead connection
        }
        if seg.rst {
            // The server refused admission: abandon the connection at
            // once (no timers, no retransmissions into a closed door).
            self.close(now, CloseReason::Refused);
            return;
        }
        self.idle_anchor = Some(now);
        self.sent_since_rx = false;
        if self.handshake_started_at.is_none() {
            // Server side: the first SYN starts the handshake clock.
            self.handshake_started_at = Some(now);
        }
        match self.state {
            TcpState::Closed if !self.is_client && seg.syn => {
                self.state = TcpState::SynReceived;
                self.need_syn_ack = true;
                self.arm_rto(now);
                return;
            }
            TcpState::Closed => return, // stray packet
            TcpState::SynSent => {
                if seg.syn && seg.ack_flag {
                    if let Some(sent) = self.syn_sent_at {
                        let sample = now - sent;
                        self.rtt.on_sample(sample);
                        self.cc.on_rtt_sample(sample, now);
                    }
                    self.state = TcpState::Established;
                    self.rto_backoff = 0;
                    self.rto_deadline = None;
                    self.ack_pending = true;
                    self.events.push_back(TcpEvent::Established { at: now });
                }
                return;
            }
            TcpState::SynReceived => {
                if seg.syn {
                    // Retransmitted SYN: re-send our SYN-ACK.
                    self.need_syn_ack = true;
                    return;
                }
                if seg.ack_flag {
                    if let Some(sent) = self.syn_ack_sent_at {
                        let sample = now - sent;
                        self.rtt.on_sample(sample);
                        self.cc.on_rtt_sample(sample, now);
                    }
                    self.state = TcpState::Established;
                    self.rto_backoff = 0;
                    self.rto_deadline = None;
                    self.events.push_back(TcpEvent::Established { at: now });
                    // Fall through: the final ACK may carry data.
                }
            }
            TcpState::Established => {
                if seg.syn && seg.ack_flag && self.is_client {
                    // Retransmitted SYN-ACK (our final ACK was lost): the
                    // server still waits, so re-acknowledge.
                    self.ack_pending = true;
                    return;
                }
            }
        }

        if self.state != TcpState::Established {
            return;
        }
        if seg.ack_flag {
            self.peer_rwnd = seg.rwnd;
            self.process_ack(seg.ack, seg.len == 0 && !seg.syn, now);
            if !seg.sack.is_empty() {
                self.process_sack(&seg.sack, now);
            }
        }
        if seg.len > 0 {
            // RFC 5681: out-of-order (or duplicate) data is acknowledged
            // immediately — those ACKs are the peer's loss signal — while
            // in-order data uses the delayed-ACK rule (every second
            // segment, or a short timer).
            let out_of_order = seg.seq != self.rcv_next;
            self.process_data(&seg, now);
            if out_of_order {
                self.ack_pending = true;
                self.delayed_ack_deadline = None;
                self.segs_since_ack = 0;
            } else {
                self.segs_since_ack += 1;
                if self.segs_since_ack >= 2 {
                    self.ack_pending = true;
                    self.delayed_ack_deadline = None;
                    self.segs_since_ack = 0;
                } else if self.delayed_ack_deadline.is_none() {
                    self.delayed_ack_deadline = Some(now + DELAYED_ACK);
                }
            }
        }
    }

    fn process_ack(&mut self, ack: u64, pure_ack: bool, now: SimTime) {
        if ack > self.snd_una {
            let newly_acked = ack - self.snd_una;
            self.snd_una = ack;
            self.dup_acks = 0;
            self.rto_backoff = 0;
            self.tlp_used = false;

            // Remove fully covered in-flight segments; take one RTT sample
            // from a never-retransmitted segment (Karn's algorithm).
            let covered: Vec<u64> = self
                .in_flight
                .iter()
                .take_while(|(&seq, seg)| seq + seg.len <= ack)
                .map(|(&seq, _)| seq)
                .collect();
            let mut sampled = false;
            for seq in covered {
                let seg = self.in_flight.remove(&seq).expect("covered segment");
                self.bytes_in_flight = self.bytes_in_flight.saturating_sub(seg.len);
                if !sampled && !seg.retransmitted {
                    let sample = now - seg.sent_at;
                    self.rtt.on_sample(sample);
                    self.cc.on_rtt_sample(sample, now);
                    sampled = true;
                }
            }
            // Drop acknowledged retransmission intents.
            let stale_rtx: Vec<u64> = self
                .rtx_queue
                .range(..ack)
                .filter(|(&seq, &len)| seq + len <= ack)
                .map(|(&seq, _)| seq)
                .collect();
            for seq in stale_rtx {
                self.rtx_queue.remove(&seq);
            }
            self.send_markers = self.send_markers.split_off(&(ack + 1));
            self.cc.on_ack(newly_acked, now);

            if self.in_recovery {
                if ack >= self.recovery_end {
                    self.in_recovery = false;
                } else if let Some((&seq, seg)) = self.in_flight.iter().next() {
                    // NewReno-style partial ACK: retransmit the next hole.
                    if seq == ack {
                        let len = seg.len;
                        self.bytes_in_flight = self.bytes_in_flight.saturating_sub(len);
                        self.in_flight.remove(&seq);
                        self.rtx_queue.insert(seq, len);
                        self.force_rtx_credit += 1;
                    }
                }
            }
            self.arm_or_clear_rto(now);
        } else if ack == self.snd_una && pure_ack && !self.in_flight.is_empty() {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                // Fast retransmit of the earliest unacked segment.
                if let Some((&seq, seg)) = self.in_flight.iter().next() {
                    let len = seg.len;
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(len);
                    self.in_flight.remove(&seq);
                    self.rtx_queue.insert(seq, len);
                    self.force_rtx_credit += 1;
                }
                self.cc.on_congestion_event(now);
                self.in_recovery = true;
                self.recovery_end = self.next_to_send;
            }
        }
    }

    /// SACK-based recovery (RFC 2018/6675, simplified): sacked segments
    /// leave the pipe, and any unsacked segment entirely below the
    /// highest sacked byte is a hole — retransmit it without waiting for
    /// three duplicate ACKs or an RTO. Burst losses repair in one round
    /// trip instead of one hole per RTT.
    fn process_sack(&mut self, sack: &[(u64, u64)], now: SimTime) {
        let Some(highest_sacked) = sack.iter().map(|&(_, end)| end).max() else {
            return;
        };
        // 1. Remove segments fully covered by a SACK block: they were
        //    delivered and no longer occupy the pipe.
        let covered: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(&seq, seg)| {
                sack.iter()
                    .any(|&(lo, hi)| seq >= lo && seq + seg.len <= hi)
            })
            .map(|(&seq, _)| seq)
            .collect();
        for seq in covered {
            let seg = self.in_flight.remove(&seq).expect("covered segment");
            self.bytes_in_flight = self.bytes_in_flight.saturating_sub(seg.len);
            self.cc.on_ack(seg.len, now);
        }
        // 2. Retransmit the holes below the highest sacked byte. RFC 6675
        //    reordering tolerance: a hole is declared lost only once
        //    ~three segments' worth of data is SACKed above it, or after
        //    RACK's time window (9/8 RTT) — plain path reordering must
        //    not look like loss. Retransmissions themselves also wait out
        //    the time window before a repeat, so queueing-delayed ACKs
        //    cannot trigger spurious storms, yet a repair burst that died
        //    in a full queue is retried within ~an RTT.
        let loss_delay = self.rtt.loss_delay();
        let reorder_window = 3 * self.config.mss;
        let holes: Vec<(u64, u64)> = self
            .in_flight
            .iter()
            .filter(|(&seq, seg)| {
                let end = seq + seg.len;
                let by_sequence = end <= highest_sacked && highest_sacked - end >= reorder_window;
                let by_time = end <= highest_sacked && seg.sent_at + loss_delay <= now;
                (by_sequence || by_time) && (!seg.retransmitted || seg.sent_at + loss_delay <= now)
            })
            .map(|(&seq, seg)| (seq, seg.len))
            .collect();
        if holes.is_empty() {
            return;
        }
        for (seq, len) in &holes {
            self.in_flight.remove(seq).expect("hole tracked");
            self.bytes_in_flight = self.bytes_in_flight.saturating_sub(*len);
            self.rtx_queue.insert(*seq, *len);
            self.force_rtx_credit += 1;
        }
        if !self.in_recovery {
            self.in_recovery = true;
            self.recovery_end = self.next_to_send;
            self.cc.on_congestion_event(now);
        }
        self.arm_rto(now);
    }

    fn process_data(&mut self, seg: &TcpSegment, now: SimTime) {
        for &(end, tag) in &seg.markers {
            // Markers inside the already-delivered prefix are duplicates
            // from spurious retransmissions; re-inserting would fire them
            // twice.
            if end > self.rcv_next {
                self.recv_markers.insert(end, tag);
            }
        }
        let seg_end = seg.seq + seg.len;
        if seg.seq <= self.rcv_next {
            if seg_end > self.rcv_next {
                self.rcv_next = seg_end;
                self.merge_out_of_order();
            }
            // else: pure duplicate, nothing advances.
        } else {
            self.out_of_order.insert(seg.seq, seg.len);
        }
        self.fire_delivered(now);
    }

    fn merge_out_of_order(&mut self) {
        while let Some((&seq, &len)) = self.out_of_order.iter().next() {
            if seq <= self.rcv_next {
                self.out_of_order.remove(&seq);
                self.rcv_next = self.rcv_next.max(seq + len);
            } else {
                break;
            }
        }
    }

    fn fire_delivered(&mut self, now: SimTime) {
        while let Some((&end, &tag)) = self.recv_markers.iter().next() {
            if end <= self.rcv_next {
                self.recv_markers.remove(&end);
                self.events.push_back(TcpEvent::Delivered { tag, at: now });
            } else {
                break;
            }
        }
    }

    fn markers_in_range(&self, seq: u64, len: u64) -> Vec<(u64, MsgTag)> {
        self.send_markers
            .range(seq + 1..=seq + len)
            .map(|(&end, &tag)| (end, tag))
            .collect()
    }

    fn available_window(&self) -> u64 {
        self.cc
            .window()
            .min(self.peer_rwnd)
            .saturating_sub(self.bytes_in_flight)
    }

    fn has_window_for(&self, len: u64) -> bool {
        self.available_window() >= len
    }

    fn track_sent(&mut self, seq: u64, len: u64, now: SimTime, retransmitted: bool) {
        self.in_flight.insert(
            seq,
            SentSegment {
                len,
                sent_at: now,
                retransmitted,
            },
        );
        self.bytes_in_flight += len;
        self.cc.on_packet_sent(len, now);
        self.arm_rto(now);
        if !self.tlp_used {
            // 2·SRTT after the most recent transmission (RACK-TLP).
            self.tlp_deadline = Some(now + self.rtt.smoothed() * 2);
        }
    }

    /// Only the *first* segment sent since the last receipt re-anchors
    /// the idle deadline — an RTO loop into a blackhole cannot postpone
    /// it indefinitely.
    fn mark_sent_activity(&mut self, now: SimTime) {
        if !self.sent_since_rx {
            self.sent_since_rx = true;
            self.idle_anchor = Some(now);
        }
    }

    fn arm_rto(&mut self, now: SimTime) {
        let backoff = 1u64 << self.rto_backoff.min(10);
        self.rto_deadline = Some(now + self.rtt.rto() * backoff);
    }

    fn arm_or_clear_rto(&mut self, now: SimTime) {
        if self.in_flight.is_empty() && self.rtx_queue.is_empty() {
            self.rto_deadline = None;
            self.tlp_deadline = None;
        } else {
            self.arm_rto(now);
        }
    }

    fn segment(
        &self,
        syn: bool,
        ack_flag: bool,
        seq: u64,
        len: u64,
        markers: Vec<(u64, MsgTag)>,
    ) -> TcpSegment {
        TcpSegment {
            conn: self.id,
            from_client: self.is_client,
            syn,
            rst: false,
            ack_flag,
            seq,
            len,
            ack: self.rcv_next,
            rwnd: self.config.receive_window,
            markers,
            sack: self.sack_blocks(),
        }
    }

    /// Up to four merged SACK blocks from the out-of-order buffer.
    fn sack_blocks(&self) -> Vec<(u64, u64)> {
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for (&seq, &len) in &self.out_of_order {
            let end = seq + len;
            match blocks.last_mut() {
                Some(last) if seq <= last.1 => last.1 = last.1.max(end),
                _ => blocks.push((seq, end)),
            }
        }
        blocks.truncate(4);
        blocks
    }

    fn data_segment(&mut self, seq: u64, len: u64, markers: Vec<(u64, MsgTag)>) -> TcpSegment {
        // Data segments carry the cumulative ACK.
        self.ack_pending = false;
        self.segs_since_ack = 0;
        self.delayed_ack_deadline = None;
        self.segment(false, true, seq, len, markers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_netsim::NodeId;
    use h3cdn_sim_core::EventQueue;

    fn conn_id() -> ConnId {
        ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1)
    }

    fn pair() -> (TcpConnection, TcpConnection) {
        let cfg = TcpConfig {
            initial_rtt: SimDuration::from_millis(40),
            ..TcpConfig::default()
        };
        (
            TcpConnection::client(conn_id(), cfg.clone()),
            TcpConnection::server(conn_id(), cfg),
        )
    }

    /// Drives both endpoints over a fixed-latency pipe, optionally
    /// dropping segments selected by `drop_nth` (indices into the global
    /// data-bearing send order).
    struct Harness {
        client: TcpConnection,
        server: TcpConnection,
        queue: EventQueue<(bool, TcpSegment)>, // (to_client, seg)
        latency: SimDuration,
        now: SimTime,
        sent_index: u64,
        drop: Vec<u64>,
        client_events: Vec<TcpEvent>,
        server_events: Vec<TcpEvent>,
    }

    impl Harness {
        fn new(drop: Vec<u64>) -> Self {
            let (client, server) = pair();
            Harness {
                client,
                server,
                queue: EventQueue::new(),
                latency: SimDuration::from_millis(20),
                now: SimTime::ZERO,
                sent_index: 0,
                drop,
                client_events: Vec::new(),
                server_events: Vec::new(),
            }
        }

        fn pump_side(&mut self, client_side: bool) {
            loop {
                let side = if client_side {
                    &mut self.client
                } else {
                    &mut self.server
                };
                let Some(seg) = side.poll_transmit(self.now) else {
                    break;
                };
                let idx = self.sent_index;
                self.sent_index += 1;
                if self.drop.contains(&idx) {
                    continue; // the network ate it
                }
                self.queue
                    .schedule(self.now + self.latency, (!client_side, seg));
            }
            let (side, sink) = if client_side {
                (&mut self.client, &mut self.client_events)
            } else {
                (&mut self.server, &mut self.server_events)
            };
            while let Some(ev) = side.poll_event() {
                sink.push(ev);
            }
        }

        fn run(&mut self) {
            self.pump_side(true);
            self.pump_side(false);
            for _ in 0..100_000 {
                // Next event: earliest of queue arrival and both timers.
                let arrival = self.queue.peek_time();
                let t_client = self.client.next_timeout();
                let t_server = self.server.next_timeout();
                let next = [arrival, t_client, t_server].into_iter().flatten().min();
                let Some(next) = next else { return };
                self.now = next;
                if arrival == Some(next) {
                    let (_, (to_client, seg)) = self.queue.pop().unwrap();
                    if to_client {
                        self.client.on_segment(seg, self.now);
                    } else {
                        self.server.on_segment(seg, self.now);
                    }
                } else if t_client == Some(next) {
                    self.client.on_timeout(self.now);
                } else {
                    self.server.on_timeout(self.now);
                }
                self.pump_side(true);
                self.pump_side(false);
            }
            panic!("harness did not quiesce");
        }
    }

    #[test]
    fn handshake_takes_one_rtt_each_side() {
        let mut h = Harness::new(vec![]);
        h.client.connect(SimTime::ZERO);
        h.run();
        // Client established after 1 RTT (40 ms), server after 1.5 RTT.
        assert_eq!(
            h.client_events[0],
            TcpEvent::Established {
                at: SimTime::ZERO + SimDuration::from_millis(40)
            }
        );
        assert_eq!(
            h.server_events[0],
            TcpEvent::Established {
                at: SimTime::ZERO + SimDuration::from_millis(60)
            }
        );
    }

    #[test]
    fn single_message_delivered_in_order() {
        let mut h = Harness::new(vec![]);
        h.client.connect(SimTime::ZERO);
        h.client.write_message(500, MsgTag(1));
        h.run();
        let delivered: Vec<_> = h
            .server_events
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Delivered { tag, at } => Some((*tag, *at)),
                _ => None,
            })
            .collect();
        // SYN at 0, SYN-ACK at 20→40, data leaves at 40, arrives at 60.
        assert_eq!(
            delivered,
            vec![(MsgTag(1), SimTime::ZERO + SimDuration::from_millis(60))]
        );
    }

    #[test]
    fn large_transfer_delivers_all_messages() {
        let mut h = Harness::new(vec![]);
        h.client.connect(SimTime::ZERO);
        h.server.write_message(200_000, MsgTag(10));
        h.server.write_message(50_000, MsgTag(11));
        h.run();
        let tags: Vec<MsgTag> = h
            .client_events
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Delivered { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![MsgTag(10), MsgTag(11)]);
    }

    #[test]
    fn delivery_order_is_stream_order_even_with_loss() {
        // Drop a handful of mid-transfer data segments; delivery order
        // must still be (10, 11) and both must eventually arrive.
        let mut h = Harness::new(vec![5, 9, 12]);
        h.client.connect(SimTime::ZERO);
        h.server.write_message(100_000, MsgTag(10));
        h.server.write_message(40_000, MsgTag(11));
        h.run();
        let tags: Vec<MsgTag> = h
            .client_events
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Delivered { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![MsgTag(10), MsgTag(11)]);
        assert!(h.server.retransmit_count() > 0, "loss must retransmit");
    }

    #[test]
    fn loss_delays_delivery_relative_to_clean_run() {
        let run = |drop: Vec<u64>| {
            let mut h = Harness::new(drop);
            h.client.connect(SimTime::ZERO);
            h.server.write_message(80_000, MsgTag(1));
            h.run();
            h.client_events
                .iter()
                .find_map(|e| match e {
                    TcpEvent::Delivered { at, .. } => Some(*at),
                    _ => None,
                })
                .expect("delivered")
        };
        let clean = run(vec![]);
        let lossy = run(vec![4]);
        assert!(
            lossy > clean,
            "lost segment must delay delivery: {clean} vs {lossy}"
        );
    }

    #[test]
    fn syn_loss_is_recovered_by_retransmission() {
        // Index 0 is the first SYN.
        let mut h = Harness::new(vec![0]);
        h.client.connect(SimTime::ZERO);
        h.client.write_message(100, MsgTag(1));
        h.run();
        assert!(h
            .client_events
            .iter()
            .any(|e| matches!(e, TcpEvent::Established { .. })));
        assert!(h
            .server_events
            .iter()
            .any(|e| matches!(e, TcpEvent::Delivered { .. })));
        // Establishment must have been delayed by at least the RTO floor.
        let at = h
            .client_events
            .iter()
            .find_map(|e| match e {
                TcpEvent::Established { at } => Some(*at),
                _ => None,
            })
            .unwrap();
        assert!(at >= SimTime::ZERO + SimDuration::from_millis(200));
    }

    #[test]
    fn syn_ack_loss_is_recovered() {
        let mut h = Harness::new(vec![1]);
        h.client.connect(SimTime::ZERO);
        h.server.write_message(100, MsgTag(2));
        h.run();
        assert!(h
            .client_events
            .iter()
            .any(|e| matches!(e, TcpEvent::Delivered { .. })));
    }

    #[test]
    fn bidirectional_transfer() {
        let mut h = Harness::new(vec![]);
        h.client.connect(SimTime::ZERO);
        h.client.write_message(5_000, MsgTag(1));
        h.server.write_message(7_000, MsgTag(2));
        h.run();
        assert!(h
            .server_events
            .iter()
            .any(|e| matches!(e, TcpEvent::Delivered { tag: MsgTag(1), .. })));
        assert!(h
            .client_events
            .iter()
            .any(|e| matches!(e, TcpEvent::Delivered { tag: MsgTag(2), .. })));
    }

    #[test]
    fn messages_written_before_connect_flow_after_handshake() {
        let mut h = Harness::new(vec![]);
        h.client.write_message(1_000, MsgTag(9));
        h.client.connect(SimTime::ZERO);
        h.run();
        assert!(h
            .server_events
            .iter()
            .any(|e| matches!(e, TcpEvent::Delivered { tag: MsgTag(9), .. })));
    }

    #[test]
    fn blackholed_syn_times_out_with_typed_event() {
        // No peer: every SYN vanishes. The connection must give up at
        // exactly connect + handshake_timeout instead of backing off
        // forever.
        let (mut client, _) = pair();
        client.connect(SimTime::ZERO);
        while client.poll_transmit(SimTime::ZERO).is_some() {}
        let mut guard = 0;
        while let Some(t) = client.next_timeout() {
            client.on_timeout(t);
            while client.poll_transmit(t).is_some() {}
            guard += 1;
            assert!(guard < 10_000, "timer loop must converge");
        }
        assert!(client.is_closed());
        assert_eq!(
            client.close_reason(),
            Some(crate::CloseReason::HandshakeTimeout)
        );
        let deadline = SimTime::ZERO + TcpConfig::default().handshake_timeout;
        let mut closed = None;
        while let Some(ev) = client.poll_event() {
            if let TcpEvent::Closed { at, reason } = ev {
                closed = Some((at, reason));
            }
        }
        assert_eq!(
            closed,
            Some((deadline, crate::CloseReason::HandshakeTimeout)),
            "typed close event at the exact deadline"
        );
        assert_eq!(client.next_timeout(), None, "closed connections are inert");
    }

    #[test]
    fn idle_connection_closes_after_idle_timeout() {
        let mut h = Harness::new(vec![]);
        h.client.connect(SimTime::ZERO);
        h.client.write_message(500, MsgTag(1));
        h.run();
        let closed: Vec<_> = h
            .client_events
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Closed { at, reason } => Some((*at, *reason)),
                _ => None,
            })
            .collect();
        assert_eq!(closed.len(), 1, "exactly one close event");
        assert_eq!(closed[0].1, crate::CloseReason::IdleTimeout);
        assert!(
            closed[0].0 >= SimTime::ZERO + TcpConfig::default().idle_timeout,
            "idle close cannot precede the idle window"
        );
        assert!(h
            .server_events
            .iter()
            .any(|e| matches!(e, TcpEvent::Closed { .. })));
    }

    #[test]
    #[should_panic(expected = "client-side only")]
    fn server_cannot_connect() {
        let (_, mut server) = pair();
        server.connect(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_message_rejected() {
        let (mut client, _) = pair();
        client.write_message(0, MsgTag(1));
    }

    #[test]
    fn slow_start_then_congestion_growth_visible() {
        // A 500 KB transfer over a 40 ms RTT path should need several
        // round trips (slow start), i.e. finish well after 2 RTTs but
        // within ~15.
        let mut h = Harness::new(vec![]);
        h.client.connect(SimTime::ZERO);
        h.server.write_message(500_000, MsgTag(1));
        h.run();
        let at = h
            .client_events
            .iter()
            .find_map(|e| match e {
                TcpEvent::Delivered { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        let rtt_ms = 40.0;
        let elapsed = at.as_millis_f64();
        assert!(elapsed > 3.0 * rtt_ms, "too fast: {elapsed}ms");
        assert!(elapsed < 15.0 * rtt_ms, "too slow: {elapsed}ms");
    }

    #[test]
    fn tail_loss_recovers_via_probe_not_rto() {
        // A two-segment flight whose LAST segment is dropped: no dupacks
        // can fire, so pre-TLP stacks wait out the 200 ms RTO floor. The
        // probe retransmits the tail at ~2·SRTT instead.
        let run = |drop: Vec<u64>| {
            let mut h = Harness::new(drop);
            h.client.connect(SimTime::ZERO);
            h.server.write_message(2_500, MsgTag(1)); // two segments
            h.run();
            h.client_events
                .iter()
                .find_map(|e| match e {
                    TcpEvent::Delivered { at, .. } => Some(*at),
                    _ => None,
                })
                .expect("delivered")
        };
        let clean = run(vec![]);
        // Global send order: 0 SYN, 1 SYN-ACK, 2 client ACK, 3 first
        // data, 4 second (final) data.
        let lossy = run(vec![4]);
        let penalty = lossy - clean;
        assert!(
            penalty < SimDuration::from_millis(200),
            "TLP must beat the RTO floor; penalty {penalty}"
        );
        assert!(
            penalty >= SimDuration::from_millis(40),
            "recovery still costs ~2 RTT; penalty {penalty}"
        );
    }

    #[test]
    fn peer_rwnd_limits_sender() {
        let cfg_small = TcpConfig {
            initial_rtt: SimDuration::from_millis(40),
            receive_window: 4_000,
            ..TcpConfig::default()
        };
        let cfg = TcpConfig {
            initial_rtt: SimDuration::from_millis(40),
            ..TcpConfig::default()
        };
        let mut h = Harness::new(vec![]);
        h.client = TcpConnection::client(conn_id(), cfg);
        h.server = TcpConnection::server(conn_id(), cfg_small);
        h.client.connect(SimTime::ZERO);
        h.client.write_message(100_000, MsgTag(1));
        h.run();
        // Delivery still completes (our receiver consumes instantly so the
        // advertised window never shrinks), but the sender was paced by a
        // 4 KB window: ≥ 25 round trips of ~40 ms.
        let at = h
            .server_events
            .iter()
            .find_map(|e| match e {
                TcpEvent::Delivered { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        assert!(at.as_millis_f64() > 900.0, "rwnd pacing missing: {at}");
    }

    #[test]
    fn rst_closes_client_within_one_rtt() {
        // An overloaded edge answers the SYN with RST: the client
        // abandons the connection at once instead of retransmitting the
        // SYN into a closed door.
        let (mut client, _) = pair();
        client.connect(SimTime::ZERO);
        while client.poll_transmit(SimTime::ZERO).is_some() {}
        let rst = TcpSegment {
            conn: conn_id(),
            from_client: false,
            syn: false,
            rst: true,
            ack_flag: false,
            seq: 0,
            len: 0,
            ack: 0,
            rwnd: 0,
            markers: vec![],
            sack: vec![],
        };
        let at = SimTime::ZERO + SimDuration::from_millis(20);
        client.on_segment(rst, at);
        assert!(client.is_closed());
        assert_eq!(client.close_reason(), Some(CloseReason::Refused));
        let closed = std::iter::from_fn(|| client.poll_event()).any(|e| {
            matches!(
                e,
                TcpEvent::Closed {
                    reason: CloseReason::Refused,
                    ..
                }
            )
        });
        assert!(closed, "the close must surface as an event");
        assert_eq!(client.next_timeout(), None, "all timers cleared");
        assert!(client.poll_transmit(at).is_none());
    }
}
