//! A segment-level, sans-IO TCP implementation.
//!
//! The simulation needs TCP for one reason above all: **strictly in-order
//! delivery**. HTTP/2 multiplexes every stream onto one TCP byte stream,
//! so a single lost segment stalls all of them — the head-of-line blocking
//! whose cost the paper's Fig. 9 sweeps out under 0/0.5/1 % loss. The
//! implementation therefore models, faithfully:
//!
//! * the three-way handshake (SYN / SYN-ACK / ACK), with retransmission,
//! * cumulative acknowledgements with duplicate-ACK fast retransmit,
//! * retransmission timeouts with go-back-N recovery,
//! * congestion control via the shared [`crate::cc`] controllers,
//! * receiver-side in-order reassembly with an out-of-order buffer,
//! * peer receive-window flow control.
//!
//! Payload bytes are abstract: applications write *messages* (a length
//! plus a [`MsgTag`]), the stream carries byte counts, and the receiving
//! side reports [`TcpEvent::Delivered`] when a message's final byte
//! arrives **in order** — exactly when a real kernel would hand those
//! bytes to the process.
//!
//! Deliberate simplifications (documented per DESIGN.md): no FIN
//! teardown (connections are dropped by their owners between page visits,
//! as the paper's methodology clears state between visits), immediate
//! ACKs (no 40 ms delayed-ACK timer), and no Nagle. RST exists in one
//! form only: a server refusing a new connection at admission (the
//! overloaded-edge path); established connections never RST each other.

mod connection;

pub use connection::{TcpConfig, TcpConnection, TcpEvent};

use crate::conn_id::{ConnId, MsgTag};

/// TCP/IPv4 header overhead per segment, in bytes.
pub(crate) const TCP_HEADER_BYTES: u64 = 40;

/// A TCP segment on the wire.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// Connection this segment belongs to.
    pub conn: ConnId,
    /// `true` when sent by the connection's client side.
    pub from_client: bool,
    /// SYN flag (handshake).
    pub syn: bool,
    /// RST flag: the receiver must abandon the connection (sent only by
    /// a server refusing admission; carries no payload).
    pub rst: bool,
    /// ACK flag; `ack` is valid when set.
    pub ack_flag: bool,
    /// First payload byte's offset in the sender's stream.
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Cumulative acknowledgement: next byte expected from the peer.
    pub ack: u64,
    /// Sender's advertised receive window.
    pub rwnd: u64,
    /// Message boundaries ending within `[seq, seq+len)`: `(end, tag)`.
    pub markers: Vec<(u64, MsgTag)>,
    /// SACK blocks: up to four merged `[start, end)` byte ranges the
    /// receiver holds above the cumulative ACK (RFC 2018).
    pub sack: Vec<(u64, u64)>,
}

impl TcpSegment {
    /// Serialised size on the wire (payload + headers).
    pub fn wire_bytes(&self) -> u64 {
        self.len + TCP_HEADER_BYTES
    }

    /// Whether this segment carries payload or a SYN (i.e. occupies
    /// sequence space / elicits an ACK in our model).
    pub fn is_data_bearing(&self) -> bool {
        self.len > 0 || self.syn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_netsim::NodeId;

    fn conn() -> ConnId {
        ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1)
    }

    #[test]
    fn wire_bytes_include_header() {
        let seg = TcpSegment {
            conn: conn(),
            from_client: true,
            syn: false,
            rst: false,
            ack_flag: true,
            seq: 0,
            len: 1000,
            ack: 0,
            rwnd: 65535,
            markers: vec![],
            sack: vec![],
        };
        assert_eq!(seg.wire_bytes(), 1040);
    }

    #[test]
    fn data_bearing_classification() {
        let mut seg = TcpSegment {
            conn: conn(),
            from_client: true,
            syn: true,
            rst: false,
            ack_flag: false,
            seq: 0,
            len: 0,
            ack: 0,
            rwnd: 65535,
            markers: vec![],
            sack: vec![],
        };
        assert!(seg.is_data_bearing(), "SYN elicits an ACK");
        seg.syn = false;
        assert!(!seg.is_data_bearing(), "pure ACK");
        seg.len = 1;
        assert!(seg.is_data_bearing());
        // A refusal RST is header-only: it must not occupy sequence
        // space or elicit an ACK from the refused client.
        seg.len = 0;
        seg.rst = true;
        assert!(!seg.is_data_bearing(), "RST elicits nothing");
        assert_eq!(seg.wire_bytes(), TCP_HEADER_BYTES);
    }
}
