//! NewReno: slow start plus AIMD congestion avoidance.

use h3cdn_sim_core::SimTime;

use super::{CongestionController, INITIAL_WINDOW, MIN_WINDOW, MSS};

/// Classic loss-based AIMD controller (RFC 5681/6582 behaviour at the
/// granularity this simulation needs).
///
/// * Slow start: `cwnd += acked_bytes` per ACK until `ssthresh`.
/// * Congestion avoidance: `cwnd += MSS·acked/cwnd` per ACK
///   (≈ one MSS per RTT).
/// * Congestion event: `ssthresh = cwnd/2`, `cwnd = ssthresh`.
/// * Timeout: `cwnd = MIN_WINDOW`, `ssthresh = cwnd/2`.
#[derive(Debug, Clone)]
pub struct NewReno {
    cwnd: u64,
    ssthresh: u64,
    in_flight: u64,
}

impl NewReno {
    /// Creates a controller with the standard initial window.
    pub fn new() -> Self {
        NewReno {
            cwnd: INITIAL_WINDOW,
            ssthresh: u64::MAX,
            in_flight: 0,
        }
    }
}

impl Default for NewReno {
    fn default() -> Self {
        NewReno::new()
    }
}

impl CongestionController for NewReno {
    fn on_packet_sent(&mut self, bytes: u64, _now: SimTime) {
        self.in_flight += bytes;
    }

    fn on_ack(&mut self, bytes: u64, _now: SimTime) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
        if self.cwnd < self.ssthresh {
            // Slow start: exponential growth.
            self.cwnd += bytes;
        } else {
            // Congestion avoidance: ~one MSS per RTT.
            self.cwnd += (MSS * bytes / self.cwnd).max(1);
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(MIN_WINDOW);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(MIN_WINDOW);
        self.cwnd = MIN_WINDOW;
    }

    fn window(&self) -> u64 {
        self.cwnd
    }

    fn bytes_in_flight(&self) -> u64 {
        self.in_flight
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = NewReno::new();
        let start = cc.window();
        // ACK one full window's worth.
        cc.on_packet_sent(start, t());
        cc.on_ack(start, t());
        assert_eq!(cc.window(), 2 * start);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut cc = NewReno::new();
        cc.on_congestion_event(t()); // forces ssthresh = cwnd/2, exits SS
        assert!(!cc.in_slow_start());
        let w = cc.window();
        // ACK a full window: growth should be about one MSS, not w.
        cc.on_packet_sent(w, t());
        cc.on_ack(w, t());
        let growth = cc.window() - w;
        assert!((MSS..=MSS + MSS / 4).contains(&growth), "growth {growth}");
    }

    #[test]
    fn halves_on_congestion_event() {
        let mut cc = NewReno::new();
        // Grow a bit first.
        cc.on_packet_sent(INITIAL_WINDOW, t());
        cc.on_ack(INITIAL_WINDOW, t());
        let w = cc.window();
        cc.on_congestion_event(t());
        assert_eq!(cc.window(), w / 2);
    }

    #[test]
    fn window_never_below_min() {
        let mut cc = NewReno::new();
        for _ in 0..20 {
            cc.on_congestion_event(t());
        }
        assert_eq!(cc.window(), MIN_WINDOW);
        cc.on_timeout(t());
        assert_eq!(cc.window(), MIN_WINDOW);
    }

    #[test]
    fn in_flight_tracks_sends_and_acks() {
        let mut cc = NewReno::new();
        cc.on_packet_sent(3000, t());
        cc.on_packet_sent(2000, t());
        assert_eq!(cc.bytes_in_flight(), 5000);
        cc.on_ack(3000, t());
        assert_eq!(cc.bytes_in_flight(), 2000);
        // Over-acking saturates at zero rather than underflowing.
        cc.on_ack(9999, t());
        assert_eq!(cc.bytes_in_flight(), 0);
    }

    #[test]
    fn timeout_then_slow_start_again() {
        let mut cc = NewReno::new();
        cc.on_packet_sent(INITIAL_WINDOW, t());
        cc.on_ack(INITIAL_WINDOW, t());
        cc.on_timeout(t());
        assert!(cc.in_slow_start());
        assert_eq!(cc.window(), MIN_WINDOW);
    }
}
