//! CUBIC congestion control (RFC 8312 behaviour, simplified).

use h3cdn_sim_core::SimTime;

use super::{CongestionController, INITIAL_WINDOW, MIN_WINDOW, MSS};

/// CUBIC's scaling constant `C` (windows measured in MSS, time in
/// seconds).
const CUBIC_C: f64 = 0.4;
/// CUBIC's multiplicative-decrease factor `β_cubic`.
const CUBIC_BETA: f64 = 0.7;

/// The CUBIC controller used as the default by both simulated stacks, as
/// it is in Linux TCP and in the production QUIC stacks the paper
/// measured.
///
/// After a congestion event at window `W_max`, the window grows along the
/// cubic `W(t) = C·(t − K)³ + W_max` with `K = ∛(W_max·(1−β)/C)`: a fast
/// initial recovery, a plateau near the old maximum, then probing beyond
/// it.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: u64,
    ssthresh: u64,
    in_flight: u64,
    /// Window (bytes) at the most recent congestion event.
    w_max: f64,
    /// Start of the current epoch (set at the first ACK after a loss).
    epoch_start: Option<SimTime>,
    /// Cubic inflection offset, in seconds.
    k: f64,
}

impl Cubic {
    /// Creates a controller with the standard initial window.
    pub fn new() -> Self {
        Cubic {
            cwnd: INITIAL_WINDOW,
            ssthresh: u64::MAX,
            in_flight: 0,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    fn target_window(&self, now: SimTime) -> u64 {
        let Some(epoch_start) = self.epoch_start else {
            return self.cwnd;
        };
        let t = now.saturating_duration_since(epoch_start).as_secs_f64();
        // Windows in MSS units for the cubic function.
        let w_max_mss = self.w_max / MSS as f64;
        let w_cubic = CUBIC_C * (t - self.k).powi(3) + w_max_mss;
        ((w_cubic * MSS as f64).max(MIN_WINDOW as f64)) as u64
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic::new()
    }
}

impl CongestionController for Cubic {
    fn on_packet_sent(&mut self, bytes: u64, _now: SimTime) {
        self.in_flight += bytes;
    }

    fn on_ack(&mut self, bytes: u64, now: SimTime) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
        if self.cwnd < self.ssthresh {
            // Slow start, as in NewReno.
            self.cwnd += bytes;
            return;
        }
        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
            let w_max_mss = self.w_max / MSS as f64;
            let cwnd_mss = self.cwnd as f64 / MSS as f64;
            self.k = if w_max_mss > cwnd_mss {
                ((w_max_mss - cwnd_mss) / CUBIC_C).cbrt()
            } else {
                0.0
            };
        }
        // Step at most one MSS per ACK towards the cubic target so growth
        // stays ACK-clocked.
        let target = self.target_window(now);
        if target > self.cwnd {
            let step = ((target - self.cwnd) * bytes / self.cwnd.max(1)).clamp(1, MSS);
            self.cwnd += step;
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime) {
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(MIN_WINDOW);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(MIN_WINDOW);
        self.cwnd = MIN_WINDOW;
        self.epoch_start = None;
    }

    fn window(&self) -> u64 {
        self.cwnd
    }

    fn bytes_in_flight(&self) -> u64 {
        self.in_flight
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_sim_core::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn slow_start_matches_newreno() {
        let mut cc = Cubic::new();
        cc.on_packet_sent(INITIAL_WINDOW, at(0));
        cc.on_ack(INITIAL_WINDOW, at(0));
        assert_eq!(cc.window(), 2 * INITIAL_WINDOW);
    }

    #[test]
    fn multiplicative_decrease_is_beta() {
        let mut cc = Cubic::new();
        let w = cc.window();
        cc.on_congestion_event(at(0));
        let expect = (w as f64 * CUBIC_BETA) as u64;
        assert_eq!(cc.window(), expect.max(MIN_WINDOW));
    }

    #[test]
    fn recovers_towards_w_max_over_time() {
        let mut cc = Cubic::new();
        // Grow, then lose.
        for _ in 0..6 {
            cc.on_packet_sent(cc.window(), at(0));
            cc.on_ack(cc.window(), at(0));
        }
        let w_before_loss = cc.window();
        cc.on_congestion_event(at(0));
        let w_after_loss = cc.window();
        assert!(w_after_loss < w_before_loss);
        // ACK-clock through simulated time; the window should climb back
        // towards w_max.
        let mut now_ms = 10;
        for _ in 0..2000 {
            cc.on_packet_sent(MSS, at(now_ms));
            cc.on_ack(MSS, at(now_ms));
            now_ms += 10;
        }
        assert!(
            cc.window() > w_after_loss + 2 * MSS,
            "window failed to recover: {} -> {}",
            w_after_loss,
            cc.window()
        );
    }

    #[test]
    fn growth_is_concave_then_convex() {
        // Near t = K growth slows (plateau), far beyond it accelerates.
        let mut cc = Cubic::new();
        for _ in 0..6 {
            cc.on_packet_sent(cc.window(), at(0));
            cc.on_ack(cc.window(), at(0));
        }
        cc.on_congestion_event(at(0));
        let mut windows = Vec::new();
        let mut now_ms = 0;
        for _ in 0..3000 {
            cc.on_packet_sent(MSS, at(now_ms));
            cc.on_ack(MSS, at(now_ms));
            windows.push(cc.window());
            now_ms += 5;
        }
        // Early growth (first quarter) should exceed mid growth (around
        // the plateau).
        let q = windows.len() / 4;
        let early = windows[q] - windows[0];
        let mid = windows[2 * q] - windows[q];
        assert!(early > mid, "no plateau: early {early} mid {mid}");
    }

    #[test]
    fn timeout_collapses_to_min() {
        let mut cc = Cubic::new();
        cc.on_timeout(at(0));
        assert_eq!(cc.window(), MIN_WINDOW);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn in_flight_accounting() {
        let mut cc = Cubic::new();
        cc.on_packet_sent(1000, at(0));
        cc.on_packet_sent(500, at(1));
        cc.on_ack(1000, at(2));
        assert_eq!(cc.bytes_in_flight(), 500);
    }
}
