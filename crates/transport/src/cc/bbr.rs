//! BBR congestion control (model-based, simplified from BBR v1).
//!
//! Where NewReno and CUBIC infer capacity from loss — filling the
//! bottleneck queue until it overflows — BBR builds an explicit model of
//! the path: a windowed-maximum delivery-rate estimate (`btl_bw`) and a
//! windowed-minimum RTT (`min_rtt`). The congestion window tracks the
//! bandwidth-delay product of that model, so on a deep (buffer-bloated)
//! queue BBR keeps the standing queue near empty while the loss-based
//! controllers keep it full. This is the behavioural difference the
//! `path_dynamics` bufferbloat sweep measures.
//!
//! Simplifications relative to production BBR: window-driven rather than
//! pacing-driven (the simulated stacks are ACK-clocked and have no
//! pacer), delivery rate is estimated per epoch (one `min_rtt`-long
//! aggregation window) instead of per packet, and ProbeRTT collapses to
//! a short fixed-length window clamp.

use h3cdn_sim_core::{SimDuration, SimTime};

use super::{CongestionController, INITIAL_WINDOW, MIN_WINDOW, MSS};

/// Delivery-rate filter length, in epochs (~10 RTTs like BBR's bw
/// filter).
const BW_FILTER_LEN: usize = 10;

/// Startup/Drain gains (2/ln 2, as in BBR v1).
const STARTUP_GAIN: f64 = 2.885;

/// ProbeBw gain cycle, advanced once per epoch.
const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// `min_rtt` samples expire after this long, forcing a ProbeRTT dip.
const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Length of the ProbeRTT window clamp.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);

/// Startup declares the pipe full after this many epochs without ~25 %
/// bandwidth growth.
const FULL_BW_EPOCHS: u32 = 3;

/// Floor for the epoch length so the estimator works before any RTT
/// sample exists.
const MIN_EPOCH: SimDuration = SimDuration::from_millis(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// The BBR controller (see module docs for scope).
#[derive(Debug, Clone)]
pub struct Bbr {
    cwnd: u64,
    in_flight: u64,
    mode: Mode,
    /// Windowed-max delivery-rate samples, bits/sec, newest last.
    bw_samples: Vec<u64>,
    /// Bytes acked inside the current estimation epoch.
    epoch_acked: u64,
    /// When the current estimation epoch began.
    epoch_start: SimTime,
    /// Windowed-min RTT and when it was last refreshed.
    min_rtt: Option<SimDuration>,
    min_rtt_at: SimTime,
    /// Best bandwidth seen when Startup last checked for growth, and how
    /// many consecutive checks saw no ~25 % improvement.
    full_bw: u64,
    full_bw_count: u32,
    /// Index into [`PROBE_BW_GAINS`], advanced once per epoch.
    cycle_index: usize,
    /// When the current ProbeRTT window clamp ends.
    probe_rtt_until: SimTime,
    /// Window to restore after ProbeRTT.
    saved_cwnd: u64,
}

impl Bbr {
    /// Creates a controller with the standard initial window.
    pub fn new() -> Self {
        Bbr {
            cwnd: INITIAL_WINDOW,
            in_flight: 0,
            mode: Mode::Startup,
            bw_samples: Vec::with_capacity(BW_FILTER_LEN),
            epoch_acked: 0,
            epoch_start: SimTime::ZERO,
            min_rtt: None,
            min_rtt_at: SimTime::ZERO,
            full_bw: 0,
            full_bw_count: 0,
            cycle_index: 0,
            probe_rtt_until: SimTime::ZERO,
            saved_cwnd: INITIAL_WINDOW,
        }
    }

    /// The filtered bottleneck bandwidth estimate, bits/sec.
    fn btl_bw(&self) -> u64 {
        self.bw_samples.iter().copied().max().unwrap_or(0)
    }

    /// Bandwidth-delay product of the current model, in bytes (0 until
    /// both filters have samples).
    fn bdp(&self) -> u64 {
        let Some(min_rtt) = self.min_rtt else {
            return 0;
        };
        ((self.btl_bw() as f64 / 8.0) * min_rtt.as_secs_f64()) as u64
    }

    /// Target window for the current mode, floored at the minimum.
    fn target_window(&self) -> u64 {
        let bdp = self.bdp();
        if bdp == 0 {
            // No model yet: keep whatever we have.
            return self.cwnd;
        }
        let gain = match self.mode {
            Mode::Startup | Mode::Drain => STARTUP_GAIN,
            Mode::ProbeBw => PROBE_BW_GAINS
                .get(self.cycle_index % PROBE_BW_GAINS.len())
                .copied()
                .unwrap_or(1.0),
            Mode::ProbeRtt => return (4 * MSS).max(MIN_WINDOW),
        };
        (((bdp as f64) * gain) as u64).max(MIN_WINDOW)
    }

    /// Epoch length: one `min_rtt`, floored so estimation starts before
    /// the first RTT sample.
    fn epoch_len(&self) -> SimDuration {
        self.min_rtt.unwrap_or(MIN_EPOCH).max(MIN_EPOCH)
    }

    /// Closes the estimation epoch at `now` if it has run a full
    /// `min_rtt`, pushing a delivery-rate sample and driving the mode
    /// machine.
    fn maybe_advance_epoch(&mut self, now: SimTime) {
        let elapsed = now.saturating_duration_since(self.epoch_start);
        if elapsed < self.epoch_len() {
            return;
        }
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            let sample_bps = (self.epoch_acked as f64 * 8.0 / secs) as u64;
            if self.bw_samples.len() >= BW_FILTER_LEN {
                self.bw_samples.remove(0);
            }
            self.bw_samples.push(sample_bps);
        }
        self.epoch_acked = 0;
        self.epoch_start = now;

        match self.mode {
            Mode::Startup => {
                // Full-pipe detection: three epochs without 25 % growth.
                let bw = self.btl_bw();
                if bw > self.full_bw + self.full_bw / 4 {
                    self.full_bw = bw;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= FULL_BW_EPOCHS && self.bdp() > 0 {
                        self.mode = Mode::Drain;
                    }
                }
            }
            Mode::Drain => {
                // Drain is exited from on_ack when inflight ≤ BDP.
            }
            Mode::ProbeBw => {
                self.cycle_index = (self.cycle_index + 1) % PROBE_BW_GAINS.len();
            }
            Mode::ProbeRtt => {
                if now >= self.probe_rtt_until {
                    self.min_rtt_at = now;
                    self.mode = if self.bdp() > 0 {
                        Mode::ProbeBw
                    } else {
                        Mode::Startup
                    };
                    self.cwnd = self.saved_cwnd.max(MIN_WINDOW);
                }
            }
        }
    }
}

impl Default for Bbr {
    fn default() -> Self {
        Bbr::new()
    }
}

impl CongestionController for Bbr {
    fn on_packet_sent(&mut self, bytes: u64, _now: SimTime) {
        self.in_flight += bytes;
    }

    fn on_ack(&mut self, bytes: u64, now: SimTime) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
        self.epoch_acked += bytes;
        self.maybe_advance_epoch(now);

        match self.mode {
            Mode::Startup => {
                // Exponential growth while searching for the pipe, like
                // slow start but capped by the model once it exists.
                self.cwnd += bytes;
            }
            Mode::Drain => {
                let bdp = self.bdp();
                self.cwnd = self.target_window().min(self.cwnd);
                if bdp > 0 && self.in_flight <= bdp {
                    self.mode = Mode::ProbeBw;
                    self.cycle_index = 0;
                    self.cwnd = bdp.max(MIN_WINDOW);
                }
            }
            Mode::ProbeBw => {
                self.cwnd = self.target_window();
            }
            Mode::ProbeRtt => {
                self.cwnd = self.target_window();
            }
        }
        self.cwnd = self.cwnd.max(MIN_WINDOW);
    }

    fn on_congestion_event(&mut self, now: SimTime) {
        // BBR v1 does not react to isolated losses — the model, not the
        // loss signal, sets the rate. We still leave ProbeBw's probing
        // gain for the rest of the cycle to avoid hammering a shrinking
        // bottleneck (trace-driven rate drops reach the model through
        // delivery-rate epochs within ~10 RTTs).
        let _ = now;
        if self.mode == Mode::ProbeBw && self.cycle_index == 0 {
            // Skip the 1.25 probing phase if it just caused loss.
            self.cycle_index = 1;
            self.cwnd = self.target_window();
        }
    }

    fn on_timeout(&mut self, now: SimTime) {
        // A retransmission timeout means the model is stale: collapse
        // the window and rebuild from scratch, like BBR after loss
        // recovery resets.
        self.cwnd = MIN_WINDOW;
        self.mode = Mode::Startup;
        self.bw_samples.clear();
        self.epoch_acked = 0;
        self.epoch_start = now;
        self.full_bw = 0;
        self.full_bw_count = 0;
        self.cycle_index = 0;
    }

    fn on_rtt_sample(&mut self, rtt: SimDuration, now: SimTime) {
        if self.min_rtt.is_none_or(|m| rtt <= m) {
            self.min_rtt = Some(rtt);
            self.min_rtt_at = now;
            return;
        }
        let expired = now.saturating_duration_since(self.min_rtt_at) > MIN_RTT_WINDOW;
        if expired && self.mode != Mode::ProbeRtt {
            // Stale floor: dip the window to drain the queue and
            // re-measure. This sample becomes the provisional floor;
            // lower ones taken during the dip replace it.
            self.mode = Mode::ProbeRtt;
            self.probe_rtt_until = now + PROBE_RTT_DURATION;
            self.saved_cwnd = self.cwnd;
            self.cwnd = (4 * MSS).max(MIN_WINDOW);
            self.min_rtt = Some(rtt);
            self.min_rtt_at = now;
        }
    }

    fn window(&self) -> u64 {
        self.cwnd
    }

    fn bytes_in_flight(&self) -> u64 {
        self.in_flight
    }

    fn in_slow_start(&self) -> bool {
        self.mode == Mode::Startup
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// ACK-clock the controller against an ideal link of `rate_bps` with
    /// the given RTT for `rounds` round trips; returns the final time.
    fn drive(cc: &mut Bbr, rate_bps: u64, rtt_ms: u64, rounds: u64, start_ms: u64) -> u64 {
        let mut now_ms = start_ms;
        for _ in 0..rounds {
            // Send a window's worth, then receive the ACKs one RTT later
            // (capped by what the link can deliver in one RTT).
            let deliverable = rate_bps / 8 * rtt_ms / 1000;
            let burst = cc.window().min(deliverable.max(MSS));
            cc.on_packet_sent(burst, at(now_ms));
            now_ms += rtt_ms;
            cc.on_rtt_sample(SimDuration::from_millis(rtt_ms), at(now_ms));
            cc.on_ack(burst, at(now_ms));
        }
        now_ms
    }

    #[test]
    fn startup_grows_exponentially() {
        let mut cc = Bbr::new();
        assert_eq!(cc.window(), INITIAL_WINDOW);
        assert!(cc.in_slow_start());
        cc.on_packet_sent(INITIAL_WINDOW, at(0));
        cc.on_ack(INITIAL_WINDOW, at(0));
        assert_eq!(cc.window(), 2 * INITIAL_WINDOW);
    }

    #[test]
    fn converges_to_the_bdp_and_exits_startup() {
        let mut cc = Bbr::new();
        // 16 Mbps, 50 ms RTT: BDP = 100 kB.
        drive(&mut cc, 16_000_000, 50, 60, 0);
        assert!(!cc.in_slow_start(), "must leave Startup: {cc:?}");
        let bdp = 16_000_000 / 8 / 20; // 100_000 B
                                       // The steady window must track the BDP within the gain cycle's
                                       // swing, far below what a loss-based controller would pile into
                                       // a deep buffer.
        assert!(
            cc.window() >= bdp / 2 && cc.window() <= bdp * 3,
            "window {} vs bdp {bdp}",
            cc.window()
        );
    }

    #[test]
    fn model_tracks_a_rate_drop() {
        let mut cc = Bbr::new();
        let end = drive(&mut cc, 16_000_000, 50, 60, 0);
        let w_fast = cc.window();
        // The link collapses 8x; within the bw filter length the model —
        // and the window — must follow it down.
        drive(&mut cc, 2_000_000, 50, 40, end);
        let w_slow = cc.window();
        assert!(
            w_slow < w_fast / 2,
            "window must follow the model down: {w_fast} -> {w_slow}"
        );
    }

    #[test]
    fn isolated_loss_does_not_collapse_the_window() {
        let mut cc = Bbr::new();
        drive(&mut cc, 16_000_000, 50, 60, 0);
        let before = cc.window();
        cc.on_congestion_event(at(10_000));
        assert!(
            cc.window() >= before / 2,
            "BBR must not halve on one loss: {before} -> {}",
            cc.window()
        );
        assert!(cc.window() >= MIN_WINDOW);
    }

    #[test]
    fn timeout_collapses_and_restarts() {
        let mut cc = Bbr::new();
        drive(&mut cc, 16_000_000, 50, 60, 0);
        cc.on_timeout(at(10_000));
        assert_eq!(cc.window(), MIN_WINDOW);
        assert!(cc.in_slow_start());
        // And it can grow again immediately.
        cc.on_packet_sent(MSS, at(10_000));
        cc.on_ack(MSS, at(10_000));
        assert!(cc.window() > MIN_WINDOW);
    }

    #[test]
    fn in_flight_never_underflows() {
        let mut cc = Bbr::new();
        cc.on_packet_sent(100, at(0));
        cc.on_ack(100, at(1));
        cc.on_ack(100, at(2)); // spurious extra ACK
        assert_eq!(cc.bytes_in_flight(), 0);
    }
}
