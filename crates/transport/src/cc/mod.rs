//! Congestion controllers shared by the TCP and QUIC stacks.
//!
//! The paper's H2/H3 comparison holds congestion control approximately
//! constant (both production stacks ran CUBIC-family controllers), so both
//! of our transports drive the same [`CongestionController`] trait. The
//! Cubic-vs-NewReno ablation bench (`cc_ablation`) quantifies how much of
//! an observed H3 gain could instead be explained by CC differences —
//! mirroring Yu & Benson's warning cited in the paper. [`Bbr`] joins them
//! because production CDNs default QUIC to BBR: it is model-based (it
//! paces to an estimated bandwidth-delay product instead of filling the
//! queue until loss), which is exactly the regime the `path_dynamics`
//! bufferbloat sweep separates from the loss-based controllers.

mod bbr;
mod cubic;
mod new_reno;

pub use bbr::Bbr;
pub use cubic::Cubic;
pub use new_reno::NewReno;

use h3cdn_sim_core::{SimDuration, SimTime};

/// Sender-side maximum segment/packet payload size in bytes. One value is
/// shared by both stacks so windows are comparable.
pub(crate) const MSS: u64 = 1460;

/// Initial congestion window: 10 segments (RFC 6928).
pub(crate) const INITIAL_WINDOW: u64 = 10 * MSS;

/// Minimum congestion window after a collapse: 2 segments.
pub const MIN_WINDOW: u64 = 2 * MSS;

/// A pluggable congestion-control algorithm.
///
/// All byte quantities are in wire bytes. Implementations never read a
/// clock; the caller supplies virtual time.
pub trait CongestionController: std::fmt::Debug + Send {
    /// Records that `bytes` left the sender at `now`.
    fn on_packet_sent(&mut self, bytes: u64, now: SimTime);

    /// Records an acknowledgement of `bytes` previously in flight.
    fn on_ack(&mut self, bytes: u64, now: SimTime);

    /// Records one congestion event (fast-retransmit-class loss). Multiple
    /// losses in one window should be reported as a single event by the
    /// caller.
    fn on_congestion_event(&mut self, now: SimTime);

    /// Records a retransmission-timeout-class collapse.
    fn on_timeout(&mut self, now: SimTime);

    /// Records a round-trip-time sample taken by the transport's RTT
    /// estimator. Loss-based controllers ignore this (default no-op);
    /// model-based controllers ([`Bbr`]) feed their min-RTT filter and
    /// delivery-rate epochs from it.
    fn on_rtt_sample(&mut self, rtt: SimDuration, now: SimTime) {
        let _ = (rtt, now);
    }

    /// Current congestion window in bytes.
    fn window(&self) -> u64;

    /// Bytes currently in flight according to this controller.
    fn bytes_in_flight(&self) -> u64;

    /// Whether the sender is still in slow start.
    fn in_slow_start(&self) -> bool;

    /// Short algorithm name for logs and experiment output.
    fn name(&self) -> &'static str;
}

/// Algorithm selector used by configuration types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcAlgorithm {
    /// Loss-based AIMD (RFC 5681 + 6582 spirit).
    NewReno,
    /// CUBIC (RFC 8312 spirit), the default in Linux and most QUIC stacks.
    #[default]
    Cubic,
    /// BBR (model-based), the default for QUIC at the large CDNs.
    Bbr,
}

impl CcAlgorithm {
    /// Instantiates a controller with the standard initial window.
    pub fn build(self) -> Box<dyn CongestionController> {
        match self {
            CcAlgorithm::NewReno => Box::new(NewReno::new()),
            CcAlgorithm::Cubic => Box::new(Cubic::new()),
            CcAlgorithm::Bbr => Box::new(Bbr::new()),
        }
    }
}

impl std::fmt::Display for CcAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcAlgorithm::NewReno => write!(f, "newreno"),
            CcAlgorithm::Cubic => write!(f, "cubic"),
            CcAlgorithm::Bbr => write!(f, "bbr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all() {
        assert_eq!(CcAlgorithm::NewReno.build().name(), "newreno");
        assert_eq!(CcAlgorithm::Cubic.build().name(), "cubic");
        assert_eq!(CcAlgorithm::Bbr.build().name(), "bbr");
        assert_eq!(CcAlgorithm::default(), CcAlgorithm::Cubic);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CcAlgorithm::NewReno.to_string(), "newreno");
        assert_eq!(CcAlgorithm::Cubic.to_string(), "cubic");
        assert_eq!(CcAlgorithm::Bbr.to_string(), "bbr");
    }

    /// Shared behavioural contract the loss-based controllers satisfy.
    /// (BBR's window is model-driven, so its invariants live in the
    /// cross-controller conformance suite in `tests/cc_conformance.rs`.)
    fn check_contract(mut cc: Box<dyn CongestionController>) {
        let t0 = SimTime::ZERO;
        assert_eq!(cc.window(), INITIAL_WINDOW);
        assert!(cc.in_slow_start());
        assert_eq!(cc.bytes_in_flight(), 0);

        // Slow start doubles per window's worth of ACKs.
        cc.on_packet_sent(MSS, t0);
        assert_eq!(cc.bytes_in_flight(), MSS);
        cc.on_ack(MSS, t0);
        assert_eq!(cc.bytes_in_flight(), 0);
        assert!(cc.window() > INITIAL_WINDOW);

        // A congestion event shrinks the window and exits slow start.
        let before = cc.window();
        cc.on_packet_sent(MSS, t0);
        cc.on_congestion_event(t0);
        assert!(cc.window() < before);
        assert!(!cc.in_slow_start());

        // A timeout collapses the window to the minimum.
        cc.on_timeout(t0);
        assert_eq!(cc.window(), MIN_WINDOW);
    }

    #[test]
    fn new_reno_contract() {
        check_contract(CcAlgorithm::NewReno.build());
    }

    #[test]
    fn cubic_contract() {
        check_contract(CcAlgorithm::Cubic.build());
    }
}
