//! A minimal two-endpoint harness for exercising sans-IO state machines.
//!
//! [`Duplex`] shuttles wire items between two [`Driveable`] endpoints over
//! a fixed-latency pipe with optional scripted loss. It exists so unit and
//! integration tests (here, in `h3cdn-http`, and in downstream crates) can
//! drive a protocol pair to quiescence without standing up the full
//! `h3cdn-netsim` engine.

use h3cdn_sim_core::{EventQueue, SimDuration, SimTime};

/// Anything that can be driven by packets and timeouts and produces
/// packets in return — the shape shared by [`crate::tcp::TcpConnection`],
/// [`crate::tls::SecureTcp`] and [`crate::quic::QuicConnection`].
pub trait Driveable {
    /// The wire item exchanged between the two endpoints.
    type Wire;

    /// Feeds one received wire item.
    fn on_wire(&mut self, wire: Self::Wire, now: SimTime);

    /// Produces the next outgoing wire item, or `None` when idle.
    fn poll_wire(&mut self, now: SimTime) -> Option<Self::Wire>;

    /// Earliest pending timer deadline.
    fn deadline(&self) -> Option<SimTime>;

    /// Fires expired timers.
    fn on_deadline(&mut self, now: SimTime);

    /// Earliest *give-up* deadline — a timer that, when fired, only
    /// abandons the connection (handshake or idle timeout) rather than
    /// making forward progress. [`Duplex::run`] quiesces instead of
    /// chasing these; [`Duplex::run_to_close`] fires them too.
    fn abandon_deadline(&self) -> Option<SimTime> {
        None
    }
}

/// A deterministic, fixed-latency pipe between endpoints `A` and `B`.
///
/// Loss is scripted: `drop_a_to_b` / `drop_b_to_a` hold indices (per
/// direction, counted from 0) of wire items the pipe swallows. Scripted
/// loss keeps failure tests exact — "drop the 5th packet" — instead of
/// probabilistic.
#[derive(Debug)]
pub struct Duplex<A: Driveable, B: Driveable<Wire = A::Wire>> {
    /// Endpoint A (conventionally the client).
    pub a: A,
    /// Endpoint B (conventionally the server).
    pub b: B,
    latency: SimDuration,
    now: SimTime,
    queue: EventQueue<(bool, A::Wire)>, // (towards_a, item)
    sent_a: u64,
    sent_b: u64,
    drop_a_to_b: Vec<u64>,
    drop_b_to_a: Vec<u64>,
}

impl<A: Driveable, B: Driveable<Wire = A::Wire>> Duplex<A, B> {
    /// Creates a loss-free pipe with the given one-way latency.
    pub fn new(a: A, b: B, latency: SimDuration) -> Self {
        Duplex {
            a,
            b,
            latency,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            sent_a: 0,
            sent_b: 0,
            drop_a_to_b: Vec::new(),
            drop_b_to_a: Vec::new(),
        }
    }

    /// Schedules the A→B items with these indices to be dropped.
    pub fn drop_a_to_b(mut self, indices: Vec<u64>) -> Self {
        self.drop_a_to_b = indices;
        self
    }

    /// Schedules the B→A items with these indices to be dropped.
    pub fn drop_b_to_a(mut self, indices: Vec<u64>) -> Self {
        self.drop_b_to_a = indices;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn pump(&mut self) {
        loop {
            let mut progressed = false;
            while let Some(item) = self.a.poll_wire(self.now) {
                progressed = true;
                let idx = self.sent_a;
                self.sent_a += 1;
                if !self.drop_a_to_b.contains(&idx) {
                    self.queue.schedule(self.now + self.latency, (false, item));
                }
            }
            while let Some(item) = self.b.poll_wire(self.now) {
                progressed = true;
                let idx = self.sent_b;
                self.sent_b += 1;
                if !self.drop_b_to_a.contains(&idx) {
                    self.queue.schedule(self.now + self.latency, (true, item));
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Runs until both endpoints quiesce: no queued items, no transmits,
    /// and no timers other than give-up deadlines (handshake/idle
    /// abandonment — see [`Driveable::abandon_deadline`]). Stopping short
    /// of those keeps transfer tests exact while connections still carry
    /// their RFC 9000-style idle timers; use [`Duplex::run_to_close`] to
    /// drive the pair all the way through the give-up timers.
    ///
    /// # Panics
    ///
    /// Panics when the pair fails to quiesce within `max_steps` events.
    pub fn run(&mut self, max_steps: u64) {
        self.drive(max_steps, false);
    }

    /// Runs until both endpoints are fully inert, firing give-up timers
    /// (handshake/idle abandonment) too — the pair ends closed.
    ///
    /// # Panics
    ///
    /// Panics when the pair fails to quiesce within `max_steps` events.
    pub fn run_to_close(&mut self, max_steps: u64) {
        self.drive(max_steps, true);
    }

    fn drive(&mut self, max_steps: u64, chase_abandon: bool) {
        self.pump();
        for _ in 0..max_steps {
            if !chase_abandon
                && self.queue.peek_time().is_none()
                && self.a.deadline() == self.a.abandon_deadline()
                && self.b.deadline() == self.b.abandon_deadline()
            {
                return;
            }
            let next = [self.queue.peek_time(), self.a.deadline(), self.b.deadline()]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else {
                return;
            };
            self.now = next;
            if self.queue.peek_time() == Some(next) {
                let (_, (towards_a, item)) = self.queue.pop().expect("peeked item");
                if towards_a {
                    self.a.on_wire(item, self.now);
                } else {
                    self.b.on_wire(item, self.now);
                }
            } else if self.a.deadline() == Some(next) {
                self.a.on_deadline(self.now);
            } else {
                self.b.on_deadline(self.now);
            }
            self.pump();
        }
        panic!("duplex did not quiesce within {max_steps} steps");
    }
}

impl Driveable for crate::tcp::TcpConnection {
    type Wire = crate::tcp::TcpSegment;

    fn on_wire(&mut self, wire: Self::Wire, now: SimTime) {
        self.on_segment(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<Self::Wire> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.close_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn_id::{ConnId, MsgTag};
    use crate::tcp::{TcpConfig, TcpConnection, TcpEvent};
    use h3cdn_netsim::NodeId;

    fn pair() -> (TcpConnection, TcpConnection) {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let cfg = TcpConfig {
            initial_rtt: SimDuration::from_millis(30),
            ..TcpConfig::default()
        };
        (
            TcpConnection::client(id, cfg.clone()),
            TcpConnection::server(id, cfg),
        )
    }

    #[test]
    fn duplex_drives_tcp_to_completion() {
        let (mut client, server) = pair();
        client.connect(SimTime::ZERO);
        client.write_message(10_000, MsgTag(5));
        let mut pipe = Duplex::new(client, server, SimDuration::from_millis(15));
        pipe.run(100_000);
        let mut delivered = false;
        while let Some(ev) = pipe.b.poll_event() {
            if matches!(ev, TcpEvent::Delivered { tag: MsgTag(5), .. }) {
                delivered = true;
            }
        }
        assert!(delivered);
    }

    #[test]
    fn scripted_loss_applies_per_direction() {
        let (mut client, server) = pair();
        client.connect(SimTime::ZERO);
        client.write_message(5_000, MsgTag(1));
        // Drop the client's first data segment (index 1; index 0 is SYN).
        let mut pipe =
            Duplex::new(client, server, SimDuration::from_millis(15)).drop_a_to_b(vec![1]);
        pipe.run(100_000);
        let mut delivered = false;
        while let Some(ev) = pipe.b.poll_event() {
            if matches!(ev, TcpEvent::Delivered { .. }) {
                delivered = true;
            }
        }
        assert!(delivered, "retransmission must recover scripted loss");
        assert!(pipe.a.retransmit_count() > 0);
    }
}
