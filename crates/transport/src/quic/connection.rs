//! The QUIC connection state machine: handshake, streams, ACK handling,
//! loss detection, PTO, and connection-level flow control.

use std::collections::{BTreeMap, VecDeque};

use h3cdn_sim_core::{SimDuration, SimTime};

use crate::cc::{CcAlgorithm, CongestionController};
use crate::conn_id::{ConnId, MsgTag};
use crate::quic::streams::{RecvStream, SendStream};
use crate::quic::{Frame, QuicPacket, CRYPTO_STREAM, MAX_PAYLOAD};
use crate::rtt::RttEstimator;
use crate::tls::Ticket;
use crate::CloseReason;

/// Configuration for one QUIC connection.
#[derive(Debug, Clone)]
pub struct QuicConfig {
    /// RTT estimate before the first sample.
    pub initial_rtt: SimDuration,
    /// Congestion-control algorithm.
    pub cc: CcAlgorithm,
    /// Maximum delay before a solicited ACK is sent.
    pub max_ack_delay: SimDuration,
    /// ACK after this many ack-eliciting packets.
    pub ack_eliciting_threshold: u32,
    /// Connection-level flow-control window.
    pub max_data: u64,
    /// Per-stream flow-control window.
    pub max_stream_data: u64,
    /// Give up on an incomplete handshake after this long. Without it a
    /// blackholed handshake retries PTO probes forever (capped backoff,
    /// no abort) and only the engine's event budget stops the run.
    pub handshake_timeout: SimDuration,
    /// Close after receiving nothing for this long (RFC 9000 §10.1). Our
    /// own retransmissions do not extend the deadline: only the first
    /// ack-eliciting send since the last receipt re-anchors it.
    pub idle_timeout: SimDuration,
    /// Server side: whether 0-RTT early data is accepted. When `false`
    /// the server still resumes the session but answers with a rejection,
    /// and the client downgrades to 1-RTT instead of failing.
    pub accept_early_data: bool,
}

impl Default for QuicConfig {
    fn default() -> Self {
        QuicConfig {
            initial_rtt: SimDuration::from_millis(100),
            cc: CcAlgorithm::default(),
            max_ack_delay: SimDuration::from_millis(25),
            ack_eliciting_threshold: 2,
            max_data: 16 << 20,       // 16 MiB
            max_stream_data: 4 << 20, // 4 MiB
            handshake_timeout: SimDuration::from_secs(10),
            idle_timeout: SimDuration::from_secs(30),
            accept_early_data: true,
        }
    }
}

/// Events surfaced by [`QuicConnection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuicEvent {
    /// The combined transport + TLS handshake finished on this side.
    HandshakeComplete {
        /// Completion time.
        at: SimTime,
    },
    /// A peer-initiated stream carried its first frame.
    StreamOpened {
        /// Stream id.
        stream: u64,
        /// Arrival time.
        at: SimTime,
    },
    /// An application message was fully delivered in order on its stream.
    Delivered {
        /// Stream id.
        stream: u64,
        /// Application tag.
        tag: MsgTag,
        /// Delivery time.
        at: SimTime,
    },
    /// The server issued a session ticket (client side only).
    TicketIssued {
        /// Receipt time.
        at: SimTime,
    },
    /// The server rejected the 0-RTT early data this client sent; the
    /// connection transparently downgraded to 1-RTT (client side only).
    ZeroRttRejected {
        /// Rejection receipt time.
        at: SimTime,
    },
    /// The connection closed itself and will emit nothing further.
    Closed {
        /// Close time.
        at: SimTime,
        /// Why it closed.
        reason: CloseReason,
    },
}

// Handshake messages are tagged messages on the crypto stream.
const Q_TAG_BASE: u64 = 1 << 62;
const TAG_CI_FULL: MsgTag = MsgTag(Q_TAG_BASE + 101);
const TAG_CI_PSK: MsgTag = MsgTag(Q_TAG_BASE + 102);
const TAG_SF_FULL: MsgTag = MsgTag(Q_TAG_BASE + 103);
const TAG_SF_PSK: MsgTag = MsgTag(Q_TAG_BASE + 104);
const TAG_CFIN: MsgTag = MsgTag(Q_TAG_BASE + 105);
const TAG_NST: MsgTag = MsgTag(Q_TAG_BASE + 106);
/// Server flight under PSK with the 0-RTT offer *rejected* (same wire
/// size as the accepting flight — the difference is semantic).
const TAG_SF_PSK_REJ: MsgTag = MsgTag(Q_TAG_BASE + 107);

/// Handshake message sizes in bytes.
mod hs_sizes {
    /// Full ClientInitial (padded).
    pub(crate) const CI_FULL: u64 = 1150;
    /// PSK ClientInitial, leaving room for 0-RTT data in the datagram.
    pub(crate) const CI_PSK: u64 = 650;
    /// Server flight with certificate chain.
    pub(crate) const SF_FULL: u64 = 4500;
    /// Server flight under PSK.
    pub(crate) const SF_PSK: u64 = 400;
    /// Client Finished.
    pub(crate) const CFIN: u64 = 80;
    /// NewSessionTicket.
    pub(crate) const NST: u64 = 230;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HsState {
    Idle,
    AwaitServerFlight,
    AwaitClientFinish,
    Ready,
}

#[derive(Debug, Clone)]
enum RtxInfo {
    Stream { id: u64, offset: u64, len: u64 },
    MaxData,
    MaxStreamData { id: u64 },
}

#[derive(Debug)]
struct SentPacket {
    size: u64,
    sent_at: SimTime,
    frames: Vec<RtxInfo>,
}

/// Packet-number reordering threshold for loss declaration (RFC 9002).
const PACKET_THRESHOLD: u64 = 3;
/// Maximum ACK ranges carried per ACK frame.
const MAX_ACK_RANGES: usize = 32;
/// Cap on recycled buffers kept per connection (frame and rtx pools).
const POOL_CAP: usize = 32;

/// A sans-IO QUIC connection endpoint (one side).
#[derive(Debug)]
pub struct QuicConnection {
    id: ConnId,
    is_client: bool,
    config: QuicConfig,

    hs_state: HsState,
    resumed: bool,
    early_data_enabled: bool,
    used_early_data: bool,
    ready_to_send: bool,
    handshake_complete_at: Option<SimTime>,
    send_ready_at: Option<SimTime>,
    connect_started_at: Option<SimTime>,
    nst_sent: bool,

    /// Set once the connection closed itself; afterwards it is inert.
    closed: Option<(SimTime, CloseReason)>,
    /// First packet receipt (server side: starts the handshake clock).
    first_activity: Option<SimTime>,
    /// RFC 9000 §10.1 idle anchor: last receipt, or the first
    /// ack-eliciting send since the last receipt.
    idle_anchor: Option<SimTime>,
    /// Whether an ack-eliciting packet left since the last receipt.
    sent_since_rx: bool,
    /// Server with `accept_early_data = false`: application events fired
    /// by 0-RTT data, held back and re-stamped to the handshake
    /// completion instant — the 1-RTT penalty of a rejected 0-RTT offer.
    deferred_events: Vec<QuicEvent>,

    cc: Box<dyn CongestionController>,
    rtt: RttEstimator,
    next_pn: u64,
    sent: BTreeMap<u64, SentPacket>,
    bytes_in_flight: u64,
    largest_acked: Option<u64>,
    loss_time: Option<SimTime>,
    pto_count: u32,
    /// Start of the current congestion-recovery period: losses of packets
    /// sent before this instant belong to the same congestion event
    /// (RFC 9002 §7.3.1).
    recovery_start: Option<SimTime>,
    /// Packets' worth of congestion-window bypass granted for
    /// retransmitting lost data — the QUIC analogue of TCP's
    /// fast-retransmit exemption, so repairs are not starved by the very
    /// window reduction the loss caused.
    rtx_credit: u32,

    send_streams: BTreeMap<u64, SendStream>,
    recv_streams: BTreeMap<u64, RecvStream>,
    /// Scheduling class per stream (lower first); absent means default.
    stream_priorities: BTreeMap<u64, u8>,
    next_stream_id: u64,
    rr_cursor: u64,

    recv_ranges: Vec<(u64, u64)>,
    ack_eliciting_since_ack: u32,
    ack_timer: Option<SimTime>,
    ack_pending: bool,

    peer_max_data: u64,
    data_sent: u64,
    local_max_data: u64,
    data_received: u64,
    need_max_data: bool,
    /// Per-stream send limits granted by the peer.
    peer_stream_limits: BTreeMap<u64, u64>,
    /// Per-stream receive limits we granted.
    local_stream_limits: BTreeMap<u64, u64>,
    /// Streams whose `MAX_STREAM_DATA` update must be sent.
    need_max_stream_data: std::collections::BTreeSet<u64>,

    events: VecDeque<QuicEvent>,
    retransmit_count: u64,

    /// Recycled `QuicPacket::frames` buffers: consumed incoming packets
    /// donate theirs, so steady-state sends allocate nothing.
    frame_pool: Vec<Vec<Frame>>,
    /// Recycled retransmission-info buffers (freed when a tracked packet
    /// is acked, declared lost, or probed).
    rtx_pool: Vec<Vec<RtxInfo>>,
    /// Scratch for the round-robin stream ids in `poll_transmit`.
    rr_scratch: Vec<u64>,
    /// Scratch for acked / lost packet numbers.
    pn_scratch: Vec<u64>,
}

impl QuicConnection {
    /// Creates the client side. `ticket` enables PSK resumption;
    /// `early_data` additionally sends queued stream data at 0-RTT.
    pub fn client(
        id: ConnId,
        config: QuicConfig,
        ticket: Option<Ticket>,
        early_data: bool,
    ) -> Self {
        let resumed = ticket.is_some();
        Self::new(id, true, config, resumed, early_data && resumed)
    }

    /// Creates the server side.
    pub fn server(id: ConnId, config: QuicConfig) -> Self {
        Self::new(id, false, config, false, false)
    }

    fn new(
        id: ConnId,
        is_client: bool,
        config: QuicConfig,
        resumed: bool,
        early_data: bool,
    ) -> Self {
        let cc = config.cc.build();
        let rtt = RttEstimator::new(config.initial_rtt);
        let max_data = config.max_data;
        QuicConnection {
            id,
            is_client,
            config,
            hs_state: HsState::Idle,
            resumed,
            early_data_enabled: early_data,
            used_early_data: false,
            ready_to_send: false,
            handshake_complete_at: None,
            send_ready_at: None,
            connect_started_at: None,
            nst_sent: false,
            closed: None,
            first_activity: None,
            idle_anchor: None,
            sent_since_rx: false,
            deferred_events: Vec::new(),
            cc,
            rtt,
            next_pn: 0,
            sent: BTreeMap::new(),
            bytes_in_flight: 0,
            largest_acked: None,
            loss_time: None,
            pto_count: 0,
            recovery_start: None,
            rtx_credit: 0,
            send_streams: BTreeMap::new(),
            recv_streams: BTreeMap::new(),
            stream_priorities: BTreeMap::new(),
            next_stream_id: 0,
            rr_cursor: 0,
            recv_ranges: Vec::new(),
            ack_eliciting_since_ack: 0,
            ack_timer: None,
            ack_pending: false,
            peer_max_data: max_data,
            data_sent: 0,
            local_max_data: max_data,
            data_received: 0,
            need_max_data: false,
            peer_stream_limits: BTreeMap::new(),
            local_stream_limits: BTreeMap::new(),
            need_max_stream_data: std::collections::BTreeSet::new(),
            events: VecDeque::new(),
            retransmit_count: 0,
            frame_pool: Vec::new(),
            rtx_pool: Vec::new(),
            rr_scratch: Vec::new(),
            pn_scratch: Vec::new(),
        }
    }

    /// The connection id.
    pub fn conn_id(&self) -> ConnId {
        self.id
    }

    /// Whether this endpoint is the client side.
    pub fn is_client(&self) -> bool {
        self.is_client
    }

    /// Whether the handshake is complete on this side.
    pub fn is_handshake_complete(&self) -> bool {
        self.handshake_complete_at.is_some()
    }

    /// When the handshake completed, if it has.
    pub fn handshake_complete_at(&self) -> Option<SimTime> {
        self.handshake_complete_at
    }

    /// When stream data could first leave this side: the `connect` call
    /// itself under 0-RTT, otherwise handshake completion. This is the
    /// HAR `connect` endpoint.
    pub fn send_ready_at(&self) -> Option<SimTime> {
        self.send_ready_at
    }

    /// When `connect` was called (client side).
    pub fn connect_started_at(&self) -> Option<SimTime> {
        self.connect_started_at
    }

    /// Whether this connection resumed with a PSK.
    pub fn was_resumed(&self) -> bool {
        self.resumed
    }

    /// Whether stream data was sent at 0-RTT.
    pub fn used_early_data(&self) -> bool {
        self.used_early_data
    }

    /// Whether the connection closed itself (handshake or idle timeout).
    pub fn is_closed(&self) -> bool {
        self.closed.is_some()
    }

    /// Why the connection closed, if it did.
    pub fn close_reason(&self) -> Option<CloseReason> {
        self.closed.map(|(_, reason)| reason)
    }

    /// Packets declared lost and re-queued so far.
    pub fn retransmit_count(&self) -> u64 {
        self.retransmit_count
    }

    /// Bytes queued across all send streams (new plus retransmission),
    /// for diagnostics and idle detection.
    pub fn pending_send_bytes(&self) -> u64 {
        self.send_streams
            .values()
            .map(super::streams::SendStream::pending_bytes)
            .sum()
    }

    /// Highest first-transmission offset of `stream` (diagnostics; also
    /// the reference point for its peer flow-control limit).
    pub fn stream_sent_watermark(&self, stream: u64) -> u64 {
        self.send_streams
            .get(&stream)
            .map_or(0, super::streams::SendStream::sent_watermark)
    }

    /// The RTT estimator (diagnostics).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Starts the handshake (client side).
    ///
    /// # Panics
    ///
    /// Panics if called on a server endpoint or twice.
    pub fn connect(&mut self, now: SimTime) {
        assert!(self.is_client, "connect() is client-side only");
        assert_eq!(self.hs_state, HsState::Idle, "connect() called twice");
        self.connect_started_at = Some(now);
        let (tag, len) = if self.resumed {
            (TAG_CI_PSK, hs_sizes::CI_PSK)
        } else {
            (TAG_CI_FULL, hs_sizes::CI_FULL)
        };
        self.crypto_write(len, tag);
        self.hs_state = HsState::AwaitServerFlight;
        if self.early_data_enabled {
            self.ready_to_send = true;
            self.send_ready_at = Some(now);
            self.used_early_data = self
                .send_streams
                .iter()
                .any(|(&id, s)| id != CRYPTO_STREAM && s.has_pending());
        }
    }

    /// Opens a new client-initiated bidirectional stream.
    pub fn open_stream(&mut self) -> u64 {
        let id = self.next_stream_id;
        self.next_stream_id += 4;
        self.send_streams.entry(id).or_default();
        id
    }

    /// Sets the scheduling class of `stream` (lower values are sent
    /// first; unset streams default to class 1). The wire analogue is
    /// HTTP/3's PRIORITY_UPDATE.
    pub fn set_stream_priority(&mut self, stream: u64, priority: u8) {
        self.stream_priorities.insert(stream, priority);
    }

    /// Writes an application message on `stream`.
    pub fn write_stream(&mut self, stream: u64, len: u64, tag: MsgTag) {
        debug_assert_ne!(stream, CRYPTO_STREAM, "crypto stream is internal");
        self.send_streams.entry(stream).or_default().write(len, tag);
        if self.is_client && self.early_data_enabled && self.hs_state == HsState::AwaitServerFlight
        {
            self.used_early_data = true;
        }
    }

    /// Pops the next pending event.
    pub fn poll_event(&mut self) -> Option<QuicEvent> {
        self.events.pop_front()
    }

    /// Next timer deadline (loss timer, PTO, delayed-ACK timer,
    /// handshake deadline, or idle deadline).
    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.closed.is_some() {
            return None;
        }
        [
            self.loss_time,
            self.pto_deadline(),
            self.ack_timer,
            self.handshake_deadline(),
            self.idle_deadline(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Fires expired timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        if self.closed.is_some() {
            return;
        }
        if self.handshake_deadline().is_some_and(|d| d <= now) {
            self.close(now, CloseReason::HandshakeTimeout);
            return;
        }
        if self.idle_deadline().is_some_and(|d| d <= now) {
            self.close(now, CloseReason::IdleTimeout);
            return;
        }
        if let Some(t) = self.ack_timer {
            if t <= now {
                self.ack_timer = None;
                self.ack_pending = true;
            }
        }
        if let Some(t) = self.loss_time {
            if t <= now {
                self.detect_lost(now);
            }
        }
        if let Some(t) = self.pto_deadline() {
            if t <= now {
                self.on_pto(now);
            }
        }
    }

    /// Feeds one received packet.
    pub fn on_packet(&mut self, pkt: QuicPacket, now: SimTime) {
        debug_assert_eq!(pkt.conn, self.id, "packet routed to wrong connection");
        debug_assert_ne!(
            pkt.from_client, self.is_client,
            "packet reflected to its sender"
        );
        if self.closed.is_some() {
            return; // silently dropped, like an undecryptable packet
        }
        self.first_activity.get_or_insert(now);
        self.idle_anchor = Some(now);
        self.sent_since_rx = false;
        let gap = self.record_received(pkt.pn);
        if pkt.is_ack_eliciting() {
            self.ack_eliciting_since_ack += 1;
            // RFC 9000 §13.2.1: acknowledge immediately when the packet
            // creates or follows a gap — that is the peer's loss signal.
            if gap
                || self.ack_eliciting_since_ack >= self.config.ack_eliciting_threshold
                || !self.is_handshake_complete()
            {
                self.ack_pending = true;
                self.ack_timer = None;
            } else if self.ack_timer.is_none() {
                self.ack_timer = Some(now + self.config.max_ack_delay);
            }
        }
        let mut frames = pkt.frames;
        for frame in frames.drain(..) {
            match frame {
                Frame::Stream {
                    id,
                    offset,
                    len,
                    markers,
                } => self.on_stream_frame(id, offset, len, &markers, now),
                Frame::Ack { ranges } => self.on_ack(&ranges, now),
                Frame::MaxData { max } => {
                    self.peer_max_data = self.peer_max_data.max(max);
                }
                Frame::MaxStreamData { id, max } => {
                    let limit = self
                        .peer_stream_limits
                        .entry(id)
                        .or_insert(self.config.max_stream_data);
                    *limit = (*limit).max(max);
                }
                Frame::ConnectionRefused => {
                    // The server's admission controller shed this
                    // connection; nothing after the refusal matters.
                    self.close(now, CloseReason::Refused);
                    break;
                }
            }
        }
        // The consumed packet donates its frame buffer to the send path.
        if self.frame_pool.len() < POOL_CAP {
            self.frame_pool.push(frames);
        }
    }

    /// Produces the next packet to send, or `None` when idle. Call
    /// repeatedly until `None`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<QuicPacket> {
        if self.closed.is_some() {
            return None;
        }
        let mut frames: Vec<Frame> = self.frame_pool.pop().unwrap_or_default();
        let mut budget = MAX_PAYLOAD;
        let mut rtx_info: Vec<RtxInfo> = self.rtx_pool.pop().unwrap_or_default();
        let mut stream_payload = 0u64;

        if self.ack_pending {
            let ranges = self.ack_ranges_descending();
            if !ranges.is_empty() {
                let f = Frame::Ack { ranges };
                budget = budget.saturating_sub(f.size());
                frames.push(f);
            }
            self.ack_pending = false;
            self.ack_eliciting_since_ack = 0;
            self.ack_timer = None;
        }
        if self.need_max_data && budget >= 9 {
            self.need_max_data = false;
            frames.push(Frame::MaxData {
                max: self.local_max_data,
            });
            budget -= 9;
            rtx_info.push(RtxInfo::MaxData);
        }
        while budget >= 13 {
            let Some(&id) = self.need_max_stream_data.iter().next() else {
                break;
            };
            self.need_max_stream_data.remove(&id);
            let max = self
                .local_stream_limits
                .get(&id)
                .copied()
                .unwrap_or(self.config.max_stream_data);
            frames.push(Frame::MaxStreamData { id, max });
            budget -= 13;
            rtx_info.push(RtxInfo::MaxStreamData { id });
        }

        // Crypto data is exempt from app-readiness and flow control but
        // still paced by the congestion window. Retransmission credit
        // bypasses the (just-halved) window so repairs go out at once.
        let bypass = self.rtx_credit > 0;
        let cwnd_room = if bypass {
            MAX_PAYLOAD * 2
        } else {
            self.cc.window().saturating_sub(self.bytes_in_flight)
        };
        let mut data_room = cwnd_room;
        if let Some(crypto) = self.send_streams.get_mut(&CRYPTO_STREAM) {
            while budget > 12 && data_room > 12 {
                let Some((offset, len, markers)) =
                    crypto.take((budget - 12).min(data_room.saturating_sub(12)))
                else {
                    break;
                };
                budget -= 12 + len;
                data_room = data_room.saturating_sub(12 + len);
                rtx_info.push(RtxInfo::Stream {
                    id: CRYPTO_STREAM,
                    offset,
                    len,
                });
                frames.push(Frame::Stream {
                    id: CRYPTO_STREAM,
                    offset,
                    len,
                    markers,
                });
            }
        }

        if self.ready_to_send {
            let fc_room = self.peer_max_data.saturating_sub(self.data_sent);
            let mut app_room = data_room.min(fc_room);
            // Strict priority across classes, round-robin within the
            // top class. First pass: the top (minimum) class among
            // streams with pending data.
            let mut top: Option<u8> = None;
            for (&id, s) in &self.send_streams {
                if id != CRYPTO_STREAM && s.has_pending() {
                    let prio = self.stream_priorities.get(&id).copied().unwrap_or(1);
                    top = Some(top.map_or(prio, |t| t.min(prio)));
                }
            }
            // Second pass: the top class's stream ids (ascending, the
            // map's order) and their total backlog, into a reused buffer.
            let mut ids = std::mem::take(&mut self.rr_scratch);
            ids.clear();
            let mut total_pending = 0u64;
            if let Some(top) = top {
                for (&id, s) in &self.send_streams {
                    if id != CRYPTO_STREAM
                        && s.has_pending()
                        && self.stream_priorities.get(&id).copied().unwrap_or(1) == top
                    {
                        ids.push(id);
                        total_pending += s.pending_bytes();
                    }
                }
            }
            // Anti-amplification of tiny packets (the TCP world's
            // silly-window avoidance): when congestion-limited, wait for
            // ACKs instead of emitting sliver packets — unless what is
            // left genuinely is a sliver.
            if !bypass && app_room < total_pending.min(MAX_PAYLOAD) {
                app_room = 0;
            }
            if !ids.is_empty() {
                // Round-robin fairness across streams, one frame each per
                // revolution, so concurrent responses interleave the way
                // multiplexed H2/H3 transfers do.
                let start = ids.iter().position(|&id| id > self.rr_cursor).unwrap_or(0);
                let mut i = start;
                let mut visited = 0;
                while visited < ids.len() && budget > 12 && app_room > 12 {
                    let Some(&id) = ids.get(i) else { break };
                    let flow_limit = self
                        .peer_stream_limits
                        .get(&id)
                        .copied()
                        .unwrap_or(self.config.max_stream_data);
                    let Some(stream) = self.send_streams.get_mut(&id) else {
                        // A listed id without a stream entry cannot occur
                        // (rr_scratch is rebuilt from send_streams' keys);
                        // skip it rather than panic.
                        i = (i + 1) % ids.len().max(1);
                        visited += 1;
                        continue;
                    };
                    if let Some((offset, len, markers)) =
                        stream.take_limited((budget - 12).min(app_room - 12), flow_limit)
                    {
                        budget -= 12 + len;
                        app_room -= (12 + len).min(app_room);
                        stream_payload += len;
                        self.rr_cursor = id;
                        rtx_info.push(RtxInfo::Stream { id, offset, len });
                        frames.push(Frame::Stream {
                            id,
                            offset,
                            len,
                            markers,
                        });
                    }
                    i = (i + 1) % ids.len();
                    visited += 1;
                }
            }
            self.rr_scratch = ids;
        }

        if frames.is_empty() {
            // Keep both (still empty) buffers for the next call.
            self.frame_pool.push(frames);
            self.rtx_pool.push(rtx_info);
            return None;
        }
        let pn = self.next_pn;
        self.next_pn += 1;
        let pkt = QuicPacket {
            conn: self.id,
            from_client: self.is_client,
            pn,
            frames,
        };
        if pkt.is_ack_eliciting() {
            // RFC 9000 §10.1: only the *first* ack-eliciting send since
            // the last receipt re-anchors the idle deadline — a PTO loop
            // into a blackhole cannot postpone it indefinitely.
            if !self.sent_since_rx {
                self.sent_since_rx = true;
                self.idle_anchor = Some(now);
            }
            let size = pkt.wire_bytes();
            self.sent.insert(
                pn,
                SentPacket {
                    size,
                    sent_at: now,
                    frames: rtx_info,
                },
            );
            self.bytes_in_flight += size;
            self.cc.on_packet_sent(size, now);
            self.data_sent += stream_payload;
            if bypass {
                self.rtx_credit -= 1;
            }
        } else {
            self.reclaim_rtx(rtx_info);
        }
        Some(pkt)
    }

    /// Earliest give-up deadline (handshake or idle timeout) — the timer
    /// that closes the connection rather than advancing a transfer. Test
    /// harnesses use this to quiesce without chasing the idle close.
    pub fn close_deadline(&self) -> Option<SimTime> {
        if self.closed.is_some() {
            return None;
        }
        [self.handshake_deadline(), self.idle_deadline()]
            .into_iter()
            .flatten()
            .min()
    }

    // ---- internals ----

    /// Deadline for an incomplete handshake: client-side from `connect`,
    /// server-side from the first received packet.
    fn handshake_deadline(&self) -> Option<SimTime> {
        if self.handshake_complete_at.is_some() {
            return None;
        }
        let start = self.connect_started_at.or(self.first_activity)?;
        Some(start + self.config.handshake_timeout)
    }

    fn idle_deadline(&self) -> Option<SimTime> {
        Some(self.idle_anchor? + self.config.idle_timeout)
    }

    /// Closes the connection silently: every timer is disarmed and no
    /// further packet leaves, so a close has no wire footprint (a CLOSE
    /// frame into a blackhole would be lost anyway).
    fn close(&mut self, now: SimTime, reason: CloseReason) {
        if self.closed.is_some() {
            return;
        }
        self.closed = Some((now, reason));
        self.loss_time = None;
        self.ack_timer = None;
        self.ack_pending = false;
        self.sent.clear();
        self.bytes_in_flight = 0;
        self.need_max_data = false;
        self.need_max_stream_data.clear();
        self.events.push_back(QuicEvent::Closed { at: now, reason });
    }

    fn crypto_write(&mut self, len: u64, tag: MsgTag) {
        self.send_streams
            .entry(CRYPTO_STREAM)
            .or_default()
            .write(len, tag);
    }

    fn on_stream_frame(
        &mut self,
        id: u64,
        offset: u64,
        len: u64,
        markers: &[(u64, MsgTag)],
        now: SimTime,
    ) {
        let is_new = !self.recv_streams.contains_key(&id);
        if is_new && id != CRYPTO_STREAM {
            self.push_app_event(QuicEvent::StreamOpened {
                stream: id,
                at: now,
            });
        }
        let stream = self.recv_streams.entry(id).or_default();
        let before = stream.delivered_bytes();
        let fired = stream.on_frame(offset, len, markers, now);
        let advanced = stream.delivered_bytes() - before;
        if id != CRYPTO_STREAM {
            self.data_received += advanced;
            if self.local_max_data - self.data_received < self.config.max_data / 2 {
                self.local_max_data = self.data_received + self.config.max_data;
                self.need_max_data = true;
            }
            // `before + advanced` IS the stream's delivered count — no
            // second map lookup needed.
            let delivered = before + advanced;
            let limit = self
                .local_stream_limits
                .entry(id)
                .or_insert(self.config.max_stream_data);
            if *limit - delivered < self.config.max_stream_data / 2 {
                *limit = delivered + self.config.max_stream_data;
                self.need_max_stream_data.insert(id);
            }
        }
        for (tag, at) in fired {
            if tag.0 >= Q_TAG_BASE {
                self.on_crypto_message(tag, at);
            } else {
                self.push_app_event(QuicEvent::Delivered {
                    stream: id,
                    tag,
                    at,
                });
            }
        }
    }

    /// Queues an application-level event, or defers it when this is a
    /// server that rejects 0-RTT and the handshake has not completed:
    /// rejected early data is undecryptable in reality, so its effects
    /// must not surface before the 1-RTT keys exist. Deferred events are
    /// re-stamped and released by [`Self::complete_handshake`].
    fn push_app_event(&mut self, ev: QuicEvent) {
        if !self.is_client && !self.config.accept_early_data && self.handshake_complete_at.is_none()
        {
            self.deferred_events.push(ev);
        } else {
            self.events.push_back(ev);
        }
    }

    fn on_crypto_message(&mut self, tag: MsgTag, at: SimTime) {
        match tag {
            TAG_CI_FULL if !self.is_client => {
                self.crypto_write(hs_sizes::SF_FULL, TAG_SF_FULL);
                self.ready_to_send = true;
                self.hs_state = HsState::AwaitClientFinish;
            }
            TAG_CI_PSK if !self.is_client => {
                self.resumed = true;
                let tag = if self.config.accept_early_data {
                    TAG_SF_PSK
                } else {
                    TAG_SF_PSK_REJ
                };
                self.crypto_write(hs_sizes::SF_PSK, tag);
                self.ready_to_send = true;
                self.hs_state = HsState::AwaitClientFinish;
            }
            TAG_SF_FULL | TAG_SF_PSK if self.is_client => {
                self.crypto_write(hs_sizes::CFIN, TAG_CFIN);
                self.complete_handshake(at);
            }
            TAG_SF_PSK_REJ if self.is_client => {
                // 0-RTT rejected: downgrade to 1-RTT instead of erroring.
                // Anything sent early counts as never sent; send-readiness
                // re-stamps to handshake completion (the HAR `connect`
                // endpoint moves a full RTT later).
                if self.used_early_data {
                    self.events.push_back(QuicEvent::ZeroRttRejected { at });
                }
                self.used_early_data = false;
                self.send_ready_at = None;
                self.crypto_write(hs_sizes::CFIN, TAG_CFIN);
                self.complete_handshake(at);
            }
            TAG_CFIN if !self.is_client => {
                self.complete_handshake(at);
                if !self.nst_sent {
                    self.nst_sent = true;
                    self.crypto_write(hs_sizes::NST, TAG_NST);
                }
            }
            TAG_NST if self.is_client => {
                self.events.push_back(QuicEvent::TicketIssued { at });
            }
            other => {
                debug_assert!(
                    false,
                    "unexpected crypto message {other} (client={})",
                    self.is_client
                );
            }
        }
    }

    fn complete_handshake(&mut self, at: SimTime) {
        if self.handshake_complete_at.is_none() {
            self.handshake_complete_at = Some(at);
            if self.send_ready_at.is_none() {
                self.send_ready_at = Some(at);
            }
            self.hs_state = HsState::Ready;
            self.ready_to_send = true;
            self.events.push_back(QuicEvent::HandshakeComplete { at });
            // Release events deferred by a rejected 0-RTT offer,
            // re-stamped to now: the data only became readable with the
            // 1-RTT keys.
            for mut ev in std::mem::take(&mut self.deferred_events) {
                match &mut ev {
                    QuicEvent::StreamOpened { at: t, .. } | QuicEvent::Delivered { at: t, .. } => {
                        *t = at;
                    }
                    _ => {}
                }
                self.events.push_back(ev);
            }
        }
    }

    /// Records `pn` as received; returns `true` when the packet arrives
    /// out of order — it opens a new gap, duplicates, or lands while
    /// earlier packets are still missing. RFC 9000 §13.2.1: such packets
    /// are ACKed immediately so the peer learns about losses within one
    /// flight time (the QUIC analogue of TCP's immediate duplicate
    /// ACKs). Handles arbitrary arrival order (jittery paths reorder).
    fn record_received(&mut self, pn: u64) -> bool {
        let largest_before = self.recv_ranges.last().map(|&(_, hi)| hi);
        // Find the first range that could contain or touch pn.
        let mut i = 0;
        while self.recv_ranges.get(i).is_some_and(|&(_, hi)| hi + 1 < pn) {
            i += 1;
        }
        match self.recv_ranges.get(i).copied() {
            None => self.recv_ranges.push((pn, pn)),
            Some((lo, hi)) if pn >= lo && pn <= hi => {
                return true; // duplicate
            }
            Some((_, hi)) if pn == hi + 1 => {
                if let Some(range) = self.recv_ranges.get_mut(i) {
                    range.1 = pn;
                }
                // Merge with the next range if now contiguous.
                if let Some((_, next_hi)) = self
                    .recv_ranges
                    .get(i + 1)
                    .copied()
                    .filter(|&(next_lo, _)| next_lo == pn + 1)
                {
                    self.recv_ranges.remove(i + 1);
                    if let Some(range) = self.recv_ranges.get_mut(i) {
                        range.1 = next_hi;
                    }
                }
            }
            Some((lo, _)) if pn + 1 == lo => {
                if let Some(range) = self.recv_ranges.get_mut(i) {
                    range.0 = pn;
                }
            }
            Some(_) => self.recv_ranges.insert(i, (pn, pn)),
        }
        if self.recv_ranges.len() > 64 {
            self.recv_ranges.remove(0);
        }
        // In order = extends the previous largest contiguously and leaves
        // no holes behind.
        let in_order = largest_before.is_none_or(|l| pn == l + 1) && self.recv_ranges.len() == 1;
        !in_order
    }

    fn ack_ranges_descending(&self) -> Vec<(u64, u64)> {
        self.recv_ranges
            .iter()
            .rev()
            .take(MAX_ACK_RANGES)
            .copied()
            .collect()
    }

    fn on_ack(&mut self, ranges: &[(u64, u64)], now: SimTime) {
        let Some(&largest) = ranges.iter().map(|(_, hi)| hi).max() else {
            return;
        };
        self.largest_acked = Some(self.largest_acked.map_or(largest, |l| l.max(largest)));

        let mut acked = std::mem::take(&mut self.pn_scratch);
        acked.clear();
        acked.extend(
            self.sent
                .keys()
                .copied()
                .filter(|pn| ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(pn))),
        );
        if acked.is_empty() {
            self.pn_scratch = acked;
            // Still re-evaluate time-threshold losses against the (possibly
            // new) largest acked.
            self.detect_lost(now);
            return;
        }
        let mut newly_acked_largest = 0;
        for &pn in &acked {
            // `acked` was collected from `sent`'s own keys; a miss means
            // the entry is already gone, and there is nothing to account.
            let Some(info) = self.sent.remove(&pn) else {
                continue;
            };
            self.bytes_in_flight = self.bytes_in_flight.saturating_sub(info.size);
            self.cc.on_ack(info.size, now);
            if pn >= newly_acked_largest {
                newly_acked_largest = pn;
                if pn == largest {
                    let sample = now - info.sent_at;
                    self.rtt.on_sample(sample);
                    self.cc.on_rtt_sample(sample, now);
                }
            }
            self.reclaim_rtx(info.frames);
        }
        self.pn_scratch = acked;
        self.pto_count = 0;
        self.detect_lost(now);
    }

    fn detect_lost(&mut self, now: SimTime) {
        self.loss_time = None;
        let Some(largest_acked) = self.largest_acked else {
            return;
        };
        let loss_delay = self.rtt.loss_delay();
        let mut lost = std::mem::take(&mut self.pn_scratch);
        lost.clear();
        let mut next_loss_time: Option<SimTime> = None;
        for (&pn, info) in &self.sent {
            if pn >= largest_acked {
                break;
            }
            let by_packets = largest_acked >= pn + PACKET_THRESHOLD;
            let lost_at = info.sent_at + loss_delay;
            if by_packets || lost_at <= now {
                lost.push(pn);
            } else {
                next_loss_time = Some(next_loss_time.map_or(lost_at, |t| t.min(lost_at)));
            }
        }
        self.loss_time = next_loss_time;
        if lost.is_empty() {
            self.pn_scratch = lost;
            return;
        }
        let mut newest_lost_sent = SimTime::ZERO;
        for &pn in &lost {
            // `lost` came from `sent`'s own keys; tolerate a vanished
            // entry the same way `on_ack` does.
            let Some(info) = self.sent.remove(&pn) else {
                continue;
            };
            self.bytes_in_flight = self.bytes_in_flight.saturating_sub(info.size);
            newest_lost_sent = newest_lost_sent.max(info.sent_at);
            self.requeue(info.frames);
            self.retransmit_count += 1;
            self.rtx_credit = self.rtx_credit.saturating_add(1);
        }
        self.pn_scratch = lost;
        // RFC 9002 §7.3.1: one congestion event per recovery period —
        // only losses of packets sent after recovery started count as a
        // new event.
        let new_event = match self.recovery_start {
            Some(start) => newest_lost_sent > start,
            None => true,
        };
        if new_event {
            self.recovery_start = Some(now);
            self.cc.on_congestion_event(now);
        }
    }

    fn on_pto(&mut self, now: SimTime) {
        self.pto_count = (self.pto_count + 1).min(10);
        if self.pto_count >= 3 {
            self.cc.on_timeout(now);
        }
        // Probe by re-sending the oldest unacked packet's frames.
        if let Some((_, info)) = self.sent.pop_first() {
            self.bytes_in_flight = self.bytes_in_flight.saturating_sub(info.size);
            self.requeue(info.frames);
            self.retransmit_count += 1;
            self.rtx_credit = self.rtx_credit.saturating_add(1);
        }
    }

    fn requeue(&mut self, mut frames: Vec<RtxInfo>) {
        for f in frames.drain(..) {
            match f {
                RtxInfo::Stream { id, offset, len } => {
                    self.send_streams
                        .entry(id)
                        .or_default()
                        .requeue(offset, len);
                }
                RtxInfo::MaxData => self.need_max_data = true,
                RtxInfo::MaxStreamData { id } => {
                    self.need_max_stream_data.insert(id);
                }
            }
        }
        self.reclaim_rtx(frames);
    }

    /// Returns a drained retransmission-info buffer to the pool.
    fn reclaim_rtx(&mut self, mut v: Vec<RtxInfo>) {
        if self.rtx_pool.len() < POOL_CAP {
            v.clear();
            self.rtx_pool.push(v);
        }
    }

    fn pto_deadline(&self) -> Option<SimTime> {
        // Packet numbers are assigned in send order and `now` never goes
        // backwards, so the first tracked packet is also the oldest.
        let oldest = self.sent.values().next().map(|p| p.sent_at)?;
        let backoff = 1u64 << self.pto_count.min(10);
        Some(oldest + self.rtt.pto(self.config.max_ack_delay) * backoff)
    }
}

impl crate::duplex::Driveable for QuicConnection {
    type Wire = QuicPacket;

    fn on_wire(&mut self, wire: QuicPacket, now: SimTime) {
        self.on_packet(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<QuicPacket> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.close_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex::Duplex;
    use h3cdn_netsim::NodeId;

    const RTT_MS: u64 = 40;

    fn make_pair(ticket: Option<Ticket>, early: bool) -> Duplex<QuicConnection, QuicConnection> {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let cfg = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..QuicConfig::default()
        };
        let client = QuicConnection::client(id, cfg.clone(), ticket, early);
        let server = QuicConnection::server(id, cfg);
        Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2))
    }

    fn ticket() -> Ticket {
        Ticket {
            domain: 1,
            issued_at: SimTime::ZERO,
            lifetime: SimDuration::from_secs(7200),
        }
    }

    fn drain(c: &mut QuicConnection) -> Vec<QuicEvent> {
        std::iter::from_fn(|| c.poll_event()).collect()
    }

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    fn delivery_time(events: &[QuicEvent], want: MsgTag) -> Option<SimTime> {
        events.iter().find_map(|e| match e {
            QuicEvent::Delivered { tag, at, .. } if *tag == want => Some(*at),
            _ => None,
        })
    }

    #[test]
    fn handshake_completes_in_one_rtt() {
        let mut pipe = make_pair(None, false);
        pipe.a.connect(SimTime::ZERO);
        pipe.run(200_000);
        let ev = drain(&mut pipe.a);
        let at = ev
            .iter()
            .find_map(|e| match e {
                QuicEvent::HandshakeComplete { at } => Some(*at),
                _ => None,
            })
            .expect("handshake");
        assert_eq!(at, ms(RTT_MS), "combined handshake is 1 RTT");
    }

    #[test]
    fn request_reaches_server_at_one_and_a_half_rtt() {
        let mut pipe = make_pair(None, false);
        let stream = pipe.a.open_stream();
        pipe.a.write_stream(stream, 400, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(200_000);
        let sev = drain(&mut pipe.b);
        assert_eq!(
            delivery_time(&sev, MsgTag(1)),
            Some(ms(3 * RTT_MS / 2)),
            "request waits for the 1-RTT handshake then crosses in 0.5 RTT"
        );
    }

    #[test]
    fn zero_rtt_request_reaches_server_in_half_rtt() {
        let mut pipe = make_pair(Some(ticket()), true);
        let stream = pipe.a.open_stream();
        pipe.a.write_stream(stream, 400, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(200_000);
        assert!(pipe.a.used_early_data());
        let sev = drain(&mut pipe.b);
        assert_eq!(
            delivery_time(&sev, MsgTag(1)),
            Some(ms(RTT_MS / 2)),
            "0-RTT data rides with the ClientInitial"
        );
        assert!(pipe.b.was_resumed());
    }

    #[test]
    fn server_sees_stream_opened_and_can_respond() {
        let mut pipe = make_pair(None, false);
        let stream = pipe.a.open_stream();
        pipe.a.write_stream(stream, 400, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(200_000);
        let sev = drain(&mut pipe.b);
        assert!(sev
            .iter()
            .any(|e| matches!(e, QuicEvent::StreamOpened { stream: s, .. } if *s == stream)));
        pipe.b.write_stream(stream, 20_000, MsgTag(2));
        pipe.run(200_000);
        let cev = drain(&mut pipe.a);
        assert!(delivery_time(&cev, MsgTag(2)).is_some());
    }

    #[test]
    fn ticket_issued_to_client() {
        let mut pipe = make_pair(None, false);
        pipe.a.connect(SimTime::ZERO);
        pipe.run(200_000);
        let cev = drain(&mut pipe.a);
        assert_eq!(
            cev.iter()
                .filter(|e| matches!(e, QuicEvent::TicketIssued { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn loss_on_one_stream_does_not_delay_the_other() {
        // Two 5 KB responses on separate streams (well inside the initial
        // congestion window, so a post-loss window cut cannot slow the
        // un-hit stream); drop one mid-transfer server packet. The un-hit
        // stream must finish at the loss-free time — no cross-stream HoL —
        // while the hit stream finishes late.
        let run = |drop: Vec<u64>| {
            let mut pipe = make_pair(None, false).drop_b_to_a(drop);
            let s1 = pipe.a.open_stream();
            let s2 = pipe.a.open_stream();
            pipe.a.write_stream(s1, 100, MsgTag(1));
            pipe.a.write_stream(s2, 100, MsgTag(2));
            pipe.a.connect(SimTime::ZERO);
            pipe.run(400_000);
            pipe.b.write_stream(s1, 5_000, MsgTag(11));
            pipe.b.write_stream(s2, 5_000, MsgTag(12));
            pipe.run(400_000);
            let cev = drain(&mut pipe.a);
            (
                delivery_time(&cev, MsgTag(11)).unwrap(),
                delivery_time(&cev, MsgTag(12)).unwrap(),
                pipe.b.retransmit_count(),
            )
        };
        let (clean_a, clean_b, _) = run(vec![]);
        // Drop a mid-burst data packet from the server (indices 0..4 are
        // the handshake flight; 6 lands inside the response burst).
        let (lossy_a, lossy_b, rtx) = run(vec![6]);
        assert!(rtx > 0, "drop must cause retransmission");
        let clean_min = clean_a.min(clean_b);
        let lossy_min = lossy_a.min(lossy_b);
        let clean_max = clean_a.max(clean_b);
        let lossy_max = lossy_a.max(lossy_b);
        assert_eq!(
            lossy_min, clean_min,
            "the stream the loss missed must be completely unaffected"
        );
        assert!(
            lossy_max > clean_max,
            "the stream the loss hit must be delayed"
        );
    }

    #[test]
    fn blackout_of_server_flight_recovers_via_pto() {
        // Swallow the server's first several packets; the handshake must
        // still complete through probes/retransmission.
        let mut pipe = make_pair(None, false).drop_b_to_a(vec![0, 1, 2, 3]);
        pipe.a.connect(SimTime::ZERO);
        pipe.run(1_000_000);
        assert!(pipe.a.is_handshake_complete(), "handshake recovered");
        assert!(
            pipe.a.handshake_complete_at().unwrap() > ms(3 * RTT_MS),
            "recovery must have cost extra time"
        );
    }

    #[test]
    fn large_transfer_under_scripted_loss_completes() {
        let mut pipe = make_pair(None, false).drop_b_to_a(vec![7, 13, 19, 31]);
        let s = pipe.a.open_stream();
        pipe.a.write_stream(s, 200, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(400_000);
        pipe.b.write_stream(s, 400_000, MsgTag(9));
        pipe.run(2_000_000);
        let cev = drain(&mut pipe.a);
        assert!(delivery_time(&cev, MsgTag(9)).is_some());
        assert!(pipe.b.retransmit_count() >= 4);
    }

    #[test]
    fn stream_flow_control_paces_one_stream_without_stalling_others() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let cfg = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            max_stream_data: 8_000,
            ..QuicConfig::default()
        };
        let client = QuicConnection::client(id, cfg.clone(), None, false);
        let server = QuicConnection::server(id, cfg);
        let mut pipe = Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2));
        let s1 = pipe.a.open_stream();
        let s2 = pipe.a.open_stream();
        pipe.a.write_stream(s1, 100, MsgTag(1));
        pipe.a.write_stream(s2, 100, MsgTag(2));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(400_000);
        // A large response on s1 must round-trip MAX_STREAM_DATA credit;
        // a small response on s2 is unaffected by s1's limit.
        pipe.b.write_stream(s1, 64_000, MsgTag(11));
        pipe.b.write_stream(s2, 4_000, MsgTag(12));
        pipe.run(1_000_000);
        let cev = drain(&mut pipe.a);
        let big = delivery_time(&cev, MsgTag(11)).expect("credited stream completes");
        let small = delivery_time(&cev, MsgTag(12)).expect("small stream completes");
        assert!(
            big > small + SimDuration::from_millis(2 * RTT_MS),
            "64 KB through an 8 KB stream window needs credit round trips: {small} vs {big}"
        );
    }

    #[test]
    fn flow_control_paces_but_does_not_deadlock() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let small = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            max_data: 10_000,
            ..QuicConfig::default()
        };
        let client = QuicConnection::client(id, small.clone(), None, false);
        let server = QuicConnection::server(id, small);
        let mut pipe = Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2));
        let s = pipe.a.open_stream();
        pipe.a.write_stream(s, 100, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(400_000);
        pipe.b.write_stream(s, 100_000, MsgTag(2));
        pipe.run(4_000_000);
        let cev = drain(&mut pipe.a);
        let at = delivery_time(&cev, MsgTag(2)).expect("must complete via MAX_DATA updates");
        // 100 KB through a 10 KB window takes ≥ 10 credit round trips.
        assert!(at > ms(5 * RTT_MS), "flow control must pace: {at}");
    }

    #[test]
    fn slow_start_growth_bounds_transfer_time() {
        let mut pipe = make_pair(None, false);
        let s = pipe.a.open_stream();
        pipe.a.write_stream(s, 100, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(400_000);
        pipe.b.write_stream(s, 500_000, MsgTag(2));
        pipe.run(4_000_000);
        let cev = drain(&mut pipe.a);
        let at = delivery_time(&cev, MsgTag(2)).unwrap();
        let elapsed = at.as_millis_f64();
        assert!(elapsed > 3.0 * RTT_MS as f64, "too fast: {elapsed}ms");
        assert!(elapsed < 15.0 * RTT_MS as f64, "too slow: {elapsed}ms");
    }

    #[test]
    #[should_panic(expected = "client-side only")]
    fn server_cannot_connect() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let mut server = QuicConnection::server(id, QuicConfig::default());
        server.connect(SimTime::ZERO);
    }

    /// Drives a lone endpoint's timers to quiescence (total blackhole:
    /// everything it sends vanishes, nothing ever arrives).
    fn run_timers_into_blackhole(conn: &mut QuicConnection) {
        let mut guard = 0;
        while let Some(t) = conn.next_timeout() {
            conn.on_timeout(t);
            while conn.poll_transmit(t).is_some() {}
            guard += 1;
            assert!(guard < 10_000, "timer loop must converge");
        }
    }

    #[test]
    fn blackholed_handshake_times_out_with_typed_event() {
        // No peer at all: every packet vanishes. Pre-timeout behaviour
        // was an unbounded PTO retry loop; now the connection gives up
        // at exactly connect + handshake_timeout.
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let cfg = QuicConfig::default();
        let deadline = SimTime::ZERO + cfg.handshake_timeout;
        let mut client = QuicConnection::client(id, cfg, None, false);
        client.connect(SimTime::ZERO);
        while client.poll_transmit(SimTime::ZERO).is_some() {}
        run_timers_into_blackhole(&mut client);
        assert!(client.is_closed());
        assert_eq!(
            client.close_reason(),
            Some(crate::CloseReason::HandshakeTimeout)
        );
        let ev = drain(&mut client);
        assert!(
            ev.contains(&QuicEvent::Closed {
                at: deadline,
                reason: crate::CloseReason::HandshakeTimeout,
            }),
            "typed close event at the exact deadline: {ev:?}"
        );
        // Closed means inert: no timers, no packets.
        assert_eq!(client.next_timeout(), None);
        assert!(client.poll_transmit(deadline).is_none());
    }

    #[test]
    fn established_connection_idle_times_out_when_path_goes_dark() {
        let mut pipe = make_pair(None, false);
        pipe.a.connect(SimTime::ZERO);
        // Runs to full quiescence: the transfer ends, then both sides
        // sit idle until the RFC 9000 idle timer closes them.
        pipe.run_to_close(400_000);
        assert!(pipe.a.is_handshake_complete());
        assert_eq!(pipe.a.close_reason(), Some(crate::CloseReason::IdleTimeout));
        assert_eq!(pipe.b.close_reason(), Some(crate::CloseReason::IdleTimeout));
        let ev = drain(&mut pipe.a);
        let closed_at = ev
            .iter()
            .find_map(|e| match e {
                QuicEvent::Closed { at, .. } => Some(*at),
                _ => None,
            })
            .expect("closed event");
        let idle = QuicConfig::default().idle_timeout;
        assert!(
            closed_at >= SimTime::ZERO + idle,
            "idle close cannot precede the idle window: {closed_at}"
        );
    }

    #[test]
    fn pto_retransmissions_do_not_postpone_idle_timeout() {
        // Mid-connection blackout: after the handshake, every further
        // server packet dies, so the client's request keeps probing into
        // the void. RFC 9000 §10.1: the client's own probes must not
        // extend its idle deadline — it closes ~idle_timeout after the
        // last *received* packet, despite transmitting the whole time.
        let blackhole: Vec<u64> = (4..10_000).collect();
        let mut pipe = make_pair(None, false).drop_b_to_a(blackhole);
        let s = pipe.a.open_stream();
        pipe.a.write_stream(s, 400, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run_to_close(400_000);
        assert!(pipe.a.is_handshake_complete(), "handshake precedes outage");
        assert_eq!(pipe.a.close_reason(), Some(crate::CloseReason::IdleTimeout));
        assert!(
            pipe.a.retransmit_count() > 0,
            "the request must have been probed into the blackhole"
        );
        let cev = drain(&mut pipe.a);
        let closed_at = cev
            .iter()
            .find_map(|e| match e {
                QuicEvent::Closed { at, .. } => Some(*at),
                _ => None,
            })
            .expect("closed");
        let idle = QuicConfig::default().idle_timeout;
        // Anchored at the last receipt (within the first ~second of the
        // connection), not at the last of the many retransmissions.
        assert!(
            closed_at <= SimTime::ZERO + idle + SimDuration::from_secs(2),
            "probes must not postpone the idle close: {closed_at}"
        );
    }

    #[test]
    fn rejected_zero_rtt_downgrades_to_one_rtt() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let cfg = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..QuicConfig::default()
        };
        let server_cfg = QuicConfig {
            accept_early_data: false,
            ..cfg.clone()
        };
        let client = QuicConnection::client(id, cfg, Some(ticket()), true);
        let server = QuicConnection::server(id, server_cfg);
        let mut pipe = Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2));
        let stream = pipe.a.open_stream();
        pipe.a.write_stream(stream, 400, MsgTag(1));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(400_000);
        // The connection survives — a downgrade, not an error.
        assert!(pipe.a.is_handshake_complete());
        assert!(!pipe.a.used_early_data(), "0-RTT credit revoked");
        assert_eq!(
            pipe.a.send_ready_at(),
            Some(ms(RTT_MS)),
            "send-readiness re-stamps to the 1-RTT handshake completion"
        );
        let cev = drain(&mut pipe.a);
        assert!(
            cev.iter()
                .any(|e| matches!(e, QuicEvent::ZeroRttRejected { .. })),
            "client told about the rejection: {cev:?}"
        );
        let sev = drain(&mut pipe.b);
        assert_eq!(
            delivery_time(&sev, MsgTag(1)),
            Some(ms(3 * RTT_MS / 2)),
            "early request surfaces only once the 1-RTT keys exist"
        );
        assert!(pipe.b.was_resumed(), "PSK still resumed the session");
    }

    #[test]
    fn rejection_without_early_data_is_a_plain_psk_handshake() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let cfg = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..QuicConfig::default()
        };
        let server_cfg = QuicConfig {
            accept_early_data: false,
            ..cfg.clone()
        };
        let client = QuicConnection::client(id, cfg, Some(ticket()), false);
        let server = QuicConnection::server(id, server_cfg);
        let mut pipe = Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2));
        pipe.a.connect(SimTime::ZERO);
        pipe.run(400_000);
        let cev = drain(&mut pipe.a);
        assert!(
            !cev.iter()
                .any(|e| matches!(e, QuicEvent::ZeroRttRejected { .. })),
            "no early data offered, so nothing was rejected"
        );
        assert!(cev
            .iter()
            .any(|e| matches!(e, QuicEvent::HandshakeComplete { at } if *at == ms(RTT_MS))));
    }

    #[test]
    fn stream_ids_are_client_bidi_spaced() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let mut client = QuicConnection::client(id, QuicConfig::default(), None, false);
        assert_eq!(client.open_stream(), 0);
        assert_eq!(client.open_stream(), 4);
        assert_eq!(client.open_stream(), 8);
    }

    #[test]
    fn connection_refused_closes_client_within_one_rtt() {
        // An overloaded edge answers the ClientInitial with
        // CONNECTION_REFUSED: the client closes at once — no handshake
        // timer has to expire, no retransmissions into a closed door.
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let cfg = QuicConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..QuicConfig::default()
        };
        let mut client = QuicConnection::client(id, cfg, None, false);
        client.connect(SimTime::ZERO);
        while client.poll_transmit(SimTime::ZERO).is_some() {}
        let refusal = QuicPacket {
            conn: id,
            from_client: false,
            pn: 0,
            frames: vec![Frame::ConnectionRefused],
        };
        client.on_packet(refusal, ms(RTT_MS / 2));
        assert!(client.is_closed());
        assert_eq!(client.close_reason(), Some(CloseReason::Refused));
        let ev = drain(&mut client);
        assert!(ev.iter().any(|e| matches!(
            e,
            QuicEvent::Closed {
                at,
                reason: CloseReason::Refused
            } if *at == ms(RTT_MS / 2)
        )));
        assert_eq!(client.next_timeout(), None, "all timers cleared");
        assert!(client.poll_transmit(ms(RTT_MS)).is_none());
    }
}
