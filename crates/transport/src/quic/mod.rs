//! A sans-IO QUIC connection (RFC 9000/9001/9002 behaviour, simplified
//! where the simplification provably does not affect the paper's
//! measurements).
//!
//! What matters for the reproduction, and is therefore modelled
//! faithfully:
//!
//! * **Combined transport+TLS handshake**: ClientInitial → server flight →
//!   client Finished, with the first application byte leaving at 1 RTT —
//!   versus 2–3 RTT for TCP+TLS. Handshake messages travel on a reliable
//!   *crypto stream* using the same delivery machinery as data.
//! * **0-RTT resumption**: with a stored ticket, stream data departs with
//!   the ClientInitial. This is the mechanism behind the consecutive-visit
//!   gains of Fig. 8 / Table III.
//! * **Independent ordered streams**: a lost packet stalls only the
//!   streams whose frames it carried. Under loss, H3 pages with many CDN
//!   resources keep progressing where H2 stalls — Fig. 9's slope ordering.
//! * **ACK-range loss detection with packet and time thresholds, PTO**
//!   (RFC 9002 §6), driving the same congestion controllers as TCP.
//! * **Connection- and stream-level flow control** (`MAX_DATA`,
//!   `MAX_STREAM_DATA`).
//!
//! Simplifications: no connection migration, no stateless retry, and no
//! explicit key phases — none of which the paper's metrics are sensitive
//! to.

mod connection;
mod streams;

pub use connection::{QuicConfig, QuicConnection, QuicEvent};

use crate::conn_id::{ConnId, MsgTag};

/// IP + UDP + QUIC short-header overhead per packet, in bytes.
pub(crate) const QUIC_PACKET_OVERHEAD: u64 = 42;

/// Maximum payload (frame bytes) per packet after path-MTU discovery —
/// production stacks (Chrome, quiche) settle near 1450-byte datagrams on
/// 1500-MTU paths, giving QUIC per-packet loss exposure comparable to
/// TCP's 1460-byte segments. Initial packets are padded to at least
/// 1200 bytes per RFC 9000 §14.1 (the ClientInitial's crypto flight
/// exceeds that on its own).
pub(crate) const MAX_PAYLOAD: u64 = 1410;

/// The reserved stream id carrying handshake (CRYPTO) data.
pub(crate) const CRYPTO_STREAM: u64 = u64::MAX;

/// A QUIC packet on the wire.
#[derive(Debug, Clone)]
pub struct QuicPacket {
    /// Connection this packet belongs to.
    pub conn: ConnId,
    /// `true` when sent by the client side.
    pub from_client: bool,
    /// Packet number (monotonic per direction).
    pub pn: u64,
    /// Frames carried.
    pub frames: Vec<Frame>,
}

impl QuicPacket {
    /// Serialised size on the wire.
    pub fn wire_bytes(&self) -> u64 {
        QUIC_PACKET_OVERHEAD + self.frames.iter().map(Frame::size).sum::<u64>()
    }

    /// Whether the packet elicits an acknowledgement (carries anything
    /// other than ACK frames).
    pub fn is_ack_eliciting(&self) -> bool {
        self.frames.iter().any(|f| !matches!(f, Frame::Ack { .. }))
    }
}

/// Frames carried by [`QuicPacket`]s.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Ordered bytes of one stream ([`CRYPTO_STREAM`] carries the
    /// handshake).
    Stream {
        /// Stream id.
        id: u64,
        /// Offset of the first byte.
        offset: u64,
        /// Number of bytes.
        len: u64,
        /// Message boundaries ending within `(offset, offset+len]`.
        markers: Vec<(u64, MsgTag)>,
    },
    /// Acknowledgement of received packet-number ranges (inclusive),
    /// highest range first.
    Ack {
        /// Acknowledged `(low, high)` ranges, descending.
        ranges: Vec<(u64, u64)>,
    },
    /// Connection-level flow-control credit.
    MaxData {
        /// New connection receive limit in bytes.
        max: u64,
    },
    /// Stream-level flow-control credit.
    MaxStreamData {
        /// Stream id.
        id: u64,
        /// New per-stream receive limit in bytes.
        max: u64,
    },
    /// The server refused the connection during admission (RFC 9000
    /// §17.2.2's Retry/CLOSE with CONNECTION_REFUSED, collapsed to one
    /// frame): sent in response to a ClientInitial by an edge that is
    /// shedding load, closing the client side immediately.
    ConnectionRefused,
}

impl Frame {
    /// Serialised frame size in bytes.
    pub fn size(&self) -> u64 {
        match self {
            Frame::Stream { len, .. } => 12 + len,
            Frame::Ack { ranges } => 8 + 16 * ranges.len() as u64,
            Frame::MaxData { .. } => 9,
            Frame::MaxStreamData { .. } => 13,
            // Frame type + error code + empty reason phrase.
            Frame::ConnectionRefused => 11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_netsim::NodeId;

    #[test]
    fn packet_size_sums_frames() {
        let pkt = QuicPacket {
            conn: ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1),
            from_client: true,
            pn: 0,
            frames: vec![
                Frame::Stream {
                    id: 0,
                    offset: 0,
                    len: 100,
                    markers: vec![],
                },
                Frame::Ack {
                    ranges: vec![(0, 3)],
                },
            ],
        };
        assert_eq!(pkt.wire_bytes(), QUIC_PACKET_OVERHEAD + 112 + 24);
        assert!(pkt.is_ack_eliciting());
    }

    #[test]
    fn pure_ack_is_not_ack_eliciting() {
        let pkt = QuicPacket {
            conn: ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1),
            from_client: false,
            pn: 9,
            frames: vec![Frame::Ack {
                ranges: vec![(0, 9)],
            }],
        };
        assert!(!pkt.is_ack_eliciting());
    }
}
