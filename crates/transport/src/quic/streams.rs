//! Per-stream send and receive state.
//!
//! Each QUIC stream is an independent ordered byte stream. The receive
//! side reassembles out-of-order frames *per stream*, which is precisely
//! why one lost packet cannot stall other streams — the transport-level
//! HoL-blocking cure the paper credits H3 with.

use std::collections::BTreeMap;

use h3cdn_sim_core::SimTime;

use crate::conn_id::MsgTag;

/// A frame-sized slice of stream data: `(offset, len, markers ending
/// inside the slice)`.
pub(crate) type StreamSlice = (u64, u64, Vec<(u64, MsgTag)>);

/// Send half of one stream.
#[derive(Debug, Default)]
pub(crate) struct SendStream {
    /// Total bytes written by the application.
    written: u64,
    /// First byte never yet packetised.
    next_unsent: u64,
    /// Ranges queued for retransmission (offset → len).
    rtx: BTreeMap<u64, u64>,
    /// Message boundaries (end offset → tag), kept for re-sends.
    markers: BTreeMap<u64, MsgTag>,
}

impl SendStream {
    /// Appends an application message.
    pub fn write(&mut self, len: u64, tag: MsgTag) {
        debug_assert!(len > 0, "empty messages are not writable");
        self.written += len;
        self.markers.insert(self.written, tag);
    }

    /// Whether any bytes are pending (new or retransmission).
    pub fn has_pending(&self) -> bool {
        !self.rtx.is_empty() || self.next_unsent < self.written
    }

    /// Bytes pending transmission.
    pub fn pending_bytes(&self) -> u64 {
        let rtx: u64 = self.rtx.values().sum();
        rtx + (self.written - self.next_unsent)
    }

    /// Takes up to `budget` bytes to put in a frame, preferring
    /// retransmissions. Returns `(offset, len, markers)`.
    pub fn take(&mut self, budget: u64) -> Option<StreamSlice> {
        self.take_limited(budget, u64::MAX)
    }

    /// As [`SendStream::take`], but *new* data may not extend past
    /// `flow_limit` (the peer's `MAX_STREAM_DATA`); retransmissions are
    /// always below it.
    pub fn take_limited(&mut self, budget: u64, flow_limit: u64) -> Option<StreamSlice> {
        if budget == 0 {
            return None;
        }
        if let Some((&offset, &len)) = self.rtx.iter().next() {
            self.rtx.remove(&offset);
            let take = len.min(budget);
            if take < len {
                self.rtx.insert(offset + take, len - take);
            }
            return Some((offset, take, self.markers_in(offset, take)));
        }
        if self.next_unsent < self.written && self.next_unsent < flow_limit {
            let offset = self.next_unsent;
            let take = (self.written - offset).min(budget).min(flow_limit - offset);
            self.next_unsent += take;
            return Some((offset, take, self.markers_in(offset, take)));
        }
        None
    }

    /// Highest stream offset handed out for first transmission.
    pub fn sent_watermark(&self) -> u64 {
        self.next_unsent
    }

    /// Re-queues a previously sent range after packet loss.
    pub fn requeue(&mut self, offset: u64, len: u64) {
        // Coalescing is unnecessary for correctness; ranges re-fragment
        // on the next take().
        let entry = self.rtx.entry(offset).or_insert(0);
        *entry = (*entry).max(len);
    }

    fn markers_in(&self, offset: u64, len: u64) -> Vec<(u64, MsgTag)> {
        self.markers
            .range(offset + 1..=offset + len)
            .map(|(&end, &tag)| (end, tag))
            .collect()
    }
}

/// Receive half of one stream.
#[derive(Debug, Default)]
pub(crate) struct RecvStream {
    /// Next in-order byte expected.
    rcv_next: u64,
    /// Out-of-order ranges (offset → len).
    out_of_order: BTreeMap<u64, u64>,
    /// Message boundaries (end → tag) awaiting in-order delivery.
    markers: BTreeMap<u64, MsgTag>,
    /// Total in-order bytes delivered.
    delivered: u64,
}

impl RecvStream {
    /// Ingests one stream frame; returns messages whose final byte is now
    /// delivered in order, with `at` as their delivery time.
    pub fn on_frame(
        &mut self,
        offset: u64,
        len: u64,
        markers: &[(u64, MsgTag)],
        at: SimTime,
    ) -> Vec<(MsgTag, SimTime)> {
        for &(end, tag) in markers {
            // A marker ending inside the already-delivered prefix is a
            // duplicate (its original frame fired it); re-inserting would
            // fire it twice.
            if end > self.rcv_next {
                self.markers.insert(end, tag);
            }
        }
        let end = offset + len;
        if offset <= self.rcv_next {
            if end > self.rcv_next {
                self.rcv_next = end;
                // Merge any now-contiguous buffered ranges.
                while let Some((&o, &l)) = self.out_of_order.iter().next() {
                    if o <= self.rcv_next {
                        self.out_of_order.remove(&o);
                        self.rcv_next = self.rcv_next.max(o + l);
                    } else {
                        break;
                    }
                }
            }
        } else {
            self.out_of_order.insert(offset, len);
        }
        self.delivered = self.rcv_next;
        let mut fired = Vec::new();
        while let Some((&mend, &tag)) = self.markers.iter().next() {
            if mend <= self.rcv_next {
                self.markers.remove(&mend);
                fired.push((tag, at));
            } else {
                break;
            }
        }
        fired
    }

    /// Total in-order bytes received so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_stream_take_respects_budget() {
        let mut s = SendStream::default();
        s.write(1000, MsgTag(1));
        let (off, len, markers) = s.take(400).unwrap();
        assert_eq!((off, len), (0, 400));
        assert!(markers.is_empty(), "message end not in this fragment");
        let (off, len, markers) = s.take(10_000).unwrap();
        assert_eq!((off, len), (400, 600));
        assert_eq!(markers, vec![(1000, MsgTag(1))]);
        assert!(s.take(100).is_none());
    }

    #[test]
    fn retransmissions_take_priority() {
        let mut s = SendStream::default();
        s.write(2000, MsgTag(1));
        let _ = s.take(1000).unwrap(); // bytes 0..1000 "sent"
        s.requeue(0, 1000);
        let (off, len, _) = s.take(600).unwrap();
        assert_eq!((off, len), (0, 600));
        let (off, len, _) = s.take(600).unwrap();
        assert_eq!((off, len), (600, 400), "rest of the requeued range");
        let (off, _, _) = s.take(600).unwrap();
        assert_eq!(off, 1000, "then new data");
    }

    #[test]
    fn take_limited_respects_flow_limit() {
        let mut s = SendStream::default();
        s.write(1000, MsgTag(1));
        let (off, len, _) = s.take_limited(10_000, 400).unwrap();
        assert_eq!((off, len), (0, 400));
        assert!(s.take_limited(10_000, 400).is_none(), "limit reached");
        // Retransmissions below the limit still flow.
        s.requeue(0, 200);
        assert!(s.take_limited(10_000, 400).is_some());
        // Raising the limit releases the rest.
        let (off, len, _) = s.take_limited(10_000, 1000).unwrap();
        assert_eq!((off, len), (400, 600));
        assert_eq!(s.sent_watermark(), 1000);
    }

    #[test]
    fn pending_accounting() {
        let mut s = SendStream::default();
        assert!(!s.has_pending());
        s.write(100, MsgTag(1));
        assert!(s.has_pending());
        assert_eq!(s.pending_bytes(), 100);
        let _ = s.take(100);
        assert!(!s.has_pending());
        s.requeue(0, 40);
        assert_eq!(s.pending_bytes(), 40);
    }

    #[test]
    fn recv_stream_in_order_delivery() {
        let mut r = RecvStream::default();
        let t = SimTime::ZERO;
        let fired = r.on_frame(0, 500, &[(500, MsgTag(7))], t);
        assert_eq!(fired, vec![(MsgTag(7), t)]);
        assert_eq!(r.delivered_bytes(), 500);
    }

    #[test]
    fn recv_stream_buffers_gaps() {
        let mut r = RecvStream::default();
        let t = SimTime::ZERO;
        // Bytes 500..1000 arrive first: nothing fires.
        let fired = r.on_frame(500, 500, &[(1000, MsgTag(1))], t);
        assert!(fired.is_empty());
        assert_eq!(r.delivered_bytes(), 0);
        // The hole fills: delivery advances past both ranges.
        let fired = r.on_frame(0, 500, &[], t);
        assert_eq!(fired, vec![(MsgTag(1), t)]);
        assert_eq!(r.delivered_bytes(), 1000);
    }

    #[test]
    fn duplicate_frames_are_idempotent() {
        let mut r = RecvStream::default();
        let t = SimTime::ZERO;
        let f1 = r.on_frame(0, 300, &[(300, MsgTag(2))], t);
        let f2 = r.on_frame(0, 300, &[(300, MsgTag(2))], t);
        assert_eq!(f1.len(), 1);
        assert!(f2.is_empty(), "marker must fire once");
    }

    #[test]
    fn multiple_messages_fire_in_order() {
        let mut r = RecvStream::default();
        let t = SimTime::ZERO;
        let fired = r.on_frame(0, 900, &[(300, MsgTag(1)), (900, MsgTag(2))], t);
        assert_eq!(fired, vec![(MsgTag(1), t), (MsgTag(2), t)]);
    }
}
