//! TLS session layer over the simulated TCP stream.
//!
//! Handshake flights are written through [`TcpConnection`] as tagged
//! messages with realistic sizes, so their latency cost — the RTT counts
//! the paper attributes H2's slower connection setup to — emerges from
//! transmission rather than arithmetic:
//!
//! * **TLS 1.3 full**: ClientHello → server flight → client Finished.
//!   First app byte leaves 1 TLS RTT after the TCP handshake (2 RTT
//!   total).
//! * **TLS 1.2 full**: two TLS round trips (3 RTT total) — the
//!   `H2 + TLS/1.2` suite the paper contrasts H3 against.
//! * **TLS 1.2 abbreviated** (session resumption): one TLS round trip.
//! * **TLS 1.3 PSK + early data**: app data rides immediately behind the
//!   ClientHello — TCP's 1 RTT is the only connection cost, matching the
//!   paper's §VI-D observation that resumed H2 still pays the TCP
//!   handshake while resumed H3 pays nothing.
//!
//! Servers issue a NewSessionTicket after each completed handshake;
//! clients surface it as [`TlsEvent::TicketIssued`] and the browser layer
//! stores it per domain in a [`TicketStore`], which is what makes
//! cross-page resumption to shared CDN providers possible (Fig. 8 /
//! Table III).

use std::collections::{HashMap, VecDeque};

use h3cdn_sim_core::{SimDuration, SimTime};

use crate::conn_id::{ConnId, MsgTag};
use crate::tcp::{TcpConfig, TcpConnection, TcpEvent, TcpSegment};
use crate::CloseReason;

/// TLS protocol version negotiated for a TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlsVersion {
    /// TLS 1.2: 2-RTT full handshake, 1-RTT abbreviated.
    Tls12,
    /// TLS 1.3: 1-RTT full handshake, 0-RTT with PSK + early data.
    Tls13,
}

/// Per-message TLS record overhead (5-byte header + AEAD tag + padding).
pub(crate) const RECORD_OVERHEAD: u64 = 29;

/// Handshake message sizes in bytes, calibrated to typical production
/// certificate chains.
pub mod sizes {
    /// Full ClientHello.
    pub(crate) const CH_FULL: u64 = 330;
    /// ClientHello carrying a PSK / session ticket.
    pub(crate) const CH_PSK: u64 = 560;
    /// TLS 1.3 server flight with a certificate chain.
    pub(crate) const SF13_FULL: u64 = 4300;
    /// TLS 1.3 server flight under PSK (no certificate).
    pub(crate) const SF13_PSK: u64 = 350;
    /// Client Finished.
    pub(crate) const CLIENT_FIN: u64 = 74;
    /// NewSessionTicket.
    pub(crate) const NST: u64 = 230;
    /// TLS 1.2 ServerHello + Certificate + ServerHelloDone.
    pub(crate) const SF12_FULL: u64 = 3900;
    /// TLS 1.2 ClientKeyExchange + ChangeCipherSpec + Finished.
    pub(crate) const CF12: u64 = 340;
    /// TLS 1.2 server ChangeCipherSpec + Finished.
    pub(crate) const SFIN12: u64 = 110;
    /// TLS 1.2 abbreviated ServerHello + CCS + Finished.
    pub(crate) const SF12_RESUMED: u64 = 280;
}

// TLS-internal message tags live far above any application tag.
const TLS_TAG_BASE: u64 = 1 << 62;
const TAG_CH_FULL13: MsgTag = MsgTag(TLS_TAG_BASE + 1);
const TAG_CH_PSK13: MsgTag = MsgTag(TLS_TAG_BASE + 2);
const TAG_CH_FULL12: MsgTag = MsgTag(TLS_TAG_BASE + 3);
const TAG_CH_RESUMED12: MsgTag = MsgTag(TLS_TAG_BASE + 4);
const TAG_SF13: MsgTag = MsgTag(TLS_TAG_BASE + 5);
const TAG_SF13_PSK: MsgTag = MsgTag(TLS_TAG_BASE + 6);
const TAG_SF12_1: MsgTag = MsgTag(TLS_TAG_BASE + 7);
const TAG_SF12_RESUMED: MsgTag = MsgTag(TLS_TAG_BASE + 8);
const TAG_CFIN: MsgTag = MsgTag(TLS_TAG_BASE + 9);
const TAG_CF12: MsgTag = MsgTag(TLS_TAG_BASE + 10);
const TAG_SFIN12: MsgTag = MsgTag(TLS_TAG_BASE + 11);
const TAG_NST: MsgTag = MsgTag(TLS_TAG_BASE + 12);

/// A session ticket usable for resumption with one domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ticket {
    /// Domain the ticket was issued for.
    pub domain: u64,
    /// Issue time.
    pub issued_at: SimTime,
    /// Validity window.
    pub lifetime: SimDuration,
}

impl Ticket {
    /// Whether the ticket is still within its validity window at `now`.
    pub fn is_valid(&self, now: SimTime) -> bool {
        now <= self.issued_at + self.lifetime
    }
}

/// Client-side store of session tickets, keyed by domain.
///
/// One store per simulated browser profile; it survives across page
/// visits in consecutive-browsing mode and is cleared between independent
/// measurements — mirroring the paper's §VI-D methodology (connections
/// terminated, cache cleared, *tickets kept*).
#[derive(Debug, Clone, Default)]
pub struct TicketStore {
    tickets: HashMap<u64, Ticket>,
}

impl TicketStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TicketStore::default()
    }

    /// Inserts (or replaces) the ticket for its domain.
    pub fn insert(&mut self, ticket: Ticket) {
        self.tickets.insert(ticket.domain, ticket);
    }

    /// Returns a still-valid ticket for `domain`, if present.
    pub fn lookup(&self, domain: u64, now: SimTime) -> Option<Ticket> {
        self.tickets
            .get(&domain)
            .copied()
            .filter(|t| t.is_valid(now))
    }

    /// Number of stored tickets (including expired ones not yet pruned).
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// Whether the store holds no tickets.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Removes every ticket.
    pub fn clear(&mut self) {
        self.tickets.clear();
    }
}

/// Client-side TLS parameters for one connection.
#[derive(Debug, Clone, Copy)]
pub struct TlsConfig {
    /// Version to negotiate.
    pub version: TlsVersion,
    /// Ticket to resume with, if the caller found one.
    pub ticket: Option<Ticket>,
    /// Send application data as TLS 1.3 early data when resuming.
    pub early_data: bool,
}

impl Default for TlsConfig {
    fn default() -> Self {
        TlsConfig {
            version: TlsVersion::Tls13,
            ticket: None,
            early_data: false,
        }
    }
}

/// Events surfaced by [`SecureTcp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsEvent {
    /// TCP is established (before TLS completes); reported for timing
    /// breakdowns.
    TcpEstablished {
        /// Completion time.
        at: SimTime,
    },
    /// The TLS handshake finished on this side.
    HandshakeComplete {
        /// Completion time.
        at: SimTime,
    },
    /// An application message was fully delivered in order.
    Delivered {
        /// Application tag.
        tag: MsgTag,
        /// Delivery time.
        at: SimTime,
    },
    /// The server issued a session ticket (client side only).
    TicketIssued {
        /// Receipt time.
        at: SimTime,
    },
    /// The underlying TCP connection closed itself (handshake or idle
    /// timeout); the TLS session is dead with it.
    Closed {
        /// Close time.
        at: SimTime,
        /// Why it closed.
        reason: CloseReason,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HsState {
    /// Waiting for the transport (client) or the ClientHello (server).
    Idle,
    /// Client: ClientHello sent, awaiting the server flight.
    AwaitServerFlight,
    /// Client (TLS 1.2 full): awaiting the server Finished.
    AwaitServerFinished,
    /// Server: flight sent, awaiting the client Finished / flight 2.
    AwaitClientFinish,
    /// Handshake complete.
    Ready,
}

/// A TLS-protected TCP connection endpoint (sans-IO).
///
/// Wraps a [`TcpConnection`]; application messages written with
/// [`SecureTcp::write_app`] are held until the handshake permits them
/// (immediately, for 0-RTT early data) and delivered to the peer as
/// [`TlsEvent::Delivered`].
#[derive(Debug)]
pub struct SecureTcp {
    tcp: TcpConnection,
    is_client: bool,
    version: TlsVersion,
    resumed: bool,
    early_data_enabled: bool,
    used_early_data: bool,
    state: HsState,
    ready_to_send: bool,
    handshake_complete_at: Option<SimTime>,
    send_ready_at: Option<SimTime>,
    connect_started_at: Option<SimTime>,
    pending_app: VecDeque<(u64, MsgTag)>,
    events: VecDeque<TlsEvent>,
    nst_sent: bool,
}

impl SecureTcp {
    /// Creates the client side. Call [`SecureTcp::connect`] to start.
    pub fn client(id: ConnId, tcp: TcpConfig, tls: TlsConfig) -> Self {
        SecureTcp {
            tcp: TcpConnection::client(id, tcp),
            is_client: true,
            version: tls.version,
            resumed: tls.ticket.is_some(),
            early_data_enabled: tls.early_data && tls.version == TlsVersion::Tls13,
            used_early_data: false,
            state: HsState::Idle,
            ready_to_send: false,
            handshake_complete_at: None,
            send_ready_at: None,
            connect_started_at: None,
            pending_app: VecDeque::new(),
            events: VecDeque::new(),
            nst_sent: false,
        }
    }

    /// Creates the server side; it follows whatever the client offers.
    pub fn server(id: ConnId, tcp: TcpConfig) -> Self {
        SecureTcp {
            tcp: TcpConnection::server(id, tcp),
            is_client: false,
            version: TlsVersion::Tls13,
            resumed: false,
            early_data_enabled: false,
            used_early_data: false,
            state: HsState::Idle,
            ready_to_send: false,
            handshake_complete_at: None,
            send_ready_at: None,
            connect_started_at: None,
            pending_app: VecDeque::new(),
            events: VecDeque::new(),
            nst_sent: false,
        }
    }

    /// Starts the TCP + TLS handshake (client side).
    pub fn connect(&mut self, now: SimTime) {
        self.connect_started_at = Some(now);
        self.tcp.connect(now);
    }

    /// Queues an application message. It is transmitted as soon as the
    /// handshake state allows (immediately under 0-RTT early data).
    pub fn write_app(&mut self, len: u64, tag: MsgTag) {
        if self.ready_to_send {
            self.tcp.write_message(len + RECORD_OVERHEAD, tag);
        } else {
            self.pending_app.push_back((len, tag));
        }
    }

    /// The connection id.
    pub fn conn_id(&self) -> ConnId {
        self.tcp.conn_id()
    }

    /// Whether the handshake is complete on this side.
    pub fn is_handshake_complete(&self) -> bool {
        self.handshake_complete_at.is_some()
    }

    /// When the handshake completed, if it has.
    pub fn handshake_complete_at(&self) -> Option<SimTime> {
        self.handshake_complete_at
    }

    /// When application data could first leave this side: the TCP
    /// establishment time under 0-RTT early data, otherwise the TLS
    /// handshake completion time. This is the HAR `connect` endpoint.
    pub fn send_ready_at(&self) -> Option<SimTime> {
        self.send_ready_at
    }

    /// When `connect` was called (client side).
    pub fn connect_started_at(&self) -> Option<SimTime> {
        self.connect_started_at
    }

    /// Whether this connection resumed a previous session.
    pub fn was_resumed(&self) -> bool {
        self.resumed
    }

    /// Whether application data was sent as 0-RTT early data.
    pub fn used_early_data(&self) -> bool {
        self.used_early_data
    }

    /// Whether the underlying TCP connection closed itself.
    pub fn is_closed(&self) -> bool {
        self.tcp.is_closed()
    }

    /// Why the connection closed, if it did.
    pub fn close_reason(&self) -> Option<CloseReason> {
        self.tcp.close_reason()
    }

    /// The negotiated TLS version.
    pub fn version(&self) -> TlsVersion {
        self.version
    }

    /// The underlying TCP connection (diagnostics).
    pub fn tcp(&self) -> &TcpConnection {
        &self.tcp
    }

    /// Bytes queued in the TCP stream but not yet first-transmitted (see
    /// [`TcpConnection::unsent_bytes`]).
    pub fn unsent_bytes(&self) -> u64 {
        self.tcp.unsent_bytes()
    }

    /// Feeds one received segment.
    pub fn on_segment(&mut self, seg: TcpSegment, now: SimTime) {
        self.tcp.on_segment(seg, now);
        self.process_tcp_events();
    }

    /// Fires expired timers.
    pub fn on_timeout(&mut self, now: SimTime) {
        self.tcp.on_timeout(now);
        self.process_tcp_events();
    }

    /// Next timer deadline.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.tcp.next_timeout()
    }

    /// Earliest give-up deadline (handshake or idle timeout) of the
    /// underlying TCP connection (see [`TcpConnection::close_deadline`]).
    pub fn close_deadline(&self) -> Option<SimTime> {
        self.tcp.close_deadline()
    }

    /// Produces the next segment to send, or `None` when idle.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<TcpSegment> {
        self.process_tcp_events();
        self.tcp.poll_transmit(now)
    }

    /// Pops the next TLS-level event.
    pub fn poll_event(&mut self) -> Option<TlsEvent> {
        self.process_tcp_events();
        self.events.pop_front()
    }

    fn process_tcp_events(&mut self) {
        while let Some(ev) = self.tcp.poll_event() {
            match ev {
                TcpEvent::Established { at } => {
                    self.events.push_back(TlsEvent::TcpEstablished { at });
                    if self.is_client && self.state == HsState::Idle {
                        self.send_client_hello();
                        if self.ready_to_send && self.send_ready_at.is_none() {
                            // 0-RTT early data departs as soon as TCP is up.
                            self.send_ready_at = Some(at);
                        }
                    }
                }
                TcpEvent::Delivered { tag, at } => {
                    if tag.0 >= TLS_TAG_BASE {
                        self.on_tls_message(tag, at);
                    } else {
                        self.events.push_back(TlsEvent::Delivered { tag, at });
                    }
                }
                TcpEvent::Closed { at, reason } => {
                    self.events.push_back(TlsEvent::Closed { at, reason });
                }
            }
        }
    }

    fn send_client_hello(&mut self) {
        let (tag, len) = match (self.version, self.resumed) {
            (TlsVersion::Tls13, false) => (TAG_CH_FULL13, sizes::CH_FULL),
            (TlsVersion::Tls13, true) => (TAG_CH_PSK13, sizes::CH_PSK),
            (TlsVersion::Tls12, false) => (TAG_CH_FULL12, sizes::CH_FULL),
            (TlsVersion::Tls12, true) => (TAG_CH_RESUMED12, sizes::CH_PSK),
        };
        self.tcp.write_message(len, tag);
        self.state = HsState::AwaitServerFlight;
        if self.resumed && self.early_data_enabled {
            // 0-RTT: application data rides immediately behind the hello.
            self.ready_to_send = true;
            self.used_early_data = !self.pending_app.is_empty();
            self.flush_pending();
        }
    }

    fn on_tls_message(&mut self, tag: MsgTag, at: SimTime) {
        match tag {
            // ---- server side: ClientHello variants ----
            TAG_CH_FULL13 if !self.is_client => {
                self.version = TlsVersion::Tls13;
                self.tcp.write_message(sizes::SF13_FULL, TAG_SF13);
                self.ready_to_send = true; // 0.5-RTT data permitted
                self.state = HsState::AwaitClientFinish;
            }
            TAG_CH_PSK13 if !self.is_client => {
                self.version = TlsVersion::Tls13;
                self.resumed = true;
                self.tcp.write_message(sizes::SF13_PSK, TAG_SF13_PSK);
                self.ready_to_send = true;
                self.state = HsState::AwaitClientFinish;
            }
            TAG_CH_FULL12 if !self.is_client => {
                self.version = TlsVersion::Tls12;
                self.tcp.write_message(sizes::SF12_FULL, TAG_SF12_1);
                self.state = HsState::AwaitClientFinish;
            }
            TAG_CH_RESUMED12 if !self.is_client => {
                self.version = TlsVersion::Tls12;
                self.resumed = true;
                self.tcp
                    .write_message(sizes::SF12_RESUMED, TAG_SF12_RESUMED);
                self.ready_to_send = true;
                self.state = HsState::AwaitClientFinish;
            }
            // ---- client side: server flights ----
            TAG_SF13 | TAG_SF13_PSK if self.is_client => {
                self.tcp.write_message(sizes::CLIENT_FIN, TAG_CFIN);
                self.complete_handshake(at);
            }
            TAG_SF12_1 if self.is_client => {
                self.tcp.write_message(sizes::CF12, TAG_CF12);
                self.state = HsState::AwaitServerFinished;
            }
            TAG_SF12_RESUMED if self.is_client => {
                self.tcp.write_message(sizes::CLIENT_FIN, TAG_CFIN);
                self.complete_handshake(at);
            }
            TAG_SFIN12 if self.is_client => {
                self.complete_handshake(at);
            }
            // ---- server side: client finishes ----
            TAG_CFIN if !self.is_client => {
                self.complete_handshake(at);
                self.issue_ticket();
            }
            TAG_CF12 if !self.is_client => {
                self.tcp.write_message(sizes::SFIN12, TAG_SFIN12);
                self.complete_handshake(at);
                self.issue_ticket();
            }
            // ---- client side: ticket ----
            TAG_NST if self.is_client => {
                self.events.push_back(TlsEvent::TicketIssued { at });
            }
            other => {
                debug_assert!(
                    false,
                    "unexpected TLS message {other} (client={})",
                    self.is_client
                );
            }
        }
    }

    fn complete_handshake(&mut self, at: SimTime) {
        if self.handshake_complete_at.is_none() {
            self.handshake_complete_at = Some(at);
            if self.send_ready_at.is_none() {
                self.send_ready_at = Some(at);
            }
            self.state = HsState::Ready;
            self.ready_to_send = true;
            self.events.push_back(TlsEvent::HandshakeComplete { at });
            self.flush_pending();
        }
    }

    fn issue_ticket(&mut self) {
        if !self.nst_sent {
            self.nst_sent = true;
            self.tcp.write_message(sizes::NST, TAG_NST);
        }
    }

    fn flush_pending(&mut self) {
        while let Some((len, tag)) = self.pending_app.pop_front() {
            self.tcp.write_message(len + RECORD_OVERHEAD, tag);
        }
    }
}

impl crate::duplex::Driveable for SecureTcp {
    type Wire = TcpSegment;

    fn on_wire(&mut self, wire: TcpSegment, now: SimTime) {
        self.on_segment(wire, now);
    }

    fn poll_wire(&mut self, now: SimTime) -> Option<TcpSegment> {
        self.poll_transmit(now)
    }

    fn deadline(&self) -> Option<SimTime> {
        self.next_timeout()
    }

    fn on_deadline(&mut self, now: SimTime) {
        self.on_timeout(now);
    }

    fn abandon_deadline(&self) -> Option<SimTime> {
        self.close_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplex::Duplex;
    use h3cdn_netsim::NodeId;

    const RTT_MS: u64 = 40;

    fn make_pair(tls: TlsConfig) -> Duplex<SecureTcp, SecureTcp> {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let tcp_cfg = TcpConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..TcpConfig::default()
        };
        let client = SecureTcp::client(id, tcp_cfg.clone(), tls);
        let server = SecureTcp::server(id, tcp_cfg);
        Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2))
    }

    fn drain(side: &mut SecureTcp) -> Vec<TlsEvent> {
        std::iter::from_fn(|| side.poll_event()).collect()
    }

    fn first_app_delivery(events: &[TlsEvent]) -> Option<SimTime> {
        events.iter().find_map(|e| match e {
            TlsEvent::Delivered { at, .. } => Some(*at),
            _ => None,
        })
    }

    fn handshake_at(events: &[TlsEvent]) -> Option<SimTime> {
        events.iter().find_map(|e| match e {
            TlsEvent::HandshakeComplete { at } => Some(*at),
            _ => None,
        })
    }

    /// Runs a handshake + one small request; returns (client events,
    /// server events).
    fn run_scenario(tls: TlsConfig) -> (Vec<TlsEvent>, Vec<TlsEvent>) {
        let mut pipe = make_pair(tls);
        pipe.a.connect(SimTime::ZERO);
        pipe.a.write_app(400, MsgTag(1));
        pipe.run(200_000);
        let ca = drain(&mut pipe.a);
        let sa = drain(&mut pipe.b);
        (ca, sa)
    }

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    #[test]
    fn tls13_full_request_arrives_after_two_rtts() {
        let (client_ev, server_ev) = run_scenario(TlsConfig::default());
        // TCP: 1 RTT. TLS 1.3: 1 RTT. Request arrives at server 2.5 RTT
        // after connect (client hs done at 2 RTT, req +0.5 RTT).
        assert_eq!(handshake_at(&client_ev), Some(ms(2 * RTT_MS)));
        assert_eq!(first_app_delivery(&server_ev), Some(ms(5 * RTT_MS / 2)));
    }

    #[test]
    fn tls12_full_costs_an_extra_rtt() {
        let (client_ev, server_ev) = run_scenario(TlsConfig {
            version: TlsVersion::Tls12,
            ..TlsConfig::default()
        });
        assert_eq!(handshake_at(&client_ev), Some(ms(3 * RTT_MS)));
        assert_eq!(first_app_delivery(&server_ev), Some(ms(7 * RTT_MS / 2)));
    }

    fn ticket() -> Ticket {
        Ticket {
            domain: 7,
            issued_at: SimTime::ZERO,
            lifetime: SimDuration::from_secs(7200),
        }
    }

    #[test]
    fn tls13_psk_without_early_data_still_one_tls_rtt() {
        let (client_ev, _) = run_scenario(TlsConfig {
            ticket: Some(ticket()),
            ..TlsConfig::default()
        });
        assert_eq!(handshake_at(&client_ev), Some(ms(2 * RTT_MS)));
    }

    #[test]
    fn tls13_early_data_arrives_one_and_a_half_rtts_after_connect() {
        let (_, server_ev) = run_scenario(TlsConfig {
            ticket: Some(ticket()),
            early_data: true,
            ..TlsConfig::default()
        });
        // TCP handshake 1 RTT, CH + early data leave together, arrive at
        // 1.5 RTT: a full RTT earlier than the non-resumed TLS 1.3 case.
        assert_eq!(first_app_delivery(&server_ev), Some(ms(3 * RTT_MS / 2)));
    }

    #[test]
    fn tls12_abbreviated_saves_one_rtt() {
        let (client_ev, _) = run_scenario(TlsConfig {
            version: TlsVersion::Tls12,
            ticket: Some(ticket()),
            ..TlsConfig::default()
        });
        assert_eq!(handshake_at(&client_ev), Some(ms(2 * RTT_MS)));
    }

    #[test]
    fn server_issues_ticket_once() {
        let (client_ev, _) = run_scenario(TlsConfig::default());
        let tickets = client_ev
            .iter()
            .filter(|e| matches!(e, TlsEvent::TicketIssued { .. }))
            .count();
        assert_eq!(tickets, 1);
    }

    #[test]
    fn server_sees_resumption_flag() {
        let mut pipe = make_pair(TlsConfig {
            ticket: Some(ticket()),
            early_data: true,
            ..TlsConfig::default()
        });
        pipe.a.connect(SimTime::ZERO);
        pipe.a.write_app(100, MsgTag(1));
        pipe.run(200_000);
        assert!(pipe.b.was_resumed());
        assert!(pipe.a.used_early_data());
    }

    #[test]
    fn early_data_not_marked_without_pending_messages() {
        let mut pipe = make_pair(TlsConfig {
            ticket: Some(ticket()),
            early_data: true,
            ..TlsConfig::default()
        });
        pipe.a.connect(SimTime::ZERO);
        pipe.run(200_000);
        assert!(!pipe.a.used_early_data());
    }

    #[test]
    fn response_after_request_round_trips() {
        let mut pipe = make_pair(TlsConfig::default());
        pipe.a.connect(SimTime::ZERO);
        pipe.a.write_app(400, MsgTag(1));
        pipe.run(200_000);
        // Server answers with a response once the request arrived.
        pipe.b.write_app(20_000, MsgTag(2));
        pipe.run(200_000);
        let client_ev = drain(&mut pipe.a);
        assert!(
            client_ev
                .iter()
                .any(|e| matches!(e, TlsEvent::Delivered { tag: MsgTag(2), .. })),
            "response delivered to client"
        );
    }

    #[test]
    fn handshake_survives_server_flight_loss() {
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let tcp_cfg = TcpConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..TcpConfig::default()
        };
        let client = SecureTcp::client(id, tcp_cfg.clone(), TlsConfig::default());
        let server = SecureTcp::server(id, tcp_cfg);
        // Drop the server's first data segment (index 0 is the SYN-ACK;
        // index 1 carries the start of the TLS flight).
        let mut pipe =
            Duplex::new(client, server, SimDuration::from_millis(RTT_MS / 2)).drop_b_to_a(vec![1]);
        pipe.a.connect(SimTime::ZERO);
        pipe.a.write_app(400, MsgTag(1));
        pipe.run(400_000);
        let client_ev = drain(&mut pipe.a);
        assert!(handshake_at(&client_ev).is_some(), "handshake recovered");
        assert!(handshake_at(&client_ev).unwrap() > ms(2 * RTT_MS));
    }

    #[test]
    fn blackholed_tcp_handshake_surfaces_typed_close() {
        // Lone client, no peer: the TCP SYN timeout must bubble up as a
        // TLS-level Closed event so the browser can fall back.
        let id = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1);
        let tcp_cfg = TcpConfig {
            initial_rtt: SimDuration::from_millis(RTT_MS),
            ..TcpConfig::default()
        };
        let deadline = SimTime::ZERO + tcp_cfg.handshake_timeout;
        let mut client = SecureTcp::client(id, tcp_cfg, TlsConfig::default());
        client.connect(SimTime::ZERO);
        while client.poll_transmit(SimTime::ZERO).is_some() {}
        let mut guard = 0;
        while let Some(t) = client.next_timeout() {
            client.on_timeout(t);
            while client.poll_transmit(t).is_some() {}
            guard += 1;
            assert!(guard < 10_000, "timer loop must converge");
        }
        assert!(client.is_closed());
        assert_eq!(
            client.close_reason(),
            Some(crate::CloseReason::HandshakeTimeout)
        );
        let ev = drain(&mut client);
        assert!(
            ev.contains(&TlsEvent::Closed {
                at: deadline,
                reason: crate::CloseReason::HandshakeTimeout,
            }),
            "typed close surfaced through TLS: {ev:?}"
        );
    }

    #[test]
    fn ticket_expiry_checked() {
        let t = Ticket {
            domain: 1,
            issued_at: SimTime::ZERO,
            lifetime: SimDuration::from_secs(10),
        };
        assert!(t.is_valid(ms(5_000)));
        assert!(!t.is_valid(ms(20_000)));
    }

    #[test]
    fn ticket_store_lookup_and_clear() {
        let mut store = TicketStore::new();
        assert!(store.is_empty());
        store.insert(Ticket {
            domain: 3,
            issued_at: SimTime::ZERO,
            lifetime: SimDuration::from_secs(100),
        });
        assert_eq!(store.len(), 1);
        assert!(store.lookup(3, ms(1)).is_some());
        assert!(store.lookup(4, ms(1)).is_none());
        assert!(store.lookup(3, ms(200_000)).is_none(), "expired");
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn send_ready_at_marks_early_data_at_tcp_establishment() {
        // Full handshake: ready when TLS completes (2 RTT).
        let mut full = make_pair(TlsConfig::default());
        full.a.connect(SimTime::ZERO);
        full.run(200_000);
        assert_eq!(full.a.send_ready_at(), Some(ms(2 * RTT_MS)));
        // 0-RTT: ready at TCP establishment (1 RTT), a full RTT earlier.
        let mut early = make_pair(TlsConfig {
            ticket: Some(ticket()),
            early_data: true,
            ..TlsConfig::default()
        });
        early.a.connect(SimTime::ZERO);
        early.run(200_000);
        assert_eq!(early.a.send_ready_at(), Some(ms(RTT_MS)));
    }

    #[test]
    fn unsent_bytes_drain_as_the_stream_flows() {
        let mut pipe = make_pair(TlsConfig::default());
        pipe.a.connect(SimTime::ZERO);
        pipe.a.write_app(50_000, MsgTag(1));
        // Pre-handshake the app message is parked at the TLS layer, not
        // in the TCP stream.
        assert_eq!(pipe.a.unsent_bytes(), 0, "held above TCP until ready");
        pipe.run(400_000);
        assert_eq!(pipe.a.unsent_bytes(), 0, "fully transmitted");
        let delivered = std::iter::from_fn(|| pipe.b.poll_event())
            .any(|e| matches!(e, TlsEvent::Delivered { tag: MsgTag(1), .. }));
        assert!(delivered);
    }

    #[test]
    fn resumption_vs_full_comparative_latency() {
        // The paper's core claim for §VI-D: resumed beats full handshake.
        let (_, full_server) = run_scenario(TlsConfig::default());
        let (_, resumed_server) = run_scenario(TlsConfig {
            ticket: Some(ticket()),
            early_data: true,
            ..TlsConfig::default()
        });
        let full = first_app_delivery(&full_server).unwrap();
        let resumed = first_app_delivery(&resumed_server).unwrap();
        assert!(
            resumed + SimDuration::from_millis(RTT_MS) <= full,
            "early data must save a full RTT: {resumed} vs {full}"
        );
    }
}
