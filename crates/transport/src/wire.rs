//! The single packet type carried by the simulated network.

use crate::quic::QuicPacket;
use crate::tcp::TcpSegment;

/// A packet on the simulated wire: either a TCP segment (H1.1/H2 + TLS)
/// or a QUIC packet (H3). `h3cdn-netsim` nodes exchange this type.
#[derive(Debug, Clone)]
pub enum WirePacket {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A QUIC packet.
    Quic(QuicPacket),
}

impl WirePacket {
    /// Serialised wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            WirePacket::Tcp(seg) => seg.wire_bytes(),
            WirePacket::Quic(pkt) => pkt.wire_bytes(),
        }
    }

    /// The connection the packet belongs to.
    pub fn conn_id(&self) -> crate::ConnId {
        match self {
            WirePacket::Tcp(seg) => seg.conn,
            WirePacket::Quic(pkt) => pkt.conn,
        }
    }

    /// Whether the packet was sent by the client side of its connection.
    pub fn from_client(&self) -> bool {
        match self {
            WirePacket::Tcp(seg) => seg.from_client,
            WirePacket::Quic(pkt) => pkt.from_client,
        }
    }
}

impl From<TcpSegment> for WirePacket {
    fn from(seg: TcpSegment) -> Self {
        WirePacket::Tcp(seg)
    }
}

impl From<QuicPacket> for WirePacket {
    fn from(pkt: QuicPacket) -> Self {
        WirePacket::Quic(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn_id::ConnId;
    use h3cdn_netsim::NodeId;

    #[test]
    fn dispatches_to_inner_packet() {
        let conn = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 3);
        let seg = TcpSegment {
            conn,
            from_client: true,
            syn: false,
            rst: false,
            ack_flag: true,
            seq: 0,
            len: 100,
            ack: 0,
            rwnd: 1000,
            markers: vec![],
            sack: vec![],
        };
        let wire: WirePacket = seg.into();
        assert_eq!(wire.wire_bytes(), 140);
        assert_eq!(wire.conn_id(), conn);
        assert!(wire.from_client());
    }

    #[test]
    fn quic_variant_dispatches() {
        let conn = ConnId::new(NodeId::from_raw(2), NodeId::from_raw(3), 9);
        let pkt = QuicPacket {
            conn,
            from_client: false,
            pn: 1,
            frames: vec![],
        };
        let wire: WirePacket = pkt.into();
        assert_eq!(wire.wire_bytes(), crate::quic::QUIC_PACKET_OVERHEAD);
        assert!(!wire.from_client());
        assert_eq!(wire.conn_id(), conn);
    }
}
