//! Sans-IO transport state machines for the `h3cdn` reproduction.
//!
//! Three protocol stacks from the paper's measurement are rebuilt here:
//!
//! * [`tcp`] — a segment-level TCP with a three-way handshake, cumulative
//!   acknowledgements, fast retransmit, RTO, and strictly in-order
//!   delivery. In-order delivery is the load-bearing property: one lost
//!   segment stalls *every* HTTP/2 stream multiplexed on the connection,
//!   which is the head-of-line blocking the paper's Fig. 9 quantifies.
//! * [`tls`] — a TLS session layer whose handshake flights cross the
//!   simulated network as real messages: 2-RTT TLS 1.2, 1-RTT TLS 1.3,
//!   and session-ticket resumption.
//! * [`quic`] — a QUIC connection with the combined 1-RTT handshake,
//!   0-RTT resumption, independent ordered streams, ACK ranges,
//!   packet-number loss detection and PTO (RFC 9002's algorithm,
//!   simplified), and connection-level flow control.
//!
//! Both stacks share the [`cc`] congestion controllers (NewReno and Cubic)
//! and the [`rtt`] estimator, so H2-vs-H3 comparisons measure protocol
//! structure rather than tuning differences — mirroring the paper's
//! methodology.
//!
//! All state machines are *sans-IO*: they consume packets and timeouts,
//! and emit packets and events, with no clock or socket of their own. The
//! [`wire::WirePacket`] enum is the single packet type carried by
//! `h3cdn-netsim` nodes.

pub mod cc;
pub mod conn_id;
pub mod duplex;
pub mod quic;
pub mod rtt;
pub mod tcp;
pub mod tls;
pub mod wire;

pub use cc::{CcAlgorithm, CongestionController};
pub use conn_id::{ConnId, MsgTag};
pub use rtt::RttEstimator;
pub use wire::WirePacket;
