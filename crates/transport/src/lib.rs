//! Sans-IO transport state machines for the `h3cdn` reproduction.
//!
//! Three protocol stacks from the paper's measurement are rebuilt here:
//!
//! * [`tcp`] — a segment-level TCP with a three-way handshake, cumulative
//!   acknowledgements, fast retransmit, RTO, and strictly in-order
//!   delivery. In-order delivery is the load-bearing property: one lost
//!   segment stalls *every* HTTP/2 stream multiplexed on the connection,
//!   which is the head-of-line blocking the paper's Fig. 9 quantifies.
//! * [`tls`] — a TLS session layer whose handshake flights cross the
//!   simulated network as real messages: 2-RTT TLS 1.2, 1-RTT TLS 1.3,
//!   and session-ticket resumption.
//! * [`quic`] — a QUIC connection with the combined 1-RTT handshake,
//!   0-RTT resumption, independent ordered streams, ACK ranges,
//!   packet-number loss detection and PTO (RFC 9002's algorithm,
//!   simplified), and connection-level flow control.
//!
//! Both stacks share the [`cc`] congestion controllers (NewReno and Cubic)
//! and the [`rtt`] estimator, so H2-vs-H3 comparisons measure protocol
//! structure rather than tuning differences — mirroring the paper's
//! methodology.
//!
//! All state machines are *sans-IO*: they consume packets and timeouts,
//! and emit packets and events, with no clock or socket of their own. The
//! [`wire::WirePacket`] enum is the single packet type carried by
//! `h3cdn-netsim` nodes.

pub mod cc;
pub mod conn_id;
pub mod duplex;
pub mod quic;
pub mod rtt;
pub mod tcp;
pub mod tls;
pub mod wire;

pub use cc::{CcAlgorithm, CongestionController};
pub use conn_id::{ConnId, MsgTag};
pub use rtt::RttEstimator;
pub use wire::WirePacket;

/// Why a connection gave up and closed itself — the typed failure the
/// browser layer reacts to (fallback, retry, broken-QUIC marking) instead
/// of a connection that silently retries forever into a blackhole.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloseReason {
    /// The handshake did not complete within the configured deadline
    /// (e.g. every handshake packet fell into a UDP blackhole).
    HandshakeTimeout,
    /// Nothing was received for the configured idle period while the
    /// connection still believed it had — or might get — work
    /// (RFC 9000 §10.1 semantics: retransmitting into a dead path does
    /// not postpone the deadline).
    IdleTimeout,
    /// The server explicitly refused the connection before accepting it
    /// (QUIC CONNECTION_REFUSED / TCP RST from an overloaded edge's
    /// admission controller). Unlike the timeouts, the failure is
    /// *immediate* — the client learns within one RTT and can fall back
    /// at once.
    Refused,
}

impl std::fmt::Display for CloseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloseReason::HandshakeTimeout => write!(f, "handshake-timeout"),
            CloseReason::IdleTimeout => write!(f, "idle-timeout"),
            CloseReason::Refused => write!(f, "refused"),
        }
    }
}
