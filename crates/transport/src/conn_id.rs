//! Connection identifiers and message tags.

use h3cdn_netsim::NodeId;

/// Identifies one transport connection between a client and a server.
///
/// The simulated analogue of the TCP/UDP 4-tuple: the client node, the
/// server node, and a client-chosen port that distinguishes parallel
/// connections to the same server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId {
    /// Client endpoint.
    pub client: NodeId,
    /// Server endpoint.
    pub server: NodeId,
    /// Client-side ephemeral port.
    pub port: u32,
}

impl ConnId {
    /// Creates a connection id.
    pub fn new(client: NodeId, server: NodeId, port: u32) -> Self {
        ConnId {
            client,
            server,
            port,
        }
    }
}

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} -> {}", self.client, self.port, self.server)
    }
}

/// An opaque tag the application attaches to each message written into a
/// transport stream; delivery of the message's final in-order byte is
/// reported back with the same tag.
///
/// The HTTP layers use tags to map transport completions to frames
/// (request bodies, response headers, response bodies) without the
/// simulator shuttling real payload bytes around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgTag(pub u64);

impl std::fmt::Display for MsgTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_id_equality_and_display() {
        let a = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 7);
        let b = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 7);
        let c = ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "node#0:7 -> node#1");
    }

    #[test]
    fn msg_tag_display() {
        assert_eq!(MsgTag(3).to_string(), "msg#3");
    }
}
