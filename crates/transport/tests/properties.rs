//! Property-based tests of the transport state machines: under arbitrary
//! workloads and arbitrary finite loss patterns, the reliability and
//! ordering invariants must hold.

use h3cdn_netsim::NodeId;
use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::cc::{CcAlgorithm, MIN_WINDOW};
use h3cdn_transport::duplex::Duplex;
use h3cdn_transport::quic::{QuicConfig, QuicConnection, QuicEvent};
use h3cdn_transport::tcp::{TcpConfig, TcpConnection, TcpEvent};
use h3cdn_transport::{ConnId, MsgTag, RttEstimator};
use proptest::prelude::*;

fn conn_id() -> ConnId {
    ConnId::new(NodeId::from_raw(0), NodeId::from_raw(1), 1)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// TCP delivers every message exactly once, in write order, for any
    /// message mix and any finite set of dropped packets.
    #[test]
    fn tcp_delivers_all_messages_in_order_under_loss(
        sizes in prop::collection::vec(1u64..60_000, 1..12),
        drops in prop::collection::vec(0u64..80, 0..12),
        rtt_ms in 10u64..120,
    ) {
        let cfg = TcpConfig {
            initial_rtt: SimDuration::from_millis(rtt_ms),
            ..TcpConfig::default()
        };
        let mut client = TcpConnection::client(conn_id(), cfg.clone());
        let server = TcpConnection::server(conn_id(), cfg);
        client.connect(SimTime::ZERO);
        for (i, &len) in sizes.iter().enumerate() {
            client.write_message(len, MsgTag(i as u64));
        }
        let mut pipe = Duplex::new(client, server, SimDuration::from_millis(rtt_ms / 2))
            .drop_a_to_b(drops.clone())
            .drop_b_to_a(drops.iter().map(|d| d.wrapping_add(3)).collect());
        pipe.run(2_000_000);
        let delivered: Vec<u64> = std::iter::from_fn(|| pipe.b.poll_event())
            .filter_map(|e| match e {
                TcpEvent::Delivered { tag, .. } => Some(tag.0),
                _ => None,
            })
            .collect();
        prop_assert_eq!(delivered, (0..sizes.len() as u64).collect::<Vec<_>>());
    }

    /// QUIC delivers every message exactly once, in per-stream write
    /// order, for any stream layout and any finite loss pattern.
    #[test]
    fn quic_delivers_all_streams_under_loss(
        stream_sizes in prop::collection::vec(
            prop::collection::vec(1u64..40_000, 1..4), 1..5),
        drops in prop::collection::vec(0u64..60, 0..10),
        rtt_ms in 10u64..120,
    ) {
        let cfg = QuicConfig {
            initial_rtt: SimDuration::from_millis(rtt_ms),
            ..QuicConfig::default()
        };
        let mut client = QuicConnection::client(conn_id(), cfg.clone(), None, false);
        let server = QuicConnection::server(conn_id(), cfg);
        let mut expected: Vec<Vec<u64>> = Vec::new();
        let mut tag = 0u64;
        for msgs in &stream_sizes {
            let stream = client.open_stream();
            let mut order = Vec::new();
            for &len in msgs {
                client.write_stream(stream, len, MsgTag(tag));
                order.push(tag);
                tag += 1;
            }
            expected.push(order);
        }
        client.connect(SimTime::ZERO);
        let mut pipe = Duplex::new(client, server, SimDuration::from_millis(rtt_ms / 2))
            .drop_a_to_b(drops.clone())
            .drop_b_to_a(drops.iter().map(|d| d.wrapping_add(1)).collect());
        pipe.run(2_000_000);
        let mut per_stream: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        while let Some(ev) = pipe.b.poll_event() {
            if let QuicEvent::Delivered { stream, tag, .. } = ev {
                per_stream.entry(stream).or_default().push(tag.0);
            }
        }
        let got: Vec<Vec<u64>> = per_stream.into_values().collect();
        let mut want = expected;
        want.sort_by_key(|v| v[0]);
        let mut got_sorted = got;
        got_sorted.sort_by_key(|v| v[0]);
        prop_assert_eq!(got_sorted, want);
    }

    /// Congestion controllers never report a window below the floor, and
    /// in-flight accounting never underflows, under arbitrary event
    /// sequences.
    #[test]
    fn congestion_controllers_hold_invariants(
        algo in prop_oneof![Just(CcAlgorithm::NewReno), Just(CcAlgorithm::Cubic)],
        ops in prop::collection::vec(0u8..4, 1..200),
    ) {
        let mut cc = algo.build();
        let mut now_ms = 0u64;
        let mut outstanding: u64 = 0;
        for op in ops {
            now_ms += 7;
            let now = SimTime::ZERO + SimDuration::from_millis(now_ms);
            match op {
                0 => {
                    cc.on_packet_sent(1200, now);
                    outstanding += 1200;
                }
                1 if outstanding > 0 => {
                    cc.on_ack(1200.min(outstanding), now);
                    outstanding = outstanding.saturating_sub(1200);
                }
                2 => cc.on_congestion_event(now),
                _ => cc.on_timeout(now),
            }
            prop_assert!(cc.window() >= MIN_WINDOW, "window {}", cc.window());
            prop_assert!(cc.bytes_in_flight() <= outstanding + 1200);
        }
    }

    /// The RTT estimator's smoothed value stays within the sample range,
    /// and the RTO respects its floor.
    #[test]
    fn rtt_estimator_stays_in_sample_envelope(
        samples in prop::collection::vec(1u64..2_000, 1..100),
    ) {
        let mut est = RttEstimator::new(SimDuration::from_millis(333));
        for &s in &samples {
            est.on_sample(SimDuration::from_millis(s));
        }
        let lo = *samples.iter().min().expect("non-empty");
        let hi = *samples.iter().max().expect("non-empty");
        let srtt = est.smoothed().as_millis_f64();
        prop_assert!(srtt >= lo as f64 - 1e-9 && srtt <= hi as f64 + 1e-9,
            "srtt {srtt} outside [{lo}, {hi}]");
        prop_assert_eq!(est.min(), SimDuration::from_millis(lo));
        prop_assert!(est.rto() >= SimDuration::from_millis(200));
    }

    /// Handshakes complete under any finite loss prefix (both stacks).
    #[test]
    fn handshakes_survive_any_finite_loss_prefix(
        drop_count in 0u64..6,
        rtt_ms in 10u64..100,
        quic in proptest::bool::ANY,
    ) {
        let drops: Vec<u64> = (0..drop_count).collect();
        if quic {
            let cfg = QuicConfig {
                initial_rtt: SimDuration::from_millis(rtt_ms),
                ..QuicConfig::default()
            };
            let mut client = QuicConnection::client(conn_id(), cfg.clone(), None, false);
            client.connect(SimTime::ZERO);
            let server = QuicConnection::server(conn_id(), cfg);
            let mut pipe = Duplex::new(client, server, SimDuration::from_millis(rtt_ms / 2))
                .drop_a_to_b(drops.clone())
                .drop_b_to_a(drops);
            pipe.run(3_000_000);
            prop_assert!(pipe.a.is_handshake_complete());
            prop_assert!(pipe.b.is_handshake_complete());
        } else {
            let cfg = TcpConfig {
                initial_rtt: SimDuration::from_millis(rtt_ms),
                ..TcpConfig::default()
            };
            let mut client = TcpConnection::client(conn_id(), cfg.clone());
            client.connect(SimTime::ZERO);
            let server = TcpConnection::server(conn_id(), cfg);
            let mut pipe = Duplex::new(client, server, SimDuration::from_millis(rtt_ms / 2))
                .drop_a_to_b(drops.clone())
                .drop_b_to_a(drops);
            pipe.run(3_000_000);
            prop_assert!(pipe.a.is_established());
            prop_assert!(pipe.b.is_established());
        }
    }
}

/// Reordering tolerance: under heavy per-packet jitter (which netsim's
/// scripted Duplex cannot produce), both transports must still deliver
/// everything exactly once and in order, without retransmission storms.
#[test]
fn transports_tolerate_reordering_jitter() {
    use h3cdn_netsim::{Engine, Network, Node, NodeCtx, PathSpec};
    use h3cdn_sim_core::units::ByteCount;

    // A thin Node wrapper that drives one connection end. Test-local,
    // so the enum's footprint is irrelevant.
    #[allow(clippy::large_enum_variant)]
    enum End {
        Tcp(TcpConnection),
        Quic(QuicConnection),
    }
    struct Host {
        end: End,
        peer: h3cdn_netsim::NodeId,
        delivered: Vec<u64>,
        started: bool,
    }
    impl Host {
        fn pump(&mut self, ctx: &mut NodeCtx<'_, Wire>) {
            let now = ctx.now();
            loop {
                let (pkt, size): (Wire, u64) = match &mut self.end {
                    End::Tcp(c) => match c.poll_transmit(now) {
                        Some(s) => {
                            let b = s.wire_bytes();
                            (Wire::Tcp(s), b)
                        }
                        None => break,
                    },
                    End::Quic(c) => match c.poll_transmit(now) {
                        Some(p) => {
                            let b = p.wire_bytes();
                            (Wire::Quic(p), b)
                        }
                        None => break,
                    },
                };
                ctx.send(self.peer, pkt, ByteCount::new(size));
            }
            match &mut self.end {
                End::Tcp(c) => {
                    while let Some(ev) = c.poll_event() {
                        if let TcpEvent::Delivered { tag, .. } = ev {
                            self.delivered.push(tag.0);
                        }
                    }
                }
                End::Quic(c) => {
                    while let Some(ev) = c.poll_event() {
                        if let QuicEvent::Delivered { tag, .. } = ev {
                            self.delivered.push(tag.0);
                        }
                    }
                }
            }
        }
    }
    #[derive(Debug)]
    enum Wire {
        Tcp(h3cdn_transport::tcp::TcpSegment),
        Quic(h3cdn_transport::quic::QuicPacket),
    }
    impl Node for Host {
        type Packet = Wire;
        fn handle_packet(&mut self, packet: Wire, ctx: &mut NodeCtx<'_, Wire>) {
            let now = ctx.now();
            match (&mut self.end, packet) {
                (End::Tcp(c), Wire::Tcp(s)) => c.on_segment(s, now),
                (End::Quic(c), Wire::Quic(p)) => c.on_packet(p, now),
                _ => unreachable!("mixed transports"),
            }
            self.pump(ctx);
        }
        fn handle_wakeup(&mut self, ctx: &mut NodeCtx<'_, Wire>) {
            self.started = true;
            let now = ctx.now();
            match &mut self.end {
                End::Tcp(c) => c.on_timeout(now),
                End::Quic(c) => c.on_timeout(now),
            }
            self.pump(ctx);
        }
        fn next_wakeup(&self) -> Option<SimTime> {
            if !self.started {
                // Initial pump: flush whatever connect() queued.
                return Some(SimTime::ZERO);
            }
            match &self.end {
                End::Tcp(c) => c.next_timeout(),
                End::Quic(c) => c.next_timeout(),
            }
        }
    }
    impl std::fmt::Debug for Host {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Host")
        }
    }

    for quic in [false, true] {
        let mut net = Network::new(9);
        let a = net.add_node();
        let b = net.add_node();
        // 5 ms jitter on a 10 ms path: heavy reordering.
        let spec =
            PathSpec::with_delay(SimDuration::from_millis(10)).jitter(SimDuration::from_millis(5));
        net.set_path_symmetric(a, b, spec);
        let n_msgs = 30u64;
        let (end_a, end_b) = if quic {
            let cfg = h3cdn_transport::quic::QuicConfig {
                initial_rtt: SimDuration::from_millis(20),
                ..Default::default()
            };
            let mut c = QuicConnection::client(conn_id(), cfg.clone(), None, false);
            let s = c.open_stream();
            for i in 0..n_msgs {
                c.write_stream(s, 5_000, MsgTag(i));
            }
            c.connect(SimTime::ZERO);
            (
                End::Quic(c),
                End::Quic(QuicConnection::server(conn_id(), cfg)),
            )
        } else {
            let cfg = TcpConfig {
                initial_rtt: SimDuration::from_millis(20),
                ..Default::default()
            };
            let mut c = TcpConnection::client(conn_id(), cfg.clone());
            for i in 0..n_msgs {
                c.write_message(5_000, MsgTag(i));
            }
            c.connect(SimTime::ZERO);
            (End::Tcp(c), End::Tcp(TcpConnection::server(conn_id(), cfg)))
        };
        let hosts = vec![
            Host {
                end: end_a,
                peer: b,
                delivered: vec![],
                started: false,
            },
            Host {
                end: end_b,
                peer: a,
                delivered: vec![],
                started: false,
            },
        ];
        let mut engine = Engine::new(net, hosts);
        engine.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        let (_, hosts) = engine.into_parts();
        assert_eq!(
            hosts[1].delivered,
            (0..n_msgs).collect::<Vec<_>>(),
            "{} must deliver all messages in order under reordering",
            if quic { "QUIC" } else { "TCP" }
        );
        // Reordering alone must not look like loss: a handful of spurious
        // retransmissions at most.
        let rtx = match &hosts[0].end {
            End::Tcp(c) => c.retransmit_count(),
            End::Quic(c) => c.retransmit_count(),
        };
        assert!(
            rtx <= n_msgs,
            "reordering storm: {rtx} retransmissions for {n_msgs} messages"
        );
    }
}
