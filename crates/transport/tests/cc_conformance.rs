//! Cross-controller conformance suite.
//!
//! Every [`CongestionController`] — loss-based (NewReno, Cubic) and
//! model-based (BBR) — must satisfy the same safety contract no matter
//! what event sequence the transport feeds it: the window never sinks
//! below `MIN_WINDOW`, bytes-in-flight never underflows (spurious ACKs
//! saturate at zero), and after a timeout collapse the controller
//! recovers monotonically while ACKs keep arriving cleanly.

use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::cc::{CcAlgorithm, MIN_WINDOW};
use proptest::prelude::*;

const ALL: [CcAlgorithm; 3] = [CcAlgorithm::NewReno, CcAlgorithm::Cubic, CcAlgorithm::Bbr];

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// One abstract CC event, decoded from a pair of random words.
#[derive(Debug, Clone, Copy)]
enum Event {
    Send(u64),
    Ack(u64),
    Congestion,
    Timeout,
    Rtt(u64),
}

fn decode(kind: u8, arg: u64) -> Event {
    match kind % 8 {
        0..=2 => Event::Send(1 + arg % 3_000),
        3..=5 => Event::Ack(1 + arg % 3_000),
        6 => match arg % 4 {
            0 => Event::Timeout,
            _ => Event::Congestion,
        },
        _ => Event::Rtt(5 + arg % 200),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Safety invariants hold for every controller under arbitrary
    /// event soups: window ≥ MIN_WINDOW after the first collapse-class
    /// event, in-flight accounting never underflows, and both stay
    /// finite.
    #[test]
    fn window_and_inflight_invariants_hold(
        events in prop::collection::vec((0u8..=u8::MAX, 0u64..=u64::MAX), 1..300),
    ) {
        for algo in ALL {
            let mut cc = algo.build();
            let mut now_ms = 0u64;
            let mut sent_unacked = 0u64;
            for (kind, arg) in &events {
                now_ms += u64::from(*kind % 11);
                match decode(*kind, *arg) {
                    Event::Send(bytes) => {
                        cc.on_packet_sent(bytes, at(now_ms));
                        sent_unacked += bytes;
                    }
                    Event::Ack(bytes) => {
                        // Deliberately allow over-acking: the controller
                        // must saturate, not underflow.
                        cc.on_ack(bytes, at(now_ms));
                        sent_unacked = sent_unacked.saturating_sub(bytes);
                    }
                    Event::Congestion => cc.on_congestion_event(at(now_ms)),
                    Event::Timeout => cc.on_timeout(at(now_ms)),
                    Event::Rtt(ms) => {
                        cc.on_rtt_sample(SimDuration::from_millis(ms), at(now_ms));
                    }
                }
                prop_assert!(
                    cc.window() >= MIN_WINDOW,
                    "{}: window {} < MIN_WINDOW after event soup",
                    cc.name(),
                    cc.window()
                );
                prop_assert!(
                    cc.bytes_in_flight() <= sent_unacked,
                    "{}: in-flight {} exceeds bytes actually outstanding {}",
                    cc.name(),
                    cc.bytes_in_flight(),
                    sent_unacked
                );
                prop_assert!(cc.window() < u64::MAX / 4, "{}: window ran away", cc.name());
            }
        }
    }
}

/// Over-acking a controller that has nothing in flight must saturate at
/// zero, never wrap.
#[test]
fn spurious_acks_saturate_in_flight_at_zero() {
    for algo in ALL {
        let mut cc = algo.build();
        cc.on_ack(10_000, at(0));
        assert_eq!(cc.bytes_in_flight(), 0, "{}", cc.name());
        cc.on_packet_sent(500, at(1));
        cc.on_ack(400, at(2));
        cc.on_ack(400, at(3));
        assert_eq!(cc.bytes_in_flight(), 0, "{}", cc.name());
    }
}

/// After a timeout collapse, a clean run of ACKs must never shrink the
/// window: recovery is monotone for all three controllers while no new
/// congestion signal arrives (timestamps held constant so BBR stays in
/// its post-timeout Startup growth regime).
#[test]
fn recovery_after_timeout_is_monotone() {
    for algo in ALL {
        let mut cc = algo.build();
        // Establish some history, then collapse.
        for i in 0..20 {
            cc.on_packet_sent(1460, at(i * 10));
            cc.on_ack(1460, at(i * 10 + 5));
        }
        cc.on_timeout(at(300));
        assert_eq!(cc.window(), MIN_WINDOW, "{}", cc.name());

        let mut last = cc.window();
        for _ in 0..200 {
            cc.on_packet_sent(1460, at(300));
            cc.on_ack(1460, at(300));
            assert!(
                cc.window() >= last,
                "{}: window shrank during clean recovery ({last} -> {})",
                cc.name(),
                cc.window()
            );
            last = cc.window();
        }
        assert!(
            last > MIN_WINDOW,
            "{}: window never grew after timeout",
            cc.name()
        );
    }
}

/// Timeout always collapses to exactly MIN_WINDOW, for every controller.
#[test]
fn timeout_collapses_to_min_window() {
    for algo in ALL {
        let mut cc = algo.build();
        for i in 0..50 {
            cc.on_packet_sent(2920, at(i * 20));
            cc.on_ack(2920, at(i * 20 + 10));
            cc.on_rtt_sample(SimDuration::from_millis(10), at(i * 20 + 10));
        }
        cc.on_timeout(at(2000));
        assert_eq!(cc.window(), MIN_WINDOW, "{}", cc.name());
        assert!(cc.in_slow_start(), "{}", cc.name());
    }
}
