//! The browser client host: resource scheduling, connection pooling,
//! session resumption, and HAR emission.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use h3cdn_cdn::locedge;
use h3cdn_har::{EntryTiming, HarEntry, HarPage};
use h3cdn_http::{ClientConn, HttpEvent, HttpVersion, RequestMeta};
use h3cdn_netsim::{NodeCtx, NodeId};
use h3cdn_sim_core::units::ByteCount;
use h3cdn_sim_core::{SimDuration, SimRng, SimTime};
use h3cdn_transport::quic::QuicConfig;
use h3cdn_transport::tcp::TcpConfig;
use h3cdn_transport::tls::{TicketStore, TlsConfig, TlsVersion};
use h3cdn_transport::{CcAlgorithm, CloseReason, ConnId, WirePacket};
use h3cdn_web::{DomainId, Hosting, Resource};

use crate::config::ProtocolMode;
use crate::resilience::{BrokenQuicCache, ResilienceStats};

/// Browsers open at most this many parallel H1 connections per host.
const H1_POOL_LIMIT: usize = 6;

/// Floor on the QUIC-vs-TCP race delay: even on very short paths the
/// browser gives QUIC this long before starting the TCP fallback job
/// (Chrome's delayed-TCP connection race).
const RACE_DELAY_FLOOR: SimDuration = SimDuration::from_millis(300);

/// RTT multiple granted to the QUIC handshake before the TCP racer
/// starts: a healthy handshake needs one round trip, so five leaves room
/// for a probe-timeout recovery without ever racing on a clean path.
const RACE_DELAY_RTTS: u64 = 5;

/// Base delay of the exponential backoff applied to TCP re-dials after a
/// connection failure.
const RETRY_BASE: SimDuration = SimDuration::from_millis(250);

/// Cap on backoff doublings (250 ms × 2⁷ = 32 s between re-dials).
const RETRY_MAX_EXPONENT: u32 = 7;

/// The deterministic re-dial backoff schedule: `attempt` 0 waits 250 ms,
/// each further attempt doubles, capped at 32 s. Repeated edge refusals
/// walk exactly this sequence.
pub(crate) fn redial_backoff(attempt: u32) -> SimDuration {
    RETRY_BASE * (1u64 << attempt.min(RETRY_MAX_EXPONENT))
}

/// Session-ticket lifetime granted by our servers (a common production
/// value; well beyond any consecutive-browsing session).
const TICKET_LIFETIME: SimDuration = SimDuration::from_secs(7200);

/// Nominal request serialisation time reported as HAR `send`.
const SEND_MS: f64 = 0.1;

/// Everything the client needs to know about one domain it will talk to.
#[derive(Debug, Clone)]
pub(crate) struct DomainInfo {
    /// Hostname (for HAR urls and LocEdge hostname rules).
    pub name: String,
    /// The server node for this domain.
    pub node: NodeId,
    /// Expected round-trip time to that node (initial RTT hint).
    pub rtt: SimDuration,
    /// Whether TCP connections negotiate TLS 1.2 instead of 1.3.
    pub tls12: bool,
    /// Resolver round-trip for this domain's first lookup; `None` when
    /// DNS is not modelled.
    pub dns_delay: Option<SimDuration>,
    /// The hosting provider; `None` for origins.
    pub provider: Option<h3cdn_cdn::Provider>,
}

/// One planned fetch: the resource plus its place in the discovery DAG.
#[derive(Debug, Clone)]
pub(crate) struct PlannedRequest {
    /// The workload resource.
    pub resource: Resource,
    /// Indices of resources revealed when this one completes.
    pub children: Vec<usize>,
}

#[derive(Debug)]
struct ConnState {
    conn: ClientConn,
    domain: DomainId,
    /// The deadline mirrored into [`ClientHost::timeouts`]; kept equal to
    /// `conn.next_timeout()` whenever control returns to the engine.
    armed: Option<SimTime>,
    /// Pump round this connection was created in. A connection born
    /// mid-round sits that round out, exactly like the full scan that
    /// snapshotted the id list at round start.
    born_round: u64,
}

#[derive(Debug, Default, Clone)]
struct EntryState {
    dispatched_at: Option<SimTime>,
    dns_ms: f64,
    conn: Option<ConnId>,
    creator: bool,
    headers_at: Option<SimTime>,
    done_at: Option<SimTime>,
}

/// The simulated browser for one page visit.
#[derive(Debug)]
pub(crate) struct ClientHost {
    me: NodeId,
    mode: ProtocolMode,
    /// Cold Alt-Svc cache: H3-capable domains must be discovered via an
    /// H2 response before H3 is used.
    alt_svc_discovery: bool,
    /// Domains whose `alt-svc: h3` advertisement has been seen (or the
    /// whole H3-capable set when the cache starts warm).
    alt_svc_known: std::collections::BTreeSet<DomainId>,
    /// Domains that can advertise H3 at all.
    h3_domains: std::collections::BTreeSet<DomainId>,
    cc: CcAlgorithm,
    plan: Vec<PlannedRequest>,
    domain_info: HashMap<DomainId, DomainInfo>,
    tickets: TicketStore,
    conns: BTreeMap<ConnId, ConnState>,
    pools: BTreeMap<(DomainId, HttpVersion), Vec<ConnId>>,
    entries: Vec<EntryState>,
    index_of_request: HashMap<u64, usize>,
    next_port: u32,
    started: bool,
    /// Instant the visit begins (first dispatch). `SimTime::ZERO` for a
    /// solo visit; swarm drivers stagger client arrivals with it.
    start_at: SimTime,
    remaining: usize,
    page_done_at: Option<SimTime>,
    har_rng: SimRng,
    /// Domain → instant its name resolution completes.
    dns_resolved_at: BTreeMap<DomainId, SimTime>,
    /// Requests parked until their domain resolves (or until a re-dial
    /// backoff elapses), keyed by ready time.
    parked: BTreeMap<SimTime, Vec<usize>>,
    /// Chrome-style graceful-degradation machinery (H3→H2 races, the
    /// broken-QUIC memory, TCP re-dials). Off by default so fault-free
    /// measurements are byte-identical to the pre-fallback stack.
    h3_fallback: bool,
    /// Cross-visit memory of QUIC-hostile domains.
    broken_quic: BrokenQuicCache,
    /// Pending QUIC-vs-TCP races: H3 connection → instant its TCP
    /// fallback job fires unless the handshake completes first.
    h3_races: BTreeMap<ConnId, SimTime>,
    /// Per-domain re-dial attempts (drives the exponential backoff).
    retry_attempts: BTreeMap<DomainId, u32>,
    /// Connections with potentially-pending output or events. Transports
    /// only release packets in response to input (a packet, a fired
    /// timer, a request), so the pump polls exactly these instead of
    /// scanning every connection per event.
    dirty: BTreeSet<ConnId>,
    /// `(deadline, conn)` pairs mirroring each connection's
    /// `next_timeout()`, so the per-event wakeup re-arm reads one key
    /// instead of scanning every connection.
    timeouts: BTreeSet<(SimTime, ConnId)>,
    /// Current pump round (see [`ConnState::born_round`]).
    pump_round: u64,
    /// Fallback/retry counters for the fault-matrix report.
    resilience: ResilienceStats,
}

impl ClientHost {
    /// Creates the browser for one visit, optionally starting with a
    /// cold Alt-Svc cache (Chrome's discovery behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `plan` is empty or references a domain missing from
    /// `domain_info`.
    #[allow(clippy::too_many_arguments)] // internal builder; the context IS the arguments
    pub fn with_alt_svc(
        me: NodeId,
        mode: ProtocolMode,
        cc: CcAlgorithm,
        plan: Vec<PlannedRequest>,
        domain_info: HashMap<DomainId, DomainInfo>,
        tickets: TicketStore,
        har_seed: u64,
        alt_svc_discovery: bool,
    ) -> Self {
        assert!(!plan.is_empty(), "a page needs at least its root document");
        for p in &plan {
            assert!(
                domain_info.contains_key(&p.resource.domain),
                "no DomainInfo for {}",
                p.resource.domain
            );
        }
        let n = plan.len();
        let index_of_request = plan
            .iter()
            .enumerate()
            .map(|(i, p)| (p.resource.id, i))
            .collect();
        let h3_domains: std::collections::BTreeSet<DomainId> = plan
            .iter()
            .filter(|p| p.resource.hosting.h3_available())
            .map(|p| p.resource.domain)
            .collect();
        let alt_svc_known = if alt_svc_discovery {
            std::collections::BTreeSet::new()
        } else {
            h3_domains.clone()
        };
        ClientHost {
            me,
            mode,
            alt_svc_discovery,
            alt_svc_known,
            h3_domains,
            cc,
            plan,
            domain_info,
            tickets,
            conns: BTreeMap::new(),
            pools: BTreeMap::new(),
            entries: vec![EntryState::default(); n],
            index_of_request,
            next_port: 1,
            started: false,
            start_at: SimTime::ZERO,
            remaining: n,
            page_done_at: None,
            har_rng: SimRng::seed_from(har_seed),
            dns_resolved_at: BTreeMap::new(),
            parked: BTreeMap::new(),
            h3_fallback: false,
            broken_quic: BrokenQuicCache::new(),
            h3_races: BTreeMap::new(),
            retry_attempts: BTreeMap::new(),
            resilience: ResilienceStats::default(),
            dirty: BTreeSet::new(),
            timeouts: BTreeSet::new(),
            pump_round: 0,
        }
    }

    /// Enables (or disables) Chrome-style graceful degradation: the
    /// QUIC-vs-TCP connection race, the broken-QUIC cache, re-dispatch
    /// of stranded requests, and TCP re-dial backoff.
    pub fn set_h3_fallback(&mut self, enabled: bool) {
        self.h3_fallback = enabled;
    }

    /// Seeds the broken-QUIC memory carried over from earlier visits.
    pub fn set_broken_quic(&mut self, cache: BrokenQuicCache) {
        self.broken_quic = cache;
    }

    /// The broken-QUIC memory as of now (carry it to the next visit).
    pub fn broken_quic(&self) -> &BrokenQuicCache {
        &self.broken_quic
    }

    /// Fallback/retry counters accumulated so far.
    pub fn resilience(&self) -> ResilienceStats {
        self.resilience
    }

    /// Number of resources still outstanding.
    pub fn pending_requests(&self) -> usize {
        self.remaining
    }

    /// Why this node still has open work (engine stall diagnostics).
    pub fn stall_detail(&self) -> Option<String> {
        (self.remaining > 0).then(|| {
            format!(
                "{} of {} resources still pending",
                self.remaining,
                self.plan.len()
            )
        })
    }

    /// Whether every resource has completed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Called by the engine at t = 0 and for connection timers.
    pub fn on_wakeup(&mut self, ctx: &mut NodeCtx<'_, WirePacket>) {
        let now = ctx.now();
        if !self.started {
            if now < self.start_at {
                return; // spurious wakeup before this client's arrival
            }
            self.started = true;
            self.dispatch(0, now);
        } else {
            // Fire due timers straight off the armed index (time-ordered,
            // so the walk stops at the first future deadline). Each
            // `on_timeout` only mutates its own connection, so index
            // order is as good as the id order of the old full scan.
            while let Some(&(t, id)) = self.timeouts.first() {
                if t > now {
                    break;
                }
                self.timeouts.remove(&(t, id));
                let Some(st) = self.conns.get_mut(&id) else {
                    continue;
                };
                st.armed = None;
                st.conn.on_timeout(now);
                self.dirty.insert(id);
            }
        }
        let due: Vec<SimTime> = self.parked.range(..=now).map(|(&t, _)| t).collect();
        for t in due {
            for idx in self.parked.remove(&t).expect("due batch") {
                self.dispatch_resolved(idx, now);
            }
        }
        let lost_races: Vec<ConnId> = self
            .h3_races
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in lost_races {
            self.h3_races.remove(&id);
            self.lose_race(id, now);
        }
        self.pump(ctx);
    }

    /// Routes a packet to its connection.
    pub fn on_packet(&mut self, pkt: WirePacket, ctx: &mut NodeCtx<'_, WirePacket>) {
        let id = pkt.conn_id();
        let now = ctx.now();
        if let Some(st) = self.conns.get_mut(&id) {
            st.conn.on_packet(pkt, now);
            self.dirty.insert(id);
        }
        // Packets for dropped connections (late ACKs after teardown)
        // cannot occur in-visit; ignore defensively.
        self.pump(ctx);
    }

    /// Delays the first dispatch to `at` (client arrival staggering in
    /// multi-client swarms; the default is an immediate start).
    pub fn set_start_at(&mut self, at: SimTime) {
        self.start_at = at;
    }

    /// Earliest pending deadline (or the arrival instant before the
    /// visit starts).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if !self.started {
            return Some(self.start_at);
        }
        let conn_deadline = self.timeouts.first().map(|&(t, _)| t);
        let parked = self.parked.keys().next().copied();
        let race = self.h3_races.values().min().copied();
        [conn_deadline, parked, race].into_iter().flatten().min()
    }

    /// Polls every dirty connection until the set drains. The cursor walk
    /// reproduces the order of the old every-connection fixpoint scan:
    /// each round visits ids ascending, a mark behind the cursor waits
    /// for the next round, and a connection born mid-round sits the
    /// round out (the old scan snapshotted the id list at round start).
    fn pump(&mut self, ctx: &mut NodeCtx<'_, WirePacket>) {
        let now = ctx.now();
        self.pump_round += 1;
        let mut cursor: Option<ConnId> = None;
        loop {
            let Some(id) = self.next_dirty(cursor) else {
                if self.dirty.is_empty() {
                    break;
                }
                // Round over: connections born this round become
                // eligible, marks behind the cursor come back around.
                self.pump_round += 1;
                cursor = None;
                continue;
            };
            self.dirty.remove(&id);
            cursor = Some(id);
            // Transmit everything ready on this connection.
            while let Some(st) = self.conns.get_mut(&id) {
                let Some(pkt) = st.conn.poll_transmit(now) else {
                    break;
                };
                let size = ByteCount::new(pkt.wire_bytes());
                ctx.send(id.server, pkt, size);
            }
            // Handle its events (may dispatch onto other conns, marking
            // them dirty).
            while let Some(st) = self.conns.get_mut(&id) {
                let Some(ev) = st.conn.poll_event() else {
                    break;
                };
                self.on_http_event(id, ev, now);
            }
            self.refresh_armed(id);
        }
    }

    /// Smallest dirty connection id after `cursor` that existed when the
    /// current pump round began.
    fn next_dirty(&self, cursor: Option<ConnId>) -> Option<ConnId> {
        use std::ops::Bound;
        let range = match cursor {
            Some(c) => self.dirty.range((Bound::Excluded(c), Bound::Unbounded)),
            None => self.dirty.range(..),
        };
        range
            .copied()
            .find(|id| self.conns[id].born_round < self.pump_round)
    }

    /// Re-mirrors `id`'s `next_timeout()` into the wakeup index after the
    /// connection absorbed input or produced output.
    fn refresh_armed(&mut self, id: ConnId) {
        let Some(st) = self.conns.get_mut(&id) else {
            return;
        };
        let fresh = st.conn.next_timeout();
        if fresh == st.armed {
            return;
        }
        if let Some(old) = st.armed.take() {
            self.timeouts.remove(&(old, id));
        }
        if let Some(t) = fresh {
            self.timeouts.insert((t, id));
        }
        st.armed = fresh;
    }

    fn on_http_event(&mut self, conn_id: ConnId, ev: HttpEvent, now: SimTime) {
        match ev {
            HttpEvent::Connected { .. } => {
                // QUIC won any pending race against TCP.
                self.h3_races.remove(&conn_id);
            }
            HttpEvent::ResponseHeaders { id, at } => {
                let idx = self.index_of_request[&id];
                self.entries[idx].headers_at = Some(at);
                // The response's alt-svc header advertises H3 support.
                if self.alt_svc_discovery {
                    let domain = self.plan[idx].resource.domain;
                    if self.h3_domains.contains(&domain) {
                        self.alt_svc_known.insert(domain);
                    }
                }
            }
            HttpEvent::ResponseComplete { id, at } => {
                let idx = self.index_of_request[&id];
                if self.entries[idx].done_at.is_none() {
                    self.entries[idx].done_at = Some(at);
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        self.page_done_at = Some(at);
                    }
                    let children = self.plan[idx].children.clone();
                    for child in children {
                        self.dispatch(child, now);
                    }
                }
            }
            HttpEvent::TicketIssued { at } => {
                let domain = self.conns[&conn_id].domain;
                self.tickets.insert(h3cdn_transport::tls::Ticket {
                    domain: domain.0,
                    issued_at: at,
                    lifetime: TICKET_LIFETIME,
                });
            }
            HttpEvent::ConnectionClosed { at, reason } => {
                self.on_conn_closed(conn_id, at, reason);
            }
        }
    }

    /// The TCP racer fired before QUIC finished its handshake: abandon
    /// the H3 attempt, remember the domain as QUIC-broken, and move its
    /// requests onto a TCP-based connection (Chrome's delayed-TCP race
    /// resolving in TCP's favour).
    fn lose_race(&mut self, conn_id: ConnId, now: SimTime) {
        let handshaken = self
            .conns
            .get(&conn_id)
            .is_some_and(|st| st.conn.handshake_complete_at().is_some());
        if handshaken {
            return; // QUIC made it after all; nothing to do.
        }
        self.fail_over_from_h3(conn_id, now);
    }

    /// A connection's transport gave up. Without the fallback machinery
    /// the stranded requests stay stranded (the visit aborts — the
    /// baseline the fault matrix quantifies); with it, H3 failures fall
    /// back to TCP and TCP failures re-dial with exponential backoff.
    fn on_conn_closed(&mut self, conn_id: ConnId, at: SimTime, reason: CloseReason) {
        self.h3_races.remove(&conn_id);
        let Some((domain, version)) = self
            .conns
            .get(&conn_id)
            .map(|st| (st.domain, st.conn.version()))
        else {
            return;
        };
        self.remove_from_pool(conn_id, domain, version);
        if !self.h3_fallback {
            return;
        }
        match version {
            HttpVersion::H3 => match reason {
                // A handshake that never completed, or an established
                // connection dying mid-transfer: QUIC is broken here.
                CloseReason::HandshakeTimeout => self.fail_over_from_h3(conn_id, at),
                // The edge's admission controller shed this handshake
                // (CONNECTION_REFUSED). Unlike a timeout the client
                // learns within one RTT; fall back to TCP immediately.
                CloseReason::Refused => self.fail_over_from_h3(conn_id, at),
                CloseReason::IdleTimeout if !self.stranded_entries(conn_id).is_empty() => {
                    self.fail_over_from_h3(conn_id, at);
                }
                // An idle close with nothing outstanding is a healthy
                // end-of-visit teardown, not a QUIC failure.
                CloseReason::IdleTimeout => {}
            },
            HttpVersion::H1 | HttpVersion::H2 => {
                let stranded = self.stranded_entries(conn_id);
                if stranded.is_empty() {
                    return;
                }
                // Re-dial after an exponential backoff; the closed
                // connection is already out of the pool, so the parked
                // requests will open a fresh one when they resume.
                let attempt = self.retry_attempts.entry(domain).or_insert(0);
                let delay = redial_backoff(*attempt);
                *attempt += 1;
                self.resilience.conn_retries += 1;
                self.parked.entry(at + delay).or_default().extend(stranded);
            }
        }
    }

    /// Chrome-style H3→H2 fallback: mark the domain QUIC-broken and
    /// re-dispatch every request stranded on the failed H3 connection
    /// (they will pick a TCP-based version via [`ClientHost::choose_version`]).
    fn fail_over_from_h3(&mut self, conn_id: ConnId, now: SimTime) {
        let Some(domain) = self.conns.get(&conn_id).map(|st| st.domain) else {
            return;
        };
        self.broken_quic.mark(domain.0);
        self.remove_from_pool(conn_id, domain, HttpVersion::H3);
        let stranded = self.stranded_entries(conn_id);
        if stranded.is_empty() {
            return;
        }
        self.resilience.h3_fallbacks += 1;
        if let Some(started) = self
            .conns
            .get(&conn_id)
            .and_then(|st| st.conn.connect_started_at())
        {
            // Time QUIC was given before the browser cut its losses —
            // the per-fallback time-to-fallback penalty.
            self.resilience.fallback_wait += now.saturating_duration_since(started);
        }
        for idx in stranded {
            self.dispatch_resolved(idx, now);
        }
    }

    /// Indices of requests bound to `conn_id` whose responses have not
    /// completed — the work stranded when that connection dies.
    fn stranded_entries(&self, conn_id: ConnId) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, st)| st.conn == Some(conn_id) && st.done_at.is_none())
            .map(|(idx, _)| idx)
            .collect()
    }

    fn remove_from_pool(&mut self, conn_id: ConnId, domain: DomainId, version: HttpVersion) {
        if let Some(pool) = self.pools.get_mut(&(domain, version)) {
            pool.retain(|id| *id != conn_id);
        }
    }

    fn choose_version(&self, resource: &Resource) -> HttpVersion {
        let h1_only = matches!(resource.hosting, Hosting::Origin { h1_only: true, .. });
        match self.mode {
            ProtocolMode::H2Only => {
                if h1_only {
                    HttpVersion::H1
                } else {
                    HttpVersion::H2
                }
            }
            ProtocolMode::H3Enabled => {
                if resource.hosting.h3_available()
                    && self.alt_svc_known.contains(&resource.domain)
                    && !self.broken_quic.is_broken(resource.domain.0)
                {
                    HttpVersion::H3
                } else if h1_only {
                    HttpVersion::H1
                } else {
                    HttpVersion::H2
                }
            }
        }
    }

    /// Entry point for fetching a resource: resolves the domain first
    /// (parking the request until the name is known), then schedules it
    /// onto a connection.
    fn dispatch(&mut self, idx: usize, now: SimTime) {
        let domain = self.plan[idx].resource.domain;
        self.entries[idx].dispatched_at = Some(now);
        let dns_delay = self.domain_info[&domain].dns_delay;
        let ready = match (dns_delay, self.dns_resolved_at.get(&domain)) {
            (None, _) => now,
            (Some(_), Some(&done)) => done.max(now),
            (Some(delay), None) => {
                let done = now + delay;
                self.dns_resolved_at.insert(domain, done);
                done
            }
        };
        if ready > now {
            self.entries[idx].dns_ms = (ready - now).as_millis_f64();
            self.parked.entry(ready).or_default().push(idx);
        } else {
            self.dispatch_resolved(idx, now);
        }
    }

    fn dispatch_resolved(&mut self, idx: usize, now: SimTime) {
        let resource = self.plan[idx].resource.clone();
        let version = self.choose_version(&resource);
        let domain = resource.domain;
        let key = (domain, version);
        let pool = self.pools.entry(key).or_default().clone();

        let (conn_id, creator) = match version {
            HttpVersion::H2 | HttpVersion::H3 => match pool.first() {
                Some(&existing) => (existing, false),
                None => (self.open_conn(domain, version, now), true),
            },
            HttpVersion::H1 => {
                // Reuse an idle connection, else grow the pool to six,
                // else queue on the least-loaded one.
                let idle = pool.iter().copied().find(|id| {
                    matches!(&self.conns[id].conn, ClientConn::H1(c) if !c.is_busy() && c.queued_len() == 0)
                });
                match idle {
                    Some(id) => (id, false),
                    None if pool.len() < H1_POOL_LIMIT => {
                        (self.open_conn(domain, version, now), true)
                    }
                    None => {
                        let least = pool
                            .iter()
                            .copied()
                            .min_by_key(|id| match &self.conns[id].conn {
                                ClientConn::H1(c) => c.queued_len(),
                                _ => usize::MAX,
                            })
                            .expect("H1 pool non-empty");
                        (least, false)
                    }
                }
            }
        };

        self.entries[idx].conn = Some(conn_id);
        self.entries[idx].creator = creator;
        self.conns
            .get_mut(&conn_id)
            .expect("dispatch target exists")
            .conn
            .send_request(RequestMeta {
                id: resource.id,
                header_bytes: resource.request_header_bytes,
            });
        self.dirty.insert(conn_id);
    }

    fn open_conn(&mut self, domain: DomainId, version: HttpVersion, now: SimTime) -> ConnId {
        let info = self.domain_info[&domain].clone();
        let port = self.next_port;
        self.next_port += 1;
        let id = ConnId::new(self.me, info.node, port);
        let ticket = self.tickets.lookup(domain.0, now);
        let tcp = TcpConfig {
            initial_rtt: info.rtt,
            cc: self.cc,
            ..TcpConfig::default()
        };
        let mut conn = match version {
            HttpVersion::H1 => ClientConn::H1(h3cdn_http::h1::H1Client::new(
                id,
                tcp,
                TlsConfig {
                    version: if info.tls12 {
                        TlsVersion::Tls12
                    } else {
                        TlsVersion::Tls13
                    },
                    ticket,
                    early_data: true,
                },
            )),
            HttpVersion::H2 => ClientConn::H2(h3cdn_http::h2::H2Client::new(
                id,
                tcp,
                TlsConfig {
                    version: if info.tls12 {
                        TlsVersion::Tls12
                    } else {
                        TlsVersion::Tls13
                    },
                    ticket,
                    early_data: true,
                },
            )),
            HttpVersion::H3 => {
                let quic = QuicConfig {
                    initial_rtt: info.rtt,
                    cc: self.cc,
                    ..QuicConfig::default()
                };
                ClientConn::H3(h3cdn_http::h3::H3Client::new(id, quic, ticket, true))
            }
        };
        conn.connect(now);
        if version == HttpVersion::H3 && self.h3_fallback {
            // Arm the QUIC-vs-TCP race: if the handshake has not
            // completed by then, a TCP fallback job takes over.
            let delay = (info.rtt * RACE_DELAY_RTTS).max(RACE_DELAY_FLOOR);
            self.h3_races.insert(id, now + delay);
        }
        self.pools.entry((domain, version)).or_default().push(id);
        self.conns.insert(
            id,
            ConnState {
                conn,
                domain,
                armed: None,
                born_round: self.pump_round,
            },
        );
        self.dirty.insert(id);
        id
    }

    /// Finalises the visit into a HAR page plus the updated ticket store.
    ///
    /// # Panics
    ///
    /// Panics if the page did not finish (a simulation bug worth failing
    /// loudly on).
    pub fn into_har(mut self, site: usize, vantage: &str) -> (HarPage, TicketStore) {
        assert!(
            self.page_done_at.is_some(),
            "page {site} did not finish: {} pending",
            self.remaining
        );
        let plt = self.page_done_at.unwrap_or(SimTime::ZERO);
        let mut entries = Vec::with_capacity(self.plan.len());
        for (idx, planned) in self.plan.iter().enumerate() {
            let st = &self.entries[idx];
            let conn_id = st.conn.expect("entry was dispatched");
            let conn = &self.conns[&conn_id].conn;
            let info = &self.domain_info[&planned.resource.domain];
            let dispatched = st.dispatched_at.expect("entry was dispatched");
            let headers_at = st.headers_at.expect("response headers arrived");
            let done_at = st.done_at.expect("response completed");
            // The connection phase starts once the name is resolved.
            let after_dns = dispatched + SimDuration::from_millis_f64(st.dns_ms);
            let ready = conn
                .send_ready_at()
                .expect("connection completed its handshake")
                .max(after_dns);

            let setup_ms = (ready - after_dns).as_millis_f64();
            let (connect_ms, blocked_ms) = if st.creator {
                (setup_ms, 0.0)
            } else {
                (0.0, setup_ms)
            };
            let wait_ms =
                (headers_at.saturating_duration_since(ready).as_millis_f64() - SEND_MS).max(0.0);
            let receive_ms = done_at
                .saturating_duration_since(headers_at)
                .as_millis_f64();

            let response_headers = match info.provider {
                Some(p) => locedge::fingerprint_headers(p, &mut self.har_rng),
                None => locedge::origin_headers(),
            };
            let provider =
                locedge::classify(&response_headers, &info.name).map(|p| p.name().to_string());

            entries.push(HarEntry {
                id: planned.resource.id,
                url: format!("https://{}/res/{}", info.name, planned.resource.id),
                domain: info.name.clone(),
                protocol: conn.version().to_string(),
                provider,
                response_headers,
                body_bytes: planned.resource.body_bytes,
                connection: conn_id.port as u64,
                started_ms: dispatched.as_millis_f64(),
                timing: EntryTiming {
                    blocked_ms,
                    dns_ms: st.dns_ms,
                    connect_ms,
                    send_ms: SEND_MS,
                    wait_ms,
                    receive_ms,
                },
                resumed: conn.was_resumed(),
                early_data: st.creator && conn.used_early_data(),
            });
        }
        let page = HarPage {
            site,
            vantage: vantage.to_string(),
            protocol_mode: self.mode.label().to_string(),
            plt_ms: plt.as_millis_f64(),
            entries,
        };
        (page, self.tickets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redial_backoff_sequence_is_deterministic_and_capped() {
        // The exact schedule a client walks under repeated edge
        // refusals: 250 ms doubling per attempt, capped at 32 s.
        let expected_ms = [250, 500, 1000, 2000, 4000, 8000, 16000, 32000];
        for (attempt, &ms) in expected_ms.iter().enumerate() {
            assert_eq!(
                redial_backoff(attempt as u32),
                SimDuration::from_millis(ms),
                "attempt {attempt}"
            );
        }
        // Past the cap the schedule is flat — an edge that stays
        // overloaded is probed every 32 s, never more aggressively.
        assert_eq!(redial_backoff(8), SimDuration::from_millis(32000));
        assert_eq!(redial_backoff(100), SimDuration::from_millis(32000));
    }
}
