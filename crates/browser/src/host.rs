//! The node enum driven by the `h3cdn-netsim` engine.

use h3cdn_netsim::{Node, NodeCtx, TransportClass};
use h3cdn_sim_core::SimTime;
use h3cdn_transport::WirePacket;

use crate::client::ClientHost;
use crate::server::ServerHost;

/// Either side of a visit, as one engine node type. Both sides carry
/// substantial state, so both are boxed to keep the enum (and the
/// engine's node vector) small.
#[derive(Debug)]
pub(crate) enum SimHost {
    /// The browser.
    Client(Box<ClientHost>),
    /// One domain's server.
    Server(Box<ServerHost>),
}

impl SimHost {
    /// Consumes the node, returning the client when it is one.
    pub fn into_client(self) -> Option<ClientHost> {
        match self {
            SimHost::Client(c) => Some(*c),
            SimHost::Server(_) => None,
        }
    }
}

impl Node for SimHost {
    type Packet = WirePacket;

    fn handle_packet(&mut self, packet: WirePacket, ctx: &mut NodeCtx<'_, WirePacket>) {
        match self {
            SimHost::Client(c) => c.on_packet(packet, ctx),
            SimHost::Server(s) => s.on_packet(packet, ctx),
        }
    }

    fn handle_wakeup(&mut self, ctx: &mut NodeCtx<'_, WirePacket>) {
        match self {
            SimHost::Client(c) => c.on_wakeup(ctx),
            SimHost::Server(s) => s.on_wakeup(ctx),
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        match self {
            SimHost::Client(c) => c.next_wakeup(),
            SimHost::Server(s) => s.next_wakeup(),
        }
    }

    fn classify(packet: &WirePacket) -> TransportClass {
        match packet {
            WirePacket::Quic(_) => TransportClass::Udp,
            WirePacket::Tcp(_) => TransportClass::Tcp,
        }
    }

    fn stall_detail(&self) -> Option<String> {
        match self {
            SimHost::Client(c) => c.stall_detail(),
            SimHost::Server(_) => None,
        }
    }
}
