//! Chrome-style connection resilience: the broken-QUIC memory and the
//! counters the fault-matrix experiment reports.
//!
//! Chrome remembers domains whose QUIC connections failed (its
//! "broken alt-svc" list): after an H3 connection attempt times out or a
//! QUIC-vs-TCP race resolves in TCP's favour, the domain is served over
//! H2 without re-trying QUIC, until the entry expires (five minutes for
//! a first offence). [`BrokenQuicCache`] reproduces that memory across
//! consecutive visits, the way [`TicketStore`] carries session tickets.
//!
//! [`TicketStore`]: h3cdn_transport::tls::TicketStore

use std::collections::BTreeMap;

use h3cdn_sim_core::SimDuration;

/// How long a domain stays in the broken-QUIC cache after a fallback
/// (Chrome's initial broken-alt-svc delay: five minutes).
pub const BROKEN_QUIC_TTL: SimDuration = SimDuration::from_secs(300);

/// Cross-visit memory of domains whose QUIC connectivity failed.
///
/// Entries hold the *remaining* time-to-live rather than an absolute
/// expiry because every visit starts its own clock at `t = 0`; the
/// driver models wall-clock passing between visits with
/// [`BrokenQuicCache::advance`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrokenQuicCache {
    /// Domain id → remaining TTL.
    remaining: BTreeMap<u64, SimDuration>,
}

impl BrokenQuicCache {
    /// An empty cache (no domain is considered broken).
    pub fn new() -> Self {
        BrokenQuicCache::default()
    }

    /// Records a QUIC failure for `domain`: H3 is off the table for the
    /// next [`BROKEN_QUIC_TTL`] of carried time.
    pub fn mark(&mut self, domain: u64) {
        self.remaining.insert(domain, BROKEN_QUIC_TTL);
    }

    /// Whether `domain` is currently remembered as QUIC-broken.
    pub fn is_broken(&self, domain: u64) -> bool {
        self.remaining.contains_key(&domain)
    }

    /// Models `elapsed` wall-clock time passing (a visit's duration, or
    /// the gap between consecutive visits): entries whose TTL runs out
    /// are dropped, re-enabling H3 for those domains.
    pub fn advance(&mut self, elapsed: SimDuration) {
        self.remaining.retain(|_, ttl| {
            if *ttl > elapsed {
                *ttl -= elapsed;
                true
            } else {
                false
            }
        });
    }

    /// Number of domains currently marked broken.
    pub fn len(&self) -> usize {
        self.remaining.len()
    }

    /// Whether no domain is marked broken.
    pub fn is_empty(&self) -> bool {
        self.remaining.is_empty()
    }
}

/// Counters describing how hard the browser had to fight for a visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceStats {
    /// H3→H2 fallbacks performed (races lost by QUIC plus H3 connection
    /// failures with requests stranded).
    pub h3_fallbacks: u64,
    /// Total time spent waiting on QUIC before each fallback fired — the
    /// time-to-fallback penalty, summed over fallbacks.
    pub fallback_wait: SimDuration,
    /// TCP reconnect attempts made after connection failures
    /// (exponential backoff re-dials).
    pub conn_retries: u64,
}

impl Default for ResilienceStats {
    fn default() -> Self {
        ResilienceStats {
            h3_fallbacks: 0,
            fallback_wait: SimDuration::ZERO,
            conn_retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_then_expire() {
        let mut cache = BrokenQuicCache::new();
        assert!(cache.is_empty());
        cache.mark(7);
        assert!(cache.is_broken(7));
        assert!(!cache.is_broken(8));
        // Part of the TTL passes: still broken.
        cache.advance(BROKEN_QUIC_TTL / 2);
        assert!(cache.is_broken(7));
        // The rest passes: H3 is back on the menu.
        cache.advance(BROKEN_QUIC_TTL / 2);
        assert!(!cache.is_broken(7));
        assert!(cache.is_empty());
    }

    #[test]
    fn re_marking_resets_the_ttl() {
        let mut cache = BrokenQuicCache::new();
        cache.mark(1);
        cache.advance(BROKEN_QUIC_TTL - SimDuration::from_secs(1));
        cache.mark(1); // fresh failure, fresh TTL
        cache.advance(SimDuration::from_secs(2));
        assert!(cache.is_broken(1), "re-mark must restart the clock");
    }

    #[test]
    fn advance_is_per_entry() {
        let mut cache = BrokenQuicCache::new();
        cache.mark(1);
        cache.advance(BROKEN_QUIC_TTL / 2);
        cache.mark(2);
        cache.advance(BROKEN_QUIC_TTL / 2);
        assert!(!cache.is_broken(1));
        assert!(cache.is_broken(2));
    }
}
