//! The simulated browser: page loading over the full protocol stack.
//!
//! This crate plays the role Chrome 108 + chrome-har-capturer play in the
//! paper's measurement pipeline. A [`client::ClientHost`] drives one page
//! visit: it discovers resources in waves, schedules them onto pooled
//! H1/H2/H3 connections (per-domain pools, six-connection H1 limit,
//! single multiplexed H2/H3 connection per domain and version), performs
//! TLS/QUIC session resumption from a cross-visit [`TicketStore`], and
//! emits a HAR page with Chrome-compatible per-entry phases.
//!
//! Protocol selection reproduces the study's measurement setup:
//!
//! * **H2 mode** (`--disable-quic`): everything over H2, except
//!   HTTP/1.x-only origins.
//! * **H3 mode** (`enable-quic`): resources whose hosting reports H3
//!   support go over H3; the rest fall back to H2/H1. Because provider
//!   H3 deployment is partial *within* a domain's resources, a domain can
//!   need both an H2 and an H3 connection in H3 mode — the
//!   connection-splitting effect behind the paper's Fig. 7 reuse gap.
//!
//! [`visit::visit_page`] assembles the network (per-domain edge paths
//! from the vantage profile, client access-link rates, optional `tc`-
//! style loss), runs the event loop to quiescence, and returns the HAR.
//!
//! [`TicketStore`]: h3cdn_transport::tls::TicketStore

pub mod client;
pub mod config;
pub mod host;
pub mod resilience;
pub mod server;
pub mod swarm;
pub mod visit;

pub use config::{FaultSpec, ProtocolMode, VisitConfig};
pub use resilience::{BrokenQuicCache, ResilienceStats};
pub use swarm::{run_swarm, ClientOutcome, SwarmConfig, SwarmOutcome};
pub use visit::{
    try_visit_consecutively, try_visit_page, visit_consecutively, visit_page, AbortedVisit,
    VisitOutcome, VisitStats,
};

// The deterministic parallel runner in `h3cdn` moves visit inputs and
// outcomes across worker threads; keep them `Send + Sync` so campaign
// closures borrowing them stay thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProtocolMode>();
    assert_send_sync::<VisitConfig>();
    assert_send_sync::<VisitOutcome>();
    assert_send_sync::<VisitStats>();
    assert_send_sync::<FaultSpec>();
    assert_send_sync::<BrokenQuicCache>();
    assert_send_sync::<ResilienceStats>();
    assert_send_sync::<AbortedVisit>();
    assert_send_sync::<SwarmConfig>();
    assert_send_sync::<SwarmOutcome>();
    assert_send_sync::<ClientOutcome>();
};
