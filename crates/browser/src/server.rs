//! The server side of a visit: one node per domain, accepting TCP and
//! QUIC connections and answering from its catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use h3cdn_http::server::{accept, ServerConn};
use h3cdn_http::Catalog;
use h3cdn_netsim::NodeCtx;
use h3cdn_sim_core::units::ByteCount;
use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::quic::QuicConfig;
use h3cdn_transport::tcp::TcpConfig;
use h3cdn_transport::{ConnId, WirePacket};

/// A domain's server: accepts connections on demand, one [`ServerConn`]
/// per client connection, all sharing the domain's response catalog.
#[derive(Debug)]
pub struct ServerHost {
    catalog: Arc<Catalog>,
    tcp_config: TcpConfig,
    quic_config: QuicConfig,
    /// Surcharge applied to QUIC-served (H3) requests.
    h3_extra_processing: SimDuration,
    conns: BTreeMap<ConnId, ServerConn>,
}

impl ServerHost {
    /// Creates a server for one domain.
    pub fn new(
        catalog: Arc<Catalog>,
        tcp_config: TcpConfig,
        quic_config: QuicConfig,
        h3_extra_processing: SimDuration,
    ) -> Self {
        ServerHost {
            catalog,
            tcp_config,
            quic_config,
            h3_extra_processing,
            conns: BTreeMap::new(),
        }
    }

    /// Total requests served across all connections.
    pub fn requests_served(&self) -> u64 {
        self.conns.values().map(ServerConn::requests_served).sum()
    }

    /// Number of connections accepted.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Handles an incoming packet, accepting a new connection when the
    /// id is unknown.
    pub fn on_packet(&mut self, pkt: WirePacket, ctx: &mut NodeCtx<'_, WirePacket>) {
        let id = pkt.conn_id();
        let now = ctx.now();
        if !self.conns.contains_key(&id) {
            let extra = match pkt {
                WirePacket::Quic(_) => self.h3_extra_processing,
                WirePacket::Tcp(_) => SimDuration::ZERO,
            };
            let conn = accept(
                &pkt,
                id,
                &self.tcp_config,
                &self.quic_config,
                Arc::clone(&self.catalog),
                extra,
            );
            self.conns.insert(id, conn);
        }
        self.conns
            .get_mut(&id)
            .expect("connection just ensured")
            .on_packet(pkt, now);
        self.pump(ctx);
    }

    /// Fires due timers across connections.
    pub fn on_wakeup(&mut self, ctx: &mut NodeCtx<'_, WirePacket>) {
        let now = ctx.now();
        for conn in self.conns.values_mut() {
            if conn.next_timeout().is_some_and(|t| t <= now) {
                conn.on_timeout(now);
            }
        }
        self.pump(ctx);
    }

    /// Earliest timer across connections.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.conns
            .values()
            .filter_map(ServerConn::next_timeout)
            .min()
    }

    fn pump(&mut self, ctx: &mut NodeCtx<'_, WirePacket>) {
        let now = ctx.now();
        for (id, conn) in self.conns.iter_mut() {
            while let Some(pkt) = conn.poll_transmit(now) {
                let size = ByteCount::new(pkt.wire_bytes());
                ctx.send(id.client, pkt, size);
            }
        }
    }
}
