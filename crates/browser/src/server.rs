//! The server side of a visit: one node per domain, accepting TCP and
//! QUIC connections and answering from its catalog.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use h3cdn_cdn::{Admission, EdgeState, EdgeStats, HandshakeKind};
use h3cdn_http::server::{accept, ServerConn};
use h3cdn_http::Catalog;
use h3cdn_netsim::NodeCtx;
use h3cdn_sim_core::units::ByteCount;
use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::quic::{Frame, QuicConfig, QuicPacket};
use h3cdn_transport::tcp::{TcpConfig, TcpSegment};
use h3cdn_transport::{ConnId, WirePacket};

/// Stable key for one connection in the edge's admission ledger: the
/// client node and its ephemeral port (the server node is the edge).
fn admission_key(id: ConnId) -> u64 {
    ((id.client.index() as u64) << 32) | u64::from(id.port)
}

/// Synthesises the wire-level refusal for a shed handshake: QUIC
/// CONNECTION_REFUSED or a TCP RST, both header-only.
fn refusal_packet(kind: HandshakeKind, id: ConnId) -> WirePacket {
    match kind {
        HandshakeKind::Quic => WirePacket::Quic(QuicPacket {
            conn: id,
            from_client: false,
            pn: 0,
            frames: vec![Frame::ConnectionRefused],
        }),
        HandshakeKind::Tcp => WirePacket::Tcp(TcpSegment {
            conn: id,
            from_client: false,
            syn: false,
            rst: true,
            ack_flag: false,
            seq: 0,
            len: 0,
            ack: 0,
            rwnd: 0,
            markers: vec![],
            sack: vec![],
        }),
    }
}

/// A domain's server: accepts connections on demand, one [`ServerConn`]
/// per client connection, all sharing the domain's response catalog.
#[derive(Debug)]
pub(crate) struct ServerHost {
    catalog: Arc<Catalog>,
    tcp_config: TcpConfig,
    quic_config: QuicConfig,
    /// Surcharge applied to QUIC-served (H3) requests.
    h3_extra_processing: SimDuration,
    conns: BTreeMap<ConnId, ServerConn>,
    /// Connections with potentially-pending output (fed a packet or a
    /// fired timer since last drained). The pump polls exactly these.
    dirty: BTreeSet<ConnId>,
    /// `(deadline, conn)` pairs mirroring each connection's
    /// `next_timeout()` — the wakeup re-arm reads one key instead of
    /// scanning every connection.
    timeouts: BTreeSet<(SimTime, ConnId)>,
    /// The deadline currently indexed per connection.
    armed: BTreeMap<ConnId, SimTime>,
    /// Finite-resource admission controller. `None` models the
    /// infinitely provisioned edge of the client-side experiments —
    /// that path is bit-identical to the pre-edge server.
    edge: Option<EdgeState>,
    /// Connections whose resources have been returned to the edge.
    released: BTreeSet<ConnId>,
}

impl ServerHost {
    /// Creates a server for one domain.
    pub fn new(
        catalog: Arc<Catalog>,
        tcp_config: TcpConfig,
        quic_config: QuicConfig,
        h3_extra_processing: SimDuration,
    ) -> Self {
        ServerHost {
            catalog,
            tcp_config,
            quic_config,
            h3_extra_processing,
            conns: BTreeMap::new(),
            dirty: BTreeSet::new(),
            timeouts: BTreeSet::new(),
            armed: BTreeMap::new(),
            edge: None,
            released: BTreeSet::new(),
        }
    }

    /// Installs a finite-resource admission controller for this edge.
    pub fn set_edge(&mut self, edge: EdgeState) {
        self.edge = Some(edge);
    }

    /// The edge's admission/shedding counters (zeroes when the server
    /// runs without an admission controller).
    pub fn edge_stats(&self) -> EdgeStats {
        self.edge.as_ref().map(|e| *e.stats()).unwrap_or_default()
    }

    /// Handles an incoming packet, accepting a new connection when the
    /// id is unknown.
    pub fn on_packet(&mut self, pkt: WirePacket, ctx: &mut NodeCtx<'_, WirePacket>) {
        let id = pkt.conn_id();
        let now = ctx.now();
        if !self.conns.contains_key(&id) {
            let kind = match pkt {
                WirePacket::Quic(_) => HandshakeKind::Quic,
                WirePacket::Tcp(_) => HandshakeKind::Tcp,
            };
            // A ticket miss means the edge evicted this client's
            // server-side session state: early data must be rejected
            // (the client pays the 1-RTT downgrade). Hits — and the
            // edgeless path — keep the configured acceptance.
            let mut accept_early_data = self.quic_config.accept_early_data;
            if let Some(edge) = self.edge.as_mut() {
                let verdict = edge.admit(kind, admission_key(id), id.client.index() as u64, now);
                match verdict {
                    Admission::Refused { .. } => {
                        // Refuse explicitly instead of queueing forever:
                        // an immediate wire-level no (CONNECTION_REFUSED
                        // / RST) that the client's resilience stack can
                        // react to within one RTT. A retransmitted
                        // SYN/Initial re-runs admission, so refusals
                        // recover as budgets refill.
                        let refusal = refusal_packet(kind, id);
                        let size = ByteCount::new(refusal.wire_bytes());
                        ctx.send(id.client, refusal, size);
                        return;
                    }
                    Admission::Admitted { ticket_hit } => {
                        if kind == HandshakeKind::Quic && !ticket_hit {
                            accept_early_data = false;
                        }
                    }
                }
            }
            let extra = match pkt {
                WirePacket::Quic(_) => self.h3_extra_processing,
                WirePacket::Tcp(_) => SimDuration::ZERO,
            };
            let quic_config = QuicConfig {
                accept_early_data,
                ..self.quic_config.clone()
            };
            let conn = accept(
                &pkt,
                id,
                &self.tcp_config,
                &quic_config,
                Arc::clone(&self.catalog),
                extra,
            );
            self.conns.insert(id, conn);
        }
        self.conns
            .get_mut(&id)
            .expect("connection just ensured")
            .on_packet(pkt, now);
        self.dirty.insert(id);
        self.pump(ctx);
    }

    /// Fires due timers across connections.
    pub fn on_wakeup(&mut self, ctx: &mut NodeCtx<'_, WirePacket>) {
        let now = ctx.now();
        // Walk the time-ordered index instead of scanning every conn;
        // `on_timeout` only mutates its own connection, so index order is
        // as good as the id order of the old scan.
        while let Some(&(t, id)) = self.timeouts.first() {
            if t > now {
                break;
            }
            self.timeouts.remove(&(t, id));
            self.armed.remove(&id);
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            conn.on_timeout(now);
            self.dirty.insert(id);
        }
        self.pump(ctx);
    }

    /// Earliest timer across connections.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.timeouts.first().map(|&(t, _)| t)
    }

    fn pump(&mut self, ctx: &mut NodeCtx<'_, WirePacket>) {
        let now = ctx.now();
        // A cooked response whose ready time has passed is released by
        // `poll_transmit` regardless of which event woke the node, so
        // every conn at-or-past its deadline must be polled too, not
        // just the ones fed input by this event.
        for &(t, id) in &self.timeouts {
            if t > now {
                break;
            }
            self.dirty.insert(id);
        }
        while let Some(id) = self.dirty.pop_first() {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            while let Some(pkt) = conn.poll_transmit(now) {
                let size = ByteCount::new(pkt.wire_bytes());
                ctx.send(id.client, pkt, size);
            }
            if let Some(edge) = self.edge.as_mut() {
                if conn.is_closed() && self.released.insert(id) {
                    // Return the slot/memory to the admission budgets
                    // once per connection; later refusals recover
                    // immediately.
                    edge.release(admission_key(id));
                }
            }
            let fresh = conn.next_timeout();
            if fresh != self.armed.get(&id).copied() {
                if let Some(old) = self.armed.remove(&id) {
                    self.timeouts.remove(&(old, id));
                }
                if let Some(t) = fresh {
                    self.timeouts.insert((t, id));
                    self.armed.insert(id, t);
                }
            }
        }
    }
}
