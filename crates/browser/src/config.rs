//! Visit configuration.

use h3cdn_cdn::Vantage;
use h3cdn_netsim::{DynamicsProfile, FaultPlan, QueueDiscipline};
use h3cdn_sim_core::units::DataRate;
use h3cdn_sim_core::SimDuration;
use h3cdn_transport::CcAlgorithm;

/// Which protocols the browser is allowed to use for a visit — the
/// paper's two Chrome instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolMode {
    /// QUIC disabled: H2 everywhere (H1 for HTTP/1.x-only origins).
    H2Only,
    /// `enable-quic`: H3 wherever the resource supports it.
    H3Enabled,
}

impl ProtocolMode {
    /// The HAR `protocol_mode` label.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolMode::H2Only => "h2",
            ProtocolMode::H3Enabled => "h3",
        }
    }
}

impl std::fmt::Display for ProtocolMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything that parameterises one page visit.
///
/// The defaults model the paper's testbed: a CloudLab probe on a
/// gigabit campus link, warm edge caches (the measured second visit), no
/// injected loss, Cubic congestion control, and a small H3 server
/// compute surcharge (the cause of the paper's negative wait-reduction
/// median, §VI-B).
#[derive(Debug, Clone)]
pub struct VisitConfig {
    /// Protocol mode for this visit.
    pub mode: ProtocolMode,
    /// Vantage point the probe runs from.
    pub vantage: Vantage,
    /// Packet-loss percentage injected on the client's paths (Fig. 9's
    /// `tc` sweep; 0.0 / 0.5 / 1.0 in the paper). Added on top of
    /// `baseline_loss_percent`.
    pub loss_percent: f64,
    /// Natural path loss present even with nothing injected: the paper's
    /// "0 %" is `tc` adding nothing to real Internet paths, which still
    /// lose the occasional packet.
    pub baseline_loss_percent: f64,
    /// Use a bursty Gilbert–Elliott process at the same mean instead of
    /// IID loss (the burstiness ablation).
    pub bursty_loss: bool,
    /// Model DNS resolution: the first contact with each domain pays a
    /// resolver round trip (4–25 ms, stable per domain) before the
    /// connection can open; later requests find the name cached.
    pub model_dns: bool,
    /// Model Chrome's Alt-Svc discovery with a cold cache: the first
    /// request to each H3-capable domain goes over H2 and only
    /// *subsequent* requests use H3 (learned from the response's
    /// `alt-svc` header). Off by default — the paper's measured visit
    /// follows a warm-up visit, so the Alt-Svc cache is warm and H3 is
    /// used from the first request.
    pub alt_svc_discovery: bool,
    /// Client downlink rate.
    pub downlink: DataRate,
    /// Client uplink rate.
    pub uplink: DataRate,
    /// Extra server processing for H3 requests.
    pub h3_extra_processing: SimDuration,
    /// When `true`, edge caches are cold and every CDN response pays an
    /// origin fetch (the paper's un-measured first visit).
    pub cold_cache: bool,
    /// Congestion-control algorithm for both stacks.
    pub cc: CcAlgorithm,
    /// Salt for path-jitter sampling. Equal salts give identical paths,
    /// which is what makes H2/H3 visits a paired comparison.
    pub jitter_salt: u64,
    /// Chrome-style graceful degradation: the QUIC-vs-TCP connection
    /// race, the broken-QUIC cache, re-dispatch of stranded requests and
    /// TCP re-dial backoff. Off by default so fault-free measurements
    /// stay bit-identical to the pre-fallback stack; the fault matrix
    /// turns it on for its "with fallback" arm.
    pub h3_fallback: bool,
    /// Scheduled path impairments; `None` leaves the fabric fault-free
    /// (and installs no fault state at all, preserving bit-identical
    /// loss draws).
    pub faults: Option<FaultSpec>,
    /// Queue discipline of the client's access-link serialisers (uplink
    /// and downlink). The default deep tail-drop FIFO reproduces the
    /// pre-discipline fabric bit-identically.
    pub queue: QueueDiscipline,
    /// Continuous path dynamics: a trace profile driven onto every
    /// client↔edge path (same trace phase on each — the client's access
    /// network is what degrades), with the dynamic bottleneck running
    /// [`VisitConfig::queue`]. `None` installs no dynamics state at all,
    /// preserving bit-identical loss draws.
    pub path_dynamics: Option<DynamicsProfile>,
    /// Deterministic watchdog: cap on simulator events for the visit.
    /// A visit that exhausts the budget aborts with the engine's
    /// [`StallReport`](h3cdn_netsim::StallReport) diagnosis instead of
    /// spinning — the crash-safe runner's per-job sim budget. `None`
    /// (default) leaves only the simulated wall-clock deadline.
    pub max_sim_events: Option<u64>,
}

/// Fault injection for a visit: a [`FaultPlan`] installed symmetrically
/// on the client↔server paths of a deterministic subset of the page's
/// domains.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The impairment schedule for each selected path.
    pub plan: FaultPlan,
    /// Fraction of the page's domains whose paths receive the plan
    /// (`1.0` = every path). Selection is a deterministic per-domain
    /// coin seeded off `jitter_salt`, so equal configs fault equal
    /// domains.
    pub domain_fraction: f64,
}

impl FaultSpec {
    /// Applies `plan` to every domain's path.
    pub fn everywhere(plan: FaultPlan) -> Self {
        FaultSpec {
            plan,
            domain_fraction: 1.0,
        }
    }

    /// Whether `domain` is selected for the plan under `salt`.
    pub fn selects(&self, domain: u64, salt: u64) -> bool {
        if self.domain_fraction >= 1.0 {
            return true;
        }
        if self.domain_fraction <= 0.0 {
            return false;
        }
        h3cdn_sim_core::SimRng::seed_from(salt ^ 0x05EC_7FA0)
            .fork(domain)
            .bernoulli(self.domain_fraction)
    }
}

impl Default for VisitConfig {
    fn default() -> Self {
        VisitConfig {
            mode: ProtocolMode::H3Enabled,
            vantage: Vantage::Utah,
            loss_percent: 0.0,
            baseline_loss_percent: 0.04,
            bursty_loss: false,
            model_dns: true,
            alt_svc_discovery: false,
            downlink: DataRate::from_mbps(1000),
            uplink: DataRate::from_mbps(1000),
            h3_extra_processing: SimDuration::from_micros(1500),
            cold_cache: false,
            cc: CcAlgorithm::Cubic,
            jitter_salt: 0x4A17_7E12,
            h3_fallback: false,
            faults: None,
            queue: QueueDiscipline::DropTailDeep,
            path_dynamics: None,
            max_sim_events: None,
        }
    }
}

impl VisitConfig {
    /// Returns a copy in the given protocol mode (the paired-visit
    /// pattern: same config, both modes).
    pub fn with_mode(mut self, mode: ProtocolMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy probing from the given vantage.
    pub fn with_vantage(mut self, vantage: Vantage) -> Self {
        self.vantage = vantage;
        self
    }

    /// Returns a copy with the given injected loss percentage.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is outside `[0, 100]`.
    pub fn with_loss_percent(mut self, percent: f64) -> Self {
        assert!((0.0..=100.0).contains(&percent), "loss percent {percent}");
        self.loss_percent = percent;
        self
    }

    /// Returns a copy with Chrome-style fallback machinery toggled.
    pub fn with_h3_fallback(mut self, enabled: bool) -> Self {
        self.h3_fallback = enabled;
        self
    }

    /// Returns a copy with the given fault schedule installed.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Returns a copy with the given access-link queue discipline.
    pub fn with_queue(mut self, queue: QueueDiscipline) -> Self {
        self.queue = queue;
        self
    }

    /// Returns a copy with the given continuous-dynamics profile driven
    /// onto every client↔edge path (`None` clears it).
    pub fn with_path_dynamics(mut self, profile: Option<DynamicsProfile>) -> Self {
        self.path_dynamics = profile;
        self
    }

    /// Returns a copy with the given sim-event watchdog budget
    /// (`None` disables it).
    pub fn with_max_sim_events(mut self, budget: Option<u64>) -> Self {
        self.max_sim_events = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ProtocolMode::H2Only.to_string(), "h2");
        assert_eq!(ProtocolMode::H3Enabled.label(), "h3");
    }

    #[test]
    fn builders() {
        let cfg = VisitConfig::default()
            .with_mode(ProtocolMode::H2Only)
            .with_vantage(Vantage::Clemson)
            .with_loss_percent(0.5);
        assert_eq!(cfg.mode, ProtocolMode::H2Only);
        assert_eq!(cfg.vantage, Vantage::Clemson);
        assert!((cfg.loss_percent - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loss percent")]
    fn loss_range_checked() {
        let _ = VisitConfig::default().with_loss_percent(101.0);
    }

    #[test]
    fn dynamics_builders() {
        let cfg = VisitConfig::default()
            .with_queue(QueueDiscipline::CoDel)
            .with_path_dynamics(Some(DynamicsProfile::OscillatingBottleneck));
        assert_eq!(cfg.queue, QueueDiscipline::CoDel);
        assert_eq!(
            cfg.path_dynamics,
            Some(DynamicsProfile::OscillatingBottleneck)
        );
        let cleared = cfg.with_path_dynamics(None);
        assert_eq!(cleared.path_dynamics, None);
        // The default must reproduce the pre-dynamics fabric.
        let d = VisitConfig::default();
        assert_eq!(d.queue, QueueDiscipline::DropTailDeep);
        assert_eq!(d.path_dynamics, None);
    }
}
