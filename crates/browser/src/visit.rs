//! Assembling and running one page visit (or a consecutive sequence).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use h3cdn_cdn::{edge, Vantage};
use h3cdn_har::HarPage;
use h3cdn_http::{Catalog, ResponseSpec};
use h3cdn_netsim::{Engine, LossModel, Network, PathSpec, QueueStats};
use h3cdn_sim_core::{SimDuration, SimRng, SimTime};
use h3cdn_transport::quic::QuicConfig;
use h3cdn_transport::tcp::TcpConfig;
use h3cdn_transport::tls::TicketStore;
use h3cdn_web::{DomainId, DomainTable, Webpage};

use crate::client::{ClientHost, DomainInfo, PlannedRequest};
use crate::config::VisitConfig;
use crate::host::SimHost;
use crate::resilience::{BrokenQuicCache, ResilienceStats};
use crate::server::ServerHost;

/// A tracer over the wire-packet type, as accepted by
/// [`visit_page_traced`].
pub(crate) type VisitTracer = h3cdn_netsim::engine::Tracer<h3cdn_transport::WirePacket>;

/// Result of one visit.
#[derive(Debug)]
pub struct VisitOutcome {
    /// The recorded HAR page.
    pub har: HarPage,
    /// The ticket store after the visit (feed it to the next visit for
    /// consecutive browsing).
    pub tickets: TicketStore,
    /// Network-level statistics of the visit.
    pub stats: VisitStats,
    /// How hard the browser had to fight (fallbacks, re-dials).
    pub resilience: ResilienceStats,
    /// The broken-QUIC memory after the visit (feed it to the next visit
    /// alongside the tickets; see [`BrokenQuicCache::advance`]).
    pub broken_quic: BrokenQuicCache,
}

/// A visit the browser could not finish: some responses stayed stranded
/// (connections dead, no fallback path) or the simulated deadline hit.
#[derive(Debug)]
pub struct AbortedVisit {
    /// The page that failed.
    pub site: usize,
    /// Resources still outstanding when the visit gave up.
    pub pending_requests: usize,
    /// Resources that did complete.
    pub completed_requests: usize,
    /// Network-level statistics up to the abort.
    pub stats: VisitStats,
    /// Fallback/retry counters up to the abort.
    pub resilience: ResilienceStats,
    /// The broken-QUIC memory at the abort.
    pub broken_quic: BrokenQuicCache,
    /// The engine's stall diagnosis, when it produced one.
    pub stall: Option<String>,
}

impl std::fmt::Display for AbortedVisit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "page {} aborted: {} of {} resources pending",
            self.site,
            self.pending_requests,
            self.pending_requests + self.completed_requests
        )?;
        if let Some(stall) = &self.stall {
            write!(f, " ({stall})")?;
        }
        Ok(())
    }
}

impl std::error::Error for AbortedVisit {}

/// Packet-level statistics for one visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisitStats {
    /// Packets delivered end-to-end.
    pub packets_delivered: u64,
    /// Packets lost (random loss or queue drop).
    pub packets_lost: u64,
    /// Packets consumed by injected faults (blackouts, UDP blackholes,
    /// loss bursts, collapsed-link overflows).
    pub packets_fault_dropped: u64,
    /// Packets dropped by continuous path dynamics (trace-driven loss or
    /// dynamic-bottleneck queue overflow/AQM); zero when
    /// [`VisitConfig::path_dynamics`] is `None`.
    pub packets_dynamics_dropped: u64,
    /// Aggregate queue statistics across every serialiser in the fabric
    /// (access links, path bottlenecks, dynamic bottlenecks): transmit,
    /// drop and sojourn-time counters for the bufferbloat analysis.
    pub queue: QueueStats,
    /// Simulator events dispatched by the engine during the visit
    /// (arrivals + wakeups) — the denominator of the `sim_throughput`
    /// bench's events/sec metric.
    pub sim_events: u64,
}

/// Wall-clock cap per visit; hitting it means the simulation wedged.
pub(crate) const VISIT_DEADLINE: SimDuration = SimDuration::from_secs(300);

pub(crate) fn vantage_index(v: Vantage) -> u64 {
    match v {
        Vantage::Utah => 1,
        Vantage::Wisconsin => 2,
        Vantage::Clemson => 3,
    }
}

/// Stable per-domain RTT for this vantage: edge RTT with path jitter for
/// CDN domains, a sampled origin distance otherwise. Equal salts give
/// equal paths, so H2/H3 visits compare like-for-like.
pub(crate) fn domain_rtt(
    domains: &DomainTable,
    domain: DomainId,
    vantage: Vantage,
    salt: u64,
) -> SimDuration {
    let mut rng = SimRng::seed_from(salt)
        .fork(domain.0.wrapping_mul(0x9E37_79B9))
        .fork(vantage_index(vantage));
    match domains.provider(domain) {
        Some(p) => Vantage::jitter(vantage.edge_rtt(p), &mut rng),
        None => vantage.sample_origin_rtt(&mut rng),
    }
}

/// Stable per-domain DNS resolver round trip: popular shared domains sit
/// in nearby resolver caches (fast), the long tail needs recursive
/// resolution (slower).
pub(crate) fn domain_dns_delay(domains: &DomainTable, domain: DomainId, salt: u64) -> SimDuration {
    let mut rng = SimRng::seed_from(salt ^ 0x0D25_D25D).fork(domain.0);
    let (lo, hi) = if domains.is_shared(domain) {
        (4.0, 12.0)
    } else {
        (8.0, 25.0)
    };
    SimDuration::from_millis_f64(rng.range_f64(lo, hi))
}

/// Stable per-domain TLS version (a property of the server deployment,
/// so independent of vantage and protocol mode).
pub(crate) fn domain_tls12(domains: &DomainTable, domain: DomainId, salt: u64) -> bool {
    let mut rng = SimRng::seed_from(salt ^ 0x7154_1243).fork(domain.0);
    let share = match domains.provider(domain) {
        Some(p) => {
            h3cdn_cdn::ProviderRegistry::paper_calibrated()
                .profile(p)
                .tls12_share
        }
        // H3-reachable sites run modern stacks: own origins are TLS 1.3.
        None if !domains.is_service(domain) => 0.0,
        None => h3cdn_cdn::provider::non_cdn::TLS12_SHARE,
    };
    rng.bernoulli(share)
}

/// Runs one visit of `page` from `cfg.vantage` in `cfg.mode`, starting
/// from the given ticket store (pass [`TicketStore::new`] for an
/// isolated measurement).
///
/// # Panics
///
/// Panics if the page fails to finish within the simulated deadline —
/// that is a bug in the stack, not a measurement outcome.
pub fn visit_page(
    page: &Webpage,
    domains: &DomainTable,
    cfg: &VisitConfig,
    tickets: TicketStore,
) -> VisitOutcome {
    visit_page_traced(page, domains, cfg, tickets, None)
}

/// As [`visit_page`], with an optional packet tracer installed on the
/// engine (see [`h3cdn_netsim::engine::TraceRecord`]) — the tool for
/// inspecting exactly what crossed the wire during a visit.
pub(crate) fn visit_page_traced(
    page: &Webpage,
    domains: &DomainTable,
    cfg: &VisitConfig,
    tickets: TicketStore,
    tracer: Option<VisitTracer>,
) -> VisitOutcome {
    match run_visit(page, domains, cfg, tickets, BrokenQuicCache::new(), tracer) {
        Ok(outcome) => outcome,
        Err(aborted) => panic!(
            "page {} did not finish within {VISIT_DEADLINE}: {aborted}",
            page.site
        ),
    }
}

/// As [`visit_page`], but a wedged or stranded visit is a *measurement
/// outcome* ([`AbortedVisit`]) rather than a bug — the entry point for
/// fault-injection experiments, where pages legitimately fail. Also
/// accepts the broken-QUIC memory carried from a previous visit (pass
/// [`BrokenQuicCache::new`] for an isolated measurement).
pub fn try_visit_page(
    page: &Webpage,
    domains: &DomainTable,
    cfg: &VisitConfig,
    tickets: TicketStore,
    broken_quic: BrokenQuicCache,
) -> Result<VisitOutcome, Box<AbortedVisit>> {
    run_visit(page, domains, cfg, tickets, broken_quic, None)
}

fn run_visit(
    page: &Webpage,
    domains: &DomainTable,
    cfg: &VisitConfig,
    tickets: TicketStore,
    broken_quic: BrokenQuicCache,
    tracer: Option<VisitTracer>,
) -> Result<VisitOutcome, Box<AbortedVisit>> {
    // 1. Collect the page's distinct domains, deterministically ordered.
    let used: BTreeSet<DomainId> = page.resources.iter().map(|r| r.domain).collect();

    // 2. Network fabric: client + one server node per domain.
    let net_seed = cfg
        .jitter_salt
        .wrapping_mul(31)
        .wrapping_add(page.site as u64)
        .wrapping_add(vantage_index(cfg.vantage) << 32);
    let mut net = Network::new(net_seed);
    let client_node = net.add_node();
    net.set_ingress_link(client_node, cfg.downlink, cfg.queue);
    net.set_egress_link(client_node, cfg.uplink, cfg.queue);
    let total_loss = cfg.loss_percent + cfg.baseline_loss_percent;
    let loss = if cfg.bursty_loss {
        LossModel::bursty_percent(total_loss)
    } else {
        LossModel::iid_percent(total_loss)
    };

    // The same trace phase drives every client↔edge path: it is the
    // client's access network that roams/oscillates, not each path
    // independently.
    let dynamics_trace = cfg.path_dynamics.map(|p| p.trace(net_seed));
    let mut node_of: HashMap<DomainId, h3cdn_netsim::NodeId> = HashMap::new();
    let mut info_of: HashMap<DomainId, DomainInfo> = HashMap::new();
    for &d in &used {
        let node = net.add_node();
        let rtt = domain_rtt(domains, d, cfg.vantage, cfg.jitter_salt);
        net.set_path_symmetric(client_node, node, PathSpec::with_delay(rtt / 2).loss(loss));
        if let Some(spec) = &cfg.faults {
            if spec.selects(d.0, cfg.jitter_salt) {
                net.set_fault_plan_symmetric(client_node, node, spec.plan.clone());
            }
        }
        if let Some(trace) = &dynamics_trace {
            net.set_path_dynamics_symmetric(client_node, node, trace.clone(), cfg.queue);
        }
        node_of.insert(d, node);
        info_of.insert(
            d,
            DomainInfo {
                name: domains.name(d).to_string(),
                node,
                rtt,
                tls12: domain_tls12(domains, d, cfg.jitter_salt),
                dns_delay: cfg
                    .model_dns
                    .then(|| domain_dns_delay(domains, d, cfg.jitter_salt)),
                provider: domains.provider(d),
            },
        );
    }

    // 3. Catalogs: each domain's server knows its resources. Cold caches
    //    pay an origin fetch per CDN resource.
    let origin_rtt = domain_rtt(domains, page.origin_domain, cfg.vantage, cfg.jitter_salt);
    let mut catalogs: BTreeMap<DomainId, Catalog> = BTreeMap::new();
    for r in &page.resources {
        let mut processing = SimDuration::from_nanos(r.processing_us * 1_000);
        if cfg.cold_cache && r.hosting.is_cdn() {
            processing += edge::miss_penalty(origin_rtt);
        }
        catalogs.entry(r.domain).or_default().register(
            r.id,
            ResponseSpec {
                header_bytes: r.response_header_bytes,
                body_bytes: r.body_bytes,
                processing,
                priority: priority_of(r.kind),
            },
        );
    }

    // 4. Hosts, index-aligned with node creation order.
    let plan = build_plan(page);
    let plan_len = plan.len();
    let mut client = ClientHost::with_alt_svc(
        client_node,
        cfg.mode,
        cfg.cc,
        plan,
        info_of,
        tickets,
        net_seed ^ 0x4841_5221, // HAR fingerprint tokens
        cfg.alt_svc_discovery,
    );
    client.set_h3_fallback(cfg.h3_fallback);
    client.set_broken_quic(broken_quic);
    let mut hosts: Vec<SimHost> = vec![SimHost::Client(Box::new(client))];
    for &d in &used {
        let rtt = domain_rtt(domains, d, cfg.vantage, cfg.jitter_salt);
        let tcp = TcpConfig {
            initial_rtt: rtt,
            cc: cfg.cc,
            ..TcpConfig::default()
        };
        let quic = QuicConfig {
            initial_rtt: rtt,
            cc: cfg.cc,
            ..QuicConfig::default()
        };
        hosts.push(SimHost::Server(Box::new(ServerHost::new(
            catalogs.remove(&d).unwrap_or_default().into_shared(),
            tcp,
            quic,
            cfg.h3_extra_processing,
        ))));
    }

    // 5. Run to quiescence.
    let mut engine = Engine::new(net, hosts);
    if let Some(budget) = cfg.max_sim_events {
        engine.set_event_budget(budget);
    }
    if let Some(t) = tracer {
        engine.set_tracer(t);
    }
    let run = engine.run_until_checked(SimTime::ZERO + VISIT_DEADLINE);
    let sim_events = engine.events_dispatched();
    let (net, hosts) = engine.into_parts();
    let stats = VisitStats {
        packets_delivered: net.delivered(),
        packets_lost: net.lost(),
        packets_fault_dropped: net.fault_dropped(),
        packets_dynamics_dropped: net.dynamics_dropped(),
        queue: net.queue_stats(),
        sim_events,
    };
    let client = hosts
        .into_iter()
        .next()
        .and_then(SimHost::into_client)
        .expect("client is node 0");
    if run.is_err() || !client.is_done() {
        let pending = client.pending_requests();
        return Err(Box::new(AbortedVisit {
            site: page.site,
            pending_requests: pending,
            completed_requests: plan_len - pending,
            stats,
            resilience: client.resilience(),
            broken_quic: client.broken_quic().clone(),
            stall: run.err().map(|report| report.to_string()),
        }));
    }
    let resilience = client.resilience();
    let broken_quic = client.broken_quic().clone();
    let (har, tickets) = client.into_har(page.site, cfg.vantage.name());
    Ok(VisitOutcome {
        har,
        tickets,
        stats,
        resilience,
        broken_quic,
    })
}

/// Visits pages in order, carrying the ticket store forward — the
/// paper's §VI-D consecutive-browsing methodology (connections torn
/// down, caches cleared, session state kept).
pub fn visit_consecutively(
    pages: &[&Webpage],
    domains: &DomainTable,
    cfg: &VisitConfig,
    mut tickets: TicketStore,
) -> (Vec<HarPage>, TicketStore) {
    let mut hars = Vec::with_capacity(pages.len());
    for page in pages {
        let outcome = visit_page(page, domains, cfg, tickets);
        tickets = outcome.tickets;
        hars.push(outcome.har);
    }
    (hars, tickets)
}

/// As [`visit_consecutively`], but an aborted page is a typed outcome
/// rather than a panic: the pass stops at the first [`AbortedVisit`],
/// which reports *which* page in the sequence failed. The crash-safe
/// runner's entry point for consecutive passes.
///
/// # Errors
///
/// The first page that wedges or strands aborts the pass.
pub fn try_visit_consecutively(
    pages: &[&Webpage],
    domains: &DomainTable,
    cfg: &VisitConfig,
    mut tickets: TicketStore,
) -> Result<(Vec<HarPage>, TicketStore), Box<AbortedVisit>> {
    let mut hars = Vec::with_capacity(pages.len());
    for page in pages {
        let outcome = try_visit_page(page, domains, cfg, tickets, BrokenQuicCache::new())?;
        tickets = outcome.tickets;
        hars.push(outcome.har);
    }
    Ok((hars, tickets))
}

/// Chrome-style priority classes per resource kind: render-blocking
/// content first, late visual content last.
pub(crate) fn priority_of(kind: h3cdn_web::ResourceKind) -> u8 {
    use h3cdn_http::types::priority;
    use h3cdn_web::ResourceKind;
    match kind {
        ResourceKind::Html
        | ResourceKind::Script
        | ResourceKind::Stylesheet
        | ResourceKind::Font => priority::HIGH,
        ResourceKind::Other => priority::NORMAL,
        ResourceKind::Image | ResourceKind::Media => priority::LOW,
    }
}

pub(crate) fn build_plan(page: &Webpage) -> Vec<PlannedRequest> {
    let mut plan: Vec<PlannedRequest> = page
        .resources
        .iter()
        .map(|r| PlannedRequest {
            resource: r.clone(),
            children: Vec::new(),
        })
        .collect();
    for (idx, r) in page.resources.iter().enumerate() {
        if let Some(parent) = r.parent {
            plan[parent].children.push(idx);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultSpec, ProtocolMode};
    use crate::resilience::BROKEN_QUIC_TTL;
    use h3cdn_netsim::FaultPlan;
    use h3cdn_web::{generate, WorkloadSpec};

    fn small_corpus() -> h3cdn_web::Corpus {
        generate(&WorkloadSpec::default().with_pages(6).with_seed(42))
    }

    fn h3_rich_page(corpus: &h3cdn_web::Corpus) -> &Webpage {
        corpus
            .pages
            .iter()
            .find(|p| p.h3_enabled_cdn_count() > 0)
            .expect("an H3-capable page exists")
    }

    fn visit(corpus: &h3cdn_web::Corpus, site: usize, mode: ProtocolMode) -> HarPage {
        let cfg = VisitConfig::default().with_mode(mode);
        visit_page(
            &corpus.pages[site],
            &corpus.domains,
            &cfg,
            TicketStore::new(),
        )
        .har
    }

    #[test]
    fn both_modes_complete_and_pair_up() {
        let corpus = small_corpus();
        let h2 = visit(&corpus, 0, ProtocolMode::H2Only);
        let h3 = visit(&corpus, 0, ProtocolMode::H3Enabled);
        assert_eq!(h2.entries.len(), corpus.pages[0].request_count());
        assert_eq!(h2.entries.len(), h3.entries.len());
        assert!(h2.plt_ms > 0.0 && h3.plt_ms > 0.0);
        // Every entry must have sane phases.
        for e in h2.entries.iter().chain(&h3.entries) {
            assert!(e.timing.connect_ms >= 0.0);
            assert!(e.timing.wait_ms >= 0.0);
            assert!(e.timing.receive_ms >= 0.0);
            assert!(e.finished_ms() <= h2.plt_ms.max(h3.plt_ms) + 1e-6);
        }
    }

    #[test]
    fn visits_are_deterministic() {
        let corpus = small_corpus();
        let a = visit(&corpus, 1, ProtocolMode::H3Enabled);
        let b = visit(&corpus, 1, ProtocolMode::H3Enabled);
        assert_eq!(a.plt_ms, b.plt_ms);
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea.timing.connect_ms, eb.timing.connect_ms);
            assert_eq!(ea.timing.receive_ms, eb.timing.receive_ms);
        }
    }

    #[test]
    fn h3_mode_uses_h3_exactly_for_h3_capable_resources() {
        let corpus = small_corpus();
        let page = &corpus.pages[0];
        let har = visit(&corpus, 0, ProtocolMode::H3Enabled);
        let expected: usize = page
            .resources
            .iter()
            .filter(|r| r.hosting.h3_available())
            .count();
        assert_eq!(har.entries_with_protocol("h3").count(), expected);
        // And the H2-only run never uses H3.
        let h2 = visit(&corpus, 0, ProtocolMode::H2Only);
        assert_eq!(h2.entries_with_protocol("h3").count(), 0);
    }

    #[test]
    fn mean_plt_reduction_is_positive() {
        let corpus = small_corpus();
        let mut total = 0.0;
        for site in 0..corpus.pages.len() {
            let h2 = visit(&corpus, site, ProtocolMode::H2Only);
            let h3 = visit(&corpus, site, ProtocolMode::H3Enabled);
            total += h2.plt_ms - h3.plt_ms;
        }
        let mean = total / corpus.pages.len() as f64;
        assert!(mean > 0.0, "H3 must reduce PLT on average, got {mean:.2}ms");
    }

    #[test]
    fn connections_are_reused_within_a_page() {
        let corpus = small_corpus();
        let har = visit(&corpus, 0, ProtocolMode::H2Only);
        assert!(
            har.reused_connection_count() > har.entries.len() / 2,
            "most entries should reuse pooled connections: {} of {}",
            har.reused_connection_count(),
            har.entries.len()
        );
    }

    #[test]
    fn h2_mode_reuses_more_than_h3_mode() {
        // Partial per-resource H3 availability splits domains across two
        // connections in H3 mode — Fig. 7a's reuse gap.
        let corpus = small_corpus();
        let mut h2_total = 0usize;
        let mut h3_total = 0usize;
        for site in 0..corpus.pages.len() {
            h2_total += visit(&corpus, site, ProtocolMode::H2Only).reused_connection_count();
            h3_total += visit(&corpus, site, ProtocolMode::H3Enabled).reused_connection_count();
        }
        assert!(
            h2_total > h3_total,
            "H2 mode must reuse more: {h2_total} vs {h3_total}"
        );
    }

    #[test]
    fn consecutive_visits_resume_sessions() {
        let corpus = small_corpus();
        let cfg = VisitConfig::default();
        let pages: Vec<&Webpage> = corpus.pages.iter().take(3).collect();
        let (hars, tickets) =
            visit_consecutively(&pages, &corpus.domains, &cfg, TicketStore::new());
        // First page: no prior tickets, nothing resumed.
        assert_eq!(hars[0].resumed_connection_count(), 0);
        // Later pages share CDN domains with earlier ones → resumption.
        let later: usize = hars[1..]
            .iter()
            .map(HarPage::resumed_connection_count)
            .sum();
        assert!(later > 0, "shared providers must trigger resumption");
        assert!(!tickets.is_empty());
    }

    #[test]
    fn loss_increases_plt() {
        let corpus = small_corpus();
        let page = &corpus.pages[2];
        let clean = visit_page(
            page,
            &corpus.domains,
            &VisitConfig::default().with_mode(ProtocolMode::H2Only),
            TicketStore::new(),
        )
        .har;
        let lossy = visit_page(
            page,
            &corpus.domains,
            &VisitConfig::default()
                .with_mode(ProtocolMode::H2Only)
                .with_loss_percent(2.0),
            TicketStore::new(),
        )
        .har;
        assert!(
            lossy.plt_ms > clean.plt_ms,
            "2% loss must slow the page: {} vs {}",
            clean.plt_ms,
            lossy.plt_ms
        );
    }

    #[test]
    fn cdn_entries_are_classified_by_locedge() {
        let corpus = small_corpus();
        let page = &corpus.pages[0];
        let har = visit(&corpus, 0, ProtocolMode::H3Enabled);
        let classified = har.entries.iter().filter(|e| e.provider.is_some()).count();
        let cdn = page.cdn_resources().count();
        assert_eq!(classified, cdn, "every CDN entry classified, no origin");
    }

    #[test]
    fn connection_pools_respect_protocol_rules() {
        let corpus = small_corpus();
        // H2/H3 use exactly one connection per (domain, version); H1-only
        // domains are capped at six parallel connections.
        for site in 0..corpus.pages.len() {
            let har = visit(&corpus, site, ProtocolMode::H3Enabled);
            let mut conns_per: std::collections::BTreeMap<
                (String, String),
                std::collections::BTreeSet<u64>,
            > = Default::default();
            for e in &har.entries {
                conns_per
                    .entry((e.domain.clone(), e.protocol.clone()))
                    .or_default()
                    .insert(e.connection);
            }
            for ((domain, protocol), conns) in &conns_per {
                match protocol.as_str() {
                    "h2" | "h3" => assert_eq!(
                        conns.len(),
                        1,
                        "{domain} {protocol}: multiplexed protocols pool one connection"
                    ),
                    _ => assert!(
                        conns.len() <= 6,
                        "{domain}: H1 pool capped at six, got {}",
                        conns.len()
                    ),
                }
            }
        }
    }

    #[test]
    fn alt_svc_discovery_starts_domains_on_h2() {
        let corpus = small_corpus();
        // Pick a page with H3-capable CDN domains.
        let page = corpus
            .pages
            .iter()
            .find(|p| p.h3_enabled_cdn_count() > 3)
            .expect("an H3-rich page exists");
        let cfg = VisitConfig {
            alt_svc_discovery: true,
            ..VisitConfig::default()
        };
        let har = visit_page(page, &corpus.domains, &cfg, TicketStore::new()).har;
        // Per H3-capable domain: the earliest-dispatched entry went H2
        // (discovery), and H3 appears only after it.
        let mut h3_started = std::collections::BTreeMap::new();
        let mut h2_first = std::collections::BTreeMap::new();
        for e in &har.entries {
            if e.protocol == "h3" {
                let t = h3_started.entry(e.domain.clone()).or_insert(e.started_ms);
                *t = t.min(e.started_ms);
            }
        }
        for e in &har.entries {
            if e.protocol == "h2" && h3_started.contains_key(&e.domain) {
                let t = h2_first.entry(e.domain.clone()).or_insert(e.started_ms);
                *t = t.min(e.started_ms);
            }
        }
        assert!(!h3_started.is_empty(), "discovery still reaches H3");
        for (domain, h3_t) in &h3_started {
            let h2_t = h2_first
                .get(domain)
                .unwrap_or_else(|| panic!("{domain} has no discovery H2 request"));
            assert!(h2_t < h3_t, "{domain}: H2 discovery must precede H3");
        }
        // And the warm-cache default uses H3 immediately (more H3 entries).
        let warm = visit_page(
            page,
            &corpus.domains,
            &VisitConfig::default(),
            TicketStore::new(),
        )
        .har;
        assert!(
            warm.entries_with_protocol("h3").count() > har.entries_with_protocol("h3").count(),
            "cold discovery must cost some H3 requests"
        );
    }

    #[test]
    fn enabling_fallback_on_clean_paths_is_bit_identical() {
        // The fallback machinery must be pure insurance: with healthy
        // paths the QUIC-vs-TCP race never fires (a clean handshake is
        // one RTT, the race waits five), so every number matches the
        // pre-fallback stack exactly.
        let corpus = small_corpus();
        let page = &corpus.pages[0];
        let base = visit_page(
            page,
            &corpus.domains,
            &VisitConfig::default(),
            TicketStore::new(),
        );
        let with_fb = visit_page(
            page,
            &corpus.domains,
            &VisitConfig::default().with_h3_fallback(true),
            TicketStore::new(),
        );
        assert_eq!(base.har.plt_ms, with_fb.har.plt_ms);
        assert_eq!(base.stats, with_fb.stats);
        assert_eq!(with_fb.resilience.h3_fallbacks, 0);
        assert_eq!(with_fb.resilience.conn_retries, 0);
        assert!(with_fb.broken_quic.is_empty());
        for (a, b) in base.har.entries.iter().zip(&with_fb.har.entries) {
            assert_eq!(a.timing.connect_ms, b.timing.connect_ms);
            assert_eq!(a.timing.wait_ms, b.timing.wait_ms);
            assert_eq!(a.timing.receive_ms, b.timing.receive_ms);
        }
    }

    #[test]
    fn udp_blackhole_strands_h3_without_fallback() {
        // The paper's failure mode: QUIC silently blocked, no graceful
        // degradation -> the visit cannot finish.
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        let cfg = VisitConfig::default()
            .with_faults(FaultSpec::everywhere(FaultPlan::udp_blackhole_always()));
        let aborted = try_visit_page(
            page,
            &corpus.domains,
            &cfg,
            TicketStore::new(),
            BrokenQuicCache::new(),
        )
        .expect_err("H3 requests into a UDP blackhole must strand");
        assert!(aborted.pending_requests > 0);
        assert_eq!(
            aborted.pending_requests + aborted.completed_requests,
            page.request_count()
        );
        assert!(aborted.stats.packets_fault_dropped > 0);
        assert!(
            aborted.to_string().contains("resources pending"),
            "diagnosis names the stranded work: {aborted}"
        );
    }

    #[test]
    fn udp_blackhole_with_fallback_completes_over_h2() {
        // Chrome-style graceful degradation: the blackholed QUIC
        // connections lose their races, the domains are remembered as
        // broken, and every request lands over TCP.
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        let cfg = VisitConfig::default()
            .with_faults(FaultSpec::everywhere(FaultPlan::udp_blackhole_always()))
            .with_h3_fallback(true);
        let outcome = try_visit_page(
            page,
            &corpus.domains,
            &cfg,
            TicketStore::new(),
            BrokenQuicCache::new(),
        )
        .expect("fallback must rescue the page");
        assert_eq!(outcome.har.entries.len(), page.request_count());
        assert_eq!(outcome.har.entries_with_protocol("h3").count(), 0);
        assert!(outcome.resilience.h3_fallbacks > 0);
        assert!(outcome.resilience.fallback_wait > SimDuration::ZERO);
        assert!(!outcome.broken_quic.is_empty());
        assert!(outcome.stats.packets_fault_dropped > 0);

        // The rescue is not free: the same page in plain H2 mode (which
        // never touches UDP) is faster and never hits the fault.
        let h2_cfg = VisitConfig::default()
            .with_mode(ProtocolMode::H2Only)
            .with_faults(FaultSpec::everywhere(FaultPlan::udp_blackhole_always()));
        let h2 = visit_page(page, &corpus.domains, &h2_cfg, TicketStore::new());
        assert_eq!(h2.stats.packets_fault_dropped, 0);
        assert!(
            outcome.har.plt_ms > h2.har.plt_ms,
            "time-to-fallback penalty must show: {} vs {}",
            outcome.har.plt_ms,
            h2.har.plt_ms
        );
    }

    #[test]
    fn broken_quic_memory_carries_across_visits_and_expires() {
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        // Visit 1: blackholed, fallback on -> domains remembered broken.
        let faulted = VisitConfig::default()
            .with_faults(FaultSpec::everywhere(FaultPlan::udp_blackhole_always()))
            .with_h3_fallback(true);
        let first = try_visit_page(
            page,
            &corpus.domains,
            &faulted,
            TicketStore::new(),
            BrokenQuicCache::new(),
        )
        .expect("fallback completes the faulted visit");
        let mut carried = first.broken_quic;
        assert!(!carried.is_empty());

        // Visit 2: the fault is gone, but within the TTL the browser
        // still refuses QUIC for the remembered domains.
        let clean = VisitConfig::default().with_h3_fallback(true);
        let second = try_visit_page(
            page,
            &corpus.domains,
            &clean,
            TicketStore::new(),
            carried.clone(),
        )
        .expect("clean visit completes");
        assert_eq!(
            second.har.entries_with_protocol("h3").count(),
            0,
            "broken-QUIC memory must suppress H3 within its TTL"
        );

        // The TTL runs out between visits: H3 is back on the menu.
        carried.advance(BROKEN_QUIC_TTL);
        assert!(carried.is_empty());
        let third = try_visit_page(page, &corpus.domains, &clean, TicketStore::new(), carried)
            .expect("clean visit completes");
        assert!(
            third.har.entries_with_protocol("h3").count() > 0,
            "expired entries re-enable H3"
        );
    }

    #[test]
    fn alt_svc_discovery_composes_with_fallback() {
        // Cold Alt-Svc cache + blackholed QUIC: discovery sends the
        // first request per domain over H2, the learned H3 attempts then
        // fail and fall back -- the page still completes with no H3.
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        let cfg = VisitConfig {
            alt_svc_discovery: true,
            ..VisitConfig::default()
                .with_faults(FaultSpec::everywhere(FaultPlan::udp_blackhole_always()))
                .with_h3_fallback(true)
        };
        let outcome = try_visit_page(
            page,
            &corpus.domains,
            &cfg,
            TicketStore::new(),
            BrokenQuicCache::new(),
        )
        .expect("discovery + fallback must still finish the page");
        assert_eq!(outcome.har.entries.len(), page.request_count());
        assert_eq!(outcome.har.entries_with_protocol("h3").count(), 0);
    }

    #[test]
    fn mid_visit_blackout_recovers_with_fallback() {
        // A scheduled full blackout early in the visit: both stacks see
        // it, and the fallback machinery re-dials TCP connections that
        // died while it lasted.
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        let plan = FaultPlan::new()
            .blackout(
                SimTime::ZERO + SimDuration::from_millis(50),
                SimTime::ZERO + SimDuration::from_millis(1500),
            )
            .unwrap();
        let cfg = VisitConfig::default()
            .with_faults(FaultSpec::everywhere(plan))
            .with_h3_fallback(true);
        let outcome = try_visit_page(
            page,
            &corpus.domains,
            &cfg,
            TicketStore::new(),
            BrokenQuicCache::new(),
        )
        .expect("the blackout ends; the visit must recover");
        assert_eq!(outcome.har.entries.len(), page.request_count());
        assert!(outcome.stats.packets_fault_dropped > 0);
    }

    #[test]
    fn dns_is_paid_once_per_domain() {
        let corpus = small_corpus();
        let page = &corpus.pages[0];
        let har = visit_page(
            page,
            &corpus.domains,
            &VisitConfig::default(),
            TicketStore::new(),
        )
        .har;
        // Per domain, exactly the entries dispatched before resolution
        // completes carry dns time; at least the first one does.
        let mut per_domain: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for e in &har.entries {
            per_domain
                .entry(e.domain.as_str())
                .or_default()
                .push(e.timing.dns_ms);
        }
        for (domain, dns) in &per_domain {
            assert!(
                dns.iter().any(|&d| d > 0.0),
                "first contact with {domain} must resolve"
            );
        }
        // Disabling the model zeroes the phase and shortens the page.
        let no_dns = VisitConfig {
            model_dns: false,
            ..VisitConfig::default()
        };
        let har2 = visit_page(page, &corpus.domains, &no_dns, TicketStore::new()).har;
        assert!(har2.entries.iter().all(|e| e.timing.dns_ms == 0.0));
        assert!(har2.plt_ms < har.plt_ms);
    }

    #[test]
    fn cold_cache_slows_the_visit() {
        let corpus = small_corpus();
        let page = &corpus.pages[3];
        // Loss-free so the comparison is purely the cache state (under
        // baseline loss the two runs see different loss draws).
        let warm_cfg = VisitConfig {
            baseline_loss_percent: 0.0,
            ..VisitConfig::default()
        };
        let cold_cfg = VisitConfig {
            cold_cache: true,
            baseline_loss_percent: 0.0,
            ..VisitConfig::default()
        };
        let warm = visit_page(page, &corpus.domains, &warm_cfg, TicketStore::new()).har;
        let cold = visit_page(page, &corpus.domains, &cold_cfg, TicketStore::new()).har;
        // Every CDN entry pays the origin fetch in its wait phase; the
        // page-level PLT may or may not move (the critical path can be an
        // origin chain, which caches don't touch).
        let wait_sum =
            |har: &HarPage| -> f64 { har.entries.iter().map(|e| e.timing.wait_ms).sum() };
        assert!(
            wait_sum(&cold) > wait_sum(&warm) + 100.0,
            "cold-edge waits must grow: {} vs {}",
            wait_sum(&warm),
            wait_sum(&cold)
        );
        // No assertion on PLT: with contention, slowing individual
        // responses can *reschedule* the page such that the final entry
        // lands earlier — max-completion is not monotone in per-request
        // delay.
    }

    #[test]
    fn path_dynamics_visits_complete_and_are_deterministic() {
        use h3cdn_netsim::DynamicsProfile;
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        for profile in DynamicsProfile::ALL {
            let cfg = VisitConfig::default().with_path_dynamics(Some(profile));
            let a = visit_page(page, &corpus.domains, &cfg, TicketStore::new());
            let b = visit_page(page, &corpus.domains, &cfg, TicketStore::new());
            assert_eq!(
                a.har.entries.len(),
                page.request_count(),
                "{profile}: the page must complete under dynamics"
            );
            assert_eq!(a.har.plt_ms, b.har.plt_ms, "{profile}");
            assert_eq!(a.stats, b.stats, "{profile}: stats must replay bitwise");
            assert!(
                a.stats.queue.transmitted > 0,
                "{profile}: dynamic bottlenecks must carry traffic"
            );
            // The dynamic bottleneck slows the page relative to the
            // static gigabit fabric.
            let static_plt = visit_page(
                page,
                &corpus.domains,
                &VisitConfig::default(),
                TicketStore::new(),
            )
            .har
            .plt_ms;
            assert!(
                a.har.plt_ms > static_plt,
                "{profile}: dynamics must cost time ({static_plt:.1}ms vs {:.1}ms)",
                a.har.plt_ms
            );
        }
    }

    #[test]
    fn no_dynamics_means_no_dynamics_drops() {
        let corpus = small_corpus();
        let stats = visit_page(
            &corpus.pages[0],
            &corpus.domains,
            &VisitConfig::default(),
            TicketStore::new(),
        )
        .stats;
        assert_eq!(stats.packets_dynamics_dropped, 0);
    }

    /// A page heavy enough (≈2.1 MB over ~95 requests) that slow-start
    /// overshoot builds a real standing queue in the oscillating
    /// bottleneck's buffer — the light `small_corpus` pages finish
    /// before any queue forms and every CC/discipline ties exactly.
    fn heavy_corpus() -> h3cdn_web::Corpus {
        generate(&WorkloadSpec::default().with_pages(8).with_seed(42))
    }

    #[test]
    fn bbr_carries_less_standing_queue_than_cubic() {
        use h3cdn_netsim::DynamicsProfile;
        use h3cdn_transport::CcAlgorithm;
        // Deep tail-drop buffers on an oscillating 40↔4 Mbps bottleneck:
        // Cubic fills the buffer until loss, BBR models the pipe. The
        // bufferbloat gap shows up as mean queue sojourn.
        let corpus = heavy_corpus();
        let page = &corpus.pages[6];
        let base =
            VisitConfig::default().with_path_dynamics(Some(DynamicsProfile::OscillatingBottleneck));
        let cubic = visit_page(page, &corpus.domains, &base, TicketStore::new()).stats;
        let bbr_cfg = VisitConfig {
            cc: CcAlgorithm::Bbr,
            ..base
        };
        let bbr = visit_page(page, &corpus.domains, &bbr_cfg, TicketStore::new()).stats;
        assert!(
            bbr.queue.mean_sojourn_ms() < cubic.queue.mean_sojourn_ms(),
            "BBR must queue less than Cubic: {:.2}ms vs {:.2}ms",
            bbr.queue.mean_sojourn_ms(),
            cubic.queue.mean_sojourn_ms()
        );
    }

    #[test]
    fn codel_bounds_sojourn_below_deep_droptail() {
        use h3cdn_netsim::{DynamicsProfile, QueueDiscipline};
        let corpus = heavy_corpus();
        let page = &corpus.pages[6];
        let base =
            VisitConfig::default().with_path_dynamics(Some(DynamicsProfile::OscillatingBottleneck));
        let tail = visit_page(page, &corpus.domains, &base, TicketStore::new()).stats;
        let codel_cfg = base.with_queue(QueueDiscipline::CoDel);
        let codel = visit_page(page, &corpus.domains, &codel_cfg, TicketStore::new()).stats;
        assert!(
            codel.queue.mean_sojourn_ms() < tail.queue.mean_sojourn_ms(),
            "CoDel must bound sojourn: {:.2}ms vs droptail {:.2}ms",
            codel.queue.mean_sojourn_ms(),
            tail.queue.mean_sojourn_ms()
        );
        assert!(
            codel.queue.aqm_dropped > 0,
            "CoDel must have engaged on the standing queue"
        );
    }
}
