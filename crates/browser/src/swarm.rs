//! Many concurrent simulated browsers against shared, finite edges.
//!
//! A solo [`crate::visit_page`] gives every client its own copy of the
//! server side; overload never happens by construction. The swarm
//! drives `clients` browsers — staggered arrivals, one visit each of
//! the same page — against **one** [`crate::server::ServerHost`] per
//! domain, optionally governed by a finite-resource
//! [`EdgeState`](h3cdn_cdn::EdgeState) admission controller. That is
//! where fallback storms live: an edge past its handshake-CPU or
//! connection budget refuses new QUIC handshakes, every refused client
//! marks the domain QUIC-broken and stampedes onto TCP, and the edge
//! either absorbs the cheap handshakes or sheds those too.
//!
//! With `clients == 1`, no stagger, and no edge, the swarm reproduces
//! the solo visit **bit for bit** — same network seed, same node
//! creation order, same host drive — so every client-side result built
//! on [`crate::visit_page`] is the control row of every swarm sweep.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use h3cdn_cdn::{edge, EdgeConfig, EdgeConfigError, EdgeState, EdgeStats};
use h3cdn_har::HarPage;
use h3cdn_http::{Catalog, ResponseSpec};
use h3cdn_netsim::{Engine, LossModel, Network, PathSpec};
use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::quic::QuicConfig;
use h3cdn_transport::tcp::TcpConfig;
use h3cdn_transport::tls::TicketStore;
use h3cdn_web::{DomainTable, Webpage};

use crate::client::{ClientHost, DomainInfo};
use crate::config::VisitConfig;
use crate::host::SimHost;
use crate::resilience::{BrokenQuicCache, ResilienceStats};
use crate::server::ServerHost;
use crate::visit::{
    build_plan, domain_dns_delay, domain_rtt, domain_tls12, priority_of, vantage_index, VisitStats,
    VISIT_DEADLINE,
};

/// How a swarm run is shaped on top of its per-client [`VisitConfig`].
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Number of concurrent browsers.
    pub clients: usize,
    /// Gap between consecutive client arrivals (`SimDuration::ZERO`
    /// means a thundering herd at t = 0).
    pub arrival_spacing: SimDuration,
    /// Finite-resource budgets applied to every domain's edge; `None`
    /// models the infinitely provisioned edges of the solo visit path.
    pub edge: Option<EdgeConfig>,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            clients: 1,
            arrival_spacing: SimDuration::ZERO,
            edge: None,
        }
    }
}

/// One browser's fate in the swarm.
#[derive(Debug)]
pub struct ClientOutcome {
    /// Whether the client finished its page.
    pub completed: bool,
    /// Page load time measured from this client's *arrival* (not t = 0),
    /// so staggered clients compare like-for-like; `None` when stranded.
    pub plt_ms: Option<f64>,
    /// Resources still outstanding when the run ended.
    pub pending_requests: usize,
    /// Fallback/retry counters.
    pub resilience: ResilienceStats,
    /// This client's broken-QUIC memory after the run (edge refusals
    /// mark domains broken exactly like path faults do).
    pub broken_quic: BrokenQuicCache,
    /// The recorded page; `None` when stranded.
    pub har: Option<HarPage>,
}

/// The whole swarm's result.
#[derive(Debug)]
pub struct SwarmOutcome {
    /// Per-client outcomes, in arrival order.
    pub clients: Vec<ClientOutcome>,
    /// Per-domain edge counters, in deterministic domain order (all
    /// zeroes when the swarm ran without admission control).
    pub edges: Vec<(String, EdgeStats)>,
    /// Network-level statistics of the whole run.
    pub stats: VisitStats,
}

impl SwarmOutcome {
    /// Clients that finished their page.
    pub fn completed(&self) -> usize {
        self.clients.iter().filter(|c| c.completed).count()
    }

    /// Edge counters summed across domains.
    pub fn edge_totals(&self) -> EdgeStats {
        let mut total = EdgeStats::default();
        for (_, s) in &self.edges {
            total.absorb(s);
        }
        total
    }
}

/// Drives `swarm.clients` browsers through one visit of `page` each,
/// sharing one server (and optionally one finite edge) per domain.
///
/// # Errors
///
/// Returns the [`EdgeConfigError`] of an invalid edge budget before any
/// simulation runs.
///
/// # Panics
///
/// Panics if the page has no resources (as [`crate::visit_page`]).
pub fn run_swarm(
    page: &Webpage,
    domains: &DomainTable,
    cfg: &VisitConfig,
    swarm: &SwarmConfig,
) -> Result<SwarmOutcome, EdgeConfigError> {
    assert!(swarm.clients > 0, "a swarm needs at least one client");
    if let Some(edge_cfg) = &swarm.edge {
        edge_cfg.validate()?;
    }

    // 1. The page's distinct domains, deterministically ordered.
    let used: BTreeSet<h3cdn_web::DomainId> = page.resources.iter().map(|r| r.domain).collect();

    // 2. Network fabric: client nodes first (so client 0 is node 0,
    //    exactly as in the solo visit), then one server node per domain.
    let net_seed = cfg
        .jitter_salt
        .wrapping_mul(31)
        .wrapping_add(page.site as u64)
        .wrapping_add(vantage_index(cfg.vantage) << 32);
    let mut net = Network::new(net_seed);
    let mut client_nodes = Vec::with_capacity(swarm.clients);
    for _ in 0..swarm.clients {
        let node = net.add_node();
        net.set_ingress_link(node, cfg.downlink, cfg.queue);
        net.set_egress_link(node, cfg.uplink, cfg.queue);
        client_nodes.push(node);
    }
    let total_loss = cfg.loss_percent + cfg.baseline_loss_percent;
    let loss = if cfg.bursty_loss {
        LossModel::bursty_percent(total_loss)
    } else {
        LossModel::iid_percent(total_loss)
    };
    let dynamics_trace = cfg.path_dynamics.map(|p| p.trace(net_seed));
    let mut info_of: HashMap<h3cdn_web::DomainId, DomainInfo> = HashMap::new();
    for &d in &used {
        let node = net.add_node();
        let rtt = domain_rtt(domains, d, cfg.vantage, cfg.jitter_salt);
        for &client_node in &client_nodes {
            net.set_path_symmetric(client_node, node, PathSpec::with_delay(rtt / 2).loss(loss));
            if let Some(spec) = &cfg.faults {
                if spec.selects(d.0, cfg.jitter_salt) {
                    net.set_fault_plan_symmetric(client_node, node, spec.plan.clone());
                }
            }
            if let Some(trace) = &dynamics_trace {
                net.set_path_dynamics_symmetric(client_node, node, trace.clone(), cfg.queue);
            }
        }
        info_of.insert(
            d,
            DomainInfo {
                name: domains.name(d).to_string(),
                node,
                rtt,
                tls12: domain_tls12(domains, d, cfg.jitter_salt),
                dns_delay: cfg
                    .model_dns
                    .then(|| domain_dns_delay(domains, d, cfg.jitter_salt)),
                provider: domains.provider(d),
            },
        );
    }

    // 3. Catalogs, shared across every client of a domain's server.
    let origin_rtt = domain_rtt(domains, page.origin_domain, cfg.vantage, cfg.jitter_salt);
    let mut catalogs: BTreeMap<h3cdn_web::DomainId, Catalog> = BTreeMap::new();
    for r in &page.resources {
        let mut processing = SimDuration::from_nanos(r.processing_us * 1_000);
        if cfg.cold_cache && r.hosting.is_cdn() {
            processing += edge::miss_penalty(origin_rtt);
        }
        catalogs.entry(r.domain).or_default().register(
            r.id,
            ResponseSpec {
                header_bytes: r.response_header_bytes,
                body_bytes: r.body_bytes,
                processing,
                priority: priority_of(r.kind),
            },
        );
    }

    // 4. Hosts, index-aligned with node creation order: clients first.
    let mut hosts: Vec<SimHost> = Vec::with_capacity(swarm.clients + used.len());
    let mut arrivals = Vec::with_capacity(swarm.clients);
    for (i, &client_node) in client_nodes.iter().enumerate() {
        // Client 0 keeps the solo visit's HAR seed exactly; later
        // clients fork their own fingerprint streams.
        let har_seed = (net_seed ^ 0x4841_5221) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut client = ClientHost::with_alt_svc(
            client_node,
            cfg.mode,
            cfg.cc,
            build_plan(page),
            info_of.clone(),
            TicketStore::new(),
            har_seed,
            cfg.alt_svc_discovery,
        );
        client.set_h3_fallback(cfg.h3_fallback);
        client.set_broken_quic(BrokenQuicCache::new());
        let start = SimTime::ZERO + swarm.arrival_spacing * (i as u64);
        client.set_start_at(start);
        arrivals.push(start);
        hosts.push(SimHost::Client(Box::new(client)));
    }
    for &d in &used {
        let rtt = domain_rtt(domains, d, cfg.vantage, cfg.jitter_salt);
        let tcp = TcpConfig {
            initial_rtt: rtt,
            cc: cfg.cc,
            ..TcpConfig::default()
        };
        let quic = QuicConfig {
            initial_rtt: rtt,
            cc: cfg.cc,
            ..QuicConfig::default()
        };
        let mut server = ServerHost::new(
            catalogs.remove(&d).unwrap_or_default().into_shared(),
            tcp,
            quic,
            cfg.h3_extra_processing,
        );
        if let Some(edge_cfg) = &swarm.edge {
            server.set_edge(EdgeState::new(edge_cfg.clone())?);
        }
        hosts.push(SimHost::Server(Box::new(server)));
    }

    // 5. Run to quiescence; a stall (stranded clients) is an outcome,
    //    not an error — overload sweeps measure exactly that.
    let deadline =
        SimTime::ZERO + swarm.arrival_spacing * (swarm.clients as u64 - 1) + VISIT_DEADLINE;
    let mut engine = Engine::new(net, hosts);
    if let Some(budget) = cfg.max_sim_events {
        engine.set_event_budget(budget);
    }
    let _ = engine.run_until_checked(deadline);
    let sim_events = engine.events_dispatched();
    let (net, hosts) = engine.into_parts();
    let stats = VisitStats {
        packets_delivered: net.delivered(),
        packets_lost: net.lost(),
        packets_fault_dropped: net.fault_dropped(),
        packets_dynamics_dropped: net.dynamics_dropped(),
        queue: net.queue_stats(),
        sim_events,
    };

    // Partition back out by variant: node order is clients first, then
    // servers, and a match is total — no positional unwrapping needed.
    let mut client_hosts = Vec::with_capacity(swarm.clients);
    let mut server_hosts = Vec::with_capacity(used.len());
    for host in hosts {
        match host {
            SimHost::Client(c) => client_hosts.push(c),
            SimHost::Server(s) => server_hosts.push(s),
        }
    }
    let mut clients = Vec::with_capacity(swarm.clients);
    for (client, start) in client_hosts.into_iter().zip(&arrivals) {
        let resilience = client.resilience();
        let broken_quic = client.broken_quic().clone();
        let pending = client.pending_requests();
        if client.is_done() {
            let (har, _) = client.into_har(page.site, cfg.vantage.name());
            clients.push(ClientOutcome {
                completed: true,
                plt_ms: Some(har.plt_ms - start.as_millis_f64()),
                pending_requests: 0,
                resilience,
                broken_quic,
                har: Some(har),
            });
        } else {
            clients.push(ClientOutcome {
                completed: false,
                plt_ms: None,
                pending_requests: pending,
                resilience,
                broken_quic,
                har: None,
            });
        }
    }
    let mut edges = Vec::with_capacity(used.len());
    for (server, &d) in server_hosts.iter().zip(&used) {
        edges.push((domains.name(d).to_string(), server.edge_stats()));
    }
    Ok(SwarmOutcome {
        clients,
        edges,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultSpec, ProtocolMode};
    use crate::visit::visit_page;
    use h3cdn_netsim::FaultPlan;
    use h3cdn_web::{generate, WorkloadSpec};

    fn small_corpus() -> h3cdn_web::Corpus {
        generate(&WorkloadSpec::default().with_pages(6).with_seed(42))
    }

    fn h3_rich_page(corpus: &h3cdn_web::Corpus) -> &Webpage {
        corpus
            .pages
            .iter()
            .find(|p| p.h3_enabled_cdn_count() > 0)
            .expect("an H3-capable page exists")
    }

    /// A budget small enough that a thundering herd trips it but a lone
    /// client sails through.
    fn starved_edge() -> EdgeConfig {
        EdgeConfig {
            cpu_tokens_per_sec: 40,
            cpu_token_burst: 80,
            tcp_handshake_tokens: 1,
            quic_handshake_tokens: 40,
            ..EdgeConfig::default()
        }
    }

    #[test]
    fn solo_swarm_is_bit_identical_to_visit_page() {
        let corpus = small_corpus();
        for mode in [ProtocolMode::H2Only, ProtocolMode::H3Enabled] {
            let cfg = VisitConfig::default().with_mode(mode);
            let solo = visit_page(&corpus.pages[0], &corpus.domains, &cfg, TicketStore::new());
            let swarm = run_swarm(
                &corpus.pages[0],
                &corpus.domains,
                &cfg,
                &SwarmConfig::default(),
            )
            .expect("default swarm config is valid");
            assert_eq!(swarm.clients.len(), 1);
            let har = swarm.clients[0].har.as_ref().expect("completed");
            assert_eq!(har.plt_ms.to_bits(), solo.har.plt_ms.to_bits());
            assert_eq!(har.entries.len(), solo.har.entries.len());
            for (a, b) in har.entries.iter().zip(&solo.har.entries) {
                assert_eq!(a.timing.connect_ms.to_bits(), b.timing.connect_ms.to_bits());
                assert_eq!(a.timing.wait_ms.to_bits(), b.timing.wait_ms.to_bits());
                assert_eq!(a.timing.receive_ms.to_bits(), b.timing.receive_ms.to_bits());
                assert_eq!(a.protocol, b.protocol);
            }
            assert_eq!(swarm.stats, solo.stats);
            assert_eq!(swarm.edge_totals(), EdgeStats::default());
        }
    }

    #[test]
    fn swarm_is_deterministic() {
        let corpus = small_corpus();
        let cfg = VisitConfig::default().with_h3_fallback(true);
        let shape = SwarmConfig {
            clients: 4,
            arrival_spacing: SimDuration::from_millis(20),
            edge: Some(starved_edge()),
        };
        let a = run_swarm(h3_rich_page(&corpus), &corpus.domains, &cfg, &shape).unwrap();
        let b = run_swarm(h3_rich_page(&corpus), &corpus.domains, &cfg, &shape).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.edge_totals(), b.edge_totals());
        for (ca, cb) in a.clients.iter().zip(&b.clients) {
            assert_eq!(ca.completed, cb.completed);
            assert_eq!(
                ca.plt_ms.map(f64::to_bits),
                cb.plt_ms.map(f64::to_bits),
                "per-client PLT must replay bitwise"
            );
        }
    }

    #[test]
    fn ample_edge_admits_every_client() {
        let corpus = small_corpus();
        let cfg = VisitConfig::default();
        let shape = SwarmConfig {
            clients: 3,
            arrival_spacing: SimDuration::from_millis(50),
            edge: Some(EdgeConfig::default()),
        };
        let out = run_swarm(h3_rich_page(&corpus), &corpus.domains, &cfg, &shape).unwrap();
        assert_eq!(out.completed(), 3);
        let totals = out.edge_totals();
        assert_eq!(totals.refused(), 0);
        assert!(totals.admitted() > 0);
    }

    #[test]
    fn overloaded_edge_sheds_quic_and_fallback_rescues() {
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        let shape = SwarmConfig {
            clients: 6,
            arrival_spacing: SimDuration::ZERO, // thundering herd
            edge: Some(starved_edge()),
        };
        // Without fallback the refused QUIC handshakes strand requests.
        let rigid = run_swarm(page, &corpus.domains, &VisitConfig::default(), &shape).unwrap();
        let rigid_totals = rigid.edge_totals();
        assert!(
            rigid_totals.refused_quic > 0,
            "the starved edge must shed QUIC handshakes"
        );
        assert!(
            rigid.completed() < shape.clients,
            "refusals without fallback must strand some clients"
        );
        // With fallback every client completes over TCP: a fallback
        // storm, visible as h3_fallbacks across the swarm.
        let graceful = run_swarm(
            page,
            &corpus.domains,
            &VisitConfig::default().with_h3_fallback(true),
            &shape,
        )
        .unwrap();
        assert_eq!(graceful.completed(), shape.clients, "fallback rescues all");
        let graceful_totals = graceful.edge_totals();
        assert!(graceful_totals.refused_quic > 0);
        let storms: u64 = graceful
            .clients
            .iter()
            .map(|c| c.resilience.h3_fallbacks)
            .sum();
        assert!(storms > 0, "refusals must drive H3→H2 fallbacks");
    }

    #[test]
    fn edge_refusals_compose_with_fault_plans() {
        // A UDP blackhole *and* a starved edge: QUIC dies twice over,
        // fallback still lands every page on TCP.
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        let cfg = VisitConfig::default()
            .with_faults(FaultSpec::everywhere(FaultPlan::udp_blackhole_always()))
            .with_h3_fallback(true);
        let shape = SwarmConfig {
            clients: 4,
            arrival_spacing: SimDuration::ZERO,
            edge: Some(starved_edge()),
        };
        let out = run_swarm(page, &corpus.domains, &cfg, &shape).unwrap();
        assert_eq!(out.completed(), shape.clients);
        assert!(out.stats.packets_fault_dropped > 0);
        for c in &out.clients {
            let har = c.har.as_ref().expect("completed");
            assert_eq!(har.entries_with_protocol("h3").count(), 0);
        }
    }

    #[test]
    fn tcp_refusals_redial_with_backoff_until_edge_recovers() {
        // An edge whose handshake-CPU bucket admits roughly one TCP
        // handshake per second: the herd's later connections are
        // RST-refused, walk the deterministic 250 ms-doubling backoff,
        // and land as the bucket refills. Everyone completes — late.
        let corpus = small_corpus();
        let cfg = VisitConfig::default()
            .with_mode(ProtocolMode::H2Only)
            .with_h3_fallback(true);
        let shape = SwarmConfig {
            clients: 3,
            arrival_spacing: SimDuration::ZERO,
            edge: Some(EdgeConfig {
                cpu_tokens_per_sec: 10,
                cpu_token_burst: 10,
                tcp_handshake_tokens: 10,
                quic_handshake_tokens: 10,
                ..EdgeConfig::default()
            }),
        };
        let out = run_swarm(&corpus.pages[0], &corpus.domains, &cfg, &shape).unwrap();
        assert_eq!(out.completed(), shape.clients, "backoff must recover all");
        let totals = out.edge_totals();
        assert!(totals.refused_tcp > 0, "the starved bucket must refuse");
        assert!(totals.shed_cpu > 0);
        let retries: u64 = out.clients.iter().map(|c| c.resilience.conn_retries).sum();
        assert!(retries > 0, "refused clients must walk the backoff");
        // The refused clients pay the backoff in their PLT: the swarm's
        // slowest client is well behind a lone client on the same page.
        let solo = visit_page(&corpus.pages[0], &corpus.domains, &cfg, TicketStore::new());
        let worst = out
            .clients
            .iter()
            .filter_map(|c| c.plt_ms)
            .fold(0.0f64, f64::max);
        assert!(
            worst > solo.har.plt_ms + 200.0,
            "backoff delay must show in PLT: {worst:.1} vs {:.1}",
            solo.har.plt_ms
        );
    }

    #[test]
    fn refusal_marks_broken_quic_and_ttl_expiry_restores_h3() {
        // Edge refusals feed the same broken-QUIC memory as path
        // faults: within the TTL the client refuses to try H3 again;
        // once it expires (and the edge has recovered), H3 returns.
        let corpus = small_corpus();
        let page = h3_rich_page(&corpus);
        let cfg = VisitConfig::default().with_h3_fallback(true);
        let shape = SwarmConfig {
            clients: 6,
            arrival_spacing: SimDuration::ZERO,
            edge: Some(starved_edge()),
        };
        let out = run_swarm(page, &corpus.domains, &cfg, &shape).unwrap();
        let stormed = out
            .clients
            .iter()
            .find(|c| c.resilience.h3_fallbacks > 0)
            .expect("some client fell back");
        let mut carried = stormed.broken_quic.clone();
        assert!(
            !carried.is_empty(),
            "a refused client must remember the domain as QUIC-broken"
        );

        // Within the TTL the carried memory suppresses H3 even though
        // the next visit's edge is healthy (solo path, no admission).
        let second = crate::visit::try_visit_page(
            page,
            &corpus.domains,
            &cfg,
            TicketStore::new(),
            carried.clone(),
        )
        .expect("clean solo visit completes");
        assert_eq!(second.har.entries_with_protocol("h3").count(), 0);

        // The TTL runs out: the recovered edge gets H3 traffic again.
        carried.advance(crate::resilience::BROKEN_QUIC_TTL);
        assert!(carried.is_empty());
        let third =
            crate::visit::try_visit_page(page, &corpus.domains, &cfg, TicketStore::new(), carried)
                .expect("clean solo visit completes");
        assert!(
            third.har.entries_with_protocol("h3").count() > 0,
            "expired memory must allow the H3 retry"
        );
    }

    #[test]
    fn invalid_edge_budget_is_a_typed_error() {
        let corpus = small_corpus();
        let shape = SwarmConfig {
            clients: 1,
            arrival_spacing: SimDuration::ZERO,
            edge: Some(EdgeConfig {
                max_connections: 0,
                ..EdgeConfig::default()
            }),
        };
        let err = run_swarm(
            &corpus.pages[0],
            &corpus.domains,
            &VisitConfig::default(),
            &shape,
        )
        .expect_err("zero connections must be rejected");
        assert_eq!(err, EdgeConfigError::ZeroConnections);
    }
}
