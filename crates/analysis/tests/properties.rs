//! Property-based tests of the statistics kernels.

use h3cdn_analysis::{ccdf_points, cdf_points, kmeans, linear_fit, quantile, spearman};
use proptest::prelude::*;

proptest! {
    /// Quantile is monotone in q and bounded by the extremes.
    #[test]
    fn quantile_monotone_and_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo);
        let b = quantile(&values, hi);
        prop_assert!(a <= b + 1e-9);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// CDF + CCDF complement to 1 at every sample point.
    #[test]
    fn cdf_ccdf_complement(values in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let cdf = cdf_points(&values);
        let ccdf = ccdf_points(&values);
        prop_assert_eq!(cdf.len(), ccdf.len());
        for ((x1, p), (x2, q)) in cdf.iter().zip(&ccdf) {
            prop_assert_eq!(x1, x2);
            prop_assert!((p + q - 1.0).abs() < 1e-9);
        }
    }

    /// OLS on an exact line recovers it for any slope/intercept.
    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -1e4f64..1e4,
        n in 3usize..50,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let fit = linear_fit(&xs, &ys);
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    /// k-means assignments are a partition: every point assigned, every
    /// cluster id < k, deterministic for equal seeds.
    #[test]
    fn kmeans_is_a_deterministic_partition(
        points in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 3..4), 4..40),
        k in 1usize..4,
        seed in 0u64..100,
    ) {
        // Make the dimensionality uniform (3 columns).
        let pts: Vec<Vec<f64>> = points
            .iter()
            .map(|p| p.iter().copied().chain(std::iter::repeat(0.0)).take(3).collect())
            .collect();
        prop_assume!(k <= pts.len());
        let a = kmeans(&pts, k, 50, seed);
        let b = kmeans(&pts, k, 50, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), pts.len());
        prop_assert!(a.iter().all(|&c| c < k));
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 3..50),
    ) {
        // Perturb duplicates so the ranks are unique.
        let xs: Vec<f64> = xs.iter().enumerate().map(|(i, &x)| x + i as f64 * 1e-7).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x / 100.0).tanh() * 5.0 + x * 1e-3).collect();
        let r = spearman(&xs, &ys);
        prop_assert!((r - 1.0).abs() < 1e-9, "monotone transform must give 1, got {r}");
    }
}
