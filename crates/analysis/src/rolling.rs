//! Rolling (single-pass, constant-memory) aggregation for
//! population-scale campaigns.
//!
//! At 10⁵–10⁶ pages the batch helpers in [`crate::stats`] — which sort a
//! materialized `Vec<f64>` — stop being an option. This module provides
//! the two streaming summaries the `population` experiment needs:
//!
//! * [`Welford`]: numerically stable running mean/variance with
//!   NaN-partitioning (non-finite samples are counted, never mixed in),
//!   mergeable via Chan's parallel update.
//! * [`QuantileSketch`]: a fixed geometric-grid histogram over a
//!   configurable `[2^lo, 2^hi)` range with `buckets_per_octave` buckets
//!   per doubling. Quantiles are answered from bucket midpoints, so the
//!   relative error is bounded by `2^(1/(2·bpo)) − 1` (≈ 9% at 4
//!   buckets/octave) regardless of population size. Sketches over the
//!   same grid merge exactly.
//!
//! Both are deterministic: the same pushes in the same order (or any
//! order, for the sketch and for Welford's counts) produce the same
//! summary, so campaign output stays bit-identical at any `--jobs`.

/// Welford/Chan running mean and variance over the finite partition of
/// a stream. Non-finite samples (stranded swarm clients report NaN) are
/// tallied in `non_finite` and excluded from the moments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    non_finite: u64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sample in. Non-finite values only bump the stranded
    /// counter.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of finite samples folded in.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite (stranded) samples seen.
    #[must_use]
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Mean of the finite partition; `NaN` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance of the finite partition; `NaN` when empty.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation; `NaN` when empty.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator in (Chan et al.'s parallel update).
    pub fn merge(&mut self, other: &Welford) {
        self.non_finite += other.non_finite;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.count = other.count;
            self.mean = other.mean;
            self.m2 = other.m2;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// Fixed geometric-grid quantile sketch over `[2^min_exp, 2^max_exp)`.
///
/// Bucket `i` covers `[2^(min_exp + i/bpo), 2^(min_exp + (i+1)/bpo))`;
/// values below the range clamp into bucket 0, values at or above it
/// into the last bucket. A quantile query walks the cumulative counts
/// and returns the geometric midpoint of the bucket holding the target
/// rank, so the relative error is at most `2^(1/(2·bpo)) − 1` for
/// in-range values. Memory is `(max_exp − min_exp) · bpo` u64s — fixed,
/// never a function of how many samples were pushed.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    min_exp: i32,
    max_exp: i32,
    buckets_per_octave: u32,
    counts: Vec<u64>,
    total: u64,
    non_finite: u64,
}

impl QuantileSketch {
    /// Creates a sketch over `[2^min_exp, 2^max_exp)` with
    /// `buckets_per_octave` buckets per doubling.
    ///
    /// # Panics
    ///
    /// Panics unless `min_exp < max_exp` and `buckets_per_octave > 0`.
    #[must_use]
    pub fn new(min_exp: i32, max_exp: i32, buckets_per_octave: u32) -> Self {
        assert!(min_exp < max_exp, "empty exponent range");
        assert!(
            buckets_per_octave > 0,
            "need at least one bucket per octave"
        );
        let n = (max_exp - min_exp) as usize * buckets_per_octave as usize;
        Self {
            min_exp,
            max_exp,
            buckets_per_octave,
            counts: vec![0; n],
            total: 0,
            non_finite: 0,
        }
    }

    /// Number of grid buckets.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Grid bucket index for a value; non-positive and sub-range values
    /// clamp to 0, values at or beyond `2^max_exp` clamp to the last
    /// bucket. Returns `None` for non-finite input.
    #[must_use]
    pub fn bucket_index(&self, x: f64) -> Option<usize> {
        if !x.is_finite() {
            return None;
        }
        if x <= 0.0 {
            return Some(0);
        }
        let pos = (x.log2() - f64::from(self.min_exp)) * f64::from(self.buckets_per_octave);
        let idx = pos.floor();
        if idx < 0.0 {
            Some(0)
        } else if idx >= self.counts.len() as f64 {
            Some(self.counts.len() - 1)
        } else {
            Some(idx as usize)
        }
    }

    /// Folds one sample in. Non-finite values only bump the stranded
    /// counter.
    pub fn push(&mut self, x: f64) {
        match self.bucket_index(x) {
            Some(i) => {
                self.counts[i] += 1;
                self.total += 1;
            }
            None => self.non_finite += 1,
        }
    }

    /// Adds `count` pre-bucketed samples directly to grid bucket `idx`
    /// (for merging externally-built histograms over the same grid).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn add_bucket(&mut self, idx: usize, count: u64) {
        assert!(idx < self.counts.len(), "bucket {idx} out of range");
        self.counts[idx] += count;
        self.total += count;
    }

    /// Total finite samples folded in.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of non-finite samples seen.
    #[must_use]
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Lower edge of grid bucket `i`.
    #[must_use]
    pub fn bucket_low(&self, i: usize) -> f64 {
        let frac = i as f64 / f64::from(self.buckets_per_octave);
        (f64::from(self.min_exp) + frac).exp2()
    }

    /// Geometric midpoint of grid bucket `i` — the sketch's point
    /// estimate for samples that landed there.
    #[must_use]
    pub fn bucket_mid(&self, i: usize) -> f64 {
        let frac = (i as f64 + 0.5) / f64::from(self.buckets_per_octave);
        (f64::from(self.min_exp) + frac).exp2()
    }

    /// Quantile `q ∈ [0, 1]` from the grid (geometric midpoint of the
    /// bucket holding the target rank); `NaN` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return f64::NAN;
        }
        // Rank of the order statistic the batch quantile would select.
        let target = (q * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > target {
                return self.bucket_mid(i);
            }
        }
        // Counts sum to total > target, so the loop always returns;
        // keep a defined value for the impossible fall-through.
        self.bucket_mid(self.counts.len() - 1)
    }

    /// CCDF `P[X > bucket_low(i)]` sampled at every non-empty bucket
    /// edge, as `(x, p)` pairs ascending in `x`. Suitable for log-log
    /// tail fits.
    #[must_use]
    pub fn ccdf_points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                out.push((self.bucket_low(i), 1.0 - below as f64 / self.total as f64));
            }
            below += c;
        }
        out
    }

    /// Merges another sketch over the identical grid.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.min_exp == other.min_exp
                && self.max_exp == other.max_exp
                && self.buckets_per_octave == other.buckets_per_octave,
            "cannot merge sketches over different grids"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.non_finite += other.non_finite;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::quantile;

    #[test]
    fn welford_matches_batch_moments() {
        let xs: Vec<f64> = (1..=100).map(|i| f64::from(i) * 0.37).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), 100);
    }

    #[test]
    fn welford_partitions_non_finite() {
        let mut w = Welford::new();
        for x in [1.0, f64::NAN, 3.0, f64::INFINITY] {
            w.push(x);
        }
        assert_eq!(w.count(), 2);
        assert_eq!(w.non_finite(), 2);
        assert!((w.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..57)
            .map(|i| (f64::from(i) * 1.618).sin() * 40.0)
            .collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(20);
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in a {
            left.push(x);
        }
        for &x in b {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn sketch_quantile_within_grid_error_bound() {
        // 4 buckets/octave → relative error ≤ 2^(1/8) − 1 ≈ 9.05%.
        let mut sk = QuantileSketch::new(0, 20, 4);
        let xs: Vec<f64> = (1..=10_000).map(|i| f64::from(i) * 0.7 + 1.0).collect();
        for &x in &xs {
            sk.push(x);
        }
        let bound = (1.0f64 / 8.0).exp2() - 1.0 + 1e-9;
        for q in [0.1, 0.5, 0.75, 0.9, 0.99] {
            let exact = quantile(&xs, q);
            let approx = sk.quantile(q);
            let rel = (approx / exact - 1.0).abs();
            assert!(rel <= bound, "q={q}: {approx} vs {exact} (rel {rel})");
        }
    }

    #[test]
    fn sketch_clamps_and_counts_non_finite() {
        let mut sk = QuantileSketch::new(6, 23, 4);
        sk.push(0.5); // below range → bucket 0
        sk.push(-3.0); // non-positive → bucket 0
        sk.push(1e12); // above range → last bucket
        sk.push(f64::NAN);
        assert_eq!(sk.total(), 3);
        assert_eq!(sk.non_finite(), 1);
        assert_eq!(sk.bucket_index(0.5), Some(0));
        assert_eq!(sk.bucket_index(1e12), Some(sk.num_buckets() - 1));
        assert_eq!(sk.bucket_index(f64::NAN), None);
    }

    #[test]
    fn sketch_merge_and_add_bucket_match_push() {
        let xs: Vec<f64> = (1..=500).map(|i| f64::from(i) * 3.3).collect();
        let mut whole = QuantileSketch::new(0, 16, 4);
        for &x in &xs {
            whole.push(x);
        }
        let mut left = QuantileSketch::new(0, 16, 4);
        let mut right = QuantileSketch::new(0, 16, 4);
        for &x in &xs[..200] {
            left.push(x);
        }
        // Rebuild the right half through the pre-bucketed path.
        for &x in &xs[200..] {
            let idx = right.bucket_index(x).unwrap();
            right.add_bucket(idx, 1);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn sketch_ccdf_is_monotone_nonincreasing() {
        let mut sk = QuantileSketch::new(0, 16, 4);
        for i in 1..=2000u32 {
            sk.push(f64::from(i));
        }
        let pts = sk.ccdf_points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0, "x ascending");
            assert!(w[0].1 >= w[1].1, "ccdf nonincreasing");
        }
        assert!((pts[0].1 - 1.0).abs() < 1e-12);
    }
}
