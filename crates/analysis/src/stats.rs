//! Basic descriptive statistics and distribution curves.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median (linear interpolation between the two middle order statistics
/// for even lengths); `NaN` for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Quantile `q ∈ [0, 1]` with linear interpolation; `NaN` for an empty
/// slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// NaN-aware mean: averages the finite values and reports how many
/// samples were stranded (non-finite). Returns `(NaN, stranded)` when
/// no finite values remain.
///
/// Swarm and overload sweeps encode clients that never completed as
/// `NaN` page-load times; feeding those vectors to [`mean`] silently
/// poisons the aggregate. This variant partitions instead.
pub fn finite_mean(values: &[f64]) -> (f64, usize) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    (mean(&finite), values.len() - finite.len())
}

/// NaN-aware median over the finite partition; see [`finite_mean`].
pub fn finite_median(values: &[f64]) -> (f64, usize) {
    finite_quantile(values, 0.5)
}

/// NaN-aware quantile over the finite partition; see [`finite_mean`].
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn finite_quantile(values: &[f64], q: f64) -> (f64, usize) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    (quantile(&finite, q), values.len() - finite.len())
}

/// Empirical CDF as `(x, P[X ≤ x])` points, one per distinct sample,
/// ascending in `x`.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, &x) in sorted.iter().enumerate() {
        let p = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == x => last.1 = p,
            _ => out.push((x, p)),
        }
    }
    out
}

/// Empirical CCDF as `(x, P[X > x])` points (the paper's Fig. 3/5 axes).
pub fn ccdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    cdf_points(values)
        .into_iter()
        .map(|(x, p)| (x, 1.0 - p))
        .collect()
}

/// Pearson correlation coefficient; `NaN` when either side is constant
/// or lengths differ/are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.is_empty() {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    // Intentional exact test: a mathematically-zero variance means the
    // correlation is undefined. h3cdn-lint: allow(float-cmp)
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation: Pearson over ranks (average ranks for
/// ties). `NaN` when undefined. Robust to the heavy-tailed page-load
/// times this project deals in.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    pearson(&ranks(xs), &ranks(ys))
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        // Tie group [i, j): average rank.
        let mut j = i + 1;
        while j < order.len() && values[order[j]] == values[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j - 1) as f64 / 2.0;
        for &idx in &order[i..j] {
            out[idx] = avg_rank;
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_hand_checked() {
        assert!((mean(&[1.0, 2.0, 6.0]) - 3.0).abs() < 1e-12);
        assert!((median(&[5.0, 1.0, 3.0]) - 3.0).abs() < 1e-12);
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert!((quantile(&v, 0.0) - 10.0).abs() < 1e-12);
        assert!((quantile(&v, 1.0) - 50.0).abs() < 1e-12);
        assert!((quantile(&v, 0.25) - 20.0).abs() < 1e-12);
        assert!((quantile(&v, 0.625) - 35.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn finite_variants_partition_nans() {
        // Regression: stranded swarm clients report NaN PLTs. The plain
        // aggregates are poisoned; the finite_* variants must not be.
        let plts = [120.0, f64::NAN, 80.0, f64::INFINITY, 100.0];
        assert!(mean(&plts).is_nan(), "plain mean is NaN-poisoned");
        let (m, stranded) = finite_mean(&plts);
        assert!((m - 100.0).abs() < 1e-12);
        assert_eq!(stranded, 2);
        let (med, s2) = finite_median(&plts);
        assert!((med - 100.0).abs() < 1e-12);
        assert_eq!(s2, 2);
        // The tail quantile previously picked up NaN (total_cmp sorts it
        // last); the finite variant must return the finite worst case.
        let (p100, s3) = finite_quantile(&plts, 1.0);
        assert!((p100 - 120.0).abs() < 1e-12);
        assert_eq!(s3, 2);
    }

    #[test]
    fn finite_variants_on_all_nan_and_empty() {
        let all_nan = [f64::NAN, f64::NAN];
        let (m, stranded) = finite_mean(&all_nan);
        assert!(m.is_nan());
        assert_eq!(stranded, 2);
        let (q, s) = finite_quantile(&[], 0.9);
        assert!(q.is_nan());
        assert_eq!(s, 0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let v = [3.0, 1.0, 2.0, 2.0];
        let cdf = cdf_points(&v);
        assert_eq!(cdf.len(), 3, "duplicates collapse");
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // P[X ≤ 2] = 3/4. Exact lookup of a value the test inserted.
        // h3cdn-lint: allow(float-cmp)
        let at2 = cdf.iter().find(|(x, _)| *x == 2.0).unwrap().1;
        assert!((at2 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let ccdf = ccdf_points(&v);
        // Exact lookup of a value the test inserted. h3cdn-lint: allow(float-cmp)
        let at2 = ccdf.iter().find(|(x, _)| *x == 2.0).unwrap().1;
        assert!((at2 - 0.5).abs() < 1e-12, "P[X > 2] = 0.5");
        assert!(ccdf.last().unwrap().1.abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12, "monotone → 1");
        let inv: Vec<f64> = ys.iter().map(|&y| -y).collect();
        assert!((spearman(&xs, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 6.0, 7.0];
        let r = spearman(&xs, &ys);
        assert!(
            (r - 1.0).abs() < 1e-9,
            "tied pairs still perfectly ranked: {r}"
        );
    }

    #[test]
    fn spearman_resists_outliers_better_than_pearson() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.clone();
        ys[19] = 1e9; // absurd tail, still monotone
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let perfectly = [2.0, 4.0, 6.0, 8.0];
        let inverse = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &perfectly) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &inverse) + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_nan());
        assert!(pearson(&xs, &[1.0]).is_nan());
    }
}
