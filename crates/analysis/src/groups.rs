//! Quartile grouping (the paper's Low / Medium-Low / Medium-High / High
//! page groups of Fig. 6a and Fig. 7, split on the number of H3-enabled
//! CDN resources).

/// The four quartile groups, in ascending key order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QuartileGroup {
    /// Bottom quartile.
    Low,
    /// Second quartile.
    MediumLow,
    /// Third quartile.
    MediumHigh,
    /// Top quartile.
    High,
}

impl QuartileGroup {
    /// All groups in ascending order.
    pub const ALL: [QuartileGroup; 4] = [
        QuartileGroup::Low,
        QuartileGroup::MediumLow,
        QuartileGroup::MediumHigh,
        QuartileGroup::High,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            QuartileGroup::Low => "Low",
            QuartileGroup::MediumLow => "Medium-Low",
            QuartileGroup::MediumHigh => "Medium-High",
            QuartileGroup::High => "High",
        }
    }
}

impl std::fmt::Display for QuartileGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Splits items into four equal-sized groups by ascending `key`, exactly
/// as the paper constructs its page groups ("each group has an equal
/// number of pages"). Returns, per input index, its group.
///
/// Ties at the boundaries are broken by input order, keeping group sizes
/// within one of each other.
pub fn quartile_groups(keys: &[f64]) -> Vec<QuartileGroup> {
    let n = keys.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));
    let mut out = vec![QuartileGroup::Low; n];
    for (rank, &idx) in order.iter().enumerate() {
        let g = rank * 4 / n.max(1);
        out[idx] = QuartileGroup::ALL[g.min(3)];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_group_sizes() {
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let groups = quartile_groups(&keys);
        for g in QuartileGroup::ALL {
            assert_eq!(groups.iter().filter(|&&x| x == g).count(), 25);
        }
        // Ascending key → ascending group.
        assert_eq!(groups[0], QuartileGroup::Low);
        assert_eq!(groups[99], QuartileGroup::High);
        assert_eq!(groups[30], QuartileGroup::MediumLow);
        assert_eq!(groups[60], QuartileGroup::MediumHigh);
    }

    #[test]
    fn uneven_sizes_stay_within_one() {
        let keys: Vec<f64> = (0..103).map(|i| (i % 7) as f64).collect();
        let groups = quartile_groups(&keys);
        let counts: Vec<usize> = QuartileGroup::ALL
            .iter()
            .map(|g| groups.iter().filter(|&&x| x == *g).count())
            .collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn order_is_by_key_not_position() {
        let keys = [9.0, 1.0, 5.0, 3.0];
        let groups = quartile_groups(&keys);
        assert_eq!(groups[1], QuartileGroup::Low);
        assert_eq!(groups[3], QuartileGroup::MediumLow);
        assert_eq!(groups[2], QuartileGroup::MediumHigh);
        assert_eq!(groups[0], QuartileGroup::High);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(QuartileGroup::Low.to_string(), "Low");
        assert_eq!(QuartileGroup::High.label(), "High");
    }

    #[test]
    fn empty_input_ok() {
        assert!(quartile_groups(&[]).is_empty());
    }
}
