//! Statistics used by the paper's analysis pipeline: CDF/CCDF curves,
//! quartile grouping (Fig. 6a/7), k-means over binary domain vectors
//! (Table III), and least-squares fits (Fig. 9's slopes).
//!
//! Everything is dependency-free, deterministic, and unit-tested against
//! hand-computed values.

pub mod bootstrap;
pub mod groups;
pub mod kmeans;
pub mod linfit;
pub mod rolling;
pub mod stats;

pub use bootstrap::{bootstrap_slope_ci, ConfidenceInterval};
pub use groups::{quartile_groups, QuartileGroup};
pub use kmeans::kmeans;
pub use linfit::{linear_fit, LinearFit};
pub use rolling::{QuantileSketch, Welford};
pub use stats::{
    ccdf_points, cdf_points, finite_mean, finite_median, finite_quantile, mean, median, pearson,
    quantile, spearman,
};
