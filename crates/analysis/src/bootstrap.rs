//! Bootstrap confidence intervals.
//!
//! Lossy page-load times are heavy-tailed, so the OLS slopes of Fig. 9
//! come with wide uncertainty; a percentile bootstrap quantifies it
//! honestly instead of reporting a bare point estimate.

use h3cdn_sim_core::SimRng;

use crate::linfit::linear_fit;

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub coverage: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for the OLS slope of
/// `(xs, ys)`.
///
/// Deterministic for a given seed. Resamples with replacement `iters`
/// times; degenerate resamples (all-equal x) are skipped.
///
/// # Panics
///
/// Panics if the inputs differ in length, hold fewer than three points,
/// or `coverage` is outside `(0, 1)`.
pub fn bootstrap_slope_ci(
    xs: &[f64],
    ys: &[f64],
    iters: usize,
    coverage: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 3, "need at least three points");
    assert!((0.0..1.0).contains(&coverage) && coverage > 0.0);
    let n = xs.len();
    let mut rng = SimRng::seed_from(seed ^ 0xB007_57A9);
    let mut slopes = Vec::with_capacity(iters);
    while slopes.len() < iters {
        let mut rx = Vec::with_capacity(n);
        let mut ry = Vec::with_capacity(n);
        for _ in 0..n {
            let i = rng.next_below(n as u64) as usize;
            rx.push(xs[i]);
            ry.push(ys[i]);
        }
        if rx.iter().all(|&x| x == rx[0]) {
            continue; // vertical resample; skip
        }
        slopes.push(linear_fit(&rx, &ry).slope);
    }
    slopes.sort_by(f64::total_cmp);
    let alpha = (1.0 - coverage) / 2.0;
    let lo_idx = ((iters as f64) * alpha).floor() as usize;
    let hi_idx = (((iters as f64) * (1.0 - alpha)).ceil() as usize).min(iters - 1);
    ConfidenceInterval {
        lo: slopes[lo_idx],
        hi: slopes[hi_idx],
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_line_gives_tight_interval_containing_truth() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                2.0 * x
                    + 5.0
                    + if (x as u64).is_multiple_of(2) {
                        0.3
                    } else {
                        -0.3
                    }
            })
            .collect();
        let ci = bootstrap_slope_ci(&xs, &ys, 500, 0.95, 1);
        assert!(ci.contains(2.0), "{ci:?}");
        assert!(ci.width() < 0.1, "{ci:?}");
    }

    #[test]
    fn noisy_data_widens_the_interval() {
        let xs: Vec<f64> = (0..60).map(|i| (i % 20) as f64).collect();
        let tight: Vec<f64> = xs.clone();
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x + ((i * 7919) % 100) as f64)
            .collect();
        let ci_tight = bootstrap_slope_ci(&xs, &tight, 300, 0.95, 2);
        let ci_noisy = bootstrap_slope_ci(&xs, &noisy, 300, 0.95, 2);
        assert!(ci_noisy.width() > ci_tight.width() * 5.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x).collect();
        let a = bootstrap_slope_ci(&xs, &ys, 200, 0.9, 7);
        let b = bootstrap_slope_ci(&xs, &ys, 200, 0.9, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn rejects_tiny_inputs() {
        let _ = bootstrap_slope_ci(&[1.0, 2.0], &[1.0, 2.0], 10, 0.9, 0);
    }
}
