//! Lloyd's k-means, as the paper applies it to binary domain vectors
//! (Table III: 58-dimensional indicators of which shared CDN domains a
//! page uses, k = 2).

/// Runs k-means and returns each point's cluster assignment.
///
/// Deterministic: initial centroids are chosen by a seeded k-means++-
/// style farthest-point heuristic, so equal inputs give equal outputs.
///
/// # Panics
///
/// Panics if `k` is zero, `points` is empty, `k > points.len()`, or the
/// points have inconsistent dimensionality.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "points must be non-empty");
    assert!(k <= points.len(), "k exceeds point count");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensionality"
    );

    // Farthest-point initialisation from a seed-chosen start.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[(seed as usize) % points.len()].clone());
    while centroids.len() < k {
        let (far_idx, _) = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty points");
        centroids.push(points[far_idx].clone());
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| dist2(p, &centroids[a]).total_cmp(&dist2(p, &centroids[b])))
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
            // Empty clusters keep their previous centroid.
        }
    }
    assignment
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + (i % 3) as f64 * 0.01, 0.0]);
        }
        for i in 0..10 {
            points.push(vec![10.0 + (i % 3) as f64 * 0.01, 10.0]);
        }
        let assign = kmeans(&points, 2, 50, 7);
        let first = assign[0];
        assert!(assign[..10].iter().all(|&a| a == first));
        assert!(assign[10..].iter().all(|&a| a != first));
    }

    #[test]
    fn binary_domain_vectors_split_by_sharing_degree() {
        // Pages using many shared domains vs pages using few: the
        // Table III construction in miniature.
        let dim = 20;
        let mut points = Vec::new();
        for i in 0..12 {
            // High-sharing: the eight most popular domains, minus one
            // page-specific omission.
            let mut v = vec![0.0; dim];
            v[..8].fill(1.0);
            v[i % 8] = 0.0;
            points.push(v);
        }
        for i in 0..12 {
            // Low-sharing: two domains drawn from the popular head.
            let mut v = vec![0.0; dim];
            v[i % 4] = 1.0;
            v[(i + 1) % 4] = 1.0;
            points.push(v);
        }
        let assign = kmeans(&points, 2, 100, 3);
        // Mean set-bits per cluster must differ strongly.
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for (i, p) in points.iter().enumerate() {
            sums[assign[i]] += p.iter().sum::<f64>();
            counts[assign[i]] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0);
        let means = [sums[0] / counts[0] as f64, sums[1] / counts[1] as f64];
        let (hi, lo) = if means[0] > means[1] {
            (means[0], means[1])
        } else {
            (means[1], means[0])
        };
        assert!(hi > 6.0 && lo < 4.0, "cluster means {means:?}");
    }

    #[test]
    fn deterministic_for_equal_seed() {
        let points: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 5) as f64, (i % 7) as f64])
            .collect();
        assert_eq!(kmeans(&points, 3, 50, 1), kmeans(&points, 3, 50, 1));
    }

    #[test]
    fn k_equals_n_assigns_distinct() {
        let points = vec![vec![0.0], vec![5.0], vec![10.0]];
        let assign = kmeans(&points, 3, 10, 0);
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    #[should_panic(expected = "k exceeds point count")]
    fn too_many_clusters_rejected() {
        let _ = kmeans(&[vec![1.0]], 2, 10, 0);
    }

    #[test]
    #[should_panic(expected = "inconsistent dimensionality")]
    fn ragged_points_rejected() {
        let _ = kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10, 0);
    }
}
