//! Ordinary least-squares line fitting (Fig. 9's fitted slopes: 0.80,
//! 1.42 and 2.15 at 0 %, 0.5 % and 1 % loss).

/// The result of a least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination (R²); `NaN` when `y` is constant.
    pub r_squared: f64,
}

/// Fits a line by ordinary least squares.
///
/// # Panics
///
/// Panics if the slices differ in length, fewer than two points are
/// given, or all `x` are identical (vertical line).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx).powi(2);
        sxy += (x - mx) * (y - my);
        syy += (y - my).powi(2);
    }
    assert!(sxx > 0.0, "all x identical; vertical line has no OLS fit");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // Intentional exact test: zero total variation means R² is
    // undefined. h3cdn-lint: allow(float-cmp)
    let r_squared = if syy == 0.0 {
        f64::NAN
    } else {
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| (y - (slope * x + intercept)).powi(2))
            .sum();
        1.0 - ss_res / syy
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_close() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                1.42 * x
                    + 10.0
                    + if (x as u64).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 1.42).abs() < 0.01, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn constant_y_has_zero_slope_nan_r2() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys);
        assert!(fit.slope.abs() < 1e-12);
        assert!(fit.r_squared.is_nan());
    }

    #[test]
    #[should_panic(expected = "all x identical")]
    fn vertical_line_rejected() {
        let _ = linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = linear_fit(&[1.0], &[1.0, 2.0]);
    }
}
