//! The edge-overload sweep: finite-edge capacity × arrival pattern ×
//! protocol/fallback arms × optional path faults.
//!
//! The paper's client-side experiments implicitly assume infinitely
//! provisioned edges — every handshake is admitted, PLT differences
//! come only from the path and the protocol. This sweep drops that
//! assumption: each page is loaded by a *swarm* of concurrent browsers
//! sharing one stateful [`EdgeState`](h3cdn_cdn::EdgeState) per
//! domain, whose admission controller sheds load by protocol-aware
//! policy (QUIC — the expensive handshake — first) when the
//! handshake-CPU, memory, or connection budget runs out.
//!
//! Every scenario loads each page three ways over identical budgets:
//!
//! * **h2** — QUIC disabled; refusals are TCP RSTs.
//! * **h3** — `enable-quic` without fallback machinery: a refused QUIC
//!   handshake strands its requests.
//! * **h3+fallback** — Chrome-style graceful degradation: a refusal
//!   marks the domain QUIC-broken and stampedes the client onto TCP —
//!   the fallback storm the edge must then absorb.
//!
//! Each cell reports stranded clients, median/worst PLT of completed
//! loads (measured from each client's arrival), per-edge
//! admission/refusal/shed/ticket counters, fallback storms, and
//! re-dial retries. The control row — one client, no admission
//! control — is bit-identical to the plain campaign visit paths for
//! every worker count.

use std::collections::BTreeMap;
use std::fmt;

use h3cdn_analysis::{finite_mean, finite_median, finite_quantile};
use h3cdn_browser::{run_swarm, FaultSpec, SwarmConfig};
use h3cdn_cdn::{EdgeConfig, EdgeStats, Vantage};
use h3cdn_netsim::FaultPlan;
use h3cdn_sim_core::SimDuration;
use h3cdn_web::{DomainTable, Webpage};
use serde::{Deserialize, Serialize};

use h3cdn::runner::durable::JobMeta;
use h3cdn::{MeasurementCampaign, ProtocolMode, VisitConfig};

/// How many browsers a swarm scenario throws at the shared edges.
const SWARM_CLIENTS: usize = 6;

/// Arrival gap of the paced scenarios.
const PACED_SPACING: SimDuration = SimDuration::from_millis(50);

/// How the edge is provisioned relative to the swarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCapacity {
    /// The default budgets: a swarm never trips them.
    Ample,
    /// A handshake-CPU bucket sized so a thundering herd overruns it:
    /// QUIC costs the whole refill of a second, TCP a fortieth.
    Starved,
}

impl EdgeCapacity {
    fn label(self) -> &'static str {
        match self {
            EdgeCapacity::Ample => "ample",
            EdgeCapacity::Starved => "starved",
        }
    }

    fn config(self) -> EdgeConfig {
        match self {
            EdgeCapacity::Ample => EdgeConfig::default(),
            EdgeCapacity::Starved => EdgeConfig {
                cpu_tokens_per_sec: 40,
                cpu_token_burst: 80,
                tcp_handshake_tokens: 1,
                quic_handshake_tokens: 40,
                ..EdgeConfig::default()
            },
        }
    }
}

/// How the swarm's clients arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalRate {
    /// Everyone at t = 0 — the thundering herd.
    Herd,
    /// One client every [`PACED_SPACING`] — the edge's refill keeps up
    /// better.
    Paced,
}

impl ArrivalRate {
    fn label(self) -> &'static str {
        match self {
            ArrivalRate::Herd => "herd",
            ArrivalRate::Paced => "paced",
        }
    }

    fn spacing(self) -> SimDuration {
        match self {
            ArrivalRate::Herd => SimDuration::ZERO,
            ArrivalRate::Paced => PACED_SPACING,
        }
    }
}

/// One point of the sweep: a swarm shape plus optional path faults.
#[derive(Debug, Clone)]
pub struct OverloadScenario {
    /// Scenario label used in reports: `capacity/arrival[/blackhole]`,
    /// or `control/solo`.
    pub name: String,
    /// Browsers per page.
    pub clients: usize,
    /// Gap between consecutive arrivals.
    pub arrival_spacing: SimDuration,
    /// Edge budgets; `None` models the infinitely provisioned edges of
    /// the solo visit path.
    pub edge: Option<EdgeConfig>,
    /// Whether every path additionally drops all UDP (the PR 3 fault
    /// plan): QUIC dies twice over, once on the path and once at
    /// admission.
    pub udp_blackhole: bool,
}

impl OverloadScenario {
    /// The control: one client, no admission control — the exact solo
    /// visit path. Its numbers must match the plain campaign visit
    /// paths bit for bit.
    pub fn control() -> Self {
        OverloadScenario {
            name: "control/solo".to_owned(),
            clients: 1,
            arrival_spacing: SimDuration::ZERO,
            edge: None,
            udp_blackhole: false,
        }
    }

    /// A swarm scenario named `capacity/arrival[/blackhole]`.
    pub fn swarm(capacity: EdgeCapacity, arrival: ArrivalRate, udp_blackhole: bool) -> Self {
        let mut name = format!("{}/{}", capacity.label(), arrival.label());
        if udp_blackhole {
            name.push_str("/blackhole");
        }
        OverloadScenario {
            name,
            clients: SWARM_CLIENTS,
            arrival_spacing: arrival.spacing(),
            edge: Some(capacity.config()),
            udp_blackhole,
        }
    }

    fn shape(&self) -> SwarmConfig {
        SwarmConfig {
            clients: self.clients,
            arrival_spacing: self.arrival_spacing,
            edge: self.edge.clone(),
        }
    }
}

/// The full sweep: the control plus {ample, starved} × {herd, paced}
/// plus the starved herd under a UDP blackhole (6 scenarios).
pub fn default_scenarios() -> Vec<OverloadScenario> {
    vec![
        OverloadScenario::control(),
        OverloadScenario::swarm(EdgeCapacity::Ample, ArrivalRate::Herd, false),
        OverloadScenario::swarm(EdgeCapacity::Ample, ArrivalRate::Paced, false),
        OverloadScenario::swarm(EdgeCapacity::Starved, ArrivalRate::Herd, false),
        OverloadScenario::swarm(EdgeCapacity::Starved, ArrivalRate::Paced, false),
        OverloadScenario::swarm(EdgeCapacity::Starved, ArrivalRate::Herd, true),
    ]
}

/// The CI smoke subset: the control (bit-identity gate), the ample
/// herd (no spurious refusals), the starved herd (the fallback-storm
/// invariants), and the starved herd under a blackhole (refusals
/// compose with path faults).
pub fn smoke_scenarios() -> Vec<OverloadScenario> {
    vec![
        OverloadScenario::control(),
        OverloadScenario::swarm(EdgeCapacity::Ample, ArrivalRate::Herd, false),
        OverloadScenario::swarm(EdgeCapacity::Starved, ArrivalRate::Herd, false),
        OverloadScenario::swarm(EdgeCapacity::Starved, ArrivalRate::Herd, true),
    ]
}

/// The protocol/fallback arms of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    H2,
    H3NoFallback,
    H3WithFallback,
}

impl Arm {
    const ALL: [Arm; 3] = [Arm::H2, Arm::H3NoFallback, Arm::H3WithFallback];

    fn label(self) -> &'static str {
        match self {
            Arm::H2 => "h2",
            Arm::H3NoFallback => "h3",
            Arm::H3WithFallback => "h3+fallback",
        }
    }

    fn mode(self) -> ProtocolMode {
        match self {
            Arm::H2 => ProtocolMode::H2Only,
            Arm::H3NoFallback | Arm::H3WithFallback => ProtocolMode::H3Enabled,
        }
    }

    fn fallback(self) -> bool {
        matches!(self, Arm::H3WithFallback)
    }
}

/// One `(scenario, arm)` cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadCell {
    /// Scenario label (`capacity/arrival[/blackhole]` or `control/solo`).
    pub scenario: String,
    /// Arm label (`h2` / `h3` / `h3+fallback`).
    pub arm: String,
    /// Pages measured.
    pub pages: usize,
    /// Browsers per page.
    pub clients_per_page: usize,
    /// Clients that never finished their page, across all pages — the
    /// cost of refusals without fallback.
    pub stranded_clients: usize,
    /// Mean PLT over completed clients (`NaN` when none completed).
    pub mean_plt_ms: f64,
    /// Median PLT over completed clients, measured from each client's
    /// arrival (`NaN` when none completed).
    pub median_plt_ms: f64,
    /// Worst completed-client PLT (`NaN` when none completed) — the
    /// tail the backoff schedule and fallback races produce.
    pub worst_plt_ms: f64,
    /// Edge admission/refusal/shed/ticket counters summed over the
    /// cell's pages (all zeroes for the control).
    pub edge: EdgeStats,
    /// Total H3→H2 fallbacks across all clients and pages.
    pub h3_fallbacks: u64,
    /// Total connection re-dial retries (the backoff walker).
    pub conn_retries: u64,
    /// Per-client PLTs, site-major then arrival order; `NaN` marks a
    /// stranded client.
    pub plts_ms: Vec<f64>,
}

/// The full sweep result, rows scenario-major in input order, arms
/// `h2`, `h3`, `h3+fallback` within each scenario.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadSweep {
    /// One row per `(scenario, arm)`.
    pub rows: Vec<OverloadCell>,
}

impl OverloadSweep {
    /// The cell for the given scenario and arm labels, if present.
    pub fn cell(&self, scenario: &str, arm: &str) -> Option<&OverloadCell> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.arm == arm)
    }
}

/// One page's swarm, reduced for the checkpoint journal. Stranded
/// clients carry `NaN` PLTs, which round-trip through JSON `null` back
/// to the canonical [`f64::NAN`] this module writes, so resumed sweeps
/// stay bit-identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Sample {
    /// Per-client PLTs from arrival, in arrival order; `NaN` = stranded.
    plts_ms: Vec<f64>,
    h3_fallbacks: u64,
    conn_retries: u64,
    edge: EdgeStats,
}

/// Runs one page's swarm under `cfg`/`shape`, reducing the outcome to
/// a [`Sample`].
fn sample(page: &Webpage, domains: &DomainTable, cfg: &VisitConfig, shape: &SwarmConfig) -> Sample {
    let out = run_swarm(page, domains, cfg, shape).expect("scenario budgets validate");
    Sample {
        plts_ms: out
            .clients
            .iter()
            .map(|c| c.plt_ms.unwrap_or(f64::NAN))
            .collect(),
        h3_fallbacks: out.clients.iter().map(|c| c.resilience.h3_fallbacks).sum(),
        conn_retries: out.clients.iter().map(|c| c.resilience.conn_retries).sum(),
        edge: out.edge_totals(),
    }
}

/// Median over the finite entries of `plts` paired with the stranded
/// (NaN) count — `analysis::finite_median` keeps the swarm's
/// NaN-for-stranded convention out of the aggregate.
fn completed_median(plts: &[f64]) -> (f64, usize) {
    finite_median(plts)
}

/// Worst finite entry of `plts` (`NaN` when none completed) plus the
/// stranded count.
fn completed_worst(plts: &[f64]) -> (f64, usize) {
    finite_quantile(plts, 1.0)
}

/// Runs the sweep: `scenarios × {h2, h3, h3+fallback} × sites` as one
/// batch of keyed jobs on the campaign's execution layer (the plain
/// deterministic pool, or the crash-safe runner when the campaign
/// carries a durable context). The key-ordered merge makes the output
/// bit-identical for every worker count. Quarantined swarms are
/// dropped from their cell (shrinking its `pages` count) and reported
/// through the campaign's quarantine sink.
///
/// # Panics
///
/// Panics if a scenario carries an invalid edge budget — the presets
/// in this module always validate.
pub fn run(
    campaign: &MeasurementCampaign,
    vantage: Vantage,
    scenarios: &[OverloadScenario],
) -> OverloadSweep {
    for sc in scenarios {
        if let Some(edge) = &sc.edge {
            edge.validate()
                .unwrap_or_else(|e| panic!("scenario '{}': {e}", sc.name));
        }
    }
    let domains = &campaign.corpus().domains;
    let w = &campaign.config().workload;
    let mut jobs = Vec::new();
    for (si, sc) in scenarios.iter().enumerate() {
        for (ai, arm) in Arm::ALL.iter().enumerate() {
            for (site, page) in campaign.corpus().pages.iter().enumerate() {
                let mut cfg = campaign
                    .config()
                    .visit
                    .clone()
                    .with_vantage(vantage)
                    .with_mode(arm.mode())
                    .with_h3_fallback(arm.fallback());
                if sc.udp_blackhole {
                    cfg = cfg.with_faults(FaultSpec::everywhere(FaultPlan::udp_blackhole_always()));
                }
                let shape = sc.shape();
                let meta = JobMeta {
                    label: format!("overload '{}' {} site {site}", sc.name, arm.label()),
                    repro: format!(
                        "cargo run -q -p h3cdn-experiments --bin edge_overload -- \
                         --pages {} --seed {}",
                        w.num_pages, w.seed
                    ),
                };
                jobs.push(((si as u32, ai as u32, site as u32), meta, move || {
                    sample(page, domains, &cfg, &shape)
                }));
            }
        }
    }
    let keyed = campaign.run_durable("edge-overload", jobs);

    let mut by_cell: BTreeMap<(u32, u32), Vec<Sample>> = BTreeMap::new();
    for ((si, ai, _site), s) in keyed.into_iter().filter_map(|(k, s)| Some((k, s?))) {
        by_cell.entry((si, ai)).or_default().push(s);
    }
    let mut rows = Vec::new();
    for ((si, ai), samples) in &by_cell {
        let scenario = scenarios
            .get(*si as usize)
            .map_or(String::new(), |s| s.name.clone());
        let clients_per_page = scenarios.get(*si as usize).map_or(0, |s| s.clients);
        let arm = Arm::ALL.get(*ai as usize).map_or("?", |a| a.label());
        let plts: Vec<f64> = samples.iter().flat_map(|s| s.plts_ms.clone()).collect();
        let mut edge = EdgeStats::default();
        for s in samples {
            edge.absorb(&s.edge);
        }
        let (mean_plt_ms, _) = finite_mean(&plts);
        let (median_plt_ms, stranded_clients) = completed_median(&plts);
        let (worst_plt_ms, _) = completed_worst(&plts);
        rows.push(OverloadCell {
            scenario,
            arm: arm.to_owned(),
            pages: samples.len(),
            clients_per_page,
            stranded_clients,
            mean_plt_ms,
            median_plt_ms,
            worst_plt_ms,
            edge,
            h3_fallbacks: samples.iter().map(|s| s.h3_fallbacks).sum(),
            conn_retries: samples.iter().map(|s| s.conn_retries).sum(),
            plts_ms: plts,
        });
    }
    OverloadSweep { rows }
}

/// `"-"` for non-finite values (nothing completed).
fn fmt_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "-".to_owned()
    }
}

impl fmt::Display for OverloadSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Edge overload: capacity x arrival x {{h2, h3, h3+fallback}} (per-cell aggregates)"
        )?;
        writeln!(
            f,
            "{:<24} {:<12} {:>5} {:>4} {:>8} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7}",
            "scenario",
            "arm",
            "pages",
            "cli",
            "stranded",
            "mean PLT ms",
            "med PLT ms",
            "worst PLT",
            "admit",
            "refused",
            "shed-cpu",
            "tkt-hit",
            "tkt-miss",
            "fallbacks",
            "retries"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<24} {:<12} {:>5} {:>4} {:>8} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7}",
                r.scenario,
                r.arm,
                r.pages,
                r.clients_per_page,
                r.stranded_clients,
                fmt_ms(r.mean_plt_ms),
                fmt_ms(r.median_plt_ms),
                fmt_ms(r.worst_plt_ms),
                r.edge.admitted(),
                r.edge.refused(),
                r.edge.shed_cpu,
                r.edge.ticket_hits,
                r.edge.ticket_misses,
                r.h3_fallbacks,
                r.conn_retries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::runner::RunnerConfig;
    use h3cdn::{CampaignConfig, MeasurementCampaign};

    #[test]
    fn control_rows_match_campaign_paths_bitwise() {
        let cfg = CampaignConfig::small(3, 11);
        let serial = MeasurementCampaign::new(cfg.clone().with_runner(RunnerConfig::serial()));
        let parallel =
            MeasurementCampaign::new(cfg.with_runner(RunnerConfig::default().with_jobs(8)));
        let scenarios = vec![OverloadScenario::control()];
        let a = run(&serial, Vantage::Utah, &scenarios);
        let b = run(&parallel, Vantage::Utah, &scenarios);
        assert_eq!(a.rows.len(), 3);
        // Worker-count invariance, bit for bit.
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.median_plt_ms.to_bits(), rb.median_plt_ms.to_bits());
            for (x, y) in ra.plts_ms.iter().zip(&rb.plts_ms) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // The control reproduces the plain campaign visit paths
        // exactly: one client, no admission control, is the solo visit.
        for (arm, mode) in [
            ("h2", ProtocolMode::H2Only),
            ("h3", ProtocolMode::H3Enabled),
        ] {
            let c = a.cell("control/solo", arm).expect("control row");
            assert_eq!(c.stranded_clients, 0);
            assert_eq!(c.edge, EdgeStats::default());
            for site in 0..3usize {
                let want = serial.visit(site, Vantage::Utah, mode).plt_ms;
                assert_eq!(c.plts_ms[site].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn starved_herd_strands_h3_and_fallback_rescues() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(4, 42));
        let scenarios = vec![OverloadScenario::swarm(
            EdgeCapacity::Starved,
            ArrivalRate::Herd,
            false,
        )];
        let sweep = run(&campaign, Vantage::Utah, &scenarios);
        assert_eq!(sweep.rows.len(), 3);
        let rigid = sweep.cell("starved/herd", "h3").expect("h3 row");
        assert!(
            rigid.edge.refused_quic > 0,
            "the starved edge must shed QUIC handshakes"
        );
        assert!(
            rigid.stranded_clients > 0,
            "refusals without fallback must strand clients"
        );
        let graceful = sweep
            .cell("starved/herd", "h3+fallback")
            .expect("fallback row");
        assert_eq!(
            graceful.stranded_clients, 0,
            "fallback must rescue every client"
        );
        assert!(graceful.edge.refused_quic > 0);
        assert!(
            graceful.h3_fallbacks > 0,
            "refusals must drive a visible fallback storm"
        );
    }

    #[test]
    fn display_and_json_render() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(2, 5));
        let scenarios = vec![
            OverloadScenario::control(),
            OverloadScenario::swarm(EdgeCapacity::Ample, ArrivalRate::Paced, false),
        ];
        let sweep = run(&campaign, Vantage::Utah, &scenarios);
        let text = sweep.to_string();
        assert!(text.contains("ample/paced"));
        assert!(text.contains("h3+fallback"));
        let json = serde_json::to_string(&sweep).expect("serialises");
        assert!(json.contains("stranded_clients"));
        assert!(json.contains("refused_quic"));
    }

    #[test]
    fn scenario_sets_are_well_formed() {
        let all = default_scenarios();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].name, "control/solo");
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "scenario names must be unique");
        for sc in &all {
            if let Some(edge) = &sc.edge {
                edge.validate().expect("preset budgets validate");
            }
        }
        let smoke = smoke_scenarios();
        assert!(smoke.iter().any(|s| s.edge.is_none()));
        assert!(smoke.iter().any(|s| s.name == "starved/herd/blackhole"));
    }
}
