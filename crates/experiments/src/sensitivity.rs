//! Sensitivity analysis: how much do the headline results depend on the
//! calibration knobs?
//!
//! A reproduction built on a simulator owes its reader an answer to "what
//! if your constants are off?". [`run_sensitivity`] sweeps one knob and
//! reports the headline metric (mean PLT reduction over paired visits)
//! at each setting, so EXPERIMENTS.md's claims can be checked for
//! knife-edge dependence.

use std::fmt;

use h3cdn_analysis::mean;
use h3cdn_cdn::Vantage;
use h3cdn_sim_core::units::DataRate;
use h3cdn_sim_core::SimDuration;
use h3cdn_transport::CcAlgorithm;
use serde::Serialize;

use h3cdn::{MeasurementCampaign, VisitConfig};

/// A calibration knob the sweep can vary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Knob {
    /// Extra H3 server processing, milliseconds (default 1.5).
    H3ExtraProcessingMs,
    /// Natural path loss, percent (default 0.04).
    BaselineLossPercent,
    /// Client access rate, Mbps (default 1000, symmetric).
    AccessRateMbps,
    /// Congestion control: 0 = Cubic (default), 1 = NewReno.
    CongestionControl,
}

impl Knob {
    /// A representative sweep for this knob, bracketing the default.
    pub fn default_sweep(self) -> Vec<f64> {
        match self {
            Knob::H3ExtraProcessingMs => vec![0.0, 1.5, 5.0, 10.0],
            Knob::BaselineLossPercent => vec![0.0, 0.04, 0.2, 0.5],
            Knob::AccessRateMbps => vec![100.0, 300.0, 1000.0],
            Knob::CongestionControl => vec![0.0, 1.0],
        }
    }

    fn apply(self, base: &VisitConfig, value: f64) -> VisitConfig {
        let mut cfg = base.clone();
        match self {
            Knob::H3ExtraProcessingMs => {
                cfg.h3_extra_processing = SimDuration::from_millis_f64(value);
            }
            Knob::BaselineLossPercent => cfg.baseline_loss_percent = value,
            Knob::AccessRateMbps => {
                cfg.downlink = DataRate::from_mbps(value as u64);
                cfg.uplink = DataRate::from_mbps(value as u64);
            }
            Knob::CongestionControl => {
                cfg.cc = if value == 0.0 {
                    CcAlgorithm::Cubic
                } else {
                    CcAlgorithm::NewReno
                };
            }
        }
        cfg
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Knob::H3ExtraProcessingMs => "h3_extra_processing_ms",
            Knob::BaselineLossPercent => "baseline_loss_percent",
            Knob::AccessRateMbps => "access_rate_mbps",
            Knob::CongestionControl => "congestion_control (0=cubic, 1=newreno)",
        }
    }
}

/// One swept setting and its headline metric.
#[derive(Debug, Clone, Serialize)]
pub struct SensitivityRow {
    /// The knob value.
    pub value: f64,
    /// Mean PLT reduction over the paired pages, ms.
    pub mean_plt_reduction_ms: f64,
    /// Fraction of pages with a positive reduction.
    pub positive_share: f64,
}

/// The result of one knob sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Sensitivity {
    /// Knob name.
    pub knob: String,
    /// Per-setting rows, in sweep order.
    pub rows: Vec<SensitivityRow>,
}

/// Sweeps `knob` over `values`, measuring paired H2/H3 visits of every
/// corpus page from `vantage` at each setting.
pub fn run_sensitivity(
    campaign: &MeasurementCampaign,
    vantage: Vantage,
    knob: Knob,
    values: &[f64],
) -> Sensitivity {
    let base = campaign.config().visit.clone().with_vantage(vantage);
    // The whole `value × site` grid runs as one batch of keyed paired
    // visits on the campaign's parallel runner; the key-ordered merge
    // reproduces the serial sweep order exactly.
    let mut specs = Vec::new();
    for (vi, &value) in values.iter().enumerate() {
        let cfg = knob.apply(&base, value);
        for site in 0..campaign.corpus().pages.len() {
            specs.push((vi as u32, site, cfg.clone()));
        }
    }
    let comparisons = campaign.compare_batch(specs);
    let rows = values
        .iter()
        .enumerate()
        .map(|(vi, &value)| {
            let reductions: Vec<f64> = comparisons
                .iter()
                .filter(|(k, _)| *k == vi as u32)
                .map(|(_, cmp)| cmp.plt_reduction_ms)
                .collect();
            SensitivityRow {
                value,
                mean_plt_reduction_ms: mean(&reductions),
                positive_share: reductions.iter().filter(|&&r| r > 0.0).count() as f64
                    / reductions.len() as f64,
            }
        })
        .collect();
    Sensitivity {
        knob: knob.name().to_string(),
        rows,
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Sensitivity of mean PLT reduction to {}", self.knob)?;
        writeln!(
            f,
            "{:>12} {:>18} {:>16}",
            "value", "mean reduction", "positive pages"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>12} {:>16.1}ms {:>15.0}%",
                r.value,
                r.mean_plt_reduction_ms,
                r.positive_share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::CampaignConfig;

    #[test]
    fn h3_surcharge_erodes_the_reduction_monotonically() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(6, 31));
        let s = run_sensitivity(
            &campaign,
            Vantage::Utah,
            Knob::H3ExtraProcessingMs,
            &[0.0, 10.0],
        );
        assert_eq!(s.rows.len(), 2);
        assert!(
            s.rows[0].mean_plt_reduction_ms > s.rows[1].mean_plt_reduction_ms,
            "a 10 ms H3 compute surcharge must hurt: {:?}",
            s.rows
        );
    }

    #[test]
    fn cc_choice_does_not_flip_the_headline() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(6, 32));
        let s = run_sensitivity(
            &campaign,
            Vantage::Utah,
            Knob::CongestionControl,
            &Knob::CongestionControl.default_sweep(),
        );
        for r in &s.rows {
            assert!(
                r.mean_plt_reduction_ms > 0.0,
                "H3 must win under either controller: {:?}",
                s.rows
            );
        }
    }

    #[test]
    fn display_lists_all_rows() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(3, 33));
        let s = run_sensitivity(&campaign, Vantage::Utah, Knob::BaselineLossPercent, &[0.0]);
        let text = s.to_string();
        assert!(text.contains("baseline_loss_percent"));
        assert!(text.contains("positive pages"));
    }
}
