//! Fig. 6: (a) PLT reduction across the four quartile groups of
//! H3-enabled CDN resource count; (b) CDF of connection / wait / receive
//! reductions.

use std::fmt;

use h3cdn_analysis::{cdf_points, mean, median, quartile_groups, QuartileGroup};
use h3cdn_har::PageComparison;
use serde::Serialize;

/// One group's PLT-reduction summary.
#[derive(Debug, Clone, Serialize)]
pub struct GroupReduction {
    /// Group label ("Low" … "High").
    pub group: String,
    /// Pages in the group.
    pub pages: usize,
    /// Mean PLT reduction, ms.
    pub mean_plt_reduction_ms: f64,
}

/// The reproduced Fig. 6 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// (a) Per-group mean PLT reduction, Low → High.
    pub groups: Vec<GroupReduction>,
    /// (b) CDF of per-entry connect reduction.
    pub connect_cdf: Vec<(f64, f64)>,
    /// (b) CDF of per-entry wait reduction.
    pub wait_cdf: Vec<(f64, f64)>,
    /// (b) CDF of per-entry receive reduction.
    pub receive_cdf: Vec<(f64, f64)>,
    /// Medians of the three reductions (paper: conn > 0 region, wait < 0,
    /// receive ≈ 0), computed over entries with any protocol-visible
    /// activity.
    pub connect_median: f64,
    /// Median wait reduction.
    pub wait_median: f64,
    /// Median wait reduction over entries the H3 visit served over H3 —
    /// where the H3 compute surcharge is visible (paper: below zero).
    pub wait_median_h3_served: f64,
    /// Median receive reduction.
    pub receive_median: f64,
    /// Mean connect reduction over entries where either side actually
    /// performed a handshake (the paper's "fast connection contributes
    /// the most" evidence).
    pub connect_mean_nonzero: f64,
}

/// Analyses a paired-comparison dataset (one element per page × vantage).
pub fn run(comparisons: &[PageComparison]) -> Fig6 {
    let keys: Vec<f64> = comparisons
        .iter()
        .map(|c| c.h3_enabled_cdn as f64)
        .collect();
    let groups = quartile_groups(&keys);
    let group_rows = QuartileGroup::ALL
        .into_iter()
        .map(|g| {
            let reductions: Vec<f64> = comparisons
                .iter()
                .zip(&groups)
                .filter(|(_, &gg)| gg == g)
                .map(|(c, _)| c.plt_reduction_ms)
                .collect();
            GroupReduction {
                group: g.label().to_string(),
                pages: reductions.len(),
                mean_plt_reduction_ms: mean(&reductions),
            }
        })
        .collect();

    let mut connect = Vec::new();
    let mut wait = Vec::new();
    let mut wait_h3 = Vec::new();
    let mut receive = Vec::new();
    let mut connect_nonzero = Vec::new();
    for c in comparisons {
        for e in &c.entries {
            connect.push(e.connect_ms);
            wait.push(e.wait_ms);
            receive.push(e.receive_ms);
            if e.h3_served {
                wait_h3.push(e.wait_ms);
            }
            if e.connect_ms != 0.0 {
                connect_nonzero.push(e.connect_ms);
            }
        }
    }
    Fig6 {
        groups: group_rows,
        connect_median: median(&connect),
        wait_median: median(&wait),
        wait_median_h3_served: median(&wait_h3),
        receive_median: median(&receive),
        connect_mean_nonzero: mean(&connect_nonzero),
        connect_cdf: cdf_points(&connect),
        wait_cdf: cdf_points(&wait),
        receive_cdf: cdf_points(&receive),
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 6(a): PLT reduction by H3-enabled-resource group")?;
        writeln!(f, "{:<12} {:>6} {:>16}", "group", "pages", "mean PLT red.")?;
        for g in &self.groups {
            writeln!(
                f,
                "{:<12} {:>6} {:>14.1}ms",
                g.group, g.pages, g.mean_plt_reduction_ms
            )?;
        }
        writeln!(f, "Fig. 6(b): per-entry reduction medians")?;
        writeln!(
            f,
            "connect: {:>8.2}ms (mean over handshaking entries {:.2}ms)",
            self.connect_median, self.connect_mean_nonzero
        )?;
        writeln!(
            f,
            "wait:    {:>8.2}ms (over H3-served entries {:.2}ms)",
            self.wait_median, self.wait_median_h3_served
        )?;
        writeln!(f, "receive: {:>8.2}ms", self.receive_median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::{CampaignConfig, MeasurementCampaign, Vantage};

    #[test]
    fn groups_are_equal_sized_and_positive() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(16, 21));
        let cmps: Vec<PageComparison> = (0..16)
            .map(|site| campaign.compare_page(site, Vantage::Utah))
            .collect();
        let fig = run(&cmps);
        assert_eq!(fig.groups.len(), 4);
        // At 4 pages per group single-page noise (±100 ms under baseline
        // loss) can dent one group; the overall benefit and near-positive
        // groups are the stable property (paper scale is pinned in
        // EXPERIMENTS.md).
        let overall: f64 = fig
            .groups
            .iter()
            .map(|g| g.mean_plt_reduction_ms * g.pages as f64)
            .sum::<f64>()
            / cmps.len() as f64;
        assert!(overall > 0.0, "mean reduction {overall:.1}ms");
        for g in &fig.groups {
            assert_eq!(g.pages, 4);
            assert!(
                g.mean_plt_reduction_ms > -60.0,
                "{}: {}ms — far outside the noise floor",
                g.group,
                g.mean_plt_reduction_ms
            );
        }
        // Fig. 6(b) shapes: handshaking entries save connect time, the
        // wait median is not positive (H3 server compute surcharge),
        // receive is ~0 at page scale.
        assert!(fig.connect_mean_nonzero > 0.0);
        assert!(fig.wait_median <= 0.0);
        assert!(fig.receive_median.abs() < 2.0);
    }
}
