//! Fig. 4: shared giant providers across webpages — (a) per-provider
//! appearance probability, (b) pages by number of providers used.

use std::collections::BTreeMap;
use std::fmt;

use h3cdn_cdn::Provider;
use serde::Serialize;

use h3cdn::MeasurementCampaign;

/// The reproduced Fig. 4 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4 {
    /// (a) `(provider, P[provider appears on a page])`, descending.
    pub appearance: Vec<(String, f64)>,
    /// (b) `provider count → number of pages`.
    pub pages_by_provider_count: BTreeMap<usize, usize>,
    /// Fraction of pages using at least two providers (paper: 94.8 %).
    pub at_least_two: f64,
}

/// Computes both panels from corpus composition.
pub fn run(campaign: &MeasurementCampaign) -> Fig4 {
    let pages = &campaign.corpus().pages;
    let n = pages.len() as f64;
    let mut appearance: Vec<(String, f64)> = Provider::ALL
        .into_iter()
        .map(|p| {
            let k = pages
                .iter()
                .filter(|page| page.providers_used().contains(&p))
                .count();
            (p.name().to_string(), k as f64 / n)
        })
        .collect();
    appearance.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut pages_by_provider_count: BTreeMap<usize, usize> = BTreeMap::new();
    for page in pages {
        *pages_by_provider_count
            .entry(page.providers_used().len())
            .or_default() += 1;
    }
    let at_least_two = pages
        .iter()
        .filter(|p| p.providers_used().len() >= 2)
        .count() as f64
        / n;
    Fig4 {
        appearance,
        pages_by_provider_count,
        at_least_two,
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 4(a): probability of providers appearing on a page")?;
        for (p, prob) in &self.appearance {
            writeln!(f, "{:<12} {:>6.1}%", p, prob * 100.0)?;
        }
        writeln!(f, "Fig. 4(b): pages by number of providers used")?;
        for (count, pages) in &self.pages_by_provider_count {
            writeln!(f, "{count:>2} providers: {pages:>4} pages")?;
        }
        writeln!(
            f,
            "pages using >= 2 providers: {:.1}%",
            self.at_least_two * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::CampaignConfig;

    #[test]
    fn paper_scale_shapes() {
        let campaign = h3cdn::MeasurementCampaign::new(CampaignConfig::default());
        let fig = run(&campaign);
        // Top four providers each exceed 50 % appearance.
        for (p, prob) in fig.appearance.iter().take(4) {
            assert!(*prob > 0.5, "{p} at {prob}");
        }
        assert!((fig.at_least_two - 0.948).abs() < 0.04);
        let total: usize = fig.pages_by_provider_count.values().sum();
        assert_eq!(total, campaign.corpus().pages.len());
    }
}
