//! The path-dynamics resilience sweep: continuous link variation ×
//! congestion control × queue discipline × protocol/fallback arms.
//!
//! The paper measures H3 on *static, healthy* CloudLab paths; this
//! experiment asks how its two Chrome instances would have fared on
//! paths that keep moving — a cellular handover, a Wi-Fi roam, an
//! oscillating bottleneck — with the access buffers either deep
//! (bufferbloat), shallow, or CoDel-managed, under both a loss-based
//! (Cubic) and a model-based (BBR) congestion controller.
//!
//! Every scenario loads each page three ways over identical dynamics:
//!
//! * **h2** — QUIC disabled.
//! * **h3** — `enable-quic` without fallback machinery.
//! * **h3+fallback** — Chrome-style graceful degradation.
//!
//! Each cell reports abort counts, the median PLT of completed loads,
//! queue-sojourn statistics (the bufferbloat signal), drop breakdowns
//! (tail vs AQM vs trace-driven), and a Fig. 9-style least-squares
//! slope of the cell's per-page PLTs against the same arm's static-path
//! control PLTs — slope 1 means the dynamics are free, slope 2 means
//! every control millisecond costs two. The control row is bit-identical
//! to the plain campaign visit paths for every worker count.

use std::collections::BTreeMap;
use std::fmt;

use h3cdn_analysis::{linear_fit, median};
use h3cdn_browser::{try_visit_page, BrokenQuicCache};
use h3cdn_cdn::Vantage;
use h3cdn_netsim::{DynamicsProfile, QueueDiscipline};
use h3cdn_transport::tls::TicketStore;
use h3cdn_transport::CcAlgorithm;
use h3cdn_web::{DomainTable, Webpage};
use serde::{Deserialize, Serialize};

use h3cdn::runner::durable::JobMeta;
use h3cdn::{MeasurementCampaign, ProtocolMode, VisitConfig};

/// One point of the sweep: a dynamics profile (or the static control),
/// a congestion controller, and an access-queue discipline.
#[derive(Debug, Clone)]
pub struct DynamicsScenario {
    /// Scenario label used in reports: `trace/cc/queue`.
    pub name: String,
    /// Congestion controller for both stacks.
    pub cc: CcAlgorithm,
    /// Queue discipline of the access links and dynamic bottlenecks.
    pub queue: QueueDiscipline,
    /// The trace profile; `None` leaves every path static.
    pub profile: Option<DynamicsProfile>,
}

impl DynamicsScenario {
    /// The static control: no dynamics, Cubic, deep tail-drop — the
    /// exact pre-dynamics fabric. Its numbers must match the plain
    /// campaign visit paths bit-for-bit.
    pub fn control() -> Self {
        DynamicsScenario {
            name: "static/cubic/droptail-deep".to_owned(),
            cc: CcAlgorithm::Cubic,
            queue: QueueDiscipline::DropTailDeep,
            profile: None,
        }
    }

    /// A dynamic scenario named `trace/cc/queue`.
    pub fn dynamic(profile: DynamicsProfile, cc: CcAlgorithm, queue: QueueDiscipline) -> Self {
        DynamicsScenario {
            name: format!("{}/{cc}/{queue}", profile.label()),
            cc,
            queue,
            profile: Some(profile),
        }
    }
}

/// The full sweep: the control plus every trace × {cubic, bbr} ×
/// {droptail-deep, droptail-shallow, codel} combination (19 scenarios).
pub fn default_scenarios() -> Vec<DynamicsScenario> {
    let mut v = vec![DynamicsScenario::control()];
    for profile in DynamicsProfile::ALL {
        for cc in [CcAlgorithm::Cubic, CcAlgorithm::Bbr] {
            for queue in [
                QueueDiscipline::DropTailDeep,
                QueueDiscipline::DropTailShallow,
                QueueDiscipline::CoDel,
            ] {
                v.push(DynamicsScenario::dynamic(profile, cc, queue));
            }
        }
    }
    v
}

/// The CI smoke subset: the control plus the four cells the smoke
/// invariants compare (Cubic-vs-BBR bufferbloat on the deep-buffered
/// oscillating bottleneck, CoDel on the same trace, and the handover
/// trace the fallback arm must survive).
pub fn smoke_scenarios() -> Vec<DynamicsScenario> {
    vec![
        DynamicsScenario::control(),
        DynamicsScenario::dynamic(
            DynamicsProfile::OscillatingBottleneck,
            CcAlgorithm::Cubic,
            QueueDiscipline::DropTailDeep,
        ),
        DynamicsScenario::dynamic(
            DynamicsProfile::OscillatingBottleneck,
            CcAlgorithm::Bbr,
            QueueDiscipline::DropTailDeep,
        ),
        DynamicsScenario::dynamic(
            DynamicsProfile::OscillatingBottleneck,
            CcAlgorithm::Cubic,
            QueueDiscipline::CoDel,
        ),
        DynamicsScenario::dynamic(
            DynamicsProfile::CellularHandover,
            CcAlgorithm::Cubic,
            QueueDiscipline::DropTailDeep,
        ),
    ]
}

/// The protocol/fallback arms of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    H2,
    H3NoFallback,
    H3WithFallback,
}

impl Arm {
    const ALL: [Arm; 3] = [Arm::H2, Arm::H3NoFallback, Arm::H3WithFallback];

    fn label(self) -> &'static str {
        match self {
            Arm::H2 => "h2",
            Arm::H3NoFallback => "h3",
            Arm::H3WithFallback => "h3+fallback",
        }
    }

    fn mode(self) -> ProtocolMode {
        match self {
            Arm::H2 => ProtocolMode::H2Only,
            Arm::H3NoFallback | Arm::H3WithFallback => ProtocolMode::H3Enabled,
        }
    }

    fn fallback(self) -> bool {
        matches!(self, Arm::H3WithFallback)
    }
}

/// One `(scenario, arm)` cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DynamicsCell {
    /// Scenario label (`trace/cc/queue`).
    pub scenario: String,
    /// Arm label (`h2` / `h3` / `h3+fallback`).
    pub arm: String,
    /// Pages measured.
    pub pages: usize,
    /// Pages that could not finish.
    pub aborted: usize,
    /// Median PLT over completed loads (`NaN` when none completed).
    pub median_plt_ms: f64,
    /// Fig. 9-style least-squares slope of this cell's per-page PLTs
    /// against the same arm's control-cell PLTs (pages where both
    /// completed). `NaN` when fewer than two such pages exist.
    pub slope_vs_control: f64,
    /// R² of that fit.
    pub r_squared: f64,
    /// Median over pages of the per-visit mean queue sojourn — the
    /// bufferbloat signal.
    pub median_sojourn_ms: f64,
    /// Worst single-packet queue sojourn seen by any page.
    pub max_sojourn_ms: f64,
    /// Packets tail-dropped by full buffers, across all pages.
    pub tail_dropped: u64,
    /// Packets shed by CoDel, across all pages.
    pub aqm_dropped: u64,
    /// Packets consumed by the dynamics traces (loss or bottleneck
    /// drop), across all pages.
    pub dynamics_dropped: u64,
    /// Total H3→H2 fallbacks across all pages.
    pub h3_fallbacks: u64,
    /// Per-site PLTs in site order; `NaN` marks an aborted load.
    pub plts_ms: Vec<f64>,
    /// Per-site mean queue sojourns in site order.
    pub sojourns_ms: Vec<f64>,
}

/// The full sweep result, rows scenario-major in input order, arms
/// `h2`, `h3`, `h3+fallback` within each scenario.
#[derive(Debug, Clone, Serialize)]
pub struct DynamicsSweep {
    /// One row per `(scenario, arm)`.
    pub rows: Vec<DynamicsCell>,
}

impl DynamicsSweep {
    /// The cell for the given scenario and arm labels, if present.
    pub fn cell(&self, scenario: &str, arm: &str) -> Option<&DynamicsCell> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.arm == arm)
    }
}

/// One page load's contribution to a cell. Serialized into the
/// checkpoint journal under a durable context; `NaN` PLTs round-trip
/// through JSON `null` back to the canonical [`f64::NAN`] this module
/// writes, so resumed sweeps stay bit-identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Sample {
    /// `NaN` when the visit aborted.
    plt_ms: f64,
    mean_sojourn_ms: f64,
    max_sojourn_ms: f64,
    tail_dropped: u64,
    aqm_dropped: u64,
    dynamics_dropped: u64,
    h3_fallbacks: u64,
}

/// Loads one page under `cfg`, reducing the outcome (completed or
/// aborted) to a [`Sample`].
fn sample(page: &Webpage, domains: &DomainTable, cfg: &VisitConfig) -> Sample {
    let reduce = |plt_ms: f64, stats: &h3cdn_browser::VisitStats, fallbacks: u64| Sample {
        plt_ms,
        mean_sojourn_ms: stats.queue.mean_sojourn_ms(),
        max_sojourn_ms: stats.queue.max_sojourn_ns as f64 / 1e6,
        tail_dropped: stats.queue.tail_dropped,
        aqm_dropped: stats.queue.aqm_dropped,
        dynamics_dropped: stats.packets_dynamics_dropped,
        h3_fallbacks: fallbacks,
    };
    match try_visit_page(
        page,
        domains,
        cfg,
        TicketStore::new(),
        BrokenQuicCache::new(),
    ) {
        Ok(o) => reduce(o.har.plt_ms, &o.stats, o.resilience.h3_fallbacks),
        Err(a) => reduce(f64::NAN, &a.stats, a.resilience.h3_fallbacks),
    }
}

/// Median PLT over the completed loads of a cell.
fn completed_median(samples: &[Sample]) -> f64 {
    let done: Vec<f64> = samples
        .iter()
        .map(|s| s.plt_ms)
        .filter(|p| p.is_finite())
        .collect();
    median(&done)
}

/// Fig. 9-style fit of a cell's PLTs against the same arm's control
/// PLTs, over pages where both completed. `NaN` slope when fewer than
/// two usable pages exist (or the control PLTs are degenerate).
fn fit_vs_control(control: &[f64], cell: &[f64]) -> (f64, f64) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (x, y) in control.iter().zip(cell) {
        if x.is_finite() && y.is_finite() {
            xs.push(*x);
            ys.push(*y);
        }
    }
    let spread = xs
        .iter()
        .any(|x| (x - xs.first().copied().unwrap_or(0.0)).abs() > f64::EPSILON);
    if xs.len() < 2 || !spread {
        return (f64::NAN, f64::NAN);
    }
    let fit = linear_fit(&xs, &ys);
    (fit.slope, fit.r_squared)
}

/// Runs the sweep: `scenarios × {h2, h3, h3+fallback} × sites` as one
/// batch of keyed jobs on the campaign's execution layer (the plain
/// deterministic pool, or the crash-safe runner when the campaign
/// carries a durable context). The key-ordered merge makes the output
/// bit-identical for every worker count. Quarantined loads are dropped
/// from their cell (shrinking its `pages` count) and reported through
/// the campaign's quarantine sink.
pub fn run(
    campaign: &MeasurementCampaign,
    vantage: Vantage,
    scenarios: &[DynamicsScenario],
) -> DynamicsSweep {
    let domains = &campaign.corpus().domains;
    let w = &campaign.config().workload;
    let mut jobs = Vec::new();
    for (si, sc) in scenarios.iter().enumerate() {
        for (ai, arm) in Arm::ALL.iter().enumerate() {
            for (site, page) in campaign.corpus().pages.iter().enumerate() {
                let mut cfg = campaign
                    .config()
                    .visit
                    .clone()
                    .with_vantage(vantage)
                    .with_mode(arm.mode())
                    .with_h3_fallback(arm.fallback())
                    .with_queue(sc.queue)
                    .with_path_dynamics(sc.profile);
                cfg.cc = sc.cc;
                let meta = JobMeta {
                    label: format!("dynamics '{}' {} site {site}", sc.name, arm.label()),
                    repro: format!(
                        "cargo run -q -p h3cdn-experiments --bin path_dynamics -- \
                         --pages {} --seed {}",
                        w.num_pages, w.seed
                    ),
                };
                jobs.push(((si as u32, ai as u32, site as u32), meta, move || {
                    sample(page, domains, &cfg)
                }));
            }
        }
    }
    let keyed = campaign.run_durable("path-dynamics", jobs);

    let mut by_cell: BTreeMap<(u32, u32), Vec<Sample>> = BTreeMap::new();
    for ((si, ai, _site), s) in keyed.into_iter().filter_map(|(k, s)| Some((k, s?))) {
        by_cell.entry((si, ai)).or_default().push(s);
    }
    // Control PLTs per arm feed the slope fits. The control is the
    // first scenario named by `DynamicsScenario::control`, if present.
    let control_si = scenarios
        .iter()
        .position(|s| s.profile.is_none())
        .map(|i| i as u32);
    let control_plts: BTreeMap<u32, Vec<f64>> = match control_si {
        Some(ci) => Arm::ALL
            .iter()
            .enumerate()
            .filter_map(|(ai, _)| {
                let samples = by_cell.get(&(ci, ai as u32))?;
                Some((ai as u32, samples.iter().map(|s| s.plt_ms).collect()))
            })
            .collect(),
        None => BTreeMap::new(),
    };
    let mut rows = Vec::new();
    for ((si, ai), samples) in &by_cell {
        let scenario = scenarios
            .get(*si as usize)
            .map_or(String::new(), |s| s.name.clone());
        let arm = Arm::ALL.get(*ai as usize).map_or("?", |a| a.label());
        let plts: Vec<f64> = samples.iter().map(|s| s.plt_ms).collect();
        let sojourns: Vec<f64> = samples.iter().map(|s| s.mean_sojourn_ms).collect();
        let (slope, r2) = match control_plts.get(ai) {
            Some(control) => fit_vs_control(control, &plts),
            None => (f64::NAN, f64::NAN),
        };
        rows.push(DynamicsCell {
            scenario,
            arm: arm.to_owned(),
            pages: samples.len(),
            aborted: samples.iter().filter(|s| !s.plt_ms.is_finite()).count(),
            median_plt_ms: completed_median(samples),
            slope_vs_control: slope,
            r_squared: r2,
            median_sojourn_ms: median(&sojourns),
            max_sojourn_ms: samples.iter().map(|s| s.max_sojourn_ms).fold(0.0, f64::max),
            tail_dropped: samples.iter().map(|s| s.tail_dropped).sum(),
            aqm_dropped: samples.iter().map(|s| s.aqm_dropped).sum(),
            dynamics_dropped: samples.iter().map(|s| s.dynamics_dropped).sum(),
            h3_fallbacks: samples.iter().map(|s| s.h3_fallbacks).sum(),
            plts_ms: plts,
            sojourns_ms: sojourns,
        });
    }
    DynamicsSweep { rows }
}

/// `"-"` for non-finite values (nothing completed / no fit).
fn fmt_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "-".to_owned()
    }
}

/// `"-"` for a non-finite fit statistic.
fn fmt_fit(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "-".to_owned()
    }
}

impl fmt::Display for DynamicsSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Path dynamics: traces x cc x queue x {{h2, h3, h3+fallback}} (per-cell aggregates)"
        )?;
        writeln!(
            f,
            "{:<28} {:<12} {:>6} {:>8} {:>12} {:>6} {:>5} {:>10} {:>10} {:>6} {:>5} {:>8} {:>9}",
            "scenario",
            "arm",
            "pages",
            "aborted",
            "med PLT ms",
            "slope",
            "r2",
            "med soj ms",
            "max soj ms",
            "tail",
            "aqm",
            "dyn drop",
            "fallbacks"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:<12} {:>6} {:>8} {:>12} {:>6} {:>5} {:>10.2} {:>10.1} {:>6} {:>5} {:>8} {:>9}",
                r.scenario,
                r.arm,
                r.pages,
                r.aborted,
                fmt_ms(r.median_plt_ms),
                fmt_fit(r.slope_vs_control),
                fmt_fit(r.r_squared),
                r.median_sojourn_ms,
                r.max_sojourn_ms,
                r.tail_dropped,
                r.aqm_dropped,
                r.dynamics_dropped,
                r.h3_fallbacks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::runner::RunnerConfig;
    use h3cdn::{CampaignConfig, MeasurementCampaign};

    #[test]
    fn control_rows_match_campaign_paths_bitwise() {
        let cfg = CampaignConfig::small(3, 11);
        let serial = MeasurementCampaign::new(cfg.clone().with_runner(RunnerConfig::serial()));
        let parallel =
            MeasurementCampaign::new(cfg.with_runner(RunnerConfig::default().with_jobs(8)));
        let scenarios = vec![DynamicsScenario::control()];
        let a = run(&serial, Vantage::Utah, &scenarios);
        let b = run(&parallel, Vantage::Utah, &scenarios);
        assert_eq!(a.rows.len(), 3);
        // Worker-count invariance, bit for bit.
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.median_plt_ms.to_bits(), rb.median_plt_ms.to_bits());
            for (x, y) in ra.plts_ms.iter().zip(&rb.plts_ms) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in ra.sojourns_ms.iter().zip(&rb.sojourns_ms) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // The control reproduces the plain campaign visit paths exactly:
        // default queue + no dynamics is the pre-dynamics fabric.
        let h2 = a.cell("static/cubic/droptail-deep", "h2").expect("h2 row");
        let h3 = a.cell("static/cubic/droptail-deep", "h3").expect("h3 row");
        assert_eq!(h2.aborted + h3.aborted, 0);
        for site in 0..3usize {
            let want_h2 = serial
                .visit(site, Vantage::Utah, ProtocolMode::H2Only)
                .plt_ms;
            let want_h3 = serial
                .visit(site, Vantage::Utah, ProtocolMode::H3Enabled)
                .plt_ms;
            assert_eq!(h2.plts_ms[site].to_bits(), want_h2.to_bits());
            assert_eq!(h3.plts_ms[site].to_bits(), want_h3.to_bits());
        }
        // The control's fit against itself is the identity line.
        assert!((h3.slope_vs_control - 1.0).abs() < 1e-9);
        assert!((h3.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamics_slow_pages_and_populate_queue_stats() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(3, 11));
        let scenarios = vec![
            DynamicsScenario::control(),
            DynamicsScenario::dynamic(
                DynamicsProfile::OscillatingBottleneck,
                CcAlgorithm::Cubic,
                QueueDiscipline::DropTailDeep,
            ),
        ];
        let sweep = run(&campaign, Vantage::Utah, &scenarios);
        assert_eq!(sweep.rows.len(), 6);
        let control = sweep
            .cell("static/cubic/droptail-deep", "h3")
            .expect("control");
        let osc = sweep
            .cell("oscillate/cubic/droptail-deep", "h3")
            .expect("oscillate");
        assert_eq!(osc.aborted, 0, "oscillation must not strand pages");
        assert!(
            osc.median_plt_ms > control.median_plt_ms,
            "a 40-to-4 Mbps bottleneck must cost time: {} vs {}",
            osc.median_plt_ms,
            control.median_plt_ms
        );
        assert!(osc.median_sojourn_ms > 0.0);
        assert!(osc.max_sojourn_ms > 0.0);
    }

    #[test]
    fn display_and_json_render() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(2, 5));
        let scenarios = vec![
            DynamicsScenario::control(),
            DynamicsScenario::dynamic(
                DynamicsProfile::CellularHandover,
                CcAlgorithm::Bbr,
                QueueDiscipline::CoDel,
            ),
        ];
        let sweep = run(&campaign, Vantage::Utah, &scenarios);
        let text = sweep.to_string();
        assert!(text.contains("handover/bbr/codel"));
        assert!(text.contains("h3+fallback"));
        let json = serde_json::to_string(&sweep).expect("serialises");
        assert!(json.contains("dynamics_dropped"));
        assert!(json.contains("slope_vs_control"));
    }

    #[test]
    fn scenario_sets_are_well_formed() {
        let all = default_scenarios();
        assert_eq!(all.len(), 1 + 3 * 2 * 3);
        assert_eq!(all[0].name, "static/cubic/droptail-deep");
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "scenario names must be unique");
        let smoke = smoke_scenarios();
        assert!(smoke.iter().any(|s| s.profile.is_none()));
        assert!(smoke
            .iter()
            .any(|s| s.name == "oscillate/bbr/droptail-deep"));
    }
}
