//! Shared scaffolding for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper. All accept
//! the same flags:
//!
//! ```text
//! --pages N      corpus size (default 325, the paper's scale)
//! --seed S       corpus seed (default: the paper-calibrated default)
//! --vantage V    Utah | Wisconsin | Clemson (default Utah; experiments
//!                that average across vantages take all three regardless)
//! --json         emit the result as JSON instead of the formatted table
//! --jobs N       worker threads for the parallel runner (default: the
//!                H3CDN_JOBS env var, else all cores; results are
//!                bit-identical for every worker count)
//! --progress     print jobs-done/throughput counters to stderr
//!                (equivalent to H3CDN_PROGRESS=1)
//! ```

use h3cdn::{CampaignConfig, MeasurementCampaign, RunnerConfig, Vantage, WorkloadSpec};

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct Options {
    /// Corpus size.
    pub pages: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Vantage for single-vantage experiments.
    pub vantage: Vantage,
    /// Emit JSON instead of the formatted table.
    pub json: bool,
    /// Worker threads (`0` = auto: `H3CDN_JOBS` env var, else all cores).
    pub jobs: usize,
    /// Print progress/throughput counters to stderr.
    pub progress: bool,
}

impl Default for Options {
    fn default() -> Self {
        let env = RunnerConfig::from_env();
        Options {
            pages: 325,
            seed: WorkloadSpec::default().seed,
            vantage: Vantage::Utah,
            json: false,
            jobs: env.jobs,
            progress: !env.quiet,
        }
    }
}

impl Options {
    /// The runner configuration these options resolve to.
    pub fn runner(&self) -> RunnerConfig {
        RunnerConfig::from_env()
            .with_jobs(self.jobs)
            .with_quiet(!self.progress)
    }
}

/// Parses `std::env::args`-style flags.
///
/// # Panics
///
/// Panics with a usage message on malformed flags — appropriate for a
/// CLI entry point.
pub fn parse_args(args: impl Iterator<Item = String>) -> Options {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pages" => {
                opts.pages = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--pages expects a positive integer"));
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed expects an integer"));
            }
            "--vantage" => {
                let v = args.next().unwrap_or_default();
                opts.vantage = match v.to_ascii_lowercase().as_str() {
                    "utah" => Vantage::Utah,
                    "wisconsin" => Vantage::Wisconsin,
                    "clemson" => Vantage::Clemson,
                    other => panic!("unknown vantage {other:?} (Utah|Wisconsin|Clemson)"),
                };
            }
            "--json" => opts.json = true,
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--jobs expects a non-negative integer"));
            }
            "--progress" => opts.progress = true,
            "--help" | "-h" => {
                println!(
                    "flags: --pages N   --seed S   --vantage Utah|Wisconsin|Clemson   \
                     --json   --jobs N   --progress"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?}; try --help"),
        }
    }
    opts
}

/// Builds the campaign for the parsed options (corpus scale, seed and
/// parallel-runner settings).
pub fn campaign(opts: &Options) -> MeasurementCampaign {
    let config = CampaignConfig {
        workload: WorkloadSpec::default()
            .with_pages(opts.pages)
            .with_seed(opts.seed),
        runner: opts.runner(),
        ..CampaignConfig::default()
    };
    MeasurementCampaign::new(config)
}

/// Prints a result either as its Display table or as JSON.
pub fn emit<T: std::fmt::Display + serde::Serialize>(opts: &Options, value: &T) {
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(value).expect("experiment results serialise")
        );
    } else {
        println!("{value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Options {
        parse_args(s.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn defaults_are_paper_scale() {
        let o = parse(&[]);
        assert_eq!(o.pages, 325);
        assert!(!o.json);
    }

    #[test]
    fn flags_parse() {
        let o = parse(&[
            "--pages",
            "20",
            "--seed",
            "9",
            "--vantage",
            "clemson",
            "--json",
        ]);
        assert_eq!(o.pages, 20);
        assert_eq!(o.seed, 9);
        assert_eq!(o.vantage, Vantage::Clemson);
        assert!(o.json);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_rejected() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    fn jobs_and_progress_flags_reach_the_runner() {
        let o = parse(&["--jobs", "3", "--progress"]);
        assert_eq!(o.jobs, 3);
        assert!(o.progress);
        let r = o.runner();
        assert_eq!(r.effective_jobs(), 3);
        assert!(!r.quiet);
        let c = campaign(&parse(&["--pages", "2", "--jobs", "3"]));
        assert_eq!(c.runner().effective_jobs(), 3);
    }

    #[test]
    fn campaign_builds_at_requested_scale() {
        let o = parse(&["--pages", "3"]);
        let c = campaign(&o);
        assert_eq!(c.corpus().pages.len(), 3);
    }

    #[test]
    fn emit_json_serialises_results() {
        // Any experiment result must survive the JSON path the --json
        // flag uses.
        let t = h3cdn::experiments::table1::run();
        let json = serde_json::to_string_pretty(&t).expect("serialises");
        let back: serde_json::Value = serde_json::from_str(&json).expect("parses");
        assert_eq!(back["rows"].as_array().expect("rows").len(), 6);
    }
}
