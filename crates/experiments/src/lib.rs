//! Shared scaffolding for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper. All accept
//! the same flags:
//!
//! ```text
//! --pages N      corpus size (default 325, the paper's scale)
//! --seed S       corpus seed (default: the paper-calibrated default)
//! --vantage V    Utah | Wisconsin | Clemson (default Utah; experiments
//!                that average across vantages take all three regardless)
//! --json         emit the result as JSON instead of the formatted table
//! --jobs N       worker threads for the parallel runner (default: the
//!                H3CDN_JOBS env var, else all cores; results are
//!                bit-identical for every worker count)
//! --progress     print jobs-done/throughput counters to stderr
//!                (equivalent to H3CDN_PROGRESS=1)
//! --run-id ID    checkpoint this run under results/.runs/ID (journal
//!                every completed job via write-temp-fsync-rename)
//! --resume       load journaled jobs of a matching previous run
//!                instead of re-executing them (implies a default
//!                --run-id derived from the experiment name, corpus
//!                size and seed); output is bit-identical to an
//!                uninterrupted run at any --jobs
//! --results-dir D  root for results and checkpoints (default results)
//! --max-retries N  attempts per job before quarantine (default 3)
//! --wall-budget-ms MS  per-attempt wall-clock watchdog (off by
//!                default; demotion is nondeterministic by nature)
//! --max-sim-events N   deterministic per-visit sim-event watchdog
//!                (changes results for budget-exceeding visits, so it
//!                is part of the resume fingerprint)
//! ```
//!
//! Every binary runs its campaign under the crash-safe execution layer
//! (panic isolation + deterministic retries); checkpointing to disk
//! only happens with `--run-id`/`--resume`. The `H3CDN_PANIC_SITE=N`
//! environment variable arms a chaos hook that deliberately panics
//! every visit of site `N` — the end-to-end proof of the quarantine
//! path (see the `visit_one` binary for replaying quarantined jobs).
//!
//! The figure/table regenerators themselves live here too, one module
//! per artifact of the paper's evaluation: each consumes a
//! [`MeasurementCampaign`](h3cdn::MeasurementCampaign), runs exactly
//! the analysis the paper describes, and returns a serialisable result
//! whose `Display` prints the same rows/series the paper reports.
//! EXPERIMENTS.md records paper-vs-measured for each. They sit in this
//! crate — not `h3cdn` — because they are experiment-layer code: they
//! consume `h3cdn-analysis`, which the layer map places above the
//! campaign core (see DESIGN.md "Correctness policy & static
//! analysis").

pub mod edge_overload;
pub mod fault_matrix;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod path_dynamics;
pub mod population;
pub mod report;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table3;

use std::path::Path;

use h3cdn::persist::{workspace_git_hash, Fingerprint, Manifest, RunDir, MANIFEST_VERSION};
use h3cdn::runner::durable::{DurableContext, RetryPolicy};
use h3cdn::{CampaignConfig, MeasurementCampaign, RunnerConfig, Vantage, WorkloadSpec};

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct Options {
    /// Corpus size.
    pub pages: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Vantage for single-vantage experiments.
    pub vantage: Vantage,
    /// Emit JSON instead of the formatted table.
    pub json: bool,
    /// Worker threads (`0` = auto: `H3CDN_JOBS` env var, else all cores).
    pub jobs: usize,
    /// Print progress/throughput counters to stderr.
    pub progress: bool,
    /// Resume from a matching checkpoint instead of re-executing.
    pub resume: bool,
    /// Checkpoint run id (`None` = no checkpointing unless `--resume`
    /// derives a default id).
    pub run_id: Option<String>,
    /// Root directory for results and checkpoints.
    pub results_dir: String,
    /// Attempts per job before quarantine.
    pub max_retries: u32,
    /// Optional per-attempt wall-clock watchdog, milliseconds.
    pub wall_budget_ms: Option<u64>,
    /// Optional deterministic per-visit sim-event watchdog.
    pub max_sim_events: Option<u64>,
    /// The full flag list as parsed (provenance; recorded in the
    /// checkpoint manifest but *not* fingerprinted).
    pub argv: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        let env = RunnerConfig::from_env();
        Options {
            pages: 325,
            seed: WorkloadSpec::default().seed,
            vantage: Vantage::Utah,
            json: false,
            jobs: env.jobs,
            progress: !env.quiet,
            resume: false,
            run_id: None,
            results_dir: "results".to_owned(),
            max_retries: 3,
            wall_budget_ms: None,
            max_sim_events: None,
            argv: Vec::new(),
        }
    }
}

impl Options {
    /// The runner configuration these options resolve to.
    pub fn runner(&self) -> RunnerConfig {
        RunnerConfig::from_env()
            .with_jobs(self.jobs)
            .with_quiet(!self.progress)
    }

    /// The run id checkpointing resolves to for `experiment`: the
    /// explicit `--run-id`, else (under `--resume`) a deterministic
    /// default derived from the experiment identity.
    pub fn effective_run_id(&self, experiment: &str) -> Option<String> {
        if let Some(id) = &self.run_id {
            return Some(id.clone());
        }
        self.resume
            .then(|| format!("{experiment}-p{}-s{}", self.pages, self.seed))
    }

    /// The canonical *semantic* argument list — every resolved setting
    /// that can change results, rendered in a fixed order and spelling.
    /// Scheduling and IO flags (`--jobs`, `--progress`, `--resume`,
    /// `--run-id`, `--results-dir`, `--max-retries`,
    /// `--wall-budget-ms`, `--json`) are deliberately excluded: a
    /// checkpoint taken at one worker count must resume at any other.
    pub fn fingerprint_args(&self) -> Vec<String> {
        let mut a = vec![
            "--pages".to_owned(),
            self.pages.to_string(),
            "--seed".to_owned(),
            self.seed.to_string(),
            "--vantage".to_owned(),
            self.vantage.name().to_lowercase(),
        ];
        if let Some(budget) = self.max_sim_events {
            a.push("--max-sim-events".to_owned());
            a.push(budget.to_string());
        }
        a
    }
}

/// Parses `std::env::args`-style flags.
///
/// # Panics
///
/// Panics with a usage message on malformed flags — appropriate for a
/// CLI entry point.
pub fn parse_args(args: impl Iterator<Item = String>) -> Options {
    let mut opts = Options::default();
    let mut args = args.peekable();
    fn take(opts: &mut Options, args: &mut dyn Iterator<Item = String>) -> Option<String> {
        let v = args.next();
        if let Some(v) = &v {
            opts.argv.push(v.clone());
        }
        v
    }
    while let Some(arg) = args.next() {
        opts.argv.push(arg.clone());
        match arg.as_str() {
            "--pages" => {
                opts.pages = take(&mut opts, &mut args)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--pages expects a positive integer"));
            }
            "--seed" => {
                opts.seed = take(&mut opts, &mut args)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed expects an integer"));
            }
            "--vantage" => {
                let v = take(&mut opts, &mut args).unwrap_or_default();
                opts.vantage = match v.to_ascii_lowercase().as_str() {
                    "utah" => Vantage::Utah,
                    "wisconsin" => Vantage::Wisconsin,
                    "clemson" => Vantage::Clemson,
                    other => panic!("unknown vantage {other:?} (Utah|Wisconsin|Clemson)"),
                };
            }
            "--json" => opts.json = true,
            "--jobs" => {
                opts.jobs = take(&mut opts, &mut args)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--jobs expects a non-negative integer"));
            }
            "--progress" => opts.progress = true,
            "--resume" => opts.resume = true,
            "--run-id" => {
                opts.run_id = Some(
                    take(&mut opts, &mut args)
                        .unwrap_or_else(|| panic!("--run-id expects an identifier")),
                );
            }
            "--results-dir" => {
                opts.results_dir = take(&mut opts, &mut args)
                    .unwrap_or_else(|| panic!("--results-dir expects a directory"));
            }
            "--max-retries" => {
                opts.max_retries = take(&mut opts, &mut args)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--max-retries expects a positive integer"));
            }
            "--wall-budget-ms" => {
                opts.wall_budget_ms = Some(
                    take(&mut opts, &mut args)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--wall-budget-ms expects milliseconds")),
                );
            }
            "--max-sim-events" => {
                opts.max_sim_events = Some(
                    take(&mut opts, &mut args)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--max-sim-events expects a positive integer")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "flags: --pages N   --seed S   --vantage Utah|Wisconsin|Clemson   \
                     --json   --jobs N   --progress   --resume   --run-id ID   \
                     --results-dir D   --max-retries N   --wall-budget-ms MS   \
                     --max-sim-events N"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?}; try --help"),
        }
    }
    opts
}

/// Builds the campaign for the parsed options (corpus scale, seed and
/// parallel-runner settings) *without* the crash-safe layer — the
/// plain pool the repro binaries use when a panic should stay a panic
/// (see the `visit_one` quarantine-replay binary).
pub fn campaign(opts: &Options) -> MeasurementCampaign {
    MeasurementCampaign::new(base_config(opts).with_inject_panic_site(panic_site_from_env()))
}

/// Builds the campaign for an experiment binary, running under the
/// crash-safe execution layer: per-visit panic isolation with
/// deterministic retries always; checkpoint/resume journaling under
/// `results_dir/.runs/<run-id>/` when `--run-id` or `--resume` is
/// given. `experiment` names the binary — it feeds the resume
/// fingerprint (so a `fig6` checkpoint can never leak into `fig9`) and
/// the default run id.
pub fn campaign_named(opts: &Options, experiment: &str) -> MeasurementCampaign {
    let mut ctx = DurableContext::new(opts.seed)
        .with_retry(RetryPolicy {
            max_attempts: opts.max_retries.max(1),
            ..RetryPolicy::default()
        })
        .with_wall_budget_ms(opts.wall_budget_ms);
    if let Some(run) = prepare_run_dir(opts, experiment) {
        ctx = ctx.with_checkpoint(run);
    }
    let config = base_config(opts)
        .with_durable(Some(ctx))
        .with_inject_panic_site(panic_site_from_env());
    MeasurementCampaign::new(config)
}

/// Resolves and prepares the checkpoint directory an experiment binary
/// runs under — the same fingerprint/wipe/resume semantics
/// [`campaign_named`] applies, exposed for binaries (the
/// population-scale runner) that journal through their own layer
/// instead of the per-visit durable context. `None` when the options
/// request no checkpointing, or when the directory is unusable (the
/// run proceeds without journaling either way).
pub fn prepare_run_dir(opts: &Options, experiment: &str) -> Option<RunDir> {
    let run_id = opts.effective_run_id(experiment)?;
    let run = RunDir::open(Path::new(&opts.results_dir), &run_id);
    let manifest = Manifest {
        version: MANIFEST_VERSION,
        run_id: run_id.clone(),
        fingerprint: Fingerprint {
            seed: opts.seed,
            scenario: experiment.to_owned(),
            git_hash: workspace_git_hash(),
            args: opts.fingerprint_args(),
        },
        argv: opts.argv.clone(),
    };
    match run.prepare(&manifest, opts.resume) {
        Ok(kept) => {
            if opts.resume && !kept {
                eprintln!(
                    "h3cdn: checkpoint '{run_id}' has a stale fingerprint; \
                     journal cleared, running from scratch"
                );
            } else if opts.resume {
                eprintln!("h3cdn: resuming run '{run_id}'");
            }
            Some(run)
        }
        Err(e) => {
            eprintln!(
                "h3cdn: checkpoint dir for '{run_id}' unavailable ({e}); \
                 running without journaling"
            );
            None
        }
    }
}

/// Prints the quarantine summary for a finished campaign (stderr) so
/// binaries end with an explicit account of pages that did *not* make
/// it into the tables, and how to replay them.
pub fn report_quarantine(campaign: &MeasurementCampaign) {
    let failures = campaign.take_quarantine();
    if campaign.resumed_jobs() > 0 {
        eprintln!(
            "h3cdn: {} job(s) loaded from checkpoint journal",
            campaign.resumed_jobs()
        );
    }
    if failures.is_empty() {
        return;
    }
    eprintln!(
        "h3cdn: campaign finished with {} quarantined job(s):",
        failures.len()
    );
    for f in &failures {
        eprintln!(
            "  - {} after {} attempt(s): {}\n    repro: {}",
            f.label, f.attempts, f.error, f.repro
        );
    }
}

fn base_config(opts: &Options) -> CampaignConfig {
    let mut config = CampaignConfig {
        workload: WorkloadSpec::default()
            .with_pages(opts.pages)
            .with_seed(opts.seed),
        runner: opts.runner(),
        ..CampaignConfig::default()
    };
    config.visit = config.visit.with_max_sim_events(opts.max_sim_events);
    config
}

/// The chaos hook: `H3CDN_PANIC_SITE=N` makes every visit of site `N`
/// panic deliberately, proving the quarantine path end-to-end.
fn panic_site_from_env() -> Option<usize> {
    std::env::var("H3CDN_PANIC_SITE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

/// Prints a result either as its Display table or as JSON.
pub fn emit<T: std::fmt::Display + serde::Serialize>(opts: &Options, value: &T) {
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(value).expect("experiment results serialise")
        );
    } else {
        println!("{value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Options {
        parse_args(s.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn defaults_are_paper_scale() {
        let o = parse(&[]);
        assert_eq!(o.pages, 325);
        assert!(!o.json);
    }

    #[test]
    fn flags_parse() {
        let o = parse(&[
            "--pages",
            "20",
            "--seed",
            "9",
            "--vantage",
            "clemson",
            "--json",
        ]);
        assert_eq!(o.pages, 20);
        assert_eq!(o.seed, 9);
        assert_eq!(o.vantage, Vantage::Clemson);
        assert!(o.json);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_rejected() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    fn jobs_and_progress_flags_reach_the_runner() {
        let o = parse(&["--jobs", "3", "--progress"]);
        assert_eq!(o.jobs, 3);
        assert!(o.progress);
        let r = o.runner();
        assert_eq!(r.effective_jobs(), 3);
        assert!(!r.quiet);
        let c = campaign(&parse(&["--pages", "2", "--jobs", "3"]));
        assert_eq!(c.runner().effective_jobs(), 3);
    }

    #[test]
    fn campaign_builds_at_requested_scale() {
        let o = parse(&["--pages", "3"]);
        let c = campaign(&o);
        assert_eq!(c.corpus().pages.len(), 3);
    }

    #[test]
    fn emit_json_serialises_results() {
        // Any experiment result must survive the JSON path the --json
        // flag uses.
        let t = crate::table1::run();
        let json = serde_json::to_string_pretty(&t).expect("serialises");
        let back: serde_json::Value = serde_json::from_str(&json).expect("parses");
        assert_eq!(back["rows"].as_array().expect("rows").len(), 6);
    }
}
