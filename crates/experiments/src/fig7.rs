//! Fig. 7: reused HTTP connections under H2 and H3, their difference per
//! group, and the relationship between reuse difference and PLT
//! reduction.

use std::fmt;

use h3cdn_analysis::{mean, quartile_groups, QuartileGroup};
use h3cdn_har::PageComparison;
use serde::Serialize;

/// One group's reuse summary.
#[derive(Debug, Clone, Serialize)]
pub struct GroupReuse {
    /// Group label.
    pub group: String,
    /// Mean reused connections in the H2 visit.
    pub mean_reused_h2: f64,
    /// Mean reused connections in the H3 visit.
    pub mean_reused_h3: f64,
    /// Mean reused-connection difference (H2 − H3).
    pub mean_difference: f64,
}

/// One bin of panel (c): reuse difference → PLT reduction.
#[derive(Debug, Clone, Serialize)]
pub struct DifferenceBin {
    /// Lower edge of the reuse-difference bin.
    pub difference_from: i64,
    /// Upper edge (exclusive).
    pub difference_to: i64,
    /// Pages in the bin.
    pub pages: usize,
    /// Mean PLT reduction in the bin.
    pub mean_plt_reduction_ms: f64,
}

/// The reproduced Fig. 7 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// (a)+(b) per quartile group, Low → High.
    pub groups: Vec<GroupReuse>,
    /// (c) binned reuse difference vs PLT reduction.
    pub bins: Vec<DifferenceBin>,
}

/// Analyses the paired-comparison dataset.
pub fn run(comparisons: &[PageComparison]) -> Fig7 {
    let keys: Vec<f64> = comparisons
        .iter()
        .map(|c| c.h3_enabled_cdn as f64)
        .collect();
    let groups = quartile_groups(&keys);
    let group_rows = QuartileGroup::ALL
        .into_iter()
        .map(|g| {
            let members: Vec<&PageComparison> = comparisons
                .iter()
                .zip(&groups)
                .filter(|(_, &gg)| gg == g)
                .map(|(c, _)| c)
                .collect();
            let h2: Vec<f64> = members.iter().map(|c| c.reused_h2 as f64).collect();
            let h3: Vec<f64> = members.iter().map(|c| c.reused_h3 as f64).collect();
            let diff: Vec<f64> = members
                .iter()
                .map(|c| c.reused_difference() as f64)
                .collect();
            GroupReuse {
                group: g.label().to_string(),
                mean_reused_h2: mean(&h2),
                mean_reused_h3: mean(&h3),
                mean_difference: mean(&diff),
            }
        })
        .collect();

    // Panel (c): bin by reuse difference.
    let edges: [i64; 6] = [i64::MIN, 0, 2, 4, 8, i64::MAX];
    let mut bins = Vec::new();
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let members: Vec<f64> = comparisons
            .iter()
            .filter(|c| {
                let d = c.reused_difference();
                d >= lo && d < hi
            })
            .map(|c| c.plt_reduction_ms)
            .collect();
        bins.push(DifferenceBin {
            difference_from: lo,
            difference_to: hi,
            pages: members.len(),
            mean_plt_reduction_ms: mean(&members),
        });
    }
    Fig7 {
        groups: group_rows,
        bins,
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7(a/b): reused connections per group")?;
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>12}",
            "group", "H2 reused", "H3 reused", "difference"
        )?;
        for g in &self.groups {
            writeln!(
                f,
                "{:<12} {:>10.1} {:>10.1} {:>12.1}",
                g.group, g.mean_reused_h2, g.mean_reused_h3, g.mean_difference
            )?;
        }
        writeln!(f, "Fig. 7(c): PLT reduction vs reuse difference")?;
        for b in &self.bins {
            if b.pages == 0 {
                continue;
            }
            let lo = if b.difference_from == i64::MIN {
                "-inf".to_string()
            } else {
                b.difference_from.to_string()
            };
            let hi = if b.difference_to == i64::MAX {
                "+inf".to_string()
            } else {
                b.difference_to.to_string()
            };
            writeln!(
                f,
                "diff [{lo}, {hi}): {:>4} pages, mean reduction {:>8.1}ms",
                b.pages, b.mean_plt_reduction_ms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::{CampaignConfig, MeasurementCampaign, Vantage};

    #[test]
    fn reuse_grows_with_group_and_h2_exceeds_h3() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(20, 33));
        let cmps: Vec<PageComparison> = (0..20)
            .map(|site| campaign.compare_page(site, Vantage::Utah))
            .collect();
        let fig = run(&cmps);
        // Fig. 7(a)'s direction, robust to small-sample grouping noise:
        // the upper half out-reuses the lower half.
        let low_half = (fig.groups[0].mean_reused_h2 + fig.groups[1].mean_reused_h2) / 2.0;
        let high_half = (fig.groups[2].mean_reused_h2 + fig.groups[3].mean_reused_h2) / 2.0;
        assert!(
            high_half > low_half,
            "higher groups must reuse more: {low_half} vs {high_half}"
        );
        // H2 triggers at least as much reuse overall (Fig. 7(a)'s gap).
        let total_h2: f64 = fig.groups.iter().map(|g| g.mean_reused_h2).sum();
        let total_h3: f64 = fig.groups.iter().map(|g| g.mean_reused_h3).sum();
        assert!(total_h2 > total_h3, "H2 {total_h2} vs H3 {total_h3}");
        // Bin metadata is sane.
        let total_pages: usize = fig.bins.iter().map(|b| b.pages).sum();
        assert_eq!(total_pages, cmps.len());
    }
}
