//! One-shot campaign report: every artifact, rendered as a single
//! markdown document, plus CSV exports of the figure series for
//! plotting.

use std::fmt::Write as _;

use h3cdn_cdn::Vantage;

use h3cdn::MeasurementCampaign;

/// Options for [`generate_report`].
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Vantage for single-vantage artifacts.
    pub vantage: Vantage,
    /// Loss percentages for the Fig. 9 sweep.
    pub loss_percents: Vec<f64>,
    /// Repeats per loss rate (jitter-salt pooling).
    pub fig9_repeats: u64,
    /// Warm-up pages excluded from consecutive-visit statistics.
    pub warmup: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            vantage: Vantage::Utah,
            loss_percents: vec![0.0, 0.5, 1.0],
            fig9_repeats: 3,
            warmup: 10,
        }
    }
}

/// Runs every experiment and renders one markdown report.
///
/// This is the expensive all-in-one entry point (the `report` binary);
/// for individual artifacts use the individual figure/table modules of this crate
/// directly. The shared Fig. 6/7 dataset is measured first (itself a
/// parallel batch), then every section renders as a keyed job on the
/// campaign's [runner](h3cdn::runner) — the key-ordered merge keeps the
/// document layout byte-identical for any worker count.
pub fn generate_report(campaign: &MeasurementCampaign, opts: &ReportOptions) -> String {
    let mut out = String::new();
    let corpus = campaign.corpus();
    let _ = writeln!(out, "# h3cdn campaign report\n");
    let _ = writeln!(
        out,
        "- corpus: **{} pages**, {} requests, seed {}",
        corpus.pages.len(),
        corpus.total_requests(),
        corpus.spec.seed
    );
    let _ = writeln!(
        out,
        "- vantages: {} (paired Fig. 6/7 data uses {})",
        opts.vantage,
        campaign
            .vantages()
            .iter()
            .map(|v| v.name())
            .collect::<Vec<_>>()
            .join("/")
    );
    let _ = writeln!(out, "- CDN share: {:.1} %\n", corpus.cdn_fraction() * 100.0);

    // The Fig. 6/7 dataset is shared, so measure it up front (itself a
    // parallel batch on the campaign's runner).
    let comparisons = campaign.compare_all();

    type Section<'a> = (&'static str, Box<dyn FnOnce() -> String + Send + 'a>);
    let sections: Vec<Section<'_>> = vec![
        ("Table I", Box::new(|| crate::table1::run().to_string())),
        (
            "Table II",
            Box::new(|| crate::table2::run(campaign, opts.vantage).to_string()),
        ),
        (
            "Fig. 2",
            Box::new(|| crate::fig2::run(campaign, opts.vantage).to_string()),
        ),
        (
            "Fig. 3",
            Box::new(|| crate::fig3::run(campaign).to_string()),
        ),
        (
            "Fig. 4",
            Box::new(|| crate::fig4::run(campaign).to_string()),
        ),
        (
            "Fig. 5",
            Box::new(|| crate::fig5::run(campaign).to_string()),
        ),
        (
            "Fig. 6",
            Box::new(|| crate::fig6::run(&comparisons).to_string()),
        ),
        (
            "Fig. 7",
            Box::new(|| crate::fig7::run(&comparisons).to_string()),
        ),
        (
            "Fig. 8",
            Box::new(|| crate::fig8::run(campaign, opts.vantage, opts.warmup).to_string()),
        ),
        (
            "Table III",
            Box::new(|| crate::table3::run(campaign, opts.vantage, opts.warmup).to_string()),
        ),
        (
            "Fig. 9",
            Box::new(|| {
                crate::fig9::run_with_repeats(
                    campaign,
                    opts.vantage,
                    &opts.loss_percents,
                    opts.fig9_repeats,
                )
                .to_string()
            }),
        ),
    ];
    let jobs = sections
        .into_iter()
        .enumerate()
        .map(|(i, (title, body))| ((i as u32, 0u32, 0u32), move || (title, body())))
        .collect();
    for (title, body) in h3cdn::runner::run_keyed_values(campaign.runner(), jobs) {
        let _ = writeln!(out, "## {title}\n\n```text\n{body}```\n");
    }
    out
}

/// Renders `(x, y)` series as a two-column CSV with a header row.
pub(crate) fn series_csv(header: (&str, &str), points: &[(f64, f64)]) -> String {
    let mut out = format!("{},{}\n", header.0, header.1);
    for (x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// CSV exports of the plot-ready series for each figure: name → CSV
/// body. Covers Fig. 3 (CCDF), Fig. 5 (per-giant CCDFs), Fig. 6(b)
/// (three reduction CDFs), and Fig. 9 (per-loss scatter).
pub fn figure_csvs(campaign: &MeasurementCampaign, opts: &ReportOptions) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let fig3 = crate::fig3::run(campaign);
    out.push((
        "fig3_ccdf.csv".to_string(),
        series_csv(("cdn_percent", "ccdf"), &fig3.points),
    ));
    let fig5 = crate::fig5::run(campaign);
    for s in &fig5.series {
        out.push((
            format!("fig5_{}.csv", s.provider.to_lowercase().replace('.', "_")),
            series_csv(("resources", "ccdf"), &s.points),
        ));
    }
    let comparisons = campaign.compare_all();
    let fig6 = crate::fig6::run(&comparisons);
    out.push((
        "fig6b_connect_cdf.csv".to_string(),
        series_csv(("connect_reduction_ms", "cdf"), &fig6.connect_cdf),
    ));
    out.push((
        "fig6b_wait_cdf.csv".to_string(),
        series_csv(("wait_reduction_ms", "cdf"), &fig6.wait_cdf),
    ));
    out.push((
        "fig6b_receive_cdf.csv".to_string(),
        series_csv(("receive_reduction_ms", "cdf"), &fig6.receive_cdf),
    ));
    let fig9 = crate::fig9::run_with_repeats(
        campaign,
        opts.vantage,
        &opts.loss_percents,
        opts.fig9_repeats,
    );
    for s in &fig9.series {
        out.push((
            format!("fig9_loss_{}.csv", s.loss_percent),
            series_csv(("cdn_resources", "plt_reduction_ms"), &s.points),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::CampaignConfig;

    fn small_opts() -> ReportOptions {
        ReportOptions {
            loss_percents: vec![0.0],
            fig9_repeats: 1,
            warmup: 1,
            ..ReportOptions::default()
        }
    }

    #[test]
    fn report_contains_every_section() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(6, 12));
        let report = generate_report(&campaign, &small_opts());
        for section in [
            "# h3cdn campaign report",
            "## Table I",
            "## Table II",
            "## Fig. 2",
            "## Fig. 3",
            "## Fig. 4",
            "## Fig. 5",
            "## Fig. 6",
            "## Fig. 7",
            "## Fig. 8",
            "## Table III",
            "## Fig. 9",
        ] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert!(report.contains("6 pages"));
    }

    #[test]
    fn csv_export_is_parseable() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(5, 13));
        let csvs = figure_csvs(&campaign, &small_opts());
        assert!(csvs.iter().any(|(name, _)| name == "fig3_ccdf.csv"));
        assert!(csvs.iter().any(|(name, _)| name.starts_with("fig9_loss_")));
        for (name, body) in &csvs {
            let mut lines = body.lines();
            let header = lines.next().unwrap_or_else(|| panic!("{name} empty"));
            assert_eq!(header.split(',').count(), 2, "{name} header");
            for line in lines {
                assert_eq!(line.split(',').count(), 2, "{name}: bad row {line}");
                for field in line.split(',') {
                    field
                        .parse::<f64>()
                        .unwrap_or_else(|_| panic!("{name}: non-numeric field {field}"));
                }
            }
        }
    }

    #[test]
    fn series_csv_format() {
        let csv = series_csv(("x", "y"), &[(1.0, 2.5), (3.0, 4.0)]);
        assert_eq!(csv, "x,y\n1,2.5\n3,4\n");
    }
}
