//! Fig. 2: H3 adoption by CDN provider and their market shares, measured
//! from LocEdge-classified HAR entries of an H3-enabled pass.

use std::collections::BTreeMap;
use std::fmt;

use h3cdn_browser::ProtocolMode;
use h3cdn_cdn::Vantage;
use serde::Serialize;

use h3cdn::MeasurementCampaign;

/// Per-provider adoption row.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Provider name (as classified by LocEdge).
    pub provider: String,
    /// Requests served over H3.
    pub h3_requests: usize,
    /// Requests served over H2.
    pub h2_requests: usize,
    /// Share of all CDN requests (market share).
    pub market_share: f64,
    /// Share of all H3-enabled CDN requests.
    pub h3_share: f64,
}

/// The reproduced Fig. 2 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// Rows sorted by H3 share, descending.
    pub rows: Vec<Fig2Row>,
}

/// Runs an H3-enabled pass and aggregates per-provider shares.
pub fn run(campaign: &MeasurementCampaign, vantage: Vantage) -> Fig2 {
    let mut h3: BTreeMap<String, usize> = BTreeMap::new();
    let mut h2: BTreeMap<String, usize> = BTreeMap::new();
    let mut cdn_total = 0usize;
    let mut h3_total = 0usize;
    for (_site, har) in campaign.visit_all(vantage, ProtocolMode::H3Enabled) {
        for e in &har.entries {
            let Some(provider) = &e.provider else {
                continue;
            };
            cdn_total += 1;
            match e.protocol.as_str() {
                "h3" => {
                    h3_total += 1;
                    *h3.entry(provider.clone()).or_default() += 1;
                }
                _ => *h2.entry(provider.clone()).or_default() += 1,
            }
        }
    }
    let providers: std::collections::BTreeSet<String> =
        h3.keys().chain(h2.keys()).cloned().collect();
    let mut rows: Vec<Fig2Row> = providers
        .into_iter()
        .map(|p| {
            let h3_requests = h3.get(&p).copied().unwrap_or(0);
            let h2_requests = h2.get(&p).copied().unwrap_or(0);
            Fig2Row {
                market_share: (h3_requests + h2_requests) as f64 / cdn_total as f64,
                h3_share: if h3_total == 0 {
                    0.0
                } else {
                    h3_requests as f64 / h3_total as f64
                },
                provider: p,
                h3_requests,
                h2_requests,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.h3_share.total_cmp(&a.h3_share));
    Fig2 { rows }
}

impl Fig2 {
    /// A provider's row, if it appeared.
    pub fn row(&self, provider: &str) -> Option<&Fig2Row> {
        self.rows.iter().find(|r| r.provider == provider)
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 2: H3 adoption by CDN provider (measured, H3-enabled pass)"
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>8} {:>9} {:>14}",
            "provider", "H3 reqs", "H2 reqs", "mkt share", "share of H3"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>8} {:>8} {:>8.1}% {:>13.1}%",
                r.provider,
                r.h3_requests,
                r.h2_requests,
                r.market_share * 100.0,
                r.h3_share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::CampaignConfig;

    #[test]
    fn google_and_cloudflare_dominate_h3() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(15, 9));
        let fig = run(&campaign, Vantage::Utah);
        let google = fig.row("Google").expect("google present");
        let cf = fig.row("Cloudflare").expect("cloudflare present");
        // Fig. 2's shape: the two together carry ~95 % of H3 CDN traffic,
        // Google nearly fully shifted, Cloudflare split.
        assert!(google.h3_share + cf.h3_share > 0.75);
        assert!(google.h3_requests as f64 / (google.h3_requests + google.h2_requests) as f64 > 0.8);
        if let Some(amazon) = fig.row("Amazon") {
            let amazon_h3_rate =
                amazon.h3_requests as f64 / (amazon.h3_requests + amazon.h2_requests).max(1) as f64;
            assert!(
                amazon_h3_rate < 0.3,
                "Amazon primarily H2: {amazon_h3_rate}"
            );
        }
    }
}
