//! Fig. 5: CCDF of the number of CDN resources each giant provider
//! hosts per webpage (Amazon, Cloudflare, Google, Fastly).

use std::fmt;

use h3cdn_analysis::ccdf_points;
use h3cdn_cdn::Provider;
use serde::Serialize;

use h3cdn::MeasurementCampaign;

/// One provider's CCDF curve.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Series {
    /// Provider name.
    pub provider: String,
    /// `(resource count, P[X > x])` over pages using the provider.
    pub points: Vec<(f64, f64)>,
    /// Fraction of its pages hosting more than 10 resources.
    pub over_ten: f64,
}

/// The reproduced Fig. 5 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5 {
    /// One series per giant provider.
    pub series: Vec<Fig5Series>,
}

/// Computes the per-giant CCDFs from corpus composition.
pub fn run(campaign: &MeasurementCampaign) -> Fig5 {
    let pages = &campaign.corpus().pages;
    let series = Provider::GIANTS
        .into_iter()
        .map(|p| {
            let counts: Vec<f64> = pages
                .iter()
                .map(|page| page.cdn_count_for(p) as f64)
                .filter(|&c| c > 0.0)
                .collect();
            let over_ten = if counts.is_empty() {
                0.0
            } else {
                counts.iter().filter(|&&c| c > 10.0).count() as f64 / counts.len() as f64
            };
            Fig5Series {
                provider: p.name().to_string(),
                points: ccdf_points(&counts),
                over_ten,
            }
        })
        .collect();
    Fig5 { series }
}

impl Fig5 {
    /// A provider's series, if present.
    pub fn series_for(&self, provider: &str) -> Option<&Fig5Series> {
        self.series.iter().find(|s| s.provider == provider)
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 5: CCDF of per-page CDN resource count, per giant provider"
        )?;
        writeln!(
            f,
            "{:<12} {:>14} {:>14}",
            "provider", "median count", ">10 resources"
        )?;
        for s in &self.series {
            // Median from the CCDF: first x with P[X > x] <= 0.5.
            let median = s
                .points
                .iter()
                .find(|(_, p)| *p <= 0.5)
                .map_or(0.0, |(x, _)| *x);
            writeln!(
                f,
                "{:<12} {:>14.0} {:>13.1}%",
                s.provider,
                median,
                s.over_ten * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::CampaignConfig;

    #[test]
    fn cloudflare_and_google_pages_often_exceed_ten() {
        let campaign = h3cdn::MeasurementCampaign::new(CampaignConfig::default());
        let fig = run(&campaign);
        assert_eq!(fig.series.len(), 4);
        for name in ["Cloudflare", "Google"] {
            let s = fig.series_for(name).expect("giant present");
            assert!(
                (0.35..=0.85).contains(&s.over_ten),
                "{name}: over_ten {}",
                s.over_ten
            );
        }
        // Curves are valid CCDFs.
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
