//! Regenerates Fig. 5 (CCDF of per-page CDN resources per giant provider).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig5");
    let fig = h3cdn_experiments::fig5::run(&campaign);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
