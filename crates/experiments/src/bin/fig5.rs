//! Regenerates Fig. 5 (CCDF of per-page CDN resources per giant provider).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign(&opts);
    let fig = h3cdn::experiments::fig5::run(&campaign);
    h3cdn_experiments::emit(&opts, &fig);
}
