//! Regenerates Table I (provider H3 release years and reports).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let table = h3cdn_experiments::table1::run();
    h3cdn_experiments::emit(&opts, &table);
}
