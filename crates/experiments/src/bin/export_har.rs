//! Exports visits as a HAR 1.2 document (viewable in any HAR viewer).
//!
//! ```text
//! cargo run --release -p h3cdn-experiments --bin export_har -- --pages 3 > visits.har
//! ```
//!
//! Emits one document containing the H2-only and H3-enabled visits of
//! every page, from the selected vantage.

use h3cdn::{har::to_har_json, run_keyed_values, ProtocolMode};

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign(&opts);
    // Both sides of every page as keyed runner jobs; the key-ordered
    // merge (site-major, H2 before H3) matches the serial loop exactly.
    let campaign = &campaign;
    let mut jobs = Vec::new();
    for site in 0..campaign.corpus().pages.len() {
        for (variant, mode) in [
            (0u32, ProtocolMode::H2Only),
            (1u32, ProtocolMode::H3Enabled),
        ] {
            jobs.push(((0u32, site as u32, variant), move || {
                campaign.visit(site, opts.vantage, mode)
            }));
        }
    }
    let pages = run_keyed_values(campaign.runner(), jobs);
    let doc = to_har_json(&pages);
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("HAR serialises")
    );
}
