//! Exports visits as a HAR 1.2 document (viewable in any HAR viewer).
//!
//! ```text
//! cargo run --release -p h3cdn-experiments --bin export_har -- --pages 3 > visits.har
//! ```
//!
//! Emits one document containing the H2-only and H3-enabled visits of
//! every page, from the selected vantage.

use std::collections::BTreeMap;

use h3cdn::{har::to_har_json, ProtocolMode};

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "export_har");
    // Both passes run as keyed jobs on the crash-safe execution layer;
    // the export interleaves them site-major, H2 before H3 — the same
    // order as the serial double loop.
    let h2 = campaign.visit_all(opts.vantage, ProtocolMode::H2Only);
    let h3 = campaign.visit_all(opts.vantage, ProtocolMode::H3Enabled);
    let mut h3_by_site: BTreeMap<usize, _> = h3.into_iter().collect();
    let mut pages = Vec::new();
    for (site, h2_page) in h2 {
        pages.push(h2_page);
        if let Some(h3_page) = h3_by_site.remove(&site) {
            pages.push(h3_page);
        }
    }
    // Pages whose H2 side was quarantined still export their H3 side.
    pages.extend(h3_by_site.into_values());
    let doc = to_har_json(&pages);
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("HAR serialises")
    );
    h3cdn_experiments::report_quarantine(&campaign);
}
