//! Exports visits as a HAR 1.2 document (viewable in any HAR viewer).
//!
//! ```text
//! cargo run --release -p h3cdn-experiments --bin export_har -- --pages 3 > visits.har
//! ```
//!
//! Emits one document containing the H2-only and H3-enabled visits of
//! every page, from the selected vantage.

use h3cdn::{har::to_har_json, ProtocolMode};

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign(&opts);
    let mut pages = Vec::new();
    for site in 0..campaign.corpus().pages.len() {
        pages.push(campaign.visit(site, opts.vantage, ProtocolMode::H2Only));
        pages.push(campaign.visit(site, opts.vantage, ProtocolMode::H3Enabled));
    }
    let doc = to_har_json(&pages);
    println!("{}", serde_json::to_string_pretty(&doc).expect("HAR serialises"));
}
