//! Regenerates Fig. 3 (CCDF of CDN-resource percentage per page).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig3");
    let fig = h3cdn_experiments::fig3::run(&campaign);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
