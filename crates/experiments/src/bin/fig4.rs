//! Regenerates Fig. 4 (provider appearance probability; providers per page).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig4");
    let fig = h3cdn_experiments::fig4::run(&campaign);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
