//! Runs the path-dynamics resilience sweep: continuous link variation
//! (handover, Wi-Fi roam, oscillating bottleneck) crossed with
//! {cubic, bbr} congestion control, {droptail-deep, droptail-shallow,
//! codel} queue disciplines and {h2, h3, h3+fallback} browser arms.
//!
//! Extra flag on top of the common set:
//!
//! ```text
//! --smoke   cap the corpus at 4 pages, run the smoke scenario subset
//!           and verify the resilience invariants (CI gate): BBR must
//!           carry less standing queue than Cubic in the deep-buffered
//!           oscillating bottleneck, the fallback arm must complete
//!           every page on the handover trace, and the static control
//!           must reproduce the plain campaign visit paths bit for bit.
//! ```

use h3cdn_experiments::path_dynamics;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let mut opts = h3cdn_experiments::parse_args(args.into_iter());
    if smoke {
        opts.pages = opts.pages.min(4);
    }
    let campaign = h3cdn_experiments::campaign_named(&opts, "path_dynamics");
    let scenarios = if smoke {
        path_dynamics::smoke_scenarios()
    } else {
        path_dynamics::default_scenarios()
    };
    let sweep = path_dynamics::run(&campaign, opts.vantage, &scenarios);
    h3cdn_experiments::emit(&opts, &sweep);
    if smoke {
        check_invariants(&sweep, &campaign, opts.vantage);
        eprintln!("path_dynamics smoke OK");
    }
    h3cdn_experiments::report_quarantine(&campaign);
}

/// The acceptance invariants the CI smoke run enforces.
///
/// # Panics
///
/// Panics (failing the CI step) when the resilience story regresses.
fn check_invariants(
    sweep: &path_dynamics::DynamicsSweep,
    campaign: &h3cdn::MeasurementCampaign,
    vantage: h3cdn::Vantage,
) {
    let cell = |scenario: &str, arm: &str| {
        sweep
            .cell(scenario, arm)
            .unwrap_or_else(|| panic!("sweep misses cell ({scenario}, {arm})"))
    };
    // Bufferbloat: BBR's model keeps the deep oscillating-bottleneck
    // buffer emptier than Cubic's fill-until-loss probing.
    let cubic = cell("oscillate/cubic/droptail-deep", "h3");
    let bbr = cell("oscillate/bbr/droptail-deep", "h3");
    assert!(
        bbr.median_sojourn_ms < cubic.median_sojourn_ms,
        "BBR must carry less standing queue than Cubic: {:.3}ms vs {:.3}ms",
        bbr.median_sojourn_ms,
        cubic.median_sojourn_ms
    );
    // Resilience: the handover trace must not strand a fallback-armed
    // browser.
    let fb = cell("handover/cubic/droptail-deep", "h3+fallback");
    assert_eq!(
        fb.aborted, 0,
        "fallback must complete every page across handovers"
    );
    // Control fidelity: the static row is bit-identical to the plain
    // campaign visit paths (same fabric, no dynamics state installed).
    for (arm, mode) in [
        ("h2", h3cdn::ProtocolMode::H2Only),
        ("h3", h3cdn::ProtocolMode::H3Enabled),
    ] {
        let c = cell("static/cubic/droptail-deep", arm);
        assert_eq!(c.aborted, 0, "static {arm} must complete all pages");
        for (site, plt) in c.plts_ms.iter().enumerate() {
            let want = campaign.visit(site, vantage, mode).plt_ms;
            assert_eq!(
                plt.to_bits(),
                want.to_bits(),
                "static {arm} site {site} must match the campaign visit"
            );
        }
    }
}
