//! Runs the population-scale composition campaign: Fig. 2–4's
//! statistics over a seeded synthetic Internet of 10⁵–10⁶ pages,
//! generated and aggregated in constant memory through the streaming
//! runner (see `h3cdn_experiments::population`).
//!
//! Extra flags on top of the common set:
//!
//! ```text
//! --smoke      drop the default scale to 10 000 pages and verify the
//!              distribution-shape invariants (CI gate): the CDN-share
//!              CCDF must be monotone with ≈ 75 % of pages above 50 %,
//!              ≈ 94.8 % of pages must use ≥ 2 providers with every
//!              top-4 provider on > 50 % of pages, Google + Cloudflare
//!              must dominate H3-reachable requests, and the request /
//!              size tails must fit their calibrated exponents.
//! --window N   streaming-window size: completed-but-undelivered
//!              records the runner may buffer (default 256). Affects
//!              memory and scheduling only, never the output.
//! ```
//!
//! Without an explicit `--pages`, the campaign runs 100 000 pages
//! (10 000 under `--smoke`). With `--run-id`/`--resume` the sink
//! journals every record into sharded binary shards under
//! `results/.runs/<id>/shards/`, and a resumed run merge-joins them
//! with the freshly generated remainder — bit-identical to an
//! uninterrupted run at any `--jobs`.

use h3cdn_experiments::population;
use h3cdn_web::PopulationSpec;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let window = extract_window(&mut args).unwrap_or(population::DEFAULT_WINDOW);
    assert!(window > 0, "--window expects a positive integer");
    let pages_given = args.iter().any(|a| a == "--pages");
    let mut opts = h3cdn_experiments::parse_args(args.into_iter());
    if !pages_given {
        opts.pages = if smoke { 10_000 } else { 100_000 };
    }
    let spec = PopulationSpec::default()
        .with_seed(opts.seed)
        .with_pages(opts.pages as u64);
    let run_dir = h3cdn_experiments::prepare_run_dir(&opts, "population");
    let (summary, stats) = population::run(&spec, &opts.runner(), window, run_dir.as_ref());
    h3cdn_experiments::emit(&opts, &summary);
    eprintln!(
        "population: {} fresh job(s), {} resumed, peak {} record(s) buffered (window {})",
        stats.total,
        spec.num_pages - stats.total as u64,
        stats.peak_buffered,
        window
    );
    if smoke {
        check_invariants(&summary, &stats, &spec, window);
        eprintln!("population smoke OK");
    }
}

/// Pulls `--window N` out of the raw argument list (it is not part of
/// the common flag set).
fn extract_window(args: &mut Vec<String>) -> Option<usize> {
    let at = args.iter().position(|a| a == "--window")?;
    assert!(at + 1 < args.len(), "--window expects a value");
    let value = args[at + 1]
        .parse()
        .expect("--window expects a positive integer");
    args.drain(at..=at + 1);
    Some(value)
}

/// The distribution-shape invariants the CI smoke run enforces — the
/// synthetic Internet must keep reproducing the paper's Fig. 2–4 (and
/// §VI-E's size profile) at population scale.
///
/// # Panics
///
/// Panics (failing the CI step) when a shape drifts out of its band.
fn check_invariants(
    s: &population::PopulationSummary,
    stats: &h3cdn::StreamStats,
    spec: &PopulationSpec,
    window: usize,
) {
    assert_eq!(s.pages, spec.num_pages, "pages lost in aggregation");
    assert!(
        stats.peak_buffered <= window,
        "streaming runner buffered {} > window {window}",
        stats.peak_buffered
    );
    // Fig. 3: monotone CCDF with ~75 % of pages above 50 % CDN share.
    for pair in s.share_ccdf.windows(2) {
        assert!(
            pair[1].1 <= pair[0].1 + 1e-12,
            "CDN-share CCDF must be monotone non-increasing"
        );
    }
    let at_half = s.share_ccdf[10].1;
    assert!(
        (at_half - 0.75).abs() < 0.05,
        "CCDF@0.5 = {at_half}, want ≈ 0.75 (Fig. 3)"
    );
    // Fig. 4: sharing degrees.
    assert!(
        (s.multi_provider_share - 0.948).abs() < 0.04,
        "multi-provider share = {}, want ≈ 0.948 (Fig. 4b)",
        s.multi_provider_share
    );
    assert!(
        s.top4_min_page_share > 0.5,
        "every top-4 provider must appear on > 50 % of pages (Fig. 4a)"
    );
    // Fig. 2: Google and Cloudflare dominate H3-reachable requests.
    let h3_share = |name: &str| {
        s.providers
            .iter()
            .find(|r| r.provider == name)
            .map_or(f64::NAN, |r| r.h3_request_share)
    };
    let (google, cloudflare) = (h3_share("Google"), h3_share("Cloudflare"));
    assert!(
        google > 0.37 && google < 0.58,
        "Google H3-request share = {google}, want ≈ 0.47 (Fig. 2)"
    );
    assert!(
        cloudflare > 0.37 && cloudflare < 0.58,
        "Cloudflare H3-request share = {cloudflare}, want ≈ 0.46 (Fig. 2)"
    );
    assert!(
        google + cloudflare > 0.85,
        "Google + Cloudflare must dominate H3-reachable requests (Fig. 2)"
    );
    // Body and tails of the calibrated composition distributions.
    assert!(
        (s.mean_requests_per_page - 110.0).abs() < 0.15 * 110.0,
        "mean requests/page = {}, want ≈ 110",
        s.mean_requests_per_page
    );
    assert!(
        (s.request_tail_alpha - 1.22).abs() < 0.3,
        "request-count tail α = {}, want ≈ 1.22",
        s.request_tail_alpha
    );
    assert!(
        s.size_p75_bytes > 12_000.0 && s.size_p75_bytes < 30_000.0,
        "size P75 = {} B, want ≈ 20 KB (§VI-E)",
        s.size_p75_bytes
    );
    assert!(
        s.size_tail_alpha > 0.15 && s.size_tail_alpha < 0.45,
        "size tail α = {}, want the truncated-Pareto band",
        s.size_tail_alpha
    );
}
