//! Regenerates every table and figure in one run, printing each artifact
//! in paper order. `--pages` scales the corpus (default 325).

use h3cdn_experiments as ex;

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "repro_all");
    let v = opts.vantage;
    let warmup = (campaign.corpus().pages.len() / 30).max(1);

    println!(
        "=== corpus: {} pages, {} requests, seed {} ===\n",
        campaign.corpus().pages.len(),
        campaign.corpus().total_requests(),
        campaign.corpus().spec.seed
    );

    println!("{}", ex::table1::run());
    println!("{}", ex::table2::run(&campaign, v));
    println!("{}", ex::fig2::run(&campaign, v));
    println!("{}", ex::fig3::run(&campaign));
    println!("{}", ex::fig4::run(&campaign));
    println!("{}", ex::fig5::run(&campaign));

    let comparisons = campaign.compare_all();
    println!("{}", ex::fig6::run(&comparisons));
    println!("{}", ex::fig7::run(&comparisons));

    println!("{}", ex::fig8::run(&campaign, v, warmup));
    println!("{}", ex::table3::run(&campaign, v, warmup));
    println!(
        "{}",
        ex::fig9::run_with_repeats(&campaign, v, &[0.0, 0.5, 1.0], 6)
    );
    h3cdn_experiments::report_quarantine(&campaign);
}
