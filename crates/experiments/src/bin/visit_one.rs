//! Replays a single page visit outside the crash-safe layer.
//!
//! This is the repro command the quarantine records point at: it takes
//! the common corpus flags plus
//!
//! ```text
//! --site N      corpus index of the page to visit (required)
//! --mode h2|h3  protocol side to replay (default h3)
//! ```
//!
//! and runs exactly the internal visit path the campaign used — same
//! corpus seed, same vantage profile, same visit config — on the
//! *plain* pool. A visit that was quarantined because it panicked or
//! stalled will therefore panic right here, in the foreground, with
//! the full payload and backtrace (`RUST_BACKTRACE=1`). A visit that
//! completes prints its one-line summary instead, proving the
//! quarantine was environmental rather than deterministic.

use h3cdn::ProtocolMode;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut site: Option<usize> = None;
    let mut mode = ProtocolMode::H3Enabled;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--site" => {
                let v = args.get(i + 1).unwrap_or_else(|| {
                    panic!("--site expects a corpus index");
                });
                site = Some(v.parse().unwrap_or_else(|_| {
                    panic!("--site expects a corpus index, got {v:?}");
                }));
                args.drain(i..i + 2);
            }
            "--mode" => {
                let v = args.get(i + 1).map(String::as_str).unwrap_or_default();
                mode = match v {
                    "h2" => ProtocolMode::H2Only,
                    "h3" => ProtocolMode::H3Enabled,
                    other => panic!("--mode expects h2|h3, got {other:?}"),
                };
                args.drain(i..i + 2);
            }
            _ => i += 1,
        }
    }
    let site = site.unwrap_or_else(|| panic!("visit_one needs --site N (see --help)"));
    let opts = h3cdn_experiments::parse_args(args.into_iter());
    // Plain pool on purpose: a deterministic failure must panic here,
    // visibly, instead of being quarantined a second time.
    let campaign = h3cdn_experiments::campaign(&opts);
    assert!(
        site < campaign.corpus().pages.len(),
        "--site {site} is out of range for a {}-page corpus",
        campaign.corpus().pages.len()
    );
    let har = campaign.visit(site, opts.vantage, mode);
    println!(
        "site {site} {} @ {}: plt {:.1} ms, {} entries, {} reused conn, {} resumed conn",
        mode.label(),
        opts.vantage.name(),
        har.plt_ms,
        har.entries.len(),
        har.reused_connection_count(),
        har.resumed_connection_count(),
    );
}
