//! Regenerates Fig. 7 (reused connections per group; reuse difference vs
//! PLT reduction). Shares the paired dataset shape with fig6.

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig7");
    let comparisons = campaign.compare_all();
    let fig = h3cdn_experiments::fig7::run(&comparisons);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
