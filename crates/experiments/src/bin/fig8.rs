//! Regenerates Fig. 8 (consecutive visits: PLT reduction and resumed
//! connections vs providers used).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig8");
    let warmup = (campaign.corpus().pages.len() / 30).max(1);
    let fig = h3cdn_experiments::fig8::run(&campaign, opts.vantage, warmup);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
