//! Cross-vantage consistency (the paper's §III-B multi-probe design):
//! mean PLT reduction per vantage, showing results do not hinge on one
//! observation point.

use h3cdn::Vantage;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct VantageRow {
    vantage: String,
    pages: usize,
    mean_plt_reduction_ms: f64,
    positive_share: f64,
}

#[derive(Debug, Serialize)]
struct Vantages {
    rows: Vec<VantageRow>,
}

impl std::fmt::Display for Vantages {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Per-vantage consistency of the H3 PLT reduction")?;
        writeln!(
            f,
            "{:<12} {:>6} {:>16} {:>16}",
            "vantage", "pages", "mean reduction", "positive pages"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>6} {:>14.1}ms {:>15.0}%",
                r.vantage,
                r.pages,
                r.mean_plt_reduction_ms,
                r.positive_share * 100.0
            )?;
        }
        Ok(())
    }
}

fn main() {
    let mut opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    if opts.pages == 325 {
        opts.pages = 80;
    }
    let campaign = h3cdn_experiments::campaign_named(&opts, "vantages");
    let rows = Vantage::ALL
        .into_iter()
        .map(|v| {
            // One parallel, order-stable batch per vantage.
            let reductions: Vec<f64> = campaign
                .compare_vantage(v)
                .iter()
                .map(|cmp| cmp.plt_reduction_ms)
                .collect();
            VantageRow {
                vantage: v.name().to_string(),
                pages: reductions.len(),
                mean_plt_reduction_ms: reductions.iter().sum::<f64>() / reductions.len() as f64,
                positive_share: reductions.iter().filter(|&&r| r > 0.0).count() as f64
                    / reductions.len() as f64,
            }
        })
        .collect();
    h3cdn_experiments::emit(&opts, &Vantages { rows });
    h3cdn_experiments::report_quarantine(&campaign);
}
