//! Sweeps each calibration knob and prints how the headline metric (mean
//! PLT reduction) responds — the robustness companion to EXPERIMENTS.md.

use h3cdn_experiments::sensitivity::{run_sensitivity, Knob};

fn main() {
    let mut opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    if opts.pages == 325 {
        opts.pages = 40; // 4 knobs × settings × paired visits: keep brisk
    }
    let campaign = h3cdn_experiments::campaign_named(&opts, "sensitivity");
    for knob in [
        Knob::H3ExtraProcessingMs,
        Knob::BaselineLossPercent,
        Knob::AccessRateMbps,
        Knob::CongestionControl,
    ] {
        let s = run_sensitivity(&campaign, opts.vantage, knob, &knob.default_sweep());
        h3cdn_experiments::emit(&opts, &s);
    }
    h3cdn_experiments::report_quarantine(&campaign);
}
