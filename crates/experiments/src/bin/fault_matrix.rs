//! Runs the fault matrix: scheduled path impairments (UDP blackholes,
//! blackouts) crossed with {h2, h3, h3+fallback} browser arms.
//!
//! Extra flag on top of the common set:
//!
//! ```text
//! --smoke   cap the corpus at 6 pages and verify the graceful-
//!           degradation invariants (CI gate): under a 100% UDP
//!           blackhole the fallback arm must complete every page with a
//!           nonzero time-to-fallback penalty, while the no-fallback H3
//!           arm must strand.
//! ```

use h3cdn_experiments::fault_matrix;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let mut opts = h3cdn_experiments::parse_args(args.into_iter());
    if smoke {
        opts.pages = opts.pages.min(6);
    }
    let campaign = h3cdn_experiments::campaign_named(&opts, "fault_matrix");
    let scenarios = fault_matrix::default_scenarios();
    let matrix = fault_matrix::run(&campaign, opts.vantage, &scenarios);
    h3cdn_experiments::emit(&opts, &matrix);
    if smoke {
        check_invariants(&matrix);
        eprintln!("fault_matrix smoke OK");
    }
    h3cdn_experiments::report_quarantine(&campaign);
}

/// The acceptance invariants the CI smoke run enforces.
///
/// # Panics
///
/// Panics (failing the CI step) when graceful degradation regresses.
fn check_invariants(matrix: &fault_matrix::FaultMatrix) {
    let cell = |scenario: &str, arm: &str| {
        matrix
            .cell(scenario, arm)
            .unwrap_or_else(|| panic!("matrix misses cell ({scenario}, {arm})"))
    };
    // Control row: nothing aborts, nothing falls back.
    for arm in ["h2", "h3", "h3+fallback"] {
        let c = cell("none", arm);
        assert_eq!(c.aborted, 0, "fault-free {arm} must complete all pages");
        assert_eq!(c.h3_fallbacks, 0, "fault-free {arm} must not fall back");
    }
    // Total UDP blackhole: H2 untouched; H3 strands without fallback;
    // with fallback every page completes, at a nonzero penalty.
    let h2 = cell("udp-blackhole 100%", "h2");
    assert_eq!(h2.aborted, 0, "TCP must ignore a UDP blackhole");
    let h3 = cell("udp-blackhole 100%", "h3");
    assert!(h3.aborted > 0, "blackholed H3 without fallback must strand");
    let fb = cell("udp-blackhole 100%", "h3+fallback");
    assert_eq!(fb.aborted, 0, "fallback must complete every page");
    assert!(fb.h3_fallbacks > 0, "fallbacks must be counted");
    assert!(
        fb.mean_fallback_wait_ms > 0.0,
        "time-to-fallback penalty must be nonzero"
    );
}
