//! Regenerates Fig. 2 (per-provider H3 adoption and market share).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign(&opts);
    let fig = h3cdn::experiments::fig2::run(&campaign, opts.vantage);
    h3cdn_experiments::emit(&opts, &fig);
}
