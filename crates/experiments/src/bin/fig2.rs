//! Regenerates Fig. 2 (per-provider H3 adoption and market share).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig2");
    let fig = h3cdn_experiments::fig2::run(&campaign, opts.vantage);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
