//! Runs the edge-overload sweep: concurrent browser swarms against
//! stateful, finite edges — {ample, starved} capacity × {herd, paced}
//! arrivals × {h2, h3, h3+fallback} browser arms, plus a UDP-blackhole
//! composition scenario.
//!
//! Extra flag on top of the common set:
//!
//! ```text
//! --smoke   cap the corpus at 4 pages, run the smoke scenario subset
//!           and verify the overload invariants (CI gate): the starved
//!           herd must shed QUIC and strand the fallback-less h3 arm,
//!           the fallback arm must complete every client over TCP with
//!           a visible fallback storm, the ample edge must refuse
//!           nobody, and the control row must reproduce the plain
//!           campaign visit paths bit for bit.
//! ```

use h3cdn_experiments::edge_overload;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let mut opts = h3cdn_experiments::parse_args(args.into_iter());
    if smoke {
        opts.pages = opts.pages.min(4);
    }
    let campaign = h3cdn_experiments::campaign_named(&opts, "edge_overload");
    let scenarios = if smoke {
        edge_overload::smoke_scenarios()
    } else {
        edge_overload::default_scenarios()
    };
    let sweep = edge_overload::run(&campaign, opts.vantage, &scenarios);
    h3cdn_experiments::emit(&opts, &sweep);
    if smoke {
        check_invariants(&sweep, &campaign, opts.vantage);
        eprintln!("edge_overload smoke OK");
    }
    h3cdn_experiments::report_quarantine(&campaign);
}

/// The acceptance invariants the CI smoke run enforces.
///
/// # Panics
///
/// Panics (failing the CI step) when the overload story regresses.
fn check_invariants(
    sweep: &edge_overload::OverloadSweep,
    campaign: &h3cdn::MeasurementCampaign,
    vantage: h3cdn::Vantage,
) {
    let cell = |scenario: &str, arm: &str| {
        sweep
            .cell(scenario, arm)
            .unwrap_or_else(|| panic!("sweep misses cell ({scenario}, {arm})"))
    };
    // Overload: the starved herd must shed QUIC handshakes, and
    // without fallback machinery those refusals strand clients.
    let rigid = cell("starved/herd", "h3");
    assert!(
        rigid.edge.refused_quic > 0,
        "the starved edge must refuse QUIC handshakes"
    );
    assert!(
        rigid.stranded_clients > 0,
        "refusals without fallback must strand clients"
    );
    // Graceful degradation: the fallback arm turns the same refusals
    // into an H3→H2 storm and completes every client.
    let graceful = cell("starved/herd", "h3+fallback");
    assert_eq!(
        graceful.stranded_clients, 0,
        "fallback must complete every client under overload"
    );
    assert!(
        graceful.edge.refused_quic > 0,
        "the graceful arm must still see refusals"
    );
    assert!(
        graceful.h3_fallbacks > 0,
        "refusals must drive a visible fallback storm"
    );
    // Composition: a UDP blackhole on top of the starved edge must not
    // strand the fallback arm either.
    let faulted = cell("starved/herd/blackhole", "h3+fallback");
    assert_eq!(
        faulted.stranded_clients, 0,
        "fallback must survive refusals composed with path faults"
    );
    // No spurious refusals: the amply provisioned edge admits the same
    // herd without shedding anything.
    let ample = cell("ample/herd", "h3");
    assert_eq!(ample.stranded_clients, 0, "the ample herd must complete");
    assert_eq!(ample.edge.refused(), 0, "the ample edge must refuse nobody");
    assert!(ample.edge.admitted() > 0);
    // Control fidelity: the solo row is bit-identical to the plain
    // campaign visit paths (same fabric, no admission control).
    for (arm, mode) in [
        ("h2", h3cdn::ProtocolMode::H2Only),
        ("h3", h3cdn::ProtocolMode::H3Enabled),
    ] {
        let c = cell("control/solo", arm);
        assert_eq!(c.stranded_clients, 0, "control {arm} must complete");
        for (site, plt) in c.plts_ms.iter().enumerate() {
            let want = campaign.visit(site, vantage, mode).plt_ms;
            assert_eq!(
                plt.to_bits(),
                want.to_bits(),
                "control {arm} site {site} must match the campaign visit"
            );
        }
    }
}
