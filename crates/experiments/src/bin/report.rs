//! Generates the full markdown campaign report (all tables and figures)
//! on stdout, and optionally writes the plot-ready CSV series.
//!
//! ```text
//! cargo run --release -p h3cdn-experiments --bin report -- --pages 60 > report.md
//! CSV_DIR=./csv cargo run --release -p h3cdn-experiments --bin report -- --pages 60
//! ```

use h3cdn_experiments::report::{generate_report, ReportOptions};

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "report");
    let report_opts = ReportOptions {
        vantage: opts.vantage,
        ..ReportOptions::default()
    };
    println!("{}", generate_report(&campaign, &report_opts));
    if let Ok(dir) = std::env::var("CSV_DIR") {
        std::fs::create_dir_all(&dir).expect("CSV_DIR creatable");
        for (name, body) in h3cdn_experiments::report::figure_csvs(&campaign, &report_opts) {
            let path = std::path::Path::new(&dir).join(name);
            // Crash-safe artifact write: temp + fsync + rename, so a
            // killed report never leaves a torn CSV behind.
            h3cdn::persist::atomic_write(&path, body.as_bytes()).expect("CSV writable");
            eprintln!("wrote {}", path.display());
        }
    }
    h3cdn_experiments::report_quarantine(&campaign);
}
