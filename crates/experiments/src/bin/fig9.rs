//! Regenerates Fig. 9 (PLT reduction vs CDN resources under 0/0.5/1% loss,
//! with fitted slopes).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig9");
    let fig =
        h3cdn_experiments::fig9::run_with_repeats(&campaign, opts.vantage, &[0.0, 0.5, 1.0], 6);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
