//! Regenerates Table II (requests per HTTP version × CDN/non-CDN).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "table2");
    let table = h3cdn_experiments::table2::run(&campaign, opts.vantage);
    h3cdn_experiments::emit(&opts, &table);
    h3cdn_experiments::report_quarantine(&campaign);
}
