//! Regenerates Fig. 6 (PLT reduction per group; phase-reduction CDFs).
//! Runs paired H2/H3 visits of every page from every configured vantage.

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig6");
    let comparisons = campaign.compare_all();
    let fig = h3cdn_experiments::fig6::run(&comparisons);
    h3cdn_experiments::emit(&opts, &fig);
    h3cdn_experiments::report_quarantine(&campaign);
}
