//! Fig. 6(a) ablation: warm vs cold Alt-Svc cache.
//!
//! With a warm cache (the default; the paper's measured second visit),
//! H3-capable domains speak H3 from the first request. With a cold cache
//! (Chrome discovery), every H3 domain's first request goes over H2 —
//! the cost scales with the number of H3-enabled domains, which is what
//! could bend the High group down in Fig. 6(a).

use h3cdn::{PageComparison, VisitConfig};
use h3cdn_experiments::fig6;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Ablation {
    warm: fig6::Fig6,
    cold_alt_svc: fig6::Fig6,
}

impl std::fmt::Display for Ablation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "--- warm Alt-Svc cache (paper's measured visit) ---")?;
        writeln!(f, "{}", self.warm)?;
        writeln!(f, "--- cold Alt-Svc cache (Chrome discovery) ---")?;
        writeln!(f, "{}", self.cold_alt_svc)
    }
}

fn main() {
    let mut opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    if opts.pages == 325 {
        opts.pages = 80;
    }
    let campaign = h3cdn_experiments::campaign_named(&opts, "fig6_ablation");
    let run = |alt_svc: bool| -> fig6::Fig6 {
        let mut base = VisitConfig::default().with_vantage(opts.vantage);
        base.alt_svc_discovery = alt_svc;
        // One parallel, order-stable batch per cache state.
        let specs = (0..campaign.corpus().pages.len())
            .map(|site| (site as u32, site, base.clone()))
            .collect();
        let cmps: Vec<PageComparison> = campaign
            .compare_batch(specs)
            .into_iter()
            .map(|(_, cmp)| cmp)
            .collect();
        fig6::run(&cmps)
    };
    let ablation = Ablation {
        warm: run(false),
        cold_alt_svc: run(true),
    };
    h3cdn_experiments::emit(&opts, &ablation);
    h3cdn_experiments::report_quarantine(&campaign);
}
