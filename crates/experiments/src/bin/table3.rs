//! Regenerates Table III (k-means sharing groups under consecutive visits).

fn main() {
    let opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    let campaign = h3cdn_experiments::campaign_named(&opts, "table3");
    let warmup = (campaign.corpus().pages.len() / 30).max(1);
    let table = h3cdn_experiments::table3::run(&campaign, opts.vantage, warmup);
    h3cdn_experiments::emit(&opts, &table);
    h3cdn_experiments::report_quarantine(&campaign);
}
