//! First vs Repeat visit modes (Saverimoutou et al., cited by the paper):
//! a *First* visit hits cold edge caches, a cold Alt-Svc cache and no
//! session tickets; a *Repeat* visit has everything warm. Prints mean PLT
//! per protocol per mode and the H3 reduction in each.

use h3cdn::browser::{visit_page, ProtocolMode, VisitConfig};
use h3cdn::transport::tls::TicketStore;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ModeRow {
    mode: &'static str,
    mean_plt_h2_ms: f64,
    mean_plt_h3_ms: f64,
    mean_reduction_ms: f64,
}

#[derive(Debug, Serialize)]
struct FirstVsRepeat {
    rows: Vec<ModeRow>,
}

impl std::fmt::Display for FirstVsRepeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "First vs Repeat visit modes")?;
        writeln!(
            f,
            "{:<8} {:>12} {:>12} {:>12}",
            "mode", "H2 PLT", "H3 PLT", "reduction"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>10.1}ms {:>10.1}ms {:>10.1}ms",
                r.mode, r.mean_plt_h2_ms, r.mean_plt_h3_ms, r.mean_reduction_ms
            )?;
        }
        Ok(())
    }
}

fn main() {
    let mut opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    if opts.pages == 325 {
        opts.pages = 60; // four visits per page; keep the default run brisk
    }
    let campaign = h3cdn_experiments::campaign(&opts);
    let corpus = campaign.corpus();

    let mut rows = Vec::new();
    for (mode, cold) in [("First", true), ("Repeat", false)] {
        let mut h2_total = 0.0;
        let mut h3_total = 0.0;
        for page in &corpus.pages {
            for (proto, sink) in [
                (ProtocolMode::H2Only, &mut h2_total),
                (ProtocolMode::H3Enabled, &mut h3_total),
            ] {
                let mut cfg = VisitConfig::default()
                    .with_mode(proto)
                    .with_vantage(opts.vantage);
                cfg.cold_cache = cold;
                cfg.alt_svc_discovery = cold;
                *sink += visit_page(page, &corpus.domains, &cfg, TicketStore::new())
                    .har
                    .plt_ms;
            }
        }
        let n = corpus.pages.len() as f64;
        rows.push(ModeRow {
            mode,
            mean_plt_h2_ms: h2_total / n,
            mean_plt_h3_ms: h3_total / n,
            mean_reduction_ms: (h2_total - h3_total) / n,
        });
    }
    h3cdn_experiments::emit(&opts, &FirstVsRepeat { rows });
}
