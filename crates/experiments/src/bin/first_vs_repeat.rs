//! First vs Repeat visit modes (Saverimoutou et al., cited by the paper):
//! a *First* visit hits cold edge caches, a cold Alt-Svc cache and no
//! session tickets; a *Repeat* visit has everything warm. Prints mean PLT
//! per protocol per mode and the H3 reduction in each.

use h3cdn::browser::{ProtocolMode, VisitConfig};
use h3cdn::run_keyed;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ModeRow {
    mode: &'static str,
    mean_plt_h2_ms: f64,
    mean_plt_h3_ms: f64,
    mean_reduction_ms: f64,
}

#[derive(Debug, Serialize)]
struct FirstVsRepeat {
    rows: Vec<ModeRow>,
}

impl std::fmt::Display for FirstVsRepeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "First vs Repeat visit modes")?;
        writeln!(
            f,
            "{:<8} {:>12} {:>12} {:>12}",
            "mode", "H2 PLT", "H3 PLT", "reduction"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>10.1}ms {:>10.1}ms {:>10.1}ms",
                r.mode, r.mean_plt_h2_ms, r.mean_plt_h3_ms, r.mean_reduction_ms
            )?;
        }
        Ok(())
    }
}

fn main() {
    let mut opts = h3cdn_experiments::parse_args(std::env::args().skip(1));
    if opts.pages == 325 {
        opts.pages = 60; // four visits per page; keep the default run brisk
    }
    let campaign = h3cdn_experiments::campaign_named(&opts, "first_vs_repeat");
    let corpus = campaign.corpus();
    let modes = [("First", true), ("Repeat", false)];

    // The full `mode × page × protocol` grid as keyed runner jobs; keys
    // `(mode, site, protocol)` make the merge mode-major like the old
    // serial loops.
    let campaign = &campaign;
    let mut jobs = Vec::new();
    for (mi, &(_, cold)) in modes.iter().enumerate() {
        for site in 0..corpus.pages.len() {
            for (variant, proto) in [
                (0u32, ProtocolMode::H2Only),
                (1u32, ProtocolMode::H3Enabled),
            ] {
                let mut cfg = VisitConfig::default()
                    .with_mode(proto)
                    .with_vantage(opts.vantage);
                cfg.cold_cache = cold;
                cfg.alt_svc_discovery = cold;
                jobs.push(((mi as u32, site as u32, variant), move || {
                    campaign.visit_with(site, &cfg).plt_ms
                }));
            }
        }
    }
    let plts = run_keyed(campaign.runner(), jobs);

    let n = corpus.pages.len() as f64;
    let total = |mi: usize, variant: u32| -> f64 {
        plts.iter()
            .filter(|((m, _, v), _)| *m == mi as u32 && *v == variant)
            .map(|(_, plt)| plt)
            .sum()
    };
    let rows = modes
        .iter()
        .enumerate()
        .map(|(mi, &(mode, _))| {
            let h2_total = total(mi, 0);
            let h3_total = total(mi, 1);
            ModeRow {
                mode,
                mean_plt_h2_ms: h2_total / n,
                mean_plt_h3_ms: h3_total / n,
                mean_reduction_ms: (h2_total - h3_total) / n,
            }
        })
        .collect();
    h3cdn_experiments::emit(&opts, &FirstVsRepeat { rows });
    h3cdn_experiments::report_quarantine(campaign);
}
